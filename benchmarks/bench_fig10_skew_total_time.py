"""Reproduces the paper's Figure 10 (skew total time).

Run with: pytest benchmarks/ --benchmark-only -k fig10
The bench regenerates the figure's series from fresh simulated runs and
asserts the qualitative shape checks recorded in DESIGN.md §4.
"""

from conftest import run_figure


def test_fig10_skew_total_time(benchmark, harness, report_sink):
    run_figure(benchmark, report_sink, harness.fig10)
