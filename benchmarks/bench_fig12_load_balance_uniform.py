"""Reproduces the paper's Figure 12 (load balance uniform).

Run with: pytest benchmarks/ --benchmark-only -k fig12
The bench regenerates the figure's series from fresh simulated runs and
asserts the qualitative shape checks recorded in DESIGN.md §4.
"""

from conftest import run_figure


def test_fig12_load_balance_uniform(benchmark, harness, report_sink):
    run_figure(benchmark, report_sink, harness.fig12)
