"""Obs-budget smoke gate: bounded observability under a real workload.

The CI ``obs-budget`` job runs this script.  It executes one seeded
multi-query workload under a hard ``--obs-budget`` and asserts the
streaming layer's whole contract at once:

1. the run sheds records *loudly* — nonzero ``obs.spans_dropped`` with a
   matching ``obs`` section in the report (never silent truncation);
2. peak traced memory (tracemalloc) stays under a hard ceiling, so an
   unbounded collector sneaking back in fails the build;
3. the serialized final snapshot is small — within a fixed multiple of
   the byte budget;
4. two identical runs produce byte-identical snapshot JSON (the
   determinism the fleet-merge wire contract depends on);
5. sketch-backed latency percentiles stay within the documented 1%
   relative-error bound of the exact per-query order statistics.

Run with::

    PYTHONPATH=src python benchmarks/obs_budget_smoke.py \
        --snapshot-out obs-snapshot.jsonl
"""

from __future__ import annotations

import argparse
import sys
import tracemalloc
from pathlib import Path

import numpy as np

from repro.config import (
    ClusterSpec,
    MTUPLES,
    ObsConfig,
    QueryMixEntry,
    WorkloadConfig,
)
from repro.obs import Snapshot
from repro.workload import run_workload

#: small enough that the 8-query run's ~120 offered spans overflow the
#: budget's ~40-span floor and visibly shed
BUDGET_BYTES = 8 * 1024
#: generous CI-hardware ceiling on peak traced allocations — the whole
#: simulated run fits in a fraction of this; an unbounded span/edge log
#: regression at this query count blows well past it
PEAK_TRACED_CEILING = 512 * 1024 * 1024
#: serialized snapshot ceiling: sketches/rings/samples must stay within
#: a small multiple of the byte budget (payload dicts cost more than
#: the budget's per-record planning estimates, hence the slack)
SNAPSHOT_BYTES_CEILING = 8 * BUDGET_BYTES


def build_config() -> WorkloadConfig:
    n_queries = 8
    return WorkloadConfig(
        n_queries=n_queries,
        arrival_times=tuple(0.05 * q for q in range(n_queries)),
        seed=7,
        mix=(QueryMixEntry(r_tuples=2 * MTUPLES, s_tuples=2 * MTUPLES,
                           initial_nodes=2),),
        cluster=ClusterSpec(n_sources=2, n_potential_nodes=8,
                            hash_memory_bytes=200 * 1024 * 1024),
        scale=1.0 / 50.0,
        obs=ObsConfig(budget_bytes=BUDGET_BYTES),
    )


def check(ok: bool, label: str, detail: str) -> bool:
    print(f"{'PASS' if ok else 'FAIL'}  {label}: {detail}")
    return ok


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--snapshot-out", default="obs-snapshot.jsonl",
                    help="snapshot artifact path (default %(default)s)")
    args = ap.parse_args(argv)
    cfg = build_config()

    tracemalloc.start()
    res = run_workload(cfg)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    res2 = run_workload(cfg)

    snap_json = res.snapshot.to_json()
    Path(args.snapshot_out).write_text(snap_json + "\n", encoding="utf-8")
    print(f"wrote {args.snapshot_out} ({len(snap_json)} bytes)")

    report = res.to_dict()
    latencies = [q.latency_s for q in res.queries]
    exact_p99 = float(np.percentile(latencies, 99, method="lower"))
    sketch_p99 = res.snapshot.quantile("workload.query_latency_s", 0.99)

    ok = True
    ok &= check(res.all_valid and res.n_queries == cfg.n_queries,
                "oracle", f"{res.n_queries} queries, all_valid={res.all_valid}")
    ok &= check(res.spans_dropped > 0, "shedding",
                f"spans_dropped={res.spans_dropped} under "
                f"budget={BUDGET_BYTES}B")
    ok &= check(report.get("obs", {}).get("spans_dropped")
                == res.spans_dropped,
                "report", f"obs section carries the drops: {report.get('obs')}")
    ok &= check(peak <= PEAK_TRACED_CEILING, "memory",
                f"peak traced {peak / 1e6:.1f} MB "
                f"<= {PEAK_TRACED_CEILING / 1e6:.0f} MB ceiling")
    ok &= check(len(snap_json) <= SNAPSHOT_BYTES_CEILING, "snapshot size",
                f"{len(snap_json)} B <= {SNAPSHOT_BYTES_CEILING} B")
    ok &= check(snap_json == res2.snapshot.to_json(), "determinism",
                "two runs, byte-identical snapshot JSON")
    ok &= check(
        Snapshot.from_json(snap_json).counter_total("obs.spans_dropped")
        == res.spans_dropped,
        "roundtrip", "snapshot reparses with exact drop counter",
    )
    ok &= check(abs(sketch_p99 - exact_p99) <= 0.01 * exact_p99, "quantiles",
                f"sketch p99 {sketch_p99:.4f}s within 1% of "
                f"exact {exact_p99:.4f}s")
    print("obs-budget smoke:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
