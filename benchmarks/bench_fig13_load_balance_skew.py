"""Reproduces the paper's Figure 13 (load balance skew).

Run with: pytest benchmarks/ --benchmark-only -k fig13
The bench regenerates the figure's series from fresh simulated runs and
asserts the qualitative shape checks recorded in DESIGN.md §4.
"""

from conftest import run_figure


def test_fig13_load_balance_skew(benchmark, harness, report_sink):
    run_figure(benchmark, report_sink, harness.fig13)
