"""Reproduces the paper's Figure 7 (tuple size).

Run with: pytest benchmarks/ --benchmark-only -k fig07
The bench regenerates the figure's series from fresh simulated runs and
asserts the qualitative shape checks recorded in DESIGN.md §4.
"""

from conftest import run_figure


def test_fig07_tuple_size(benchmark, harness, report_sink):
    run_figure(benchmark, report_sink, harness.fig07)
