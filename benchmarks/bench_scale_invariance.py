"""Validates the co-scaling rule DESIGN.md relies on.

Running the same paper-units workload at two different scales must yield
(nearly) the same *paper-scale* results: times within a few percent,
identical expansion counts, proportional traffic.  This is the property
that justifies benchmarking at scale 1/50 and reporting paper-scale
seconds.
"""

from conftest import run_figure

from repro.analysis import FigureReport
from repro.config import Algorithm, RunConfig, WorkloadSpec
from repro.core import run_join


def _run(algorithm, scale):
    wl = WorkloadSpec(scale=scale)
    return run_join(
        RunConfig(algorithm=algorithm, initial_nodes=4, workload=wl,
                  trace=False),
        validate=False,
    )


def _build_report():
    rep = FigureReport(
        "Scale invariance", "Paper-scale results at workload scale 1/50 "
        "vs 1/25 (4 initial nodes)",
        ["algorithm", "scale", "total (paper s)", "nodes",
         "extra build chunks"],
    )
    runs = {}
    for algorithm in (Algorithm.SPLIT, Algorithm.REPLICATE,
                      Algorithm.HYBRID, Algorithm.OUT_OF_CORE):
        for scale in (1 / 50, 1 / 25):
            res = _run(algorithm, scale)
            runs[algorithm, scale] = res
            rep.rows.append([
                algorithm.value, f"1/{round(1 / scale)}",
                res.paper_scale_total_s, res.nodes_used,
                res.extra_build_chunks(),
            ])
    rep.check(
        "paper-scale totals agree across scales (within 10%)",
        all(
            abs(runs[a, 1 / 50].paper_scale_total_s
                - runs[a, 1 / 25].paper_scale_total_s)
            <= 0.10 * runs[a, 1 / 25].paper_scale_total_s
            for a in (Algorithm.SPLIT, Algorithm.REPLICATE,
                      Algorithm.HYBRID, Algorithm.OUT_OF_CORE)
        ),
    )
    rep.check(
        "the expansion reaches the same cluster size at both scales",
        all(
            runs[a, 1 / 50].nodes_used == runs[a, 1 / 25].nodes_used
            for a in (Algorithm.SPLIT, Algorithm.REPLICATE,
                      Algorithm.HYBRID)
        ),
    )
    rep.check(
        "extra communication (in chunk units) agrees across scales "
        "(within 15%)",
        all(
            abs(runs[a, 1 / 50].extra_build_chunks()
                - runs[a, 1 / 25].extra_build_chunks())
            <= 0.15 * max(runs[a, 1 / 25].extra_build_chunks(), 1.0)
            for a in (Algorithm.SPLIT, Algorithm.HYBRID)
        ),
    )
    return rep


def test_scale_invariance(benchmark, report_sink):
    run_figure(benchmark, report_sink, _build_report)
