"""Autoscaling-policy study: latency SLO vs pool size, per arrival shape.

The paper sizes one query's resources; the fleet layer asks the
operator's follow-on question — how many pool nodes does a *workload*
need to meet a latency SLO, and does the admission policy change the
answer?  This script sweeps admission policies x pool sizes under the
two non-Poisson arrival generators (``diurnal``: traffic follows the
sun; ``bursty``: thundering herds), runs every cell through the real
OS-process sharded fleet path (``run_fleet``), and publishes the curves
as a bench-diff-compatible baseline:

* ``series`` key — ``{profile}-{policy}`` (one curve per combination);
* point key     — pool size (the x axis);
* ``total_s``   — fleet-wide p99 query latency in simulated seconds
  (sketch-backed, merged across cohorts);
* ``build_s``   — SLO-miss fraction: queries whose end-to-end latency
  exceeded ``SLO_S``.

Every quantity is simulated, so a regenerated file must bench-diff
byte-clean against the committed ``BENCH_4.json`` — the CI
``fleet-smoke`` job gates on exactly that.

Run with::

    PYTHONPATH=src python benchmarks/bench_fleet_autoscale.py --out BENCH_4.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

from repro.config import (
    ClusterSpec,
    FleetConfig,
    MTUPLES,
    PoolPolicy,
    QueryMixEntry,
    WorkloadConfig,
)
from repro.workload import profile_arrivals, run_fleet

#: latency SLO in simulated seconds — ~1.4x an uncontended query's
#: end-to-end latency at this mix/scale, so a well-provisioned pool
#: meets it and an undersized one visibly misses it
SLO_S = 0.25
PROFILES = ("diurnal", "bursty")
POLICIES = (PoolPolicy.FIFO, PoolPolicy.FAIR_SHARE)
#: pool nodes *per cohort* — the fleet's sharded-service model gives each
#: cohort its own independent pool, so this is the per-cell provisioning
#: knob the study sizes (total fleet capacity = N_COHORTS x pool)
POOL_SIZES = (2, 4, 6, 10)
N_QUERIES = 24
N_COHORTS = 4
SEED = 11


def _cell_config(profile: str, policy: PoolPolicy, pool: int,
                 n_shards: int) -> FleetConfig:
    base = WorkloadConfig(
        n_queries=N_QUERIES,
        arrival_rate_qps=2.0,
        seed=SEED,
        mix=(QueryMixEntry(r_tuples=MTUPLES, s_tuples=MTUPLES,
                           initial_nodes=2),),
        policy=policy,
        cluster=ClusterSpec(n_sources=2, n_potential_nodes=pool,
                            hash_memory_bytes=200 * 1024 * 1024),
        scale=1.0 / 50.0,
    )
    wl = dataclasses.replace(
        base, arrival_times=profile_arrivals(profile, base)
    )
    return FleetConfig(workload=wl, n_cohorts=N_COHORTS, n_shards=n_shards)


def sweep(n_shards: int) -> dict:
    series: dict[str, dict[str, dict[str, float]]] = {}
    for profile in PROFILES:
        for policy in POLICIES:
            name = f"{profile}-{policy.value}"
            series[name] = {}
            for pool in POOL_SIZES:
                res = run_fleet(_cell_config(profile, policy, pool,
                                             n_shards))
                if res.exit_code != 0:
                    raise SystemExit(
                        f"{name} pool={pool}: fleet exit "
                        f"{res.exit_code} ({len(res.failures)} failures, "
                        f"all_valid={res.all_valid})"
                    )
                p99 = res.latency_percentiles()["p99"]
                misses = sum(
                    1 for q in res.queries if q["latency_s"] > SLO_S
                )
                series[name][str(pool)] = {
                    "total_s": p99,
                    "build_s": misses / res.n_queries,
                }
                print(f"{name:16s} pool={pool:3d}  p99={p99:7.3f}s  "
                      f"slo_miss={misses}/{res.n_queries}  "
                      f"wall={res.wall_s:5.1f}s")
    return {
        "benchmark": "fleet-autoscale",
        "description": "p99 latency (total_s, simulated s) and SLO-miss "
                       f"fraction (build_s, SLO={SLO_S}s) vs pool size, "
                       "per arrival profile x admission policy; "
                       f"{N_QUERIES} queries in {N_COHORTS} cohorts",
        "scale": 1.0 / 50.0,
        "slo_s": SLO_S,
        "series": series,
    }


def check_shape(doc: dict) -> list[str]:
    """The study's claims, as failures a regression would surface."""
    problems = []
    for name, points in doc["series"].items():
        pools = sorted(int(p) for p in points)
        misses = [points[str(p)]["build_s"] for p in pools]
        if misses != sorted(misses, reverse=True):
            problems.append(
                f"{name}: SLO-miss fraction not monotone non-increasing "
                f"in pool size: {misses}"
            )
        if misses[0] <= misses[-1] and misses[0] == 0.0:
            problems.append(
                f"{name}: smallest pool already meets the SLO — the "
                "sweep is not exercising contention"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=None, metavar="PATH",
                    help="write the baseline JSON here (e.g. BENCH_4.json)")
    ap.add_argument("--shards", type=int, default=2,
                    help="worker processes per fleet cell (default 2; "
                         "results are shard-count invariant)")
    args = ap.parse_args(argv)
    doc = sweep(args.shards)
    problems = check_shape(doc)
    for p in problems:
        print(f"SHAPE FAIL: {p}", file=sys.stderr)
    if args.out:
        Path(args.out).write_text(json.dumps(doc, indent=2) + "\n",
                                  encoding="utf-8")
        print(f"wrote {args.out}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
