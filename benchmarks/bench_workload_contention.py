"""Multi-tenant contention sweep: concurrent queries vs one shared pool.

Not a paper figure — the paper runs one join at a time and asks where
*extra* nodes should go.  This bench asks the follow-on question the
``repro.workload`` subsystem exists for: what happens when the "additional
resources" are additional *because another query released them*?  It
sweeps the number of concurrent queries over a fixed 6-node pool and
records makespan, p99 latency, queueing delay, denial counts and pool
utilization.  Every query in every cell is still oracle-validated.

Run with: pytest benchmarks/ --benchmark-only -k workload_contention
"""

from conftest import run_figure

from repro.analysis import FigureReport
from repro.config import (
    ClusterSpec,
    MTUPLES,
    QueryMixEntry,
    WorkloadConfig,
)
from repro.workload import run_workload

POOL_NODES = 6
#: 50 MB pre-scale budget => ~1 MB hash memory per node at 1/50 scale,
#: small enough that a 2-node query must recruit (and, under contention,
#: be denied and spill) to finish its build.
NODE_MEMORY = 50 * 1024 * 1024


def _run(n_queries):
    cfg = WorkloadConfig(
        n_queries=n_queries,
        # Closely spaced arrivals so the queries genuinely overlap.
        arrival_times=tuple(0.05 * q for q in range(n_queries)),
        seed=7,
        mix=(QueryMixEntry(r_tuples=2 * MTUPLES, s_tuples=2 * MTUPLES,
                           initial_nodes=2),),
        cluster=ClusterSpec(n_sources=2, n_potential_nodes=POOL_NODES,
                            hash_memory_bytes=NODE_MEMORY),
        scale=1.0 / 50.0,
    )
    return run_workload(cfg)


def _build_report():
    rep = FigureReport(
        "Workload contention",
        f"concurrent queries vs one shared {POOL_NODES}-node pool "
        "(fifo admission, scarce per-node memory)",
        ["queries", "makespan s", "p99 latency s", "p99 queue s",
         "denials", "spill queries", "pool util"],
    )
    runs = {}
    for n in (1, 2, 4, 6):
        res = _run(n)
        runs[n] = res
        rep.rows.append([
            n,
            res.makespan_s,
            res.latency_percentiles()["p99"],
            res.queue_delay_percentiles()["p99"],
            res.total_denials,
            len(res.degraded_queries),
            res.pool_utilization,
        ])
    rep.check(
        "every query in every cell matches its sequential oracle",
        all(r.all_valid for r in runs.values()),
    )
    rep.check(
        "makespan grows monotonically with offered load",
        all(runs[a].makespan_s < runs[b].makespan_s
            for a, b in ((1, 2), (2, 4), (4, 6))),
    )
    rep.check(
        "an uncontended query is never denied and never spills",
        runs[1].total_denials == 0 and not runs[1].degraded_queries,
    )
    rep.check(
        "under contention the pool denies recruits and queries degrade "
        "to the out-of-core spill path instead of erroring",
        runs[6].total_denials > 0 and len(runs[6].degraded_queries) > 0,
    )
    rep.check(
        "contention raises p99 latency over the uncontended run",
        runs[6].latency_percentiles()["p99"]
        > runs[1].latency_percentiles()["p99"],
    )
    return rep


def test_workload_contention(benchmark, report_sink):
    run_figure(benchmark, report_sink, _build_report)
