"""Ablation D: number of data sources.

The paper leaves the source count unstated; our calibration (DESIGN.md)
uses 4.  The source NICs bound the aggregate injection rate, which decides
how much the replication-based algorithm's probe broadcast hurts — this
bench makes that dependence explicit.
"""

from conftest import run_figure

from repro.analysis import FigureReport
from repro.config import Algorithm, ClusterSpec, RunConfig, WorkloadSpec
from repro.core import run_join


def _run(algorithm, n_sources):
    return run_join(
        RunConfig(algorithm=algorithm, initial_nodes=1,
                  workload=WorkloadSpec(),
                  cluster=ClusterSpec(n_sources=n_sources),
                  trace=False),
        validate=False,
    )


def _build_report():
    rep = FigureReport(
        "Ablation D", "Source-count sensitivity (1 initial node)",
        ["sources", "replicated total (paper s)", "split total (paper s)",
         "replicated probe share"],
    )
    runs = {}
    for n in (2, 4, 8):
        repl = _run(Algorithm.REPLICATE, n)
        split = _run(Algorithm.SPLIT, n)
        runs[n] = (repl, split)
        rep.rows.append([
            n,
            repl.paper_scale_total_s,
            split.paper_scale_total_s,
            repl.times.probe_s / repl.total_s,
        ])
    rep.check(
        "replication's broadcast-bound probe speeds up with more source "
        "NICs",
        runs[2][0].times.probe_s > runs[4][0].times.probe_s
        > runs[8][0].times.probe_s,
    )
    rep.check(
        "split stays ahead of replication at 1 initial node regardless of "
        "source count",
        all(split.total_s < repl.total_s for repl, split in runs.values()),
    )
    return rep


def test_ablation_data_sources(benchmark, report_sink):
    run_figure(benchmark, report_sink, _build_report)
