"""Reproduces the paper's Figure 6 (table size scaling).

Run with: pytest benchmarks/ --benchmark-only -k fig06
The bench regenerates the figure's series from fresh simulated runs and
asserts the qualitative shape checks recorded in DESIGN.md §4.
"""

from conftest import run_figure


def test_fig06_table_size_scaling(benchmark, harness, report_sink):
    run_figure(benchmark, report_sink, harness.fig06)
