"""Reproduces the paper's Figure 9 (build larger buildtime).

Run with: pytest benchmarks/ --benchmark-only -k fig09
The bench regenerates the figure's series from fresh simulated runs and
asserts the qualitative shape checks recorded in DESIGN.md §4.
"""

from conftest import run_figure


def test_fig09_build_larger_buildtime(benchmark, harness, report_sink):
    run_figure(benchmark, report_sink, harness.fig09)
