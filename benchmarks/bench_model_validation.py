"""Validates the paper's §4.2.4 analytic overhead model against measured
split/reshuffle transfer volumes (capacity-granular form; see
repro.analysis.costmodel)."""

from conftest import run_figure


def test_model_validation(benchmark, harness, report_sink):
    run_figure(benchmark, report_sink, harness.model_validation)
