"""Reproduces the paper's Figure 3 (build time vs initial nodes).

Run with: pytest benchmarks/ --benchmark-only -k fig03
The bench regenerates the figure's series from fresh simulated runs and
asserts the qualitative shape checks recorded in DESIGN.md §4.
"""

from conftest import run_figure


def test_fig03_build_time_vs_initial_nodes(benchmark, harness, report_sink):
    run_figure(benchmark, report_sink, harness.fig03)
