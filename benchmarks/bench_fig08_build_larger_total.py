"""Reproduces the paper's Figure 8 (build larger total).

Run with: pytest benchmarks/ --benchmark-only -k fig08
The bench regenerates the figure's series from fresh simulated runs and
asserts the qualitative shape checks recorded in DESIGN.md §4.
"""

from conftest import run_figure


def test_fig08_build_larger_total(benchmark, harness, report_sink):
    run_figure(benchmark, report_sink, harness.fig08)
