"""Ablation C: communication chunk-size sensitivity.

The paper fixes chunks at 10,000 tuples.  Smaller chunks pay more
per-message overhead (latency + per-message CPU); much larger chunks delay
routing-table reactions and inflate the pending buffers a full node must
forward.  This bench quantifies the insensitivity band around the paper's
choice.
"""

from conftest import run_figure

from repro.analysis import FigureReport
from repro.config import Algorithm, RunConfig, WorkloadSpec
from repro.core import run_join


def _run(chunk_tuples):
    wl = WorkloadSpec(chunk_tuples=chunk_tuples)
    return run_join(
        RunConfig(algorithm=Algorithm.HYBRID, initial_nodes=4, workload=wl,
                  trace=False),
        validate=False,
    )


def _build_report():
    rep = FigureReport(
        "Ablation C", "Chunk-size sensitivity (hybrid, 4 initial nodes)",
        ["chunk tuples (paper units)", "total (paper s)",
         "extra build chunks", "data messages"],
    )
    sizes = (2_000, 10_000, 50_000)
    runs = {}
    for c in sizes:
        res = _run(c)
        runs[c] = res
        rep.rows.append([
            c,
            res.paper_scale_total_s,
            res.extra_build_chunks(),
            sum(res.comm.chunks_by_hop.values()),
        ])
    rep.check(
        "totals vary by less than 35% across a 25x chunk-size range",
        max(r.total_s for r in runs.values())
        < 1.35 * min(r.total_s for r in runs.values()),
    )
    rep.check(
        "message count shrinks as chunks grow",
        sum(runs[2_000].comm.chunks_by_hop.values())
        > sum(runs[50_000].comm.chunks_by_hop.values()),
    )
    return rep


def test_ablation_chunk_size(benchmark, report_sink):
    run_figure(benchmark, report_sink, _build_report)
