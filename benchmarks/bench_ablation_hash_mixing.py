"""Ablation B: order-preserving vs mixing hash under skew.

The paper's skew results require value->position locality (contiguous
"hash table ranges").  A mixing hash (SplitMix64) scatters the Gaussian
hotspot uniformly over the table and the skew pathology disappears —
which confirms the order-preserving reading of the paper's hash function
and quantifies what a 2004 system would have gained from hash mixing.
"""

from conftest import run_figure

from repro.analysis import FigureReport, load_balance
from repro.config import Algorithm, Distribution, RunConfig, WorkloadSpec
from repro.core import run_join


def _run(algorithm, mix, sigma):
    wl = WorkloadSpec(distribution=Distribution.GAUSSIAN, gauss_sigma=sigma)
    return run_join(
        RunConfig(algorithm=algorithm, initial_nodes=4, workload=wl,
                  mix_hash=mix, trace=False),
        validate=False,
    )


def _build_report():
    rep = FigureReport(
        "Ablation B", "Hash mixing vs order-preserving map under skew "
        "(sigma = 0.0001)",
        ["algorithm", "hash", "total (paper s)", "nodes", "load max/avg"],
    )
    runs = {}
    for algorithm in (Algorithm.SPLIT, Algorithm.HYBRID):
        for mix in (False, True):
            res = _run(algorithm, mix, 0.0001)
            runs[algorithm, mix] = res
            rep.rows.append([
                algorithm.value,
                "mixed" if mix else "order-preserving",
                res.paper_scale_total_s,
                res.nodes_used,
                load_balance(res).imbalance,
            ])
    rep.check(
        "mixing removes split's skew penalty (>= 2x faster)",
        runs[Algorithm.SPLIT, True].total_s
        < 0.5 * runs[Algorithm.SPLIT, False].total_s,
    )
    rep.check(
        "mixing balances split's load (max/avg < 1.5)",
        load_balance(runs[Algorithm.SPLIT, True]).imbalance < 1.5,
    )
    rep.check(
        "hybrid's reshuffle already tolerates the skew, so mixing changes "
        "it far less than it changes split",
        abs(runs[Algorithm.HYBRID, True].total_s
            - runs[Algorithm.HYBRID, False].total_s)
        < 0.35 * runs[Algorithm.HYBRID, False].total_s,
    )
    return rep


def test_ablation_hash_mixing(benchmark, report_sink):
    run_figure(benchmark, report_sink, _build_report)
