"""Shared benchmark fixtures.

One session-scoped :class:`FigureHarness` backs all figure benches, so the
expensive sweeps (initial-node sweep feeds Figures 2-5, the skew sweep
feeds Figures 10-13, ...) run once.  Every bench asserts its figure's
shape checks and the session writes all rendered reports to
``benchmarks/out/figure_reports.md`` for EXPERIMENTS.md.
"""

from pathlib import Path

import pytest

from repro.bench import FigureHarness

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def harness():
    return FigureHarness()


class _ReportSink:
    def __init__(self) -> None:
        self.reports = []

    def add(self, report) -> None:
        self.reports.append(report)


@pytest.fixture(scope="session")
def report_sink():
    sink = _ReportSink()
    yield sink
    if sink.reports:
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / "figure_reports.md"
        blocks = [r.to_markdown() for r in sink.reports]
        path.write_text(
            "# Reproduced figures (latest benchmark run)\n\n"
            + "\n".join(blocks),
            encoding="utf-8",
        )


def run_figure(benchmark, sink, fig_fn):
    """Benchmark one figure regeneration and assert its shape checks."""
    report = benchmark.pedantic(fig_fn, rounds=1, iterations=1)
    sink.add(report)
    assert report.all_passed, "\n" + report.render()
    return report
