"""Ablation E: network-configuration sensitivity (the paper's future work).

"As future work, we plan to investigate the effect of different network
configurations ... on the relative performance of different EHJAs."
This bench runs the 4-initial-node comparison on a 10 Mb/s hub-era
network, the paper's 100 Mb/s switch, and a 1 Gb/s switch.
"""

from dataclasses import replace

from conftest import run_figure

from repro.analysis import FigureReport
from repro.config import Algorithm, ClusterSpec, CostModel, RunConfig, WorkloadSpec
from repro.core import run_join


def _run(algorithm, bandwidth):
    cost = replace(CostModel(), net_bandwidth=bandwidth)
    return run_join(
        RunConfig(algorithm=algorithm, initial_nodes=4,
                  workload=WorkloadSpec(),
                  cluster=ClusterSpec(cost=cost),
                  trace=False),
        validate=False,
    )


def _build_report():
    rep = FigureReport(
        "Ablation E", "Network bandwidth sensitivity (future work, "
        "4 initial nodes)",
        ["bandwidth", "Replicated", "Split", "Hybrid", "Out of Core"],
    )
    algorithms = (Algorithm.REPLICATE, Algorithm.SPLIT, Algorithm.HYBRID,
                  Algorithm.OUT_OF_CORE)
    runs = {}
    for label, bw in (("10 Mb/s", 1.25e6), ("100 Mb/s", 12.5e6),
                      ("1 Gb/s", 125e6)):
        row = [label]
        for a in algorithms:
            res = _run(a, bw)
            runs[a, label] = res
            row.append(res.paper_scale_total_s)
        rep.rows.append(row)
    rep.check(
        "every algorithm benefits monotonically from more bandwidth",
        all(
            runs[a, "10 Mb/s"].total_s > runs[a, "100 Mb/s"].total_s
            > runs[a, "1 Gb/s"].total_s
            for a in algorithms
        ),
    )
    rep.check(
        "on a gigabit network the disk-bound OOC baseline falls furthest "
        "behind the EHJAs",
        runs[Algorithm.OUT_OF_CORE, "1 Gb/s"].total_s
        > 1.5 * runs[Algorithm.HYBRID, "1 Gb/s"].total_s,
    )
    return rep


def test_ablation_network(benchmark, report_sink):
    run_figure(benchmark, report_sink, _build_report)
