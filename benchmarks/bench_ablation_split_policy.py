"""Ablation A: the three readings of the paper's split rule.

TARGETED_BISECT (default) vs LINEAR_POINTER (round-robin split pointer)
vs LINEAR_MOD (classic Litwin modulo addressing), under uniform and
extremely skewed data.  Key reproduction finding: only the targeted
bisection reproduces Figure 11's "communicate the same tuple many times"
volume — the round-robin pointer wastes its splits on cold (empty)
buckets, and modulo addressing suppresses the hotspot entirely.
"""

from conftest import run_figure

from repro.analysis import FigureReport, load_balance
from repro.config import Algorithm, RunConfig, SplitPolicy, WorkloadSpec, Distribution
from repro.core import run_join


def _run(policy, sigma):
    wl = WorkloadSpec(
        distribution=Distribution.UNIFORM if sigma is None
        else Distribution.GAUSSIAN,
        gauss_sigma=sigma or 0.001,
    )
    return run_join(
        RunConfig(algorithm=Algorithm.SPLIT, initial_nodes=4, workload=wl,
                  split_policy=policy, trace=False),
        validate=False,
    )


def _build_report():
    rep = FigureReport(
        "Ablation A", "Split-policy variants under uniform and extreme skew",
        ["policy", "distribution", "total (paper s)", "splits",
         "moved tuples", "extra chunks", "load max/avg"],
    )
    runs = {}
    for policy in SplitPolicy:
        for sigma in (None, 0.0001):
            res = _run(policy, sigma)
            runs[policy, sigma] = res
            rep.rows.append([
                policy.value,
                "uniform" if sigma is None else f"sigma={sigma}",
                res.paper_scale_total_s,
                res.n_splits,
                res.split_moved_tuples,
                res.extra_build_chunks(),
                load_balance(res).imbalance,
            ])
    bisect_skew = runs[SplitPolicy.TARGETED_BISECT, 0.0001]
    pointer_skew = runs[SplitPolicy.LINEAR_POINTER, 0.0001]
    mod_skew = runs[SplitPolicy.LINEAR_MOD, 0.0001]
    rep.check(
        "only targeted bisection reproduces the paper's re-communication "
        "volume under skew (>2x the round-robin pointer's)",
        bisect_skew.split_moved_tuples > 2 * pointer_skew.split_moved_tuples,
    )
    rep.check(
        "modulo addressing spreads the hotspot (best load balance)",
        load_balance(mod_skew).imbalance
        < load_balance(bisect_skew).imbalance,
    )
    rep.check(
        "all policies behave alike under uniform data (totals within 40%)",
        max(runs[p, None].total_s for p in SplitPolicy)
        < 1.4 * min(runs[p, None].total_s for p in SplitPolicy),
    )
    return rep


def test_ablation_split_policy(benchmark, report_sink):
    run_figure(benchmark, report_sink, _build_report)
