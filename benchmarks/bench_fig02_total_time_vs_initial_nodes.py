"""Reproduces the paper's Figure 2 (total time vs initial nodes).

Run with: pytest benchmarks/ --benchmark-only -k fig02
The bench regenerates the figure's series from fresh simulated runs and
asserts the qualitative shape checks recorded in DESIGN.md §4.
"""

from conftest import run_figure


def test_fig02_total_time_vs_initial_nodes(benchmark, harness, report_sink):
    run_figure(benchmark, report_sink, harness.fig02)
