"""Reproduces the paper's Figure 5 (split vs reshuffle time).

Run with: pytest benchmarks/ --benchmark-only -k fig05
The bench regenerates the figure's series from fresh simulated runs and
asserts the qualitative shape checks recorded in DESIGN.md §4.
"""

from conftest import run_figure


def test_fig05_split_vs_reshuffle_time(benchmark, harness, report_sink):
    run_figure(benchmark, report_sink, harness.fig05)
