"""Reproduces the paper's Figure 4 (extra comm build).

Run with: pytest benchmarks/ --benchmark-only -k fig04
The bench regenerates the figure's series from fresh simulated runs and
asserts the qualitative shape checks recorded in DESIGN.md §4.
"""

from conftest import run_figure


def test_fig04_extra_comm_build(benchmark, harness, report_sink):
    run_figure(benchmark, report_sink, harness.fig04)
