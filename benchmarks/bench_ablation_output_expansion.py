"""Ablation F: probe-phase output expansion (paper footnote 1).

With a duplicate-heavy (Zipf) workload the join output dwarfs the inputs.
Compares materializing output pairs with (a) disk spilling on overflow —
the paper's default assumption — and (b) footnote 1's adaptive expansion
onto freshly recruited output-sink nodes.
"""

from conftest import run_figure

from repro.analysis import FigureReport
from repro.config import Algorithm, ClusterSpec, Distribution, RunConfig, WorkloadSpec
from repro.core import run_join


def _run(probe_expansion):
    wl = WorkloadSpec(
        r_tuples=2_000_000, s_tuples=2_000_000,
        distribution=Distribution.ZIPF, zipf_s=1.1,
    )
    return run_join(
        RunConfig(
            algorithm=Algorithm.HYBRID,
            initial_nodes=4,
            workload=wl,
            cluster=ClusterSpec(n_potential_nodes=48),
            materialize_output=True,
            probe_expansion=probe_expansion,
            trace=False,
        ),
        validate=False,
    )


def _build_report():
    rep = FigureReport(
        "Ablation F", "Probe-phase output expansion (footnote 1; Zipf "
        "workload, materialized output)",
        ["mode", "total (paper s)", "matches", "pairs in memory",
         "pairs on disk", "output sinks"],
    )
    spill = _run(probe_expansion=False)
    expand = _run(probe_expansion=True)
    for label, res in (("spill to disk", spill), ("expand to sinks", expand)):
        rep.rows.append([
            label,
            res.paper_scale_total_s,
            res.matches,
            res.output_tuples,
            res.output_spilled_tuples,
            res.output_sink_nodes,
        ])
    rep.check(
        "both modes account for every output pair",
        spill.output_tuples + spill.output_spilled_tuples == spill.matches
        and expand.output_tuples + expand.output_spilled_tuples
        == expand.matches,
    )
    rep.check(
        "expansion keeps more of the output in cluster memory",
        expand.output_tuples > spill.output_tuples,
    )
    rep.check(
        "expansion recruits at least one output sink",
        expand.output_sink_nodes >= 1,
    )
    rep.check(
        "expansion avoids disk and finishes no slower (within 5%)",
        expand.total_s <= 1.05 * spill.total_s,
    )
    return rep


def test_ablation_output_expansion(benchmark, report_sink):
    run_figure(benchmark, report_sink, _build_report)
