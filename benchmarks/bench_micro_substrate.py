"""Micro-benchmarks of the substrate hot paths (real wall-clock timing).

Unlike the figure benches (which time simulated protocol runs), these
measure the Python/NumPy implementation itself, guarding against
performance regressions in the per-chunk code the simulator executes
millions of times: position mapping, routing partitions, store probing,
the greedy reshuffle cut, and raw event throughput of the DES kernel.
"""

import numpy as np

from repro.config import Algorithm, ClusterSpec, RunConfig, WorkloadSpec
from repro.core import run_join
from repro.hashing import (
    NodeHashStore,
    PositionMap,
    RangeRouter,
    greedy_contiguous_partition,
    partition_positions,
)
from repro.sim import Simulator

RNG = np.random.default_rng(42)
VALUES = RNG.integers(0, 1 << 32, 100_000, dtype=np.uint64)
POSMAP = PositionMap(1 << 18)
POSITIONS = POSMAP(VALUES)


def test_position_map_throughput(benchmark):
    out = benchmark(POSMAP, VALUES)
    assert out.size == VALUES.size


def test_range_router_partition_throughput(benchmark):
    router = RangeRouter.initial(
        partition_positions(1 << 18, 16), list(range(16)), 1 << 18
    )
    parts = benchmark(router.partition_build, POSITIONS)
    assert sum(v.size for v in parts.values()) == POSITIONS.size


def test_store_probe_throughput(benchmark):
    store = NodeHashStore(POSMAP)
    store.insert(VALUES.copy())
    store.finalize()
    probe = RNG.integers(0, 1 << 32, 100_000, dtype=np.uint64)
    count = benchmark(store.probe, probe)
    assert count >= 0


def test_greedy_cut_throughput(benchmark):
    weights = RNG.integers(0, 1000, 1 << 16)
    cuts = benchmark(greedy_contiguous_partition, weights, 24)
    assert len(cuts) == 24


def test_kernel_event_throughput(benchmark):
    """Raw DES events/second: ping-pong between two processes."""

    def run_kernel():
        sim = Simulator()

        def ping(sim, n):
            for _ in range(n):
                yield sim.timeout(0.001)

        for _ in range(4):
            sim.spawn(ping(sim, 2500))
        sim.run()
        return sim.processed_events

    events = benchmark(run_kernel)
    assert events >= 10_000


def test_end_to_end_small_join(benchmark):
    """Wall-clock cost of one complete small simulated join."""
    cfg = RunConfig(
        algorithm=Algorithm.HYBRID,
        initial_nodes=2,
        workload=WorkloadSpec(r_tuples=4000, s_tuples=4000,
                              chunk_tuples=200, scale=1.0),
        cluster=ClusterSpec(n_sources=2, n_potential_nodes=16,
                            hash_memory_bytes=40_000),
        hash_positions=1 << 12,
        trace=False,
    )
    res = benchmark.pedantic(run_join, args=(cfg,),
                             kwargs={"validate": False},
                             rounds=3, iterations=1)
    assert res.nodes_used > 2
