"""Ablation G: interconnect topology (paper future work).

Switched per-port Ethernet (the paper's testbed) vs a single shared
collision domain (hub).  The hub caps the *aggregate* bandwidth at one
link, so the strategies' communication volumes translate directly into
time — broadcast-heavy replication suffers the most.
"""

from conftest import run_figure

from repro.analysis import FigureReport
from repro.config import Algorithm, ClusterSpec, RunConfig, Topology, WorkloadSpec
from repro.core import run_join


def _run(algorithm, topology):
    return run_join(
        RunConfig(algorithm=algorithm, initial_nodes=4,
                  workload=WorkloadSpec(),
                  cluster=ClusterSpec(topology=topology),
                  trace=False),
        validate=False,
    )


def _build_report():
    algorithms = (Algorithm.REPLICATE, Algorithm.SPLIT, Algorithm.HYBRID,
                  Algorithm.OUT_OF_CORE)
    rep = FigureReport(
        "Ablation G", "Switched vs shared-hub interconnect "
        "(4 initial nodes, R=S=10M)",
        ["topology"] + [a.value for a in algorithms],
    )
    runs = {}
    for topology in (Topology.SWITCHED, Topology.SHARED_HUB):
        row = [topology.value]
        for a in algorithms:
            res = _run(a, topology)
            runs[a, topology] = res
            row.append(res.paper_scale_total_s)
        rep.rows.append(row)
    slowdown = {
        a: runs[a, Topology.SHARED_HUB].total_s
        / runs[a, Topology.SWITCHED].total_s
        for a in algorithms
    }
    rep.rows.append(["hub/switch"] + [round(slowdown[a], 2)
                                      for a in algorithms])
    rep.check(
        "every algorithm is slower on the shared medium",
        all(s > 1.0 for s in slowdown.values()),
    )
    rep.check(
        "on the hub, total time tracks total communication volume: "
        "broadcast-heavy replication is the slowest EHJA",
        runs[Algorithm.REPLICATE, Topology.SHARED_HUB].total_s
        > runs[Algorithm.SPLIT, Topology.SHARED_HUB].total_s
        and runs[Algorithm.REPLICATE, Topology.SHARED_HUB].total_s
        > runs[Algorithm.HYBRID, Topology.SHARED_HUB].total_s,
    )
    rep.check(
        "the hub erases the hybrid's parallel-reshuffle advantage (its "
        "slowdown factor exceeds split's, whose transfers were already "
        "serialized by the barrier pointer)",
        slowdown[Algorithm.HYBRID] > slowdown[Algorithm.SPLIT],
    )
    rep.notes.append(
        "finding: the paper's hybrid-wins conclusion depends on a switched "
        "fabric — its reshuffle is an all-to-all that a shared medium "
        "serializes, while the split algorithm's transfers were serialized "
        "all along"
    )
    return rep


def test_ablation_topology(benchmark, report_sink):
    run_figure(benchmark, report_sink, _build_report)
