#!/usr/bin/env python
"""Capacity planning with the paper's §4.2.4 analytic model.

Given a (possibly wrong) estimate of the build relation's size, the model
predicts the split-based and hybrid overheads as a function of the
expansion factor E = final/initial buckets, locates the crossover where
reshuffling beats splitting, and then verifies the prediction with
simulated runs.

    python examples/capacity_planning.py
"""

from repro import Algorithm, ClusterSpec, RunConfig, WorkloadSpec, run_join
from repro.analysis import OverheadModel


def main() -> None:
    wl = WorkloadSpec()  # R = S = 10M x 100B
    spec = ClusterSpec()
    cap_tuples = spec.hash_memory_bytes // wl.tuple_bytes
    need_nodes = -(-wl.r_tuples // cap_tuples)
    print(f"Relation R: {wl.r_tuples:,} tuples x {wl.tuple_bytes}B; "
          f"one node holds {cap_tuples:,} tuples -> "
          f"{need_nodes} nodes needed in the end.\n")

    model = OverheadModel(bucket_bytes=cap_tuples * wl.tuple_bytes,
                          t_w=1.0 / spec.cost.net_bandwidth)
    print("Analytic overheads per original bucket (paper §4.2.4):")
    print(f"{'E':>4} {'T_split (s)':>12} {'T_hybrid (s)':>13} {'better':>8}")
    for e in (1, 2, 4, 8, 16):
        ts, th = model.split_s(e), model.hybrid_s(e)
        better = "-" if e == 1 else ("split" if ts < th else "hybrid")
        print(f"{e:>4} {ts:>12.3f} {th:>13.3f} {better:>8}")
    print(f"Model crossover: splitting is cheaper below E = "
          f"{model.crossover_expansion():.2f}, reshuffling above.\n")

    print("Simulated check (total time, paper-scale seconds):")
    print(f"{'initial':>8} {'E':>5} {'split':>8} {'hybrid':>8} {'winner':>8}")
    for initial in (1, 4, 8, 16):
        split = run_join(RunConfig(algorithm=Algorithm.SPLIT,
                                   initial_nodes=initial, workload=wl),
                         validate=False)
        hybrid = run_join(RunConfig(algorithm=Algorithm.HYBRID,
                                    initial_nodes=initial, workload=wl),
                          validate=False)
        e = split.nodes_used / initial
        winner = "split" if split.total_s < hybrid.total_s else "hybrid"
        if abs(split.total_s - hybrid.total_s) < 0.02 * split.total_s:
            winner = "tie"
        print(f"{initial:>8} {e:>5.1f} {split.paper_scale_total_s:>8.1f} "
              f"{hybrid.paper_scale_total_s:>8.1f} {winner:>8}")

    print("\nPlanning rule of thumb: if your size estimate could be off by "
          "more than the model's crossover factor, start with the hybrid "
          "algorithm; otherwise split-based probing is never worse.")


if __name__ == "__main__":
    main()
