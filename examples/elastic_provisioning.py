#!/usr/bin/env python
"""Elastic provisioning: watch the scheduler recruit nodes as memory fills.

The paper's premise is that a join's memory footprint is unknown up front
(e.g. a select-then-join with user-defined filters), so the query starts
small and grows.  This example runs one hybrid join from a deliberately
bad initial estimate (1 node) and prints the recruitment timeline plus an
ASCII strip chart of cluster growth over simulated time.

    python examples/elastic_provisioning.py
"""

from repro import Algorithm, RunConfig, WorkloadSpec, run_join


def main() -> None:
    cfg = RunConfig(
        algorithm=Algorithm.HYBRID,
        initial_nodes=1,
        workload=WorkloadSpec(),  # 10M x 10M tuples
    )
    res = run_join(cfg)

    print("Expansion timeline (hybrid, 1 initial node):\n")
    print(f"{'sim time (s)':>13}  {'event':<30} {'working nodes':>13}")
    working = cfg.initial_nodes
    print(f"{0.0:>13.4f}  {'start: node 0 activated':<30} {working:>13}")
    for t, node in res.expansion_trace:
        working += 1
        print(f"{t:>13.4f}  {'recruit join node ' + str(node):<30} "
              f"{working:>13}")
    for name, t in (("build phase done", res.times.build_s),
                    ("reshuffle done",
                     res.times.build_s + res.times.reshuffle_s),
                    ("probe done", res.total_s)):
        print(f"{t:>13.4f}  {name:<30} {working:>13}")

    # ASCII growth chart: nodes vs time, 50 columns.
    print("\nCluster growth (one column ~ 2% of the run):")
    events = sorted(res.expansion_trace)
    for level in range(res.nodes_used, 0, -1):
        row = []
        for col in range(50):
            t = res.total_s * (col + 0.5) / 50
            n = cfg.initial_nodes + sum(1 for et, _ in events if et <= t)
            row.append("#" if n >= level else " ")
        print(f"{level:>3} |" + "".join(row))
    print("    +" + "-" * 50)
    print(f"     0{'':>44}{res.total_s:.2f}s")

    print(f"\nMemory-full events answered: {len(res.expansion_trace)}; "
          f"final cluster: {res.nodes_used} join nodes; "
          f"matches={res.matches} (validated).")

    print("\nHardware utilization over the run (busiest first):")
    busiest = sorted(res.utilization,
                     key=lambda u: max(u.cpu, u.tx, u.rx, u.disk),
                     reverse=True)
    for u in busiest[:6]:
        print(f"  {u}")


if __name__ == "__main__":
    main()
