#!/usr/bin/env python
"""Quickstart: run the paper's four join algorithms on one workload.

Simulates an equi-join of two 10M-tuple relations (100-byte tuples,
uniform join attributes) on the paper's 24-node cluster, starting from
4 join nodes, and prints the comparison the paper's Figure 2 makes.

    python examples/quickstart.py
"""

from repro import Algorithm, RunConfig, WorkloadSpec, run_join


def main() -> None:
    workload = WorkloadSpec(
        r_tuples=10_000_000,   # paper units; scaled 1/50 by default
        s_tuples=10_000_000,
        tuple_bytes=100,
    )

    print(f"Workload: R=S=10M tuples x {workload.tuple_bytes}B, "
          f"uniform join attributes, scale={workload.scale}")
    print(f"Cluster: 24 potential join nodes, 4 initial, "
          f"64 MB hash memory per node\n")

    results = {}
    for algorithm in Algorithm:
        cfg = RunConfig(algorithm=algorithm, initial_nodes=4,
                        workload=workload)
        results[algorithm] = run_join(cfg)  # validates vs the oracle

    print(f"{'algorithm':>12} {'total (paper s)':>16} {'nodes used':>11} "
          f"{'extra build chunks':>19} {'probe dup chunks':>17}")
    for algorithm, res in results.items():
        print(f"{algorithm.value:>12} {res.paper_scale_total_s:>16.1f} "
              f"{res.nodes_used:>11} {res.extra_build_chunks():>19.1f} "
              f"{res.probe_dup_chunks():>17.1f}")

    best = min(results, key=lambda a: results[a].total_s)
    print(f"\nAll runs validated against the sequential oracle "
          f"({results[best].matches} matching pairs).")
    print(f"Fastest here: {best.value} — the paper's conclusion is that "
          f"the hybrid algorithm tracks the best of split/replication.")


if __name__ == "__main__":
    main()
