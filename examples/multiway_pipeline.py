#!/usr/bin/env python
"""Multi-way join pipeline (the paper's future-work scenario).

"We also plan to expand our work to multi-way join operations ...
performance can be improved if results from joins at intermediate levels
are maintained in memory."

This example evaluates a two-level join (R JOIN S) JOIN T by running the
levels as chained simulated joins: level 1 measures the intermediate
result cardinality, level 2 consumes a relation of that size as its build
side.  Two placements are compared:

* spill placement — the intermediate result is written to disk by level 1
  and re-read by level 2 (charged at the disk model's bucket-I/O rate);
* in-memory placement — the intermediate stays in the level-1 nodes'
  memory and streams straight into level 2 (the paper's suggestion).

    python examples/multiway_pipeline.py
"""

from repro import Algorithm, CostModel, RunConfig, WorkloadSpec, run_join


def run_level(r_tuples, s_tuples, seed):
    wl = WorkloadSpec(r_tuples=r_tuples, s_tuples=s_tuples, seed=seed)
    cfg = RunConfig(algorithm=Algorithm.HYBRID, initial_nodes=4, workload=wl)
    return run_join(cfg, validate=False), wl


def main() -> None:
    cost = CostModel()
    # Level 1: R (10M) JOIN S (10M) -> intermediate I
    level1, wl1 = run_level(10_000_000, 10_000_000, seed=11)
    inter_paper_tuples = max(
        int(level1.matches / wl1.scale), 1_000_000
    )  # scale the measured cardinality back to paper units (floor at 1M)
    print(f"Level 1: R JOIN S -> {level1.matches} matches at scale "
          f"{wl1.scale} (~{inter_paper_tuples:,} paper-scale tuples), "
          f"took {level1.paper_scale_total_s:.1f} paper-s\n")

    # Level 2: I JOIN T (T = 10M tuples)
    level2, wl2 = run_level(inter_paper_tuples, 10_000_000, seed=23)
    print(f"Level 2: I JOIN T took {level2.paper_scale_total_s:.1f} paper-s")

    inter_bytes = inter_paper_tuples * wl2.tuple_bytes * wl2.scale
    spill_cost_s = 2 * inter_bytes / cost.disk_bandwidth / wl2.scale
    print(f"\nIntermediate-result placement for {inter_paper_tuples:,} "
          f"tuples ({inter_bytes / wl2.scale / 1e9:.2f} GB paper-scale):")
    pipeline = level1.paper_scale_total_s + level2.paper_scale_total_s
    print(f"  in-memory (paper's proposal): {pipeline:8.1f} paper-s total")
    print(f"  spill to disk between levels: {pipeline + spill_cost_s:8.1f} "
          f"paper-s total (+{spill_cost_s:.1f} for the disk round trip)")
    saving = spill_cost_s / (pipeline + spill_cost_s)
    print(f"\nKeeping the intermediate in the expanded cluster's memory "
          f"saves {saving:.0%} — the EHJAs make that possible precisely "
          f"because they recruit memory on demand.")


if __name__ == "__main__":
    main()
