#!/usr/bin/env python
"""Skew study: which expansion strategy survives a hot join key range?

Reproduces the decision logic behind the paper's Figures 10-13: sweep the
Gaussian skew of the join attributes and report total time, extra
communication and load balance per strategy, ending with the paper's
strategy recommendation.

    python examples/skew_study.py
"""

from repro import Algorithm, Distribution, RunConfig, WorkloadSpec, run_join
from repro.analysis import load_balance

SKEWS = [None, 0.01, 0.001, 0.0001]
ALGS = [Algorithm.REPLICATE, Algorithm.SPLIT, Algorithm.HYBRID,
        Algorithm.OUT_OF_CORE]


def workload(sigma):
    if sigma is None:
        return WorkloadSpec()
    return WorkloadSpec(distribution=Distribution.GAUSSIAN,
                        gauss_sigma=sigma)


def main() -> None:
    print("Skew sweep: R=S=10M tuples, 4 initial join nodes\n")
    header = f"{'sigma':>10} " + "".join(f"{a.value:>13}" for a in ALGS)
    print(header + "   (total, paper-scale seconds)")
    table = {}
    for sigma in SKEWS:
        row = []
        for algorithm in ALGS:
            res = run_join(RunConfig(algorithm=algorithm, initial_nodes=4,
                                     workload=workload(sigma)))
            table[algorithm, sigma] = res
            row.append(res.paper_scale_total_s)
        label = "uniform" if sigma is None else str(sigma)
        print(f"{label:>10} " + "".join(f"{t:>13.1f}" for t in row))

    print("\nLoad balance at sigma=0.0001 (stored+spilled tuples, chunks):")
    for algorithm in ALGS[:3]:
        lb = load_balance(table[algorithm, 0.0001])
        print(f"  {algorithm.value:>10}: avg={lb.avg_chunks:6.1f} "
              f"max={lb.max_chunks:6.1f} min={lb.min_chunks:6.1f} "
              f"(max/avg={lb.imbalance:.1f})")

    split_extra = table[Algorithm.SPLIT, 0.0001].extra_build_chunks()
    print(f"\nSplit re-communication at sigma=0.0001: "
          f"{split_extra:.0f} chunks (table R is 1000 chunks) — the "
          f"paper's 'same tuple communicated many times' pathology.")
    print("Recommendation (paper §6): prefer replication over split when "
          "the data is highly skewed; the hybrid algorithm is the safe "
          "default — its reshuffle step also repairs the load imbalance.")


if __name__ == "__main__":
    main()
