"""Unit tests for the discrete-event kernel (events, time, determinism)."""

import pytest

from repro.sim import DeadlockError, Event, Simulator
from repro.sim.errors import SimulationError


def test_new_simulator_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.peek() == float("inf")


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(2.5)
    sim.run()
    assert sim.now == 2.5


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_event_succeed_carries_value():
    sim = Simulator()
    ev = sim.event()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    ev.succeed(42)
    sim.run()
    assert seen == [42]


def test_event_fail_carries_exception():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("boom"))
    sim.run()
    assert ev.processed and not ev.ok
    with pytest.raises(RuntimeError):
        _ = ev.value


def test_event_cannot_trigger_twice():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError())


def test_fail_requires_exception_instance():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")  # type: ignore[arg-type]


def test_untriggered_event_has_no_ok_or_value():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.ok
    with pytest.raises(SimulationError):
        _ = ev.value


def test_callback_after_processed_runs_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("x")
    sim.run()
    late = []
    ev.add_callback(lambda e: late.append(e.value))
    assert late == ["x"]


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    order = []
    for i in range(10):
        ev = sim.event()
        ev.add_callback(lambda e, i=i: order.append(i))
        ev.succeed(None, delay=1.0)
    sim.run()
    assert order == list(range(10))


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    for delay in (5.0, 1.0, 3.0, 2.0, 4.0):
        ev = sim.event()
        ev.add_callback(lambda e, d=delay: order.append(d))
        ev.succeed(None, delay=delay)
    sim.run()
    assert order == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_run_until_stops_the_clock():
    sim = Simulator()
    fired = []
    for delay in (1.0, 2.0, 3.0):
        ev = sim.event()
        ev.add_callback(lambda e, d=delay: fired.append(d))
        ev.succeed(None, delay=delay)
    sim.run(until=2.5)
    assert fired == [1.0, 2.0]
    assert sim.now == 2.5
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_step_processes_exactly_one_event():
    sim = Simulator()
    sim.timeout(1.0)
    sim.timeout(2.0)
    sim.step()
    assert sim.now == 1.0
    assert sim.processed_events == 1


def test_deadlock_detection():
    sim = Simulator()

    def stuck(sim):
        yield sim.event()  # never triggered

    sim.spawn(stuck(sim))
    with pytest.raises(DeadlockError):
        sim.run()


def test_schedule_into_past_rejected():
    sim = Simulator()
    ev = Event(sim)
    with pytest.raises(ValueError):
        sim._schedule(ev, delay=-0.1)


def test_determinism_two_identical_runs():
    def build_and_run():
        sim = Simulator()
        log = []

        def proc(sim, name, delay):
            for _ in range(3):
                yield sim.timeout(delay)
                log.append((name, sim.now))

        sim.spawn(proc(sim, "a", 1.0))
        sim.spawn(proc(sim, "b", 1.0))
        sim.spawn(proc(sim, "c", 0.5))
        sim.run()
        return log

    assert build_and_run() == build_and_run()
