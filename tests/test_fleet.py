"""The OS-process sharded fleet layer (``repro.workload.fleet``).

The headline contract is shard-count invariance: the merged result is a
pure function of ``(workload, n_cohorts)``, so running the same trace on
1, 2 or 7 worker processes must produce byte-identical merged snapshots,
exactly equal counters, and identical per-query stats.  On top of that:
the blake2b cohort partitioner's stability properties, structured
crash handling (a worker hard-exits, survivors still merge, exit code
flags the run as partial), and the seeded arrival generators behind the
autoscaling study.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    ClusterSpec,
    FleetConfig,
    MTUPLES,
    QueryMixEntry,
    WorkloadConfig,
)
from repro.workload import (
    bursty_arrivals,
    cohort_of,
    diurnal_arrivals,
    partition_cohorts,
    profile_arrivals,
    run_fleet,
)
from repro.workload.fleet import (
    EXIT_CLEAN,
    EXIT_PARTIAL,
    _CRASH_ENV,
    _cohort_workload,
)
from repro.workload.generator import generate_workload

#: ~4 MB of hash memory per node post-scale — contention-free queries,
#: which keeps every spawn worker fast
AMPLE_MEMORY = 200 * 1024 * 1024


def fleet_config(n_queries=10, n_cohorts=4, n_shards=2, **kw):
    wl_kw = dict(
        n_queries=n_queries,
        arrival_rate_qps=2.0,
        seed=11,
        mix=(QueryMixEntry(r_tuples=MTUPLES // 2, s_tuples=MTUPLES // 2,
                           initial_nodes=2),),
        scale=1.0 / 50.0,
        cluster=ClusterSpec(n_sources=2, n_potential_nodes=6,
                            hash_memory_bytes=AMPLE_MEMORY),
    )
    wl_kw.update(kw)
    return FleetConfig(
        workload=WorkloadConfig(**wl_kw),
        n_cohorts=n_cohorts,
        n_shards=n_shards,
    )


# ----------------------------------------------------------------------
# cohort partitioner
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=2**40),
       st.integers(min_value=1, max_value=64))
def test_cohort_of_stable_and_in_range(qid, n):
    c = cohort_of(qid, n)
    assert 0 <= c < n
    # stable: a pure function, never dependent on call order or process
    assert cohort_of(qid, n) == c


@given(st.integers(min_value=1, max_value=200),
       st.integers(min_value=1, max_value=9))
@settings(max_examples=25, deadline=None)
def test_partition_is_exact_cover(n_queries, n_cohorts):
    cfg = fleet_config(n_queries=n_queries).workload
    cfg = WorkloadConfig(n_queries=n_queries, seed=cfg.seed, mix=cfg.mix)
    specs = generate_workload(cfg)
    cohorts = partition_cohorts(specs, n_cohorts)
    assert len(cohorts) == n_cohorts
    seen = sorted(s.query_id for group in cohorts for s in group)
    assert seen == list(range(n_queries))
    for ci, group in enumerate(cohorts):
        for s in group:
            assert cohort_of(s.query_id, n_cohorts) == ci
        # trace order is preserved within a cohort
        assert [s.query_id for s in group] == sorted(
            s.query_id for s in group)


def test_cohort_workload_renumbers_but_keeps_seeds_and_arrivals():
    cfg = fleet_config(n_queries=12, n_cohorts=3)
    specs = generate_workload(cfg.workload)
    cohorts = partition_cohorts(specs, 3)
    for ci, group in enumerate(cohorts):
        sub, local, global_ids = _cohort_workload(cfg.workload, ci, group)
        assert [s.query_id for s in local] == list(range(len(group)))
        assert global_ids == [s.query_id for s in group]
        # seeds and arrivals ride along verbatim from the global draw
        assert [s.seed for s in local] == [s.seed for s in group]
        assert [s.arrival_s for s in local] == [s.arrival_s for s in group]
        assert sub.n_queries == len(group)
        assert sub.obs.shard == f"cohort{ci}"


def test_cohort_of_rejects_bad_count():
    with pytest.raises(ValueError):
        cohort_of(3, 0)


# ----------------------------------------------------------------------
# shard-count invariance (the tentpole acceptance contract)
# ----------------------------------------------------------------------
def test_shard_count_invariance():
    results = {}
    for shards in (1, 2, 7):
        res = run_fleet(fleet_config(n_queries=10, n_cohorts=4,
                                     n_shards=shards))
        assert res.exit_code == EXIT_CLEAN
        assert res.all_valid and not res.partial
        assert res.n_queries == 10
        results[shards] = res

    ref = results[1]
    assert ref.snapshot is not None
    exact = np.array(sorted(q["latency_s"] for q in ref.queries))
    for shards, res in results.items():
        # merged snapshot is byte-identical at any shard count
        assert res.snapshot.to_json() == ref.snapshot.to_json()
        # every counter agrees exactly (key-union merge law)
        for name in ref.snapshot.counters:
            assert res.counter_total(name) == ref.counter_total(name)
        # per-query stats identical, ascending global id
        assert res.queries == ref.queries
        # the only divergence allowed is the wall-clock section
        d_ref, d_res = ref.to_dict(), res.to_dict()
        d_ref.pop("wall"), d_res.pop("wall")
        assert json.dumps(d_res, sort_keys=True) == \
            json.dumps(d_ref, sort_keys=True)
        # sketch-backed global percentiles stay within the 1% relative
        # error bound of the exact empirical quantiles; with few samples
        # the rank itself is ambiguous, so bound against the bracket of
        # neighbouring order statistics
        pcts = res.latency_percentiles()
        for q in (50, 90, 99):
            lo = float(np.quantile(exact, q / 100.0, method="lower"))
            hi = float(np.quantile(exact, q / 100.0, method="higher"))
            assert lo / 1.011 <= pcts[f"p{q:g}"] <= hi * 1.011


def test_fleet_metrics_and_wall_bookkeeping():
    res = run_fleet(fleet_config(n_queries=6, n_cohorts=3, n_shards=2))
    by_name = {}
    for inst in res.metrics:
        by_name.setdefault(inst["name"], []).append(inst)
    assert by_name["fleet.shards_launched"][0]["value"] == 2
    assert by_name["fleet.snapshots_merged"][0]["value"] >= 3
    assert "fleet.shards_failed" not in by_name or \
        by_name["fleet.shards_failed"][0]["value"] == 0
    walls = [i for i in by_name.get("fleet.worker_wall_s", [])]
    assert {i["labels"]["shard"] for i in walls} == {"0", "1"}
    assert set(res.wall_s_by_shard) == {0, 1}
    assert res.wall_s > 0


# ----------------------------------------------------------------------
# crash handling
# ----------------------------------------------------------------------
def test_worker_crash_becomes_structured_failure(monkeypatch):
    monkeypatch.setenv(_CRASH_ENV, "1")
    res = run_fleet(fleet_config(n_queries=10, n_cohorts=4, n_shards=2))
    assert res.partial
    assert res.exit_code == EXIT_PARTIAL
    assert len(res.failures) == 1
    failure = res.failures[0]
    assert failure.shard == 1
    assert failure.kind == "crash"
    assert failure.exitcode == 17
    assert failure.cohorts  # it lost everything it was assigned
    # the surviving shard's cohorts merged normally
    assert res.cohorts and res.snapshot is not None
    survivor_cohorts = {c.cohort for c in res.cohorts}
    assert survivor_cohorts.isdisjoint(set(failure.cohorts))
    # survivors + lost cohorts together cover the whole partition
    assert sorted(survivor_cohorts | set(failure.cohorts)) == \
        list(range(4))
    # summary + to_dict carry the failure
    assert "FAILED shard 1" in res.summary()
    assert res.to_dict()["failures"][0]["kind"] == "crash"


# ----------------------------------------------------------------------
# arrival generators (the autoscaling study's inputs)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fn", [diurnal_arrivals, bursty_arrivals])
def test_arrival_generators_sorted_deterministic(fn):
    a = fn(50, seed=3)
    b = fn(50, seed=3)
    assert a == b
    assert len(a) == 50
    assert list(a) == sorted(a)
    assert all(t > 0 for t in a)
    assert fn(50, seed=4) != a


def test_profile_arrivals_dispatch():
    cfg = fleet_config(n_queries=30).workload
    assert profile_arrivals("poisson", cfg) == \
        profile_arrivals("poisson", cfg)
    for profile in ("diurnal", "bursty"):
        trace = profile_arrivals(profile, cfg)
        assert len(trace) == 30
        assert list(trace) == sorted(trace)
    with pytest.raises(ValueError):
        profile_arrivals("lunar", cfg)


def test_arrival_generators_reject_bad_args():
    with pytest.raises(ValueError):
        diurnal_arrivals(0, seed=1)
    with pytest.raises(ValueError):
        diurnal_arrivals(5, seed=1, base_qps=4.0, peak_qps=1.0)
    with pytest.raises(ValueError):
        bursty_arrivals(5, seed=1, burst_size=0)
