"""Unit tests for mailboxes, resources, barriers and latches."""

import pytest

from repro.sim import Barrier, Latch, Mailbox, Resource, Simulator
from repro.sim.errors import SimulationError


# ----------------------------------------------------------------------
# Mailbox
# ----------------------------------------------------------------------
def test_mailbox_fifo_order():
    sim = Simulator()
    box = Mailbox(sim)
    got = []

    def consumer(sim, box):
        for _ in range(3):
            msg = yield box.get()
            got.append(msg)

    sim.spawn(consumer(sim, box))
    for i in range(3):
        box.put(i)
    sim.run()
    assert got == [0, 1, 2]


def test_mailbox_blocking_get_waits_for_put():
    sim = Simulator()
    box = Mailbox(sim)

    def consumer(sim, box):
        msg = yield box.get()
        return (msg, sim.now)

    def producer(sim, box):
        yield sim.timeout(5.0)
        box.put("late")

    c = sim.spawn(consumer(sim, box))
    sim.spawn(producer(sim, box))
    sim.run()
    assert c.value == ("late", 5.0)


def test_mailbox_multiple_getters_fifo():
    sim = Simulator()
    box = Mailbox(sim)
    results = []

    def consumer(sim, box, name):
        msg = yield box.get()
        results.append((name, msg))

    sim.spawn(consumer(sim, box, "first"))
    sim.spawn(consumer(sim, box, "second"))

    def producer(sim, box):
        yield sim.timeout(1.0)
        box.put("a")
        box.put("b")

    sim.spawn(producer(sim, box))
    sim.run()
    assert results == [("first", "a"), ("second", "b")]


def test_mailbox_drain_and_len():
    sim = Simulator()
    box = Mailbox(sim)
    box.put(1)
    box.put(2)
    assert len(box) == 2
    assert box.drain() == [1, 2]
    assert len(box) == 0
    assert box.total_put == 2


# ----------------------------------------------------------------------
# Resource
# ----------------------------------------------------------------------
def test_resource_serializes_users_fifo():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    done = []

    def user(sim, res, i):
        yield from res.use(1.0)
        done.append((i, sim.now))

    for i in range(3):
        sim.spawn(user(sim, res, i))
    sim.run()
    assert done == [(0, 1.0), (1, 2.0), (2, 3.0)]
    assert res.busy_time == pytest.approx(3.0)


def test_resource_capacity_allows_parallelism():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    done = []

    def user(sim, res, i):
        yield from res.use(1.0)
        done.append((i, sim.now))

    for i in range(4):
        sim.spawn(user(sim, res, i))
    sim.run()
    assert [t for _, t in done] == [1.0, 1.0, 2.0, 2.0]


def test_resource_release_of_idle_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_negative_duration_rejected():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user(sim, res):
        yield from res.use(-1.0)

    sim.spawn(user(sim, res))
    with pytest.raises(ValueError):
        sim.run()


def test_resource_queue_length_and_in_use():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder(sim, res):
        yield from res.use(10.0)

    def waiter(sim, res):
        yield from res.use(1.0)

    sim.spawn(holder(sim, res))
    sim.spawn(waiter(sim, res))
    sim.run(until=5.0)
    assert res.in_use == 1
    assert res.queue_length == 1


def test_resource_handoff_keeps_in_use_stable():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user(sim, res):
        yield from res.use(1.0)

    for _ in range(3):
        sim.spawn(user(sim, res))
    sim.run(until=1.5)
    assert res.in_use == 1  # handed directly to the next waiter


# ----------------------------------------------------------------------
# Barrier / Latch
# ----------------------------------------------------------------------
def test_barrier_releases_all_parties_together():
    sim = Simulator()
    bar = Barrier(sim, parties=3)
    times = []

    def party(sim, bar, delay):
        yield sim.timeout(delay)
        yield bar.wait()
        times.append(sim.now)

    for d in (1.0, 2.0, 3.0):
        sim.spawn(party(sim, bar, d))
    sim.run()
    assert times == [3.0, 3.0, 3.0]


def test_barrier_is_reusable():
    sim = Simulator()
    bar = Barrier(sim, parties=2)
    laps = []

    def party(sim, bar, name):
        for lap in range(2):
            yield sim.timeout(1.0)
            yield bar.wait()
            laps.append((name, lap, sim.now))

    sim.spawn(party(sim, bar, "a"))
    sim.spawn(party(sim, bar, "b"))
    sim.run()
    assert [t for (_, _, t) in laps] == [1.0, 1.0, 2.0, 2.0]


def test_barrier_invalid_parties():
    with pytest.raises(ValueError):
        Barrier(Simulator(), parties=0)


def test_latch_opens_at_zero():
    sim = Simulator()
    latch = Latch(sim, count=2)
    result = []

    def waiter(sim, latch):
        yield latch.wait()
        result.append(sim.now)

    def worker(sim, latch):
        yield sim.timeout(1.0)
        latch.count_down()
        yield sim.timeout(1.0)
        latch.count_down()

    sim.spawn(waiter(sim, latch))
    sim.spawn(worker(sim, latch))
    sim.run()
    assert result == [2.0]
    assert latch.count == 0


def test_latch_zero_count_is_open():
    sim = Simulator()
    latch = Latch(sim, count=0)

    def waiter(sim, latch):
        yield latch.wait()
        return "through"

    p = sim.spawn(waiter(sim, latch))
    sim.run()
    assert p.value == "through"


def test_latch_overcounting_raises():
    sim = Simulator()
    latch = Latch(sim, count=1)
    latch.count_down()
    with pytest.raises(SimulationError):
        latch.count_down()
    with pytest.raises(ValueError):
        Latch(sim, count=-1)
