"""Unit tests for the figure-reproduction harness plumbing (micro scale)."""

import pytest

from repro.bench import ALGORITHMS, EHJAS, FigureHarness
from repro.config import Algorithm


@pytest.fixture(scope="module")
def harness():
    # 10M paper tuples -> 10k real tuples: each run takes well under a second
    return FigureHarness(scale=0.001, validate=True)


def test_run_results_are_memoized(harness):
    a = harness.run(Algorithm.SPLIT, 2)
    b = harness.run(Algorithm.SPLIT, 2)
    assert a is b, "identical configs must reuse the cached run"
    c = harness.run(Algorithm.SPLIT, 4)
    assert c is not a


def test_run_applies_parameters(harness):
    res = harness.run(Algorithm.OUT_OF_CORE, 3, r_m=5, s_m=2, pool=12)
    cfg = res.config
    assert cfg.algorithm is Algorithm.OUT_OF_CORE
    assert cfg.initial_nodes == 3
    assert cfg.workload.r_tuples == 5_000_000
    assert cfg.workload.s_tuples == 2_000_000
    assert cfg.cluster.n_potential_nodes == 12
    assert cfg.workload.scale == 0.001


def test_skew_parameter_switches_distribution(harness):
    from repro.config import Distribution

    uni = harness.run(Algorithm.SPLIT, 2)
    skew = harness.run(Algorithm.SPLIT, 2, sigma=0.001)
    assert uni.config.workload.distribution is Distribution.UNIFORM
    assert skew.config.workload.distribution is Distribution.GAUSSIAN


def test_algorithm_tuples_exported():
    assert len(ALGORITHMS) == 4
    assert len(EHJAS) == 3
    assert Algorithm.OUT_OF_CORE not in EHJAS


def test_fig12_report_structure(harness):
    report = harness.fig12()
    assert report.figure == "Figure 12"
    assert len(report.rows) == 3           # the three EHJAs
    assert len(report.headers) == 5
    assert report.checks, "shape checks must be attached"
    # CSV export round-trips the table shape
    lines = report.to_csv().strip().splitlines()
    assert len(lines) == 1 + len(report.rows)
