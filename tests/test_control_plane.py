"""Control-plane fault tolerance: detector, failover, node recovery.

These are whole-system chaos runs (marked ``chaos``) plus fast CLI-level
checks.  The scenarios mirror docs/FAULTS.md §"Control-plane failure
model":

* the primary scheduler fail-stops mid-build and the standby takes over
  (every algorithm, exact oracle counts);
* a *working* join node crashes during build and during probe and its
  hash range is re-streamed to a fresh node (every algorithm);
* a slowed link produces a false suspicion that must resolve without a
  failover or a lost query (the detector has no oracle).

All runs validate against the sequential join oracle, so "recovered"
means *exactly* right, not merely "terminated".
"""

import pytest

from tests.conftest import small_cluster, small_config, small_workload
from repro.cli import main
from repro.config import Algorithm
from repro.core import run_join
from repro.faults import CrashSpec, FaultPlan, LinkSlowdown

ALGOS = (
    Algorithm.SPLIT,
    Algorithm.REPLICATE,
    Algorithm.HYBRID,
    Algorithm.OUT_OF_CORE,
)

#: per-algorithm primary-kill times (simulated s) that land mid-build
KILL_AT = {
    Algorithm.SPLIT: 0.1,
    Algorithm.REPLICATE: 0.03,
    Algorithm.HYBRID: 0.03,
    Algorithm.OUT_OF_CORE: 0.06,
}


def counter_total(res, name):
    return sum(
        inst["value"] for inst in res.metrics if inst["name"] == name
    )


def membership_plan(**kw) -> FaultPlan:
    """Detector armed with a fast heartbeat so tests stay short."""
    return FaultPlan(membership=True, heartbeat_interval_s=0.01, **kw)


def run_with(algorithm, plan, *, pool=16):
    cfg = small_config(
        algorithm,
        workload=small_workload(sigma=1e-5),  # 89 oracle matches
        cluster=small_cluster(pool=pool),
        faults=plan,
    )
    return run_join(cfg)


# ---------------------------------------------------------------------------
# scheduler fail-stop -> standby takeover
# ---------------------------------------------------------------------------


@pytest.mark.chaos
@pytest.mark.parametrize("algorithm", ALGOS)
def test_scheduler_killed_mid_build_fails_over(algorithm):
    """The primary dies mid-build; the standby adopts the WAL'd snapshot,
    redrives the in-flight decision and finishes with exact counts."""
    res = run_with(
        algorithm, membership_plan(kill_scheduler_at=KILL_AT[algorithm])
    )
    assert res.matches == res.reference_matches == 89
    assert counter_total(res, "sched.failover_count") == 1


# ---------------------------------------------------------------------------
# working-node crash -> heartbeat detection -> range re-stream
# ---------------------------------------------------------------------------


@pytest.mark.chaos
@pytest.mark.parametrize("algorithm", ALGOS)
def test_working_node_crash_during_build_recovers(algorithm):
    """Join node 0 (an *initial* node, activated from the start) crashes
    while the build stream is live; the detector declares it, the range
    collapses onto a recruit and the sources replay from their cursors."""
    plan = membership_plan(crashes=(CrashSpec(node=0, at_phase="build"),))
    res = run_with(algorithm, plan)
    assert res.matches == res.reference_matches == 89
    assert counter_total(res, "membership.deaths_declared") >= 1
    assert counter_total(res, "sched.recovery_cycles") >= 1
    assert counter_total(res, "sched.failover_count") == 0


@pytest.mark.chaos
@pytest.mark.parametrize("algorithm", ALGOS)
def test_working_node_crash_during_probe_recovers(algorithm):
    """Probe-phase crash: the stored build range is gone mid-probe, so
    recovery must rebuild it *and* re-cover the probe tuples the dead
    node absorbed.  Split needs pool headroom (it expands to 24 nodes on
    this workload); the replicate-chain case drives the target past its
    memory budget, exercising the spill degradation mid-replay."""
    pool = 32 if algorithm is Algorithm.SPLIT else 16
    plan = membership_plan(crashes=(CrashSpec(node=0, at_phase="probe"),))
    res = run_with(algorithm, plan, pool=pool)
    assert res.matches == res.reference_matches == 89
    assert counter_total(res, "sched.recovery_cycles") >= 1
    assert counter_total(res, "sched.failover_count") == 0


@pytest.mark.chaos
def test_probe_crash_with_exhausted_pool_is_unrecoverable():
    """No spare node to adopt the dead node's range -> documented abort,
    not a hang or a wrong answer (split uses the whole default pool)."""
    plan = membership_plan(crashes=(CrashSpec(node=0, at_phase="probe"),))
    with pytest.raises(Exception, match="pool exhausted"):
        run_with(Algorithm.SPLIT, plan)


# ---------------------------------------------------------------------------
# false positives: suspicion without death
# ---------------------------------------------------------------------------


@pytest.mark.chaos
def test_slow_link_false_suspicion_never_aborts_the_query():
    """A drastically slowed ack link makes join node 0 (global id 3)
    look dead past the suspect timeout.  With the confirm timeout still
    generous the late acks must clear every suspicion: no death verdict,
    no failover, exact counts — the false positive is observable only as
    a metric."""
    plan = FaultPlan(
        membership=True,
        heartbeat_interval_s=0.01,
        suspect_timeout_s=0.03,
        confirm_timeout_s=30.0,
        slowdowns=(
            LinkSlowdown(t0=0.02, t1=0.2, factor=50_000.0, src=3, dst=0),
        ),
    )
    res = run_with(Algorithm.HYBRID, plan)
    assert res.matches == res.reference_matches == 89
    assert counter_total(res, "membership.suspected") >= 1
    assert counter_total(res, "membership.false_positive") >= 1
    assert counter_total(res, "membership.deaths_declared") == 0
    assert counter_total(res, "sched.failover_count") == 0


@pytest.mark.chaos
def test_membership_under_chaos_links_stays_exact():
    """Detector armed on a lossy fabric with no crash at all: dropped
    heartbeats must not translate into deaths under default timeouts."""
    plan = FaultPlan(
        membership=True, heartbeat_interval_s=0.01,
        drop_prob=0.02, ack_drop_prob=0.02, seed=11,
    )
    res = run_with(Algorithm.HYBRID, plan)
    assert res.matches == res.reference_matches == 89
    assert counter_total(res, "membership.deaths_declared") == 0
    assert counter_total(res, "sched.failover_count") == 0
    # the dedup-window gauge (satellite: bounded _seen_seqs) is exported
    assert any(
        inst["name"] == "node.dedup_window" and inst["type"] == "gauge"
        for inst in res.metrics
    )


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


def cli_small(extra):
    return extra + [
        "--r-tuples", "0.004", "--s-tuples", "0.004",
        "--scale", "1.0", "--chunk-tuples", "200",
        "--pool", "8", "--sources", "2", "--node-memory-mb", "0.04",
    ]


@pytest.mark.chaos
def test_cli_run_with_scheduler_kill(capsys):
    rc = main(cli_small([
        "run", "--algorithm", "hybrid", "--initial-nodes", "2",
        "--kill-scheduler-at", "0.03", "--heartbeat-interval", "0.01",
    ]))
    out = capsys.readouterr().out
    assert rc == 0
    assert "hybrid" in out


def test_cli_workload_rejects_membership_flags(capsys):
    rc = main(["workload", "--queries", "1", "--membership"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "single-query only" in err


def test_cli_workload_rejects_kill_scheduler(capsys):
    rc = main(["workload", "--queries", "1", "--kill-scheduler-at", "1.0"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "single-query only" in err


def test_cli_arrival_times_tolerates_trailing_comma(capsys):
    rc = main([
        "workload", "--queries", "2", "--mix", "hybrid:1:0.004:0.004:2",
        "--pool", "8", "--sources", "2", "--node-memory-mb", "0.04",
        "--scale", "1.0", "--arrival-times", " 0.0, 0.5, ",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "queries" in out


def test_cli_arrival_times_bad_segment_is_a_friendly_error(capsys):
    rc = main([
        "workload", "--queries", "1", "--arrival-times", "1.0,abc,2.0",
    ])
    err = capsys.readouterr().err
    assert rc == 2
    assert "--arrival-times" in err
    assert "'abc'" in err
