"""Unit tests for synthetic relation generation."""

import numpy as np
import pytest

from repro.config import Distribution, WorkloadSpec
from repro.data import (
    VALUE_SPACE,
    RelationStream,
    draw_values,
    materialize_relation,
    source_share,
)


def spec(**kw):
    defaults = dict(r_tuples=50_000, s_tuples=30_000, scale=1.0,
                    chunk_tuples=1000)
    defaults.update(kw)
    return WorkloadSpec(**defaults)


# ----------------------------------------------------------------------
# distributions
# ----------------------------------------------------------------------
def test_uniform_values_cover_space():
    rng = np.random.default_rng(0)
    v = draw_values(rng, 100_000, spec())
    assert v.dtype == np.uint64
    assert int(v.max()) < VALUE_SPACE
    # coarse uniformity: each quartile holds 20-30%
    counts, _ = np.histogram(v.astype(np.float64), bins=4,
                             range=(0, VALUE_SPACE))
    assert all(0.2 < c / v.size < 0.3 for c in counts)


def test_gaussian_concentrates_mass():
    rng = np.random.default_rng(0)
    s = spec(distribution=Distribution.GAUSSIAN, gauss_sigma=0.0001)
    v = draw_values(rng, 100_000, s)
    center = 0.5 * VALUE_SPACE
    width = 0.001 * VALUE_SPACE
    inside = ((v.astype(np.float64) > center - width)
              & (v.astype(np.float64) < center + width)).mean()
    assert inside > 0.99


def test_gaussian_sigma_controls_spread():
    rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
    tight = draw_values(rng1, 50_000,
                        spec(distribution=Distribution.GAUSSIAN,
                             gauss_sigma=0.0001))
    loose = draw_values(rng2, 50_000,
                        spec(distribution=Distribution.GAUSSIAN,
                             gauss_sigma=0.01))
    assert tight.astype(np.float64).std() < loose.astype(np.float64).std()


def test_gaussian_requires_positive_sigma():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        draw_values(rng, 10, spec(distribution=Distribution.GAUSSIAN,
                                  gauss_sigma=0.0))


def test_zipf_produces_heavy_hitters():
    rng = np.random.default_rng(0)
    v = draw_values(rng, 100_000, spec(distribution=Distribution.ZIPF,
                                       zipf_s=1.2))
    _, counts = np.unique(v, return_counts=True)
    assert counts.max() > 100  # the head rank dominates


def test_zipf_requires_exponent_above_one():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        draw_values(rng, 10, spec(distribution=Distribution.ZIPF, zipf_s=1.0))


def test_draw_values_empty_and_negative():
    rng = np.random.default_rng(0)
    assert draw_values(rng, 0, spec()).size == 0
    with pytest.raises(ValueError):
        draw_values(rng, -1, spec())


# ----------------------------------------------------------------------
# streams
# ----------------------------------------------------------------------
def test_source_share_sums_to_total():
    for total in (0, 1, 7, 100, 12345):
        for n in (1, 3, 4, 8):
            shares = [source_share(total, n, i) for i in range(n)]
            assert sum(shares) == total
            assert max(shares) - min(shares) <= 1


def test_source_share_bad_index():
    with pytest.raises(IndexError):
        source_share(100, 4, 4)


def test_stream_batches_sum_to_share():
    s = spec()
    stream = RelationStream(s, "R", 4, 1)
    batches = list(stream.batches())
    assert sum(b.size for b in batches) == stream.total_tuples
    assert all(b.size <= s.real_chunk_tuples for b in batches)


def test_stream_is_deterministic():
    s = spec()
    a = np.concatenate(list(RelationStream(s, "R", 4, 2).batches()))
    b = np.concatenate(list(RelationStream(s, "R", 4, 2).batches()))
    assert np.array_equal(a, b)


def test_streams_differ_across_sources_and_relations():
    s = spec()
    r0 = np.concatenate(list(RelationStream(s, "R", 4, 0).batches()))
    r1 = np.concatenate(list(RelationStream(s, "R", 4, 1).batches()))
    s0 = np.concatenate(list(RelationStream(s, "S", 4, 0).batches()))
    assert not np.array_equal(r0[:100], r1[:100])
    assert not np.array_equal(r0[:100], s0[:100])


def test_stream_rejects_bad_relation():
    with pytest.raises(ValueError):
        RelationStream(spec(), "X", 4, 0)


def test_materialize_equals_union_of_streams():
    s = spec()
    full = materialize_relation(s, "S", 3)
    assert full.size == s.real_s_tuples
    parts = [
        np.concatenate(list(RelationStream(s, "S", 3, i).batches()))
        for i in range(3)
    ]
    assert np.array_equal(full, np.concatenate(parts))


def test_scale_reduces_real_counts():
    s = spec(scale=0.1)
    assert s.real_r_tuples == 5_000
    assert s.real_s_tuples == 3_000
    assert s.real_chunk_tuples == 100
    assert materialize_relation(s, "R", 2).size == 5_000


def test_per_relation_distribution_overrides():
    """Paper §5: mean/sigma can be set individually per relation."""
    s = spec(distribution=Distribution.GAUSSIAN, gauss_mean=0.2,
             gauss_sigma=0.001, s_gauss_mean=0.8)
    r = materialize_relation(s, "R", 2).astype(np.float64) / VALUE_SPACE
    sv = materialize_relation(s, "S", 2).astype(np.float64) / VALUE_SPACE
    assert abs(r.mean() - 0.2) < 0.01
    assert abs(sv.mean() - 0.8) < 0.01


def test_disjoint_means_produce_no_matches():
    from repro.seqjoin import match_count

    s = spec(distribution=Distribution.GAUSSIAN, gauss_mean=0.2,
             gauss_sigma=0.0001, s_gauss_mean=0.8, s_gauss_sigma=0.0001)
    r = materialize_relation(s, "R", 2)
    sv = materialize_relation(s, "S", 2)
    assert match_count(r, sv) == 0


def test_mixed_distributions_per_relation():
    s = spec(distribution=Distribution.UNIFORM,
             s_distribution=Distribution.GAUSSIAN, s_gauss_sigma=0.0001)
    r = materialize_relation(s, "R", 2).astype(np.float64)
    sv = materialize_relation(s, "S", 2).astype(np.float64)
    assert r.std() > 3 * sv.std()
