"""Unit tests for the sequential reference joins."""

import numpy as np
import pytest

from repro.config import CostModel
from repro.hashing import PositionMap
from repro.seqjoin import (
    grace_join,
    hash_join_count,
    match_count,
    match_count_by_value,
)


def arrays(seed=0, n=2000, values=200):
    rng = np.random.default_rng(seed)
    return (rng.integers(0, values, n, dtype=np.uint64),
            rng.integers(0, values, n, dtype=np.uint64))


def brute_force(r, s):
    return sum(int((r == v).sum()) for v in s.tolist())


def test_match_count_against_brute_force():
    r, s = arrays(n=300, values=50)
    assert match_count(r, s) == brute_force(r, s)


def test_match_count_empty():
    empty = np.empty(0, dtype=np.uint64)
    r, _ = arrays()
    assert match_count(empty, r) == 0
    assert match_count(r, empty) == 0


def test_match_count_duplicates_count_pairs():
    r = np.array([7, 7, 7], dtype=np.uint64)
    s = np.array([7, 7], dtype=np.uint64)
    assert match_count(r, s) == 6


def test_algorithm1_agrees_with_vectorized():
    r, s = arrays(seed=1)
    assert hash_join_count(r, s) == match_count(r, s)
    assert hash_join_count(r, s, n_buckets=7) == match_count(r, s)


def test_algorithm1_validates_buckets():
    r, s = arrays()
    with pytest.raises(ValueError):
        hash_join_count(r, s, n_buckets=0)


def test_match_count_by_value_sums_to_total():
    r, s = arrays(seed=2, values=40)
    per_value = match_count_by_value(r, s)
    assert sum(per_value.values()) == match_count(r, s)
    for v, c in per_value.items():
        assert c == int((r == v).sum()) * int((s == v).sum())


# ----------------------------------------------------------------------
# Grace out-of-core join
# ----------------------------------------------------------------------
def test_grace_in_core_fast_path():
    r, s = arrays(seed=3)
    res = grace_join(r, s, memory_tuples=10_000, tuple_bytes=100,
                     cost=CostModel())
    assert res.matches == match_count(r, s)
    assert res.partitions == 1
    assert res.disk_write_bytes == 0


def test_grace_out_of_core_correctness():
    rng = np.random.default_rng(4)
    r = rng.integers(0, 1 << 32, 20_000, dtype=np.uint64)
    s = rng.integers(0, 1 << 32, 20_000, dtype=np.uint64)
    res = grace_join(r, s, memory_tuples=3_000, tuple_bytes=100,
                     cost=CostModel())
    assert res.matches == match_count(r, s)
    assert res.partitions == -(-20_000 // 3_000)
    assert res.disk_write_bytes == (r.size + s.size) * 100
    assert res.disk_read_bytes == res.disk_write_bytes
    assert res.estimated_time > 0
    assert sum(res.partition_r_tuples) == r.size


def test_grace_partitions_respect_position_ranges():
    """Tuples in different partitions can never join (disjoint positions)."""
    rng = np.random.default_rng(5)
    r = rng.integers(0, 1 << 32, 5_000, dtype=np.uint64)
    pm = PositionMap(1 << 18)
    res = grace_join(r, r, memory_tuples=1_000, tuple_bytes=100,
                     cost=CostModel(), posmap=pm)
    # joining a relation with itself: every tuple matches at least itself
    assert res.matches >= r.size


def test_grace_validates_memory():
    r, s = arrays()
    with pytest.raises(ValueError):
        grace_join(r, s, memory_tuples=0, tuple_bytes=100, cost=CostModel())
