"""Chaos tests: the protocol must survive message reordering.

The drain/termination argument (scheduler docstring) and the join-node
shed-chain/pre-activation machinery are supposed to make the whole
protocol insensitive to delivery order.  These tests inject uniform random
per-message delivery jitter — up to many multiples of the base latency, so
control and data messages genuinely overtake each other — and assert the
global invariants still hold for every algorithm and skew.
"""

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.conftest import small_cluster, small_config, small_workload
from repro.config import Algorithm, CostModel
from repro.core import run_join


def jittery_cluster(jitter_x: float, **kw):
    cost = CostModel()
    cost = replace(cost, net_jitter=cost.net_latency * jitter_x)
    return small_cluster(cost=cost, **kw)


@pytest.mark.parametrize("algorithm", list(Algorithm))
def test_heavy_jitter_preserves_correctness(algorithm):
    cfg = small_config(
        algorithm, initial=2,
        cluster=jittery_cluster(jitter_x=20.0),
    )
    res = run_join(cfg)  # validate=True checks matches + conservation
    assert res.is_valid


def test_jitter_with_skew_and_expansion():
    cfg = small_config(
        Algorithm.HYBRID, initial=2,
        workload=small_workload(r=5000, s=5000, sigma=0.0001),
        cluster=jittery_cluster(jitter_x=20.0, pool=24),
    )
    res = run_join(cfg)
    assert res.is_valid
    assert res.nodes_used > 2


def test_jitter_with_output_expansion():
    from repro.config import Distribution, WorkloadSpec

    wl = WorkloadSpec(r_tuples=2000, s_tuples=2000, chunk_tuples=100,
                      scale=1.0, distribution=Distribution.ZIPF, seed=5)
    cfg = small_config(
        Algorithm.SPLIT, initial=2, workload=wl,
        cluster=jittery_cluster(jitter_x=20.0, pool=16),
        materialize_output=True, probe_expansion=True,
    )
    res = run_join(cfg)
    assert res.output_tuples + res.output_spilled_tuples == res.matches


@given(
    algorithm=st.sampled_from(list(Algorithm)),
    jitter_x=st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_any_jitter_level_preserves_the_answer(algorithm, jitter_x, seed):
    cfg = small_config(
        algorithm, initial=2,
        workload=small_workload(r=2500, s=1500, seed=seed, chunk=100),
        cluster=jittery_cluster(jitter_x=jitter_x, pool=10),
    )
    res = run_join(cfg)
    assert res.is_valid


def test_jitter_zero_is_default_and_deterministic():
    cfg = small_config(Algorithm.SPLIT, initial=2)
    assert cfg.effective_cluster.cost.net_jitter == 0.0
    a = run_join(cfg)
    b = run_join(cfg)
    assert a.total_s == b.total_s
    assert a.matches == b.matches
    assert a.expansion_trace == b.expansion_trace


def test_jittered_runs_are_reproducible():
    """Jitter is drawn from a seeded stream: same config, same answer."""
    cfg = small_config(Algorithm.HYBRID, initial=2,
                       cluster=jittery_cluster(jitter_x=10.0))
    a = run_join(cfg)
    b = run_join(cfg)
    assert a.total_s == b.total_s
    assert a.expansion_trace == b.expansion_trace
