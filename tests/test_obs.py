"""Tests for the observability subsystem (repro.obs) and its wiring.

Covers the instruments/registry, span timelines, trace/metrics export
(JSONL + Chrome trace_event), the bounded tracer, and the end-to-end
wiring through a full simulated join: the chrome trace's per-node
build/probe spans must agree with the phase times in JoinRunResult.
"""

import json

import numpy as np
import pytest

from repro.config import Algorithm
from repro.core import run_join
from repro.obs import (
    Counter,
    Gauge,
    MetricsRegistry,
    PhaseTimeline,
    SpanLog,
    TimeWeightedHistogram,
    chrome_trace,
    metrics_to_jsonl,
    trace_to_jsonl,
)
from repro.sim import Tracer

from .conftest import small_config


# ----------------------------------------------------------------------
# instruments
# ----------------------------------------------------------------------
def test_counter_accumulates_and_rejects_negative():
    c = Counter("bytes")
    c.inc(10)
    c.inc(5)
    assert c.value == 15
    with pytest.raises(ValueError):
        c.inc(-1)
    assert c.as_dict()["type"] == "counter"


def test_gauge_tracks_watermarks_and_bounds_timeline():
    g = Gauge("mem", max_samples=3)
    for t, v in [(0.0, 5), (1.0, 9), (2.0, 2), (3.0, 4)]:
        g.set(t, v)
    assert g.last == 4
    assert g.high == 9 and g.low == 2
    assert g.samples == 4
    assert len(g.timeline) == 3  # oldest sample evicted
    assert g.timeline[0] == (1.0, 9)  # watermarks survive eviction


def test_histogram_charges_time_at_previous_level():
    h = TimeWeightedHistogram("depth", bounds=(0, 2, 4))
    h.observe(0.0, 1)   # depth 1 from t=0
    h.observe(3.0, 5)   # 3s at depth 1 -> bucket le_2
    h.observe(4.0, 0)   # 1s at depth 5 -> overflow
    h.close(6.0)        # 2s at depth 0 -> bucket le_0
    assert h.bucket_seconds == pytest.approx([2.0, 3.0, 0.0, 1.0])
    assert h.high == 5
    assert h.time_weighted_mean() == pytest.approx((3 * 1 + 1 * 5) / 6.0)


def test_registry_memoizes_by_name_and_labels():
    reg = MetricsRegistry()
    a = reg.counter("net.bytes", src="a", dst="b")
    b = reg.counter("net.bytes", dst="b", src="a")  # label order irrelevant
    c = reg.counter("net.bytes", src="a", dst="c")
    assert a is b and a is not c
    a.inc(7)
    assert reg.find("net.bytes", src="a", dst="b").value == 7
    assert reg.find("net.bytes", src="zz") is None


def test_registry_clock_feeds_convenience_publishers():
    now = [0.0]
    reg = MetricsRegistry(clock=lambda: now[0])
    reg.observe("depth", 3, node="j0")
    now[0] = 2.0
    reg.close()
    hist = reg.find("depth", node="j0")
    assert hist.total_seconds == pytest.approx(2.0)
    snapshot = reg.snapshot()
    assert all(json.dumps(d) for d in snapshot)  # JSON-safe


# ----------------------------------------------------------------------
# spans / timeline
# ----------------------------------------------------------------------
def test_spanlog_rejects_inverted_spans():
    log = SpanLog()
    log.add("join0", "build", 0.0, 1.0)
    with pytest.raises(ValueError):
        log.add("join0", "probe", 2.0, 1.0)


def test_timeline_orders_phases_and_tracks():
    log = SpanLog()
    log.add("join1", "probe", 5.0, 9.0)
    log.add("scheduler", "probe", 4.0, 9.0)
    log.add("scheduler", "build", 0.0, 4.0)
    tl = PhaseTimeline(log.spans)
    assert [s.name for s in tl.phase_spans()] == ["build", "probe"]
    assert tl.tracks() == ["scheduler", "join1"]
    assert tl.end == 9.0
    assert "join1" in tl.render()


# ----------------------------------------------------------------------
# bounded tracer
# ----------------------------------------------------------------------
def test_tracer_bounded_buffer_keeps_newest_and_counts_drops():
    tr = Tracer(maxlen=3)
    for i in range(5):
        tr.emit(float(i), "tick", "actor", i=i)
    assert len(tr) == 3
    assert tr.dropped == 2
    assert [r.time for r in tr.records] == [2.0, 3.0, 4.0]
    with pytest.raises(ValueError):
        Tracer(maxlen=0)


def test_tracer_unbounded_never_drops():
    tr = Tracer()
    for i in range(100):
        tr.emit(float(i), "tick", "actor")
    assert len(tr) == 100 and tr.dropped == 0


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------
def test_trace_and_metrics_jsonl_round_trip():
    tr = Tracer()
    tr.emit(1.5, "activate", "join3", tuples=np.int64(7))
    lines = list(trace_to_jsonl(tr))
    assert len(lines) == 1
    rec = json.loads(lines[0])
    assert rec == {"t": 1.5, "category": "activate", "actor": "join3",
                   "detail": {"tuples": 7}}

    reg = MetricsRegistry()
    reg.inc("x", 3)
    out = [json.loads(line) for line in metrics_to_jsonl(reg.snapshot())]
    assert out[0]["name"] == "x" and out[0]["value"] == 3


def test_chrome_trace_structure():
    log = SpanLog()
    log.add("scheduler", "build", 0.0, 2.0)
    log.add("join0", "build", 0.0, 2.0, tuples=np.int64(42))

    class FakeResult:
        timeline = PhaseTimeline(log.spans)
        tracer = Tracer()

    FakeResult.tracer.emit(1.0, "memory_full", "join0")
    doc = chrome_trace(FakeResult())
    json.dumps(doc)  # fully serializable
    events = doc["traceEvents"]
    names = {e["name"] for e in events}
    assert {"process_name", "thread_name", "build", "memory_full"} <= names
    complete = [e for e in events if e["ph"] == "X"]
    assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in complete)
    phase = next(e for e in complete if e["cat"] == "phase")
    assert phase["dur"] == pytest.approx(2e6)  # seconds -> microseconds
    # scheduler gets tid 0; instants land on their actor's track
    tid_by_name = {e["args"]["name"]: e["tid"] for e in events
                   if e["name"] == "thread_name"}
    assert tid_by_name["scheduler"] == 0
    instant = next(e for e in events if e["ph"] == "i")
    assert instant["tid"] == tid_by_name["join0"]


# ----------------------------------------------------------------------
# end-to-end wiring
# ----------------------------------------------------------------------
def test_run_attaches_timeline_metrics_and_tracer():
    res = run_join(small_config(Algorithm.SPLIT))
    phases = res.timeline.phase_spans()
    assert [s.name for s in phases][0] == "build"
    # Phase spans agree with PhaseTimes by construction.
    by_name = {s.name: s for s in phases}
    assert by_name["build"].duration == pytest.approx(res.times.build_s)
    assert by_name["probe"].duration == pytest.approx(res.times.probe_s)
    assert res.timeline.end <= res.total_s + 1e-9

    names = {m["name"] for m in res.metrics}
    assert {"sim.events_executed", "net.sent_bytes", "hash.inserted_tuples",
            "hash.matches", "mem.used_bytes", "mailbox.depth",
            "sched.drain_rounds"} <= names
    # Conservation: hash.matches across nodes equals the validated total.
    counted = sum(m["value"] for m in res.metrics
                  if m["name"] == "hash.matches")
    assert counted == res.matches
    inserted = sum(m["value"] for m in res.metrics
                   if m["name"] == "hash.inserted_tuples")
    assert inserted >= res.config.workload.r_tuples  # re-inserts on splits
    assert res.tracer is not None and len(res.tracer) > 0


def test_chrome_trace_spans_sum_to_phase_times():
    """Acceptance check: the exported per-node build/probe spans agree
    (within tolerance) with JoinRunResult's phase times."""
    res = run_join(small_config(Algorithm.SPLIT))
    doc = chrome_trace(res)
    json.dumps(doc)

    tid_names = {e["tid"]: e["args"]["name"] for e in doc["traceEvents"]
                 if e["name"] == "thread_name"}
    node_spans = [e for e in doc["traceEvents"]
                  if e["ph"] == "X" and e.get("cat") == "node"]
    assert node_spans, "per-node spans must be exported"

    # Initially-activated nodes span the whole build/probe phases; their
    # spans close when the phase-transition message arrives, so allow the
    # network-latency slack (2%).
    tol = 0.02 * res.total_s * 1e6
    initial = {f"join{j}" for j in range(res.config.initial_nodes)}
    t_build_us = res.times.table_building_s * 1e6
    t_probe_us = res.times.probe_s * 1e6
    checked = 0
    for e in node_spans:
        if tid_names[e["tid"]] not in initial:
            continue
        if e["name"] == "build":
            assert e["ts"] == pytest.approx(0.0, abs=tol)
            assert e["dur"] == pytest.approx(t_build_us, abs=tol)
            checked += 1
        elif e["name"] == "probe":
            assert e["dur"] == pytest.approx(t_probe_us, abs=tol)
            checked += 1
    assert checked == 2 * len(initial)


def test_ooc_run_records_ooc_and_disk_metrics():
    res = run_join(small_config(Algorithm.OUT_OF_CORE))
    assert res.times.ooc_pass_s > 0
    ooc_spans = [s for s in res.timeline.spans
                 if s.name == "ooc" and s.track != "scheduler"]
    assert ooc_spans, "spilling nodes must record ooc spans"
    written = sum(m["value"] for m in res.metrics
                  if m["name"] == "disk.bytes_written")
    spilled_bytes = (res.spilled_r_tuples + res.spilled_s_tuples) * \
        res.config.workload.tuple_bytes
    assert written >= spilled_bytes > 0


def test_split_run_records_split_spans_and_relief_metrics():
    res = run_join(small_config(Algorithm.SPLIT))
    assert res.n_splits > 0
    split_spans = [s for s in res.timeline.spans if s.name == "split"]
    assert len(split_spans) == res.n_splits
    assert sum(s.args["tuples"] for s in split_spans) == \
        res.split_moved_tuples
    relief = sum(m["value"] for m in res.metrics
                 if m["name"] == "sched.relief_cycles")
    assert relief >= res.n_splits


def test_trace_buffer_config_bounds_run_tracer():
    cfg = small_config(Algorithm.SPLIT, trace_buffer=10)
    res = run_join(cfg)
    assert len(res.tracer) == 10
    assert res.tracer.dropped > 0


# ----------------------------------------------------------------------
# chrome trace: track ordering, durations, causal flow events
# ----------------------------------------------------------------------
def test_track_sort_key_orders_scheduler_then_roles_numerically():
    from repro.obs.export import _track_sort_key

    tracks = ["join10", "src1", "join2", "misc", "scheduler", "join0", "src0"]
    assert sorted(tracks, key=_track_sort_key) == [
        "scheduler", "join0", "join2", "join10", "src0", "src1", "misc",
    ]


def test_chrome_trace_round_trips_with_nonnegative_durations():
    res = run_join(small_config(Algorithm.HYBRID))
    doc = json.loads(json.dumps(chrome_trace(res)))  # S4: full round-trip
    events = doc["traceEvents"]
    for e in events:
        if e["ph"] == "X":
            assert e["dur"] >= 0 and e["ts"] >= 0
        if e["ph"] in ("i", "s", "f"):
            assert e["ts"] >= 0
    tids = {e["tid"] for e in events if e["name"] == "thread_name"}
    assert all(e["tid"] in tids for e in events)


def test_chrome_trace_flow_events_mirror_causal_edges():
    res = run_join(small_config(Algorithm.SPLIT))
    doc = chrome_trace(res)
    events = doc["traceEvents"]
    tid_names = {e["tid"]: e["args"]["name"] for e in events
                 if e["name"] == "thread_name"}
    flows = [e for e in events if e.get("cat") == "causal"]
    assert flows, "a real run must export causal flow events"

    by_id: dict = {}
    for e in flows:
        by_id.setdefault(e["id"], {})[e["ph"]] = e
    edges = {e.eid: e for e in res.causal.edges}
    for eid, pair in by_id.items():
        # Every flow id is a real causal edge, exported as a start/finish
        # pair on the sender's and receiver's tracks.
        assert set(pair) == {"s", "f"}
        edge = edges[eid]
        s, f = pair["s"], pair["f"]
        assert s["name"] == f["name"] == edge.msg_type
        assert tid_names[s["tid"]] == edge.src
        assert tid_names[f["tid"]] == edge.dst
        assert s["ts"] == pytest.approx(edge.t_send * 1e6)
        assert f["ts"] == pytest.approx(edge.t_deliver * 1e6)
        assert f["ts"] >= s["ts"]
        assert f["bp"] == "e"
        # args.parent points at another exported edge (or is a root).
        parent = s["args"]["parent"]
        assert parent is None or parent in edges
    # Undelivered edges (none in a clean run) are the only ones skipped.
    delivered = [e for e in res.causal.edges if e.delivered]
    assert len(by_id) == len(delivered)
