"""Runtime deadlock detector (repro.sim.lockdep) tests.

The monitor is a pure observer: with it attached, every clean run must
finish bit-identically, and every wait-for cycle must be reported the
moment the closing edge is added — naming each waiter, what it waits on
and what it holds — instead of surfacing as a bare DeadlockError after
the queue drains.
"""

from dataclasses import replace

import pytest

from repro.config import Algorithm, FaultPlan, RunConfig
from repro.core import run_join
from repro.core.context import lockdep_enabled
from repro.sim import (
    Barrier,
    LockdepError,
    LockdepMonitor,
    Mailbox,
    Resource,
    Simulator,
)
from repro.sim.errors import DeadlockError, Interrupt
from tests.conftest import small_config


def monitored_sim():
    sim = Simulator()
    LockdepMonitor(sim).install()
    return sim


# ----------------------------------------------------------------------
# cycle detection
# ----------------------------------------------------------------------
def test_abba_cycle_detected_naming_both_waiters():
    """The seeded two-resource cycle: detected the moment the second
    process blocks (well under one simulated second), with both waiters
    and both resources in the report."""
    sim = monitored_sim()
    a = Resource(sim, 1, name="A")
    b = Resource(sim, 1, name="B")

    def p1(sim):
        yield from a.grab()
        yield sim.timeout(0.01)
        yield from b.grab()

    def p2(sim):
        yield from b.grab()
        yield sim.timeout(0.01)
        yield from a.grab()

    sim.spawn(p1(sim), name="p1")
    sim.spawn(p2(sim), name="p2")
    with pytest.raises(LockdepError) as exc:
        sim.run()
    msg = str(exc.value)
    assert "wait-for cycle" in msg
    assert "'p1'" in msg and "'p2'" in msg
    assert "Resource('A')" in msg and "Resource('B')" in msg
    assert sim.now < 1.0
    assert sim.lockdep.cycles_detected == 1


def test_three_party_cycle_detected():
    sim = monitored_sim()
    res = {n: Resource(sim, 1, name=n) for n in "ABC"}

    def worker(sim, mine, then):
        yield from res[mine].grab()
        yield sim.timeout(0.01)
        yield from res[then].grab()

    for mine, then in [("A", "B"), ("B", "C"), ("C", "A")]:
        sim.spawn(worker(sim, mine, then), name=f"w{mine}")
    with pytest.raises(LockdepError) as exc:
        sim.run()
    assert "cycle of 3 process(es)" in str(exc.value)


def test_clean_contended_run_is_silent():
    sim = monitored_sim()
    res = Resource(sim, 1, name="R")
    order = []

    def worker(sim, i):
        yield from res.use(0.1)
        order.append(i)

    for i in range(4):
        sim.spawn(worker(sim, i), name=f"w{i}")
    sim.run()
    assert order == [0, 1, 2, 3]
    assert sim.lockdep.cycles_detected == 0
    assert sim.lockdep.waits_tracked == 3  # w0 acquired without waiting
    assert sim.lockdep._waits == {} and sim.lockdep._holders == {}


def test_multislot_self_wait_is_not_a_cycle():
    """The credit-protocol shape: a producer holding receive-window slots
    waits for one more while another actor releases.  On a multi-slot
    resource "a holder is blocked" does not imply deadlock, so the cycle
    DFS must not follow holder edges through it."""
    sim = monitored_sim()
    credits = Resource(sim, 2, name="credits")
    done = []

    def producer(sim):
        yield from credits.grab()
        yield from credits.grab()
        yield from credits.grab()  # blocks holding both slots
        done.append(sim.now)

    def consumer(sim):
        yield sim.timeout(0.05)
        credits.release()  # cross-actor release, as the join node does

    sim.spawn(producer(sim), name="producer")
    sim.spawn(consumer(sim), name="consumer")
    sim.run()
    assert done == [0.05]
    assert sim.lockdep.cycles_detected == 0


# ----------------------------------------------------------------------
# stall reports
# ----------------------------------------------------------------------
def test_stall_report_names_mailbox_waiter():
    sim = monitored_sim()
    box = Mailbox(sim, name="inbox")

    def lonely(sim):
        msg = yield from box.recv()
        return msg

    sim.spawn(lonely(sim), name="lonely")
    with pytest.raises(DeadlockError) as exc:
        sim.run()
    msg = str(exc.value)
    assert "lockdep:" in msg
    assert "'lonely'" in msg and "Mailbox('inbox')" in msg


def test_stall_report_includes_held_resources():
    sim = monitored_sim()
    lock = Resource(sim, 1, name="lock")
    bar = Barrier(sim, 2, name="phase")

    def stuck(sim):
        yield from lock.grab()
        yield bar.wait()  # party #2 never arrives

    sim.spawn(stuck(sim), name="stuck")
    with pytest.raises(DeadlockError) as exc:
        sim.run()
    msg = str(exc.value)
    assert "Barrier('phase')" in msg
    assert "holds [Resource('lock')]" in msg


def test_without_monitor_plain_deadlock_error():
    sim = Simulator()
    box = Mailbox(sim)

    def lonely(sim):
        yield box.get()

    sim.spawn(lonely(sim), name="lonely")
    with pytest.raises(DeadlockError) as exc:
        sim.run()
    assert "lockdep" not in str(exc.value)


# ----------------------------------------------------------------------
# wait withdrawal (interrupt/cancel paths)
# ----------------------------------------------------------------------
def test_interrupt_withdraws_wait_records():
    sim = monitored_sim()
    res = Resource(sim, 1, name="R")

    def holder(sim):
        yield from res.use(1.0)

    def waiter(sim):
        try:
            yield from res.grab()
        except Interrupt:
            return "bailed"
        return "acquired"

    sim.spawn(holder(sim), name="holder")
    w = sim.spawn(waiter(sim), name="waiter")

    def killer(sim):
        yield sim.timeout(0.1)
        w.interrupt()

    sim.spawn(killer(sim), name="killer")
    sim.run()
    assert w.value == "bailed"
    assert sim.lockdep._waits == {} and sim.lockdep._holders == {}


def test_mailbox_recv_interrupt_withdraws_getter():
    sim = monitored_sim()
    box = Mailbox(sim, name="inbox")
    got = []

    def impatient(sim):
        try:
            yield from box.recv()
        except Interrupt:
            pass

    def patient(sim):
        got.append((yield from box.recv()))

    p1 = sim.spawn(impatient(sim), name="impatient")
    sim.spawn(patient(sim), name="patient")

    def driver(sim):
        yield sim.timeout(0.1)
        p1.interrupt()
        yield sim.timeout(0.1)
        box.put("msg")  # must reach 'patient', not the withdrawn getter

    sim.spawn(driver(sim), name="driver")
    sim.run()
    assert got == ["msg"]
    assert sim.lockdep._waits == {}


# ----------------------------------------------------------------------
# enablement plumbing
# ----------------------------------------------------------------------
def test_lockdep_enabled_precedence(monkeypatch):
    cfg = RunConfig()
    # under pytest (PYTEST_CURRENT_TEST set) the default is on ...
    monkeypatch.delenv("REPRO_LOCKDEP", raising=False)
    assert lockdep_enabled(cfg)
    # ... REPRO_LOCKDEP always wins, both ways ...
    monkeypatch.setenv("REPRO_LOCKDEP", "0")
    assert not lockdep_enabled(cfg)
    monkeypatch.setenv("REPRO_LOCKDEP", "1")
    assert lockdep_enabled(cfg)
    # ... outside pytest, the config flag decides.
    monkeypatch.delenv("REPRO_LOCKDEP")
    monkeypatch.delenv("PYTEST_CURRENT_TEST")
    assert not lockdep_enabled(cfg)
    assert lockdep_enabled(replace(cfg, lockdep=True))


def test_run_attaches_monitor_and_publishes_metrics():
    res = run_join(small_config(Algorithm.SPLIT, lockdep=True))
    assert res.is_valid
    names = {m["name"] for m in res.metrics}
    assert "lockdep.waits_tracked" in names
    cycles = next(m for m in res.metrics
                  if m["name"] == "lockdep.cycles_detected")
    assert cycles["value"] == 0


# ----------------------------------------------------------------------
# chaos matrix: lockdep must stay silent on every algorithm under faults
# ----------------------------------------------------------------------
@pytest.mark.chaos
@pytest.mark.lockdep
@pytest.mark.parametrize("algorithm", list(Algorithm))
def test_lockdep_silent_on_chaos_matrix(algorithm):
    plan = FaultPlan(seed=5, drop_prob=0.05, ack_drop_prob=0.02)
    res = run_join(small_config(algorithm, initial=2,
                                faults=plan, lockdep=True))
    assert res.is_valid  # oracle-exact with the detector armed
    cycles = next(m for m in res.metrics
                  if m["name"] == "lockdep.cycles_detected")
    assert cycles["value"] == 0
