"""Unit tests for the network model: timing, conservation, flow control."""

from dataclasses import dataclass

import pytest

from repro.cluster import Network, Node
from repro.config import CostModel
from repro.sim import Simulator


@dataclass
class Msg:
    nbytes: int
    kind: str = "data"


@dataclass
class Ctrl:
    nbytes: int = 64
    kind: str = "control"


def make_pair(cost=None):
    sim = Simulator()
    cost = cost or CostModel()
    net = Network(sim, cost)
    a = Node(sim, 0, "src", cost)
    b = Node(sim, 1, "join", cost)
    return sim, net, a, b, cost


def test_single_transfer_timing():
    sim, net, a, b, cost = make_pair()
    msg = Msg(nbytes=int(cost.net_bandwidth))  # 1 second of wire time

    def sender(sim, net, a, b):
        yield from net.send(a, b, msg)

    sim.spawn(sender(sim, net, a, b))
    sim.run()
    # cpu(sender) + latency + wire + cpu(receiver)
    expected = 2 * cost.net_per_message_cpu + cost.net_latency + 1.0
    assert sim.now == pytest.approx(expected)
    assert len(b.mailbox) == 1


def test_byte_conservation_and_counters():
    sim, net, a, b, cost = make_pair()

    def sender(sim, net, a, b):
        for size in (100, 200, 300):
            yield from net.send(a, b, Msg(nbytes=size))

    sim.spawn(sender(sim, net, a, b))
    sim.run()
    net.assert_conserved()
    assert net.total_sent_bytes("data") == 600
    assert net.total_delivered_bytes("data") == 600
    assert net.sent_messages["data"] == 3
    assert b.mailbox.total_put == 3


def test_conservation_detects_in_flight():
    sim, net, a, b, cost = make_pair()

    def sender(sim, net, a, b):
        yield from net.send(a, b, Msg(nbytes=10**7))

    sim.spawn(sender(sim, net, a, b))
    sim.run(until=1e-9)
    with pytest.raises(AssertionError):
        net.assert_conserved()
    sim.run()
    net.assert_conserved()


def test_per_pair_fifo_ordering():
    sim, net, a, b, cost = make_pair()
    tags = []

    def sender(sim, net, a, b):
        for i in range(5):
            yield from net.send(a, b, Msg(nbytes=1000))

    def receiver(sim, b):
        for _ in range(5):
            msg = yield b.mailbox.get()
            tags.append(msg.nbytes)
            b.recv_credits.release()  # retire the chunk

    sim.spawn(sender(sim, net, a, b))
    sim.spawn(receiver(sim, b))
    sim.run()
    assert len(tags) == 5


def test_negative_size_rejected():
    sim, net, a, b, _ = make_pair()

    def sender(sim, net, a, b):
        yield from net.send(a, b, Msg(nbytes=-1))

    sim.spawn(sender(sim, net, a, b))
    with pytest.raises(ValueError):
        sim.run()


def test_receive_window_blocks_data_senders():
    """With a window of K chunks, a non-consuming receiver stalls senders."""
    cost = CostModel(recv_window_chunks=2)
    sim, net, a, b, cost = make_pair(cost)
    sent_times = []

    def sender(sim, net, a, b):
        for _ in range(4):
            yield from net.send(a, b, Msg(nbytes=1000))
            sent_times.append(sim.now)

    sim.spawn(sender(sim, net, a, b))
    sim.timeout(99.0)  # keep-alive: the blocked sender is intentional
    sim.run(until=10.0)
    # Only the first two clear; the rest wait on credits forever (nobody
    # consumes b's mailbox or releases credits).
    assert len(sent_times) == 2
    assert b.recv_credits.in_use == 2


def test_control_messages_bypass_receive_window():
    cost = CostModel(recv_window_chunks=1)
    sim, net, a, b, cost = make_pair(cost)

    def sender(sim, net, a, b):
        yield from net.send(a, b, Msg(nbytes=1000))   # consumes the credit
        yield from net.send(a, b, Msg(nbytes=1000))   # blocks on credit
        raise AssertionError("unreachable")

    def control_sender(sim, net, a, b):
        yield sim.timeout(1.0)
        yield from net.send(a, b, Ctrl())

    sim.spawn(sender(sim, net, a, b))
    sim.spawn(control_sender(sim, net, b, b))  # b -> b local (no links)
    sim.spawn(control_sender(sim, net, a, b))  # a -> b over the wire
    sim.timeout(99.0)  # keep-alive: the blocked data sender is intentional
    sim.run(until=5.0)
    kinds = [type(m).__name__ for m in b.mailbox.drain()]
    assert kinds.count("Ctrl") == 2, "control traffic must keep flowing"


def test_local_delivery_skips_links():
    sim, net, a, b, cost = make_pair()

    def sender(sim, net, a):
        yield from net.send(a, a, Msg(nbytes=10**9))

    sim.spawn(sender(sim, net, a))
    sim.run()
    # No wire time for local messages: only the two CPU charges.
    assert sim.now == pytest.approx(2 * cost.net_per_message_cpu)
    assert len(a.mailbox) == 1


def test_receiver_credit_release_unblocks_sender():
    cost = CostModel(recv_window_chunks=1)
    sim, net, a, b, cost = make_pair(cost)
    done = []

    def sender(sim, net, a, b):
        for i in range(3):
            yield from net.send(a, b, Msg(nbytes=1000))
        done.append(sim.now)

    def consumer(sim, b):
        for _ in range(3):
            msg = yield b.mailbox.get()
            yield sim.timeout(0.5)       # processing time
            b.recv_credits.release()     # retire the chunk

    sim.spawn(sender(sim, net, a, b))
    sim.spawn(consumer(sim, b))
    sim.run()
    assert done and done[0] > 1.0  # sender was paced by the consumer
    assert b.recv_credits.in_use == 0


def test_loopback_data_send_consumes_a_credit():
    """The receiver releases one credit per retired data chunk regardless
    of where it came from, so loopback delivery must acquire one too."""
    sim, net, a, b, cost = make_pair()

    def sender(sim, net, a):
        yield from net.send(a, a, Msg(nbytes=1000))

    sim.spawn(sender(sim, net, a))
    sim.run()
    assert a.recv_credits.in_use == 1
    a.recv_credits.release()  # the consumer's retire balances it
    assert a.recv_credits.in_use == 0


def test_sender_killed_while_queued_does_not_jam_the_port():
    """Regression: a process crashed while *queued* for a busy rx port
    must withdraw its request.  Before Resource.grab, the next release
    handed the slot to the corpse and every later sender to that node
    wedged forever (observed as a cluster-wide livelock when the primary
    scheduler was killed mid-transmit)."""
    from repro.sim import Interrupt

    sim, net, a, b, cost = make_pair()
    c = Node(sim, 2, "peer", cost)
    big = Ctrl(nbytes=int(cost.net_bandwidth))  # 1 second on b's rx

    def long_sender(sim):
        yield from net.send(a, b, big)

    def doomed_sender(sim):
        try:
            yield from net.send(c, b, Ctrl())
        except Interrupt:
            return  # crashed while queued on b.rx

    def late_sender(sim):
        yield sim.timeout(3.0)
        yield from net.send(c, b, Ctrl())

    sim.spawn(long_sender(sim))
    d = sim.spawn(doomed_sender(sim))
    sim.spawn(late_sender(sim))

    def killer(sim):
        yield sim.timeout(0.5)  # mid-wire: doomed is queued on b.rx
        d.interrupt()

    sim.spawn(killer(sim))
    sim.run()
    assert b.mailbox.total_put == 2, "the late send must still deliver"
    assert b.rx.in_use == 0 and a.tx.in_use == 0 and c.tx.in_use == 0
