"""Property-based tests for the workload generator (hypothesis).

The generator is the workload engine's only stochastic component, so its
determinism carries the whole subsystem's: same seed, same schedule, same
query classes, same per-query data seeds — and therefore the same
simulated run.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import Algorithm, QueryMixEntry, WorkloadConfig
from repro.workload import arrival_schedule, generate_workload

MIXES = st.lists(
    st.tuples(
        st.floats(0.1, 10.0, allow_nan=False),
        st.sampled_from(list(Algorithm)),
        st.integers(1, 4),
    ),
    min_size=1,
    max_size=4,
).map(lambda entries: tuple(
    QueryMixEntry(weight=w, algorithm=a, initial_nodes=k)
    for w, a, k in entries
))


@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(1, 32),
    rate=st.floats(0.01, 100.0, allow_nan=False),
)
@settings(max_examples=150, deadline=None)
def test_poisson_arrivals_are_sorted_and_non_negative(seed, n, rate):
    cfg = WorkloadConfig(n_queries=n, arrival_rate_qps=rate, seed=seed)
    times = arrival_schedule(cfg)
    assert len(times) == n
    assert all(t >= 0 for t in times)
    # cumulative sums of non-negative gaps: never decreasing
    assert all(a <= b for a, b in zip(times, times[1:]))


@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(1, 16),
    rate=st.floats(0.01, 50.0, allow_nan=False),
    mix=MIXES,
)
@settings(max_examples=100, deadline=None)
def test_same_seed_reproduces_the_identical_workload(seed, n, rate, mix):
    cfg = WorkloadConfig(n_queries=n, arrival_rate_qps=rate, seed=seed,
                         mix=mix)
    first = generate_workload(cfg)
    second = generate_workload(cfg)
    assert first == second  # QuerySpec is a frozen dataclass: deep equality


@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(2, 16),
    rate=st.floats(0.01, 50.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_different_seeds_give_independent_data_seeds(seed, n, rate):
    """Per-query data seeds are distinct: two queries of the same class
    must not join byte-identical relations."""
    cfg = WorkloadConfig(n_queries=n, arrival_rate_qps=rate, seed=seed)
    specs = generate_workload(cfg)
    assert len({s.seed for s in specs}) == len(specs)
    assert [s.query_id for s in specs] == list(range(n))


@given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 8))
@settings(max_examples=50, deadline=None)
def test_explicit_trace_is_used_verbatim(seed, n):
    trace = tuple(0.25 * i for i in range(n))
    cfg = WorkloadConfig(n_queries=n, arrival_times=trace, seed=seed)
    assert arrival_schedule(cfg) == trace
    specs = generate_workload(cfg)
    assert tuple(s.arrival_s for s in specs) == trace
