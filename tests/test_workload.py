"""Integration tests: the multi-tenant workload engine end to end.

Every ``run_workload`` call already oracle-validates each query and
asserts byte conservation on the one shared network; these tests add the
workload-level contracts on top — admission accounting, contention
degrading to spill (never to a wrong answer), policy behaviour, node
reuse, and end-to-end determinism.
"""

import pytest

from repro.config import (
    ClusterSpec,
    MTUPLES,
    PoolPolicy,
    QueryMixEntry,
    WorkloadConfig,
)
from repro.workload import run_workload

#: ~1 MB of hash memory per node once the 1/50 scale is applied — small
#: enough that a 2-node query must recruit (or spill) to finish its build.
SCARCE_MEMORY = 50 * 1024 * 1024
#: ~4 MB per node post-scale: two initial nodes hold a whole 2M-tuple
#: build side, so nobody needs to recruit at all.
AMPLE_MEMORY = 200 * 1024 * 1024


def wl_config(n_queries=4, pool=8, memory=None, policy=PoolPolicy.FIFO,
              arrival_gap=0.05, **kw):
    kw.setdefault("mix", (QueryMixEntry(r_tuples=2 * MTUPLES,
                                        s_tuples=2 * MTUPLES,
                                        initial_nodes=2),))
    kw.setdefault("scale", 1.0 / 50.0)
    kw.setdefault("seed", 7)
    cluster = ClusterSpec(
        n_sources=2,
        n_potential_nodes=pool,
        **({"hash_memory_bytes": memory} if memory else {}),
    )
    return WorkloadConfig(
        n_queries=n_queries,
        arrival_times=tuple(arrival_gap * q for q in range(n_queries)),
        policy=policy,
        cluster=cluster,
        **kw,
    )


def metric_value(res, name, **labels):
    for inst in res.metrics:
        if inst["name"] == name and all(
            inst["labels"].get(k) == v for k, v in labels.items()
        ):
            return inst.get("value")
    return None


# ----------------------------------------------------------------------
# the headline contract: >= 4 concurrent queries, every one oracle-valid
# ----------------------------------------------------------------------
def test_concurrent_queries_all_validate():
    res = run_workload(wl_config(n_queries=4, pool=8, memory=AMPLE_MEMORY))
    assert res.n_queries == 4
    assert res.all_valid
    assert res.pool["admissions"] == 4
    assert res.pool["leaked_nodes"] == []
    assert res.total_denials == 0 and not res.degraded_queries
    assert 0.0 < res.pool_utilization <= 1.0
    for q in res.queries:
        assert q.latency_s == pytest.approx(q.queue_delay_s + q.run_s)
        assert q.finished_s <= res.makespan_s
        assert q.nodes_used >= q.initial_nodes
    # lifecycle metrics landed in the shared registry
    assert metric_value(res, "workload.makespan_s") is not None \
        or any(i["name"] == "workload.makespan_s" for i in res.metrics)
    assert sum(
        i["value"] for i in res.metrics if i["name"] == "workload.queries"
    ) == 4


def test_contention_denies_recruits_and_degrades_to_spill():
    """Demand exceeds supply: recruits are denied, the denied queries fall
    back to the out-of-core spill path, and every answer stays correct."""
    res = run_workload(wl_config(n_queries=4, pool=6, memory=SCARCE_MEMORY))
    assert res.all_valid
    assert res.total_denials > 0
    assert res.degraded_queries, "a denied query must spill, not error"
    # denials are observable in the shared metrics registry, and the
    # scheduler-side count of degradations matches the pool's ledger
    assert sum(
        i["value"] for i in res.metrics
        if i["name"] == "pool.recruit_denials"
    ) == res.total_denials
    assert sum(
        i["value"] for i in res.metrics
        if i["name"] == "sched.recruit_denied"
    ) == res.total_denials
    # per-query denial attribution adds up too
    assert sum(q.recruit_denials for q in res.queries) == res.total_denials
    # a degraded query spilled to disk and still matched its oracle
    degraded = res.queries[res.degraded_queries[0]]
    assert degraded.spilled_r_tuples > 0 or degraded.spilled_s_tuples > 0
    assert res.results[degraded.query].is_valid


def test_pool_nodes_are_reused_across_queries():
    """With arrivals spread out, later queries run on nodes earlier ones
    returned: total grants exceed the pool size, which is only possible
    through release-and-reuse, and reuse never corrupts an answer."""
    res = run_workload(
        wl_config(n_queries=6, pool=4, arrival_gap=0.6,
                  memory=AMPLE_MEMORY)
    )
    assert res.all_valid
    assert res.pool["grants"] > 4
    released = metric_value(res, "pool.releases")
    assert released is not None and released >= res.pool["grants"] - 4


def test_fair_share_policy_caps_expansion():
    cfg = wl_config(n_queries=4, pool=6, memory=SCARCE_MEMORY,
                    policy=PoolPolicy.FAIR_SHARE, fair_share_cap=1)
    res = run_workload(cfg)
    assert res.all_valid
    assert res.total_denials > 0
    assert "fair_share_cap" in res.pool["denials_by_reason"]
    # no query ever held more than admission + cap nodes
    for q in res.queries:
        assert q.nodes_used <= q.initial_nodes + 1


def test_memory_deficit_policy_runs_clean():
    res = run_workload(
        wl_config(n_queries=4, pool=6, memory=SCARCE_MEMORY,
                  policy=PoolPolicy.MEMORY_DEFICIT)
    )
    assert res.all_valid
    assert res.pool["requests"] > res.pool["admissions"], \
        "scarce memory must force expansion recruits"


def test_workload_is_deterministic_end_to_end():
    cfg = wl_config(n_queries=4, pool=6, memory=SCARCE_MEMORY)
    a, b = run_workload(cfg), run_workload(cfg)
    assert a.makespan_s == b.makespan_s
    assert [q.to_dict() for q in a.queries] == [
        q.to_dict() for q in b.queries
    ]
    assert a.pool == b.pool


def test_poisson_arrivals_run_to_completion():
    cfg = WorkloadConfig(
        n_queries=3,
        arrival_rate_qps=2.0,
        seed=11,
        mix=(
            QueryMixEntry(weight=2, r_tuples=MTUPLES, s_tuples=MTUPLES,
                          initial_nodes=2),
            QueryMixEntry(weight=1, r_tuples=2 * MTUPLES,
                          s_tuples=2 * MTUPLES, initial_nodes=2),
        ),
        cluster=ClusterSpec(n_sources=2, n_potential_nodes=8),
        scale=1.0 / 100.0,
    )
    res = run_workload(cfg)
    assert res.all_valid
    assert res.makespan_s >= max(q.arrival_s for q in res.queries)
    # arrivals honoured: nobody was admitted before arriving
    for q in res.queries:
        assert q.admitted_s >= q.arrival_s


def test_per_query_span_tracks_are_separate():
    res = run_workload(wl_config(n_queries=2, pool=8))
    tracks = {s.track for s in res.timeline.spans}
    assert "scheduler:q0" in tracks and "scheduler:q1" in tracks
