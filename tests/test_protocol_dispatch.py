"""Runtime mirror of the static protocol-exhaustiveness pass.

The static pass (``repro.checkers.protocol``) reasons about source text;
this suite re-derives the same invariant from the *imported* runtime
objects, so the two catch drift in each other: a message class added
without a handler fails both; a refactor that moves dispatch somewhere
the static pass cannot see fails only the static pass (prompting a
checker fix); a checker bug that stops seeing real handlers fails here.
"""

from __future__ import annotations

import ast
import dataclasses
import inspect
import textwrap

import numpy as np
import pytest

import repro.core.datasource
import repro.core.joinnode
import repro.core.membership
import repro.core.ooc
import repro.core.pool
import repro.core.replicate
import repro.core.scheduler
import repro.core.split
from repro.core import messages as messages_mod
from repro.hashing import HashRange, RangeRouter

#: every module that may legitimately dispatch protocol messages
DISPATCH_MODULES = (
    repro.core.joinnode,
    repro.core.scheduler,
    repro.core.datasource,
    repro.core.split,
    repro.core.replicate,
    repro.core.ooc,
    repro.core.pool,
    repro.core.membership,
)


def concrete_message_classes() -> list[type]:
    out = []
    for name in dir(messages_mod):
        obj = getattr(messages_mod, name)
        if (isinstance(obj, type) and dataclasses.is_dataclass(obj)
                and obj.__module__ == messages_mod.__name__
                and not name.startswith("_")):
            out.append(obj)
    return sorted(out, key=lambda c: c.__name__)


def dispatched_names() -> set[str]:
    """Class names referenced as isinstance targets in the live modules."""
    refs: set[str] = set()
    for mod in DISPATCH_MODULES:
        tree = ast.parse(textwrap.dedent(inspect.getsource(mod)))
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "isinstance"
                    and len(node.args) == 2):
                second = node.args[1]
                elts = second.elts if isinstance(second, ast.Tuple) else [second]
                for e in elts:
                    if isinstance(e, ast.Name):
                        refs.add(e.id)
    return refs


def synthesize(cls: type):
    """Construct a message instance with plausible dummy field values."""
    kwargs = {}
    for f in dataclasses.fields(cls):
        if f.default is not dataclasses.MISSING \
                or f.default_factory is not dataclasses.MISSING:
            continue
        ann = f.type if isinstance(f.type, str) else str(f.type)
        if f.name == "relation":
            kwargs[f.name] = "R"
        elif "np.ndarray" in ann:
            kwargs[f.name] = np.zeros(4, dtype=np.uint64)
        elif ann.startswith("tuple"):
            kwargs[f.name] = ((0, HashRange(0, 8)),)
        elif "Router" in ann:
            kwargs[f.name] = RangeRouter.initial(
                [HashRange(0, 8)], [0], positions=8)
        elif "HashRange" in ann:
            kwargs[f.name] = HashRange(0, 8)
        elif ann.startswith("float"):
            kwargs[f.name] = 0.0
        elif ann.startswith("bool"):
            kwargs[f.name] = False
        elif ann.startswith("str"):
            kwargs[f.name] = "build"
        else:
            kwargs[f.name] = 0
    return cls(**kwargs)


@pytest.mark.parametrize("cls", concrete_message_classes(),
                         ids=lambda c: c.__name__)
def test_every_message_class_is_dispatchable(cls):
    """Each concrete protocol message has a live isinstance dispatch arm."""
    assert cls.__name__ in dispatched_names(), (
        f"{cls.__name__} is defined in core/messages.py but no module in "
        f"repro/core dispatches it — receivers would drop or deadlock"
    )


@pytest.mark.parametrize("cls", concrete_message_classes(),
                         ids=lambda c: c.__name__)
def test_every_message_is_constructible_and_priced(cls):
    """Every message can be built and carries the transport contract."""
    msg = synthesize(cls)
    assert isinstance(msg.nbytes, int) and msg.nbytes >= 0
    assert msg.kind in ("control", "data", "counts", "tick")


def test_every_message_is_exported():
    exported = set(messages_mod.__all__)
    for cls in concrete_message_classes():
        assert cls.__name__ in exported, (
            f"{cls.__name__} missing from messages.__all__"
        )


def test_pool_protocol_has_both_ends():
    """The workload pool protocol is dispatched on both sides of the wire.

    The pool actor must consume what schedulers send it (requests, query
    completion) and the scheduler must consume what the pool answers
    (grants, denials); a one-sided arm would deadlock a workload run.
    """
    def arms(mod) -> set[str]:
        refs: set[str] = set()
        tree = ast.parse(textwrap.dedent(inspect.getsource(mod)))
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "isinstance"
                    and len(node.args) == 2):
                second = node.args[1]
                elts = (second.elts if isinstance(second, ast.Tuple)
                        else [second])
                refs.update(e.id for e in elts if isinstance(e, ast.Name))
        return refs

    assert {"RecruitRequest", "QueryDone"} <= arms(repro.core.pool)
    assert {"RecruitGrant", "RecruitDeny"} <= arms(repro.core.scheduler)


def test_mirror_agrees_with_static_pass():
    """The runtime ground truth and the static checker see the same world.

    If the static pass ever reports an unhandled message while this suite
    says all are dispatched (or vice versa), one of the two is blind.
    """
    from pathlib import Path

    from repro.checkers import run_lint

    root = Path(__file__).resolve().parents[1]
    static_unhandled = {
        v for v in run_lint(root, select=["protocol"])
        if v.rule == "proto-unhandled"
    }
    runtime_unhandled = {
        cls.__name__ for cls in concrete_message_classes()
        if cls.__name__ not in dispatched_names()
    }
    assert not static_unhandled and not runtime_unhandled
