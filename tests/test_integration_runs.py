"""Integration tests: full simulated runs of every algorithm.

``run_join(cfg, validate=True)`` already asserts the two global
invariants (distributed match count == sequential oracle; stored+spilled
build tuples == generated) and network byte conservation — these tests add
algorithm-specific structural assertions on top.
"""

import pytest

from tests.conftest import small_cluster, small_config, small_workload
from repro.config import Algorithm, Distribution
from repro.core import run_join
from repro.core.messages import Hop


# ----------------------------------------------------------------------
# basic runs, no expansion
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", list(Algorithm))
def test_no_expansion_when_memory_suffices(algorithm):
    cfg = small_config(algorithm, initial=12)  # 12 * 400 = 4800 >= 4000
    res = run_join(cfg)
    assert res.is_valid
    assert res.nodes_used == 12
    assert res.n_splits == 0
    assert res.extra_build_chunks() == 0
    assert res.probe_dup_chunks() == 0
    assert res.spilled_r_tuples == 0
    assert res.matches > 0 or res.reference_matches == 0


@pytest.mark.parametrize("algorithm", list(Algorithm))
def test_expansion_or_spill_under_pressure(algorithm):
    cfg = small_config(algorithm, initial=2)
    res = run_join(cfg)
    assert res.is_valid
    if algorithm is Algorithm.OUT_OF_CORE:
        assert res.nodes_used == 2
        assert res.spilled_r_tuples > 0
        assert res.times.ooc_pass_s > 0
    else:
        assert res.nodes_used > 2
        assert res.expansion_trace, "recruitments must be recorded"
        times = [t for t, _ in res.expansion_trace]
        assert times == sorted(times)


def test_single_initial_node_still_works():
    for algorithm in Algorithm:
        res = run_join(small_config(algorithm, initial=1))
        assert res.is_valid


# ----------------------------------------------------------------------
# algorithm-specific structure
# ----------------------------------------------------------------------
def test_split_produces_split_traffic_not_duplicates():
    res = run_join(small_config(Algorithm.SPLIT, initial=2))
    assert res.n_splits > 0
    assert res.split_moved_tuples > 0
    assert res.split_busy_s > 0
    assert res.comm.tuples_by_hop.get(Hop.SPLIT, 0) == res.split_moved_tuples
    assert res.probe_dup_chunks() == 0
    assert res.reshuffle_moved_tuples == 0


def test_replicate_broadcasts_probe_and_never_moves_tuples():
    res = run_join(small_config(Algorithm.REPLICATE, initial=2))
    assert res.n_splits == 0
    assert res.comm.tuples_by_hop.get(Hop.SPLIT, 0) == 0
    assert res.probe_dup_chunks() > 0
    # forwarding of pending buffers is allowed, reshuffle is not
    assert res.reshuffle_moved_tuples == 0


def test_hybrid_reshuffles_and_probes_single_destination():
    res = run_join(small_config(Algorithm.HYBRID, initial=2))
    assert res.reshuffle_moved_tuples > 0
    assert res.times.reshuffle_s > 0
    assert res.probe_dup_chunks() == 0
    assert res.comm.tuples_by_hop.get(Hop.RESHUFFLE, 0) == \
        res.reshuffle_moved_tuples
    # reshuffle balances the stored load
    avg, mx, mn = res.load_stats()
    assert mx <= avg * 1.5 + 1


def test_ooc_spills_and_joins_on_disk():
    res = run_join(small_config(Algorithm.OUT_OF_CORE, initial=2))
    assert res.spilled_r_tuples > 0
    assert res.spilled_s_tuples > 0
    assert res.times.ooc_pass_s > 0
    assert res.is_valid


def test_phase_times_are_nonnegative_and_ordered():
    for algorithm in Algorithm:
        res = run_join(small_config(algorithm, initial=2))
        t = res.times
        assert t.build_s > 0
        assert t.reshuffle_s >= 0
        assert t.probe_s > 0
        assert t.ooc_pass_s >= 0
        assert res.total_s == pytest.approx(
            t.build_s + t.reshuffle_s + t.probe_s + t.ooc_pass_s)


def test_loads_sum_to_relation_size():
    for algorithm in Algorithm:
        res = run_join(small_config(algorithm, initial=2))
        stored = sum(l.stored_tuples for l in res.loads)
        spilled = sum(l.spilled_r_tuples for l in res.loads)
        assert stored + spilled == res.config.workload.real_r_tuples


# ----------------------------------------------------------------------
# skew
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", list(Algorithm))
def test_skewed_runs_validate(algorithm):
    cfg = small_config(algorithm, initial=4,
                       workload=small_workload(sigma=0.0001))
    res = run_join(cfg)
    assert res.is_valid


def test_skew_imbalances_split_but_not_hybrid():
    wl = small_workload(r=6000, s=6000, sigma=0.0001)
    split = run_join(small_config(Algorithm.SPLIT, initial=4, workload=wl,
                                  cluster=small_cluster(pool=24)))
    hybrid = run_join(small_config(Algorithm.HYBRID, initial=4, workload=wl,
                                   cluster=small_cluster(pool=24)))
    s_avg, s_max, _ = split.load_stats()
    h_avg, h_max, _ = hybrid.load_stats()
    assert s_max / max(s_avg, 1) > h_max / max(h_avg, 1)


# ----------------------------------------------------------------------
# distributions / hashing options
# ----------------------------------------------------------------------
def test_zipf_distribution_runs_and_validates():
    wl = small_workload(distribution=Distribution.ZIPF)
    res = run_join(small_config(Algorithm.HYBRID, initial=2, workload=wl))
    assert res.is_valid


def test_hash_mixing_defeats_gaussian_skew():
    wl = small_workload(r=6000, s=6000, sigma=0.0001)
    plain = run_join(small_config(Algorithm.SPLIT, initial=4, workload=wl,
                                  cluster=small_cluster(pool=24)))
    mixed = run_join(small_config(Algorithm.SPLIT, initial=4, workload=wl,
                                  cluster=small_cluster(pool=24),
                                  mix_hash=True))
    assert mixed.is_valid
    _, p_max, _ = plain.load_stats()
    _, m_max, _ = mixed.load_stats()
    assert m_max < p_max  # mixing spreads the hotspot


# ----------------------------------------------------------------------
# pool exhaustion / fallback
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm",
                         [Algorithm.SPLIT, Algorithm.REPLICATE,
                          Algorithm.HYBRID])
def test_pool_exhaustion_degrades_to_spill(algorithm):
    cfg = small_config(algorithm, initial=2,
                       workload=small_workload(r=8000, s=2000),
                       cluster=small_cluster(pool=4))
    res = run_join(cfg)
    assert res.is_valid
    assert res.spilled_r_tuples > 0
    assert res.nodes_used == 4


def test_atomic_range_forces_spill_fallback():
    """A range of width 1 cannot be bisected; the node must spill."""
    cfg = small_config(
        Algorithm.SPLIT, initial=2,
        workload=small_workload(r=4000, s=1000, sigma=0.00001),
        cluster=small_cluster(pool=24, memory=10_000),
        hash_positions=32,  # tiny table: ranges quickly become atomic
    )
    res = run_join(cfg)
    assert res.is_valid
    assert res.spilled_r_tuples > 0


# ----------------------------------------------------------------------
# heterogeneous pool / scheduler selection
# ----------------------------------------------------------------------
def test_scheduler_recruits_largest_memory_first():
    big_node = 9
    cfg = small_config(
        Algorithm.REPLICATE, initial=2,
        cluster=small_cluster(
            pool=16,
            node_memory_overrides=((big_node, SMALL := 40_000 * 4),),
        ),
    )
    res = run_join(cfg)
    assert res.is_valid
    first_recruit = res.expansion_trace[0][1]
    assert first_recruit == big_node


# ----------------------------------------------------------------------
# misc result plumbing
# ----------------------------------------------------------------------
def test_summary_and_paper_scale():
    res = run_join(small_config(Algorithm.HYBRID, initial=2))
    text = res.summary()
    assert "hybrid" in text and "matches=" in text
    assert res.paper_scale_total_s == pytest.approx(res.total_s)  # scale=1


def test_validate_false_skips_oracle():
    res = run_join(small_config(Algorithm.SPLIT, initial=2), validate=False)
    assert res.reference_matches is None
    assert res.is_valid  # vacuously


def test_tracer_records_protocol_events():
    cfg = small_config(Algorithm.SPLIT, initial=2)
    res = run_join(cfg)
    cats = {r.category for r in res.tracer.records}
    assert "memory_full" in cats
    assert "activate" in cats
    assert "phase" in cats
