"""Unit tests for data-source buffering and the trace recorder."""

import numpy as np

from repro.data import ChunkBuffer
from repro.sim import TraceRecord, Tracer


# ----------------------------------------------------------------------
# ChunkBuffer (the shared columnar per-destination buffer)
# ----------------------------------------------------------------------
def arr(*values):
    return np.array(values, dtype=np.uint64)


def test_buffers_accumulate_and_flush_exact_chunks():
    buf = ChunkBuffer(chunk_tuples=3)
    buf.append(1, arr(10, 11))
    assert buf.pop_full_chunk(1) is None  # not enough yet
    buf.append(1, arr(12, 13))
    chunk = buf.pop_full_chunk(1)
    assert chunk.tolist() == [10, 11, 12]
    assert buf.total_buffered == 1
    assert buf.pop_full_chunk(1) is None


def test_buffers_pop_all_clears_destination():
    buf = ChunkBuffer(chunk_tuples=100)
    buf.append(2, arr(1, 2, 3))
    assert buf.pop_all(2).tolist() == [1, 2, 3]
    assert buf.pop_all(2) is None
    assert buf.destinations() == []


def test_buffers_destinations_sorted_and_nonempty_only():
    buf = ChunkBuffer(chunk_tuples=10)
    buf.append(5, arr(1))
    buf.append(2, arr(2))
    buf.append(9, np.empty(0, dtype=np.uint64))  # ignored
    assert buf.destinations() == [2, 5]


def test_buffers_drain_everything_pools_all_destinations():
    buf = ChunkBuffer(chunk_tuples=10)
    buf.append(1, arr(1, 2))
    buf.append(3, arr(3))
    pool = buf.drain_everything()
    assert sorted(pool.tolist()) == [1, 2, 3]
    assert buf.total_buffered == 0
    assert buf.drain_everything().size == 0


def test_buffers_preserve_order_within_destination():
    buf = ChunkBuffer(chunk_tuples=2)
    buf.append(0, arr(1))
    buf.append(0, arr(2))
    buf.append(0, arr(3))
    assert buf.pop_full_chunk(0).tolist() == [1, 2]
    assert buf.pop_all(0).tolist() == [3]


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
def test_tracer_records_and_selects():
    tr = Tracer()
    tr.emit(1.0, "split", "join0", moved=10)
    tr.emit(2.0, "activate", "join1")
    tr.emit(3.0, "split", "join2", moved=20)
    assert len(tr) == 3
    splits = list(tr.select("split"))
    assert [r.actor for r in splits] == ["join0", "join2"]
    assert splits[1].detail["moved"] == 20


def test_tracer_disabled_records_nothing():
    tr = Tracer(enabled=False)
    tr.emit(1.0, "x", "y")
    assert len(tr) == 0


def test_tracer_category_filter():
    tr = Tracer(categories={"keep"})
    tr.emit(1.0, "keep", "a")
    tr.emit(2.0, "drop", "b")
    assert [r.category for r in tr.records] == ["keep"]


def test_trace_record_formatting():
    rec = TraceRecord(1.5, "split", "join0", {"moved": 3})
    text = str(rec)
    assert "split" in text and "join0" in text and "moved=3" in text
    tr = Tracer()
    tr.emit(1.5, "split", "join0", moved=3)
    assert tr.format() == str(tr.records[0])
