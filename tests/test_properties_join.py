"""Property-based whole-system tests.

The strongest invariant in the repository: for *any* workload, algorithm,
memory budget and initial-node count, the distributed simulated join
produces exactly the sequential oracle's match count, loses no build
tuples, and conserves network bytes.  ``run_join(validate=True)`` asserts
all of that internally; hypothesis drives the configuration space.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.conftest import small_cluster, small_config, small_workload
from repro.config import Algorithm, SplitPolicy
from repro.core import run_join

algorithms = st.sampled_from(list(Algorithm))
policies = st.sampled_from(list(SplitPolicy))


@given(
    algorithm=algorithms,
    initial=st.integers(1, 6),
    r=st.integers(50, 3000),
    s=st.integers(50, 3000),
    memory_tuples=st.integers(80, 600),
    sigma=st.one_of(st.none(), st.sampled_from([0.01, 0.001, 0.0001])),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_any_configuration_joins_correctly(
    algorithm, initial, r, s, memory_tuples, sigma, seed
):
    cfg = small_config(
        algorithm,
        initial=initial,
        workload=small_workload(r=r, s=s, sigma=sigma, seed=seed, chunk=100),
        cluster=small_cluster(pool=10, memory=memory_tuples * 100),
    )
    res = run_join(cfg)  # validate=True raises on any mismatch
    assert res.is_valid
    assert res.nodes_used >= initial
    assert res.total_s > 0


@given(
    policy=policies,
    initial=st.integers(1, 4),
    sigma=st.one_of(st.none(), st.just(0.0001)),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_every_split_policy_joins_correctly(policy, initial, sigma, seed):
    cfg = small_config(
        Algorithm.SPLIT,
        initial=initial,
        split_policy=policy,
        workload=small_workload(r=2500, s=1500, sigma=sigma, seed=seed,
                                chunk=100),
        cluster=small_cluster(pool=12, memory=30_000),
    )
    res = run_join(cfg)
    assert res.is_valid


@given(
    algorithm=algorithms,
    chunk=st.sampled_from([50, 100, 300, 999]),
    sources=st.integers(1, 4),
)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_chunking_and_source_count_never_change_the_answer(
    algorithm, chunk, sources
):
    results = set()
    cfg = small_config(
        algorithm,
        initial=2,
        workload=small_workload(r=2000, s=2000, chunk=chunk, seed=3),
        cluster=small_cluster(pool=8, sources=sources),
    )
    res = run_join(cfg)
    assert res.is_valid
    results.add(res.matches)
    assert len(results) == 1


@given(memory=st.integers(5_000, 200_000))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_memory_budget_never_exceeded_without_record(memory):
    """Peak memory stays within budget except for recorded reshuffle
    overcommit."""
    cfg = small_config(
        Algorithm.HYBRID,
        initial=2,
        workload=small_workload(r=3000, s=1000, sigma=0.001),
        cluster=small_cluster(pool=12, memory=memory),
    )
    res = run_join(cfg)
    budget = cfg.effective_cluster.hash_memory_bytes
    for load in res.loads:
        assert load.peak_memory <= budget + res.overcommit_bytes
