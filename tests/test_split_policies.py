"""Behavioural tests for the three split policies (DESIGN.md §2)."""

import pytest

from tests.conftest import small_cluster, small_config, small_workload
from repro.config import Algorithm, SplitPolicy
from repro.core import run_join


def run_policy(policy, sigma=None, **kw):
    cfg = small_config(
        Algorithm.SPLIT,
        initial=kw.pop("initial", 2),
        split_policy=policy,
        workload=small_workload(r=6000, s=3000, sigma=sigma),
        cluster=small_cluster(pool=kw.pop("pool", 24)),
        **kw,
    )
    return run_join(cfg)


@pytest.mark.parametrize("policy", list(SplitPolicy))
def test_all_policies_validate_and_expand(policy):
    res = run_policy(policy)
    assert res.is_valid
    assert res.nodes_used > 2
    assert res.n_splits > 0
    assert res.split_moved_tuples > 0


def test_bisect_targets_the_full_node():
    """TARGETED_BISECT: every split bisects the reporter's own range."""
    res = run_policy(SplitPolicy.TARGETED_BISECT)
    for rec in res.tracer.select("expand_split"):
        assert rec.detail["owner"] == rec.detail["reporter"]


def test_linear_pointer_walks_round_robin():
    """LINEAR_POINTER: the victim cycles; it can differ from the reporter."""
    res = run_policy(SplitPolicy.LINEAR_POINTER, initial=4)
    owners = [rec.detail["owner"] for rec in res.tracer.select("expand_split")]
    assert len(owners) == len(set(owners)) or len(owners) > len(set(owners))
    # the pointer starts from the initial buckets in order
    assert owners[: 2] == sorted(owners[: 2])


def test_linear_mod_uses_directory_buckets():
    res = run_policy(SplitPolicy.LINEAR_MOD)
    recs = list(res.tracer.select("expand_linear_mod"))
    assert recs, "mod policy must use the Litwin directory"
    new_buckets = [r.detail["new_bucket"] for r in recs]
    # classic linear hashing appends buckets densely: n0, n0+1, ...
    assert new_buckets == list(range(2, 2 + len(new_buckets)))


def test_bisect_reproduces_skew_recommunication():
    """Under extreme skew the bisect policy re-ships the hot data many
    times (the paper's Figure 11 effect); the round-robin pointer mostly
    splits cold, empty buckets and moves far less."""
    bisect = run_policy(SplitPolicy.TARGETED_BISECT, sigma=0.0001, initial=4)
    pointer = run_policy(SplitPolicy.LINEAR_POINTER, sigma=0.0001, initial=4)
    assert bisect.split_moved_tuples > pointer.split_moved_tuples


def test_mod_policy_spreads_gaussian_hotspot():
    """LINEAR_MOD scatters contiguous hot positions across buckets, so the
    total per-node load (stored + spilled) is far better balanced than
    under range bisection, where the hot node absorbs the whole hotspot."""
    from repro.analysis import load_balance

    # Needs enough position resolution for the hotspot to span many
    # positions (with 2^16 positions, sigma=0.001 covers ~400 of them).
    bisect = run_policy(SplitPolicy.TARGETED_BISECT, sigma=0.001, initial=4,
                        hash_positions=1 << 16)
    mod = run_policy(SplitPolicy.LINEAR_MOD, sigma=0.001, initial=4,
                     hash_positions=1 << 16)
    assert load_balance(mod).imbalance < load_balance(bisect).imbalance


def test_policies_agree_on_the_join_answer():
    answers = {
        run_policy(p).matches for p in SplitPolicy
    }
    assert len(answers) == 1
