"""Unit tests for position maps, hash ranges and the node hash store."""

import numpy as np
import pytest

from repro.hashing import (
    HashRange,
    NodeHashStore,
    PositionMap,
    partition_positions,
    ranges_partition_space,
    splitmix64,
)
from repro.seqjoin import match_count


# ----------------------------------------------------------------------
# PositionMap
# ----------------------------------------------------------------------
def test_position_map_is_order_preserving():
    pm = PositionMap(1 << 16)
    values = np.sort(np.random.default_rng(0).integers(
        0, 1 << 32, 1000, dtype=np.uint64))
    pos = pm(values)
    assert (np.diff(pos) >= 0).all()
    assert pos.min() >= 0 and pos.max() < (1 << 16)


def test_position_map_full_range_coverage():
    pm = PositionMap(256)
    lo = pm(np.array([0], dtype=np.uint64))[0]
    hi = pm(np.array([(1 << 32) - 1], dtype=np.uint64))[0]
    assert lo == 0 and hi == 255


def test_position_map_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        PositionMap(1000)
    with pytest.raises(ValueError):
        PositionMap(0)


def test_position_map_mixing_destroys_locality():
    pm = PositionMap(1 << 16, mix=True)
    base = np.arange(1000, dtype=np.uint64) + np.uint64(1 << 20)
    pos = pm(base)
    # Mixed positions of adjacent values should be scattered widely.
    assert np.abs(np.diff(pos.astype(np.int64))).mean() > 1000
    assert pos.min() >= 0 and pos.max() < (1 << 16)


def test_splitmix64_is_deterministic_and_bijective_sample():
    x = np.arange(10_000, dtype=np.uint64)
    a, b = splitmix64(x), splitmix64(x)
    assert np.array_equal(a, b)
    assert np.unique(a).size == x.size  # no collisions on a small sample


def test_position_of_scalar():
    pm = PositionMap(1 << 10)
    assert pm.position_of(0) == 0


# ----------------------------------------------------------------------
# HashRange
# ----------------------------------------------------------------------
def test_hash_range_basics():
    r = HashRange(10, 20)
    assert r.width == 10
    assert r.contains(10) and r.contains(19) and not r.contains(20)
    left, right = r.bisect()
    assert left == HashRange(10, 15) and right == HashRange(15, 20)
    assert r.overlaps(HashRange(19, 30)) and not r.overlaps(HashRange(20, 30))


def test_hash_range_validation():
    with pytest.raises(ValueError):
        HashRange(5, 5)
    with pytest.raises(ValueError):
        HashRange(-1, 5)
    with pytest.raises(ValueError):
        HashRange(6, 5)


def test_atomic_range_cannot_bisect():
    with pytest.raises(ValueError):
        HashRange(3, 4).bisect()


def test_partition_positions_tiles_space():
    for positions, parts in ((256, 4), (100, 7), (1 << 18, 24), (5, 5)):
        ranges = partition_positions(positions, parts)
        assert len(ranges) == parts
        assert ranges_partition_space(ranges, positions)
        widths = [r.width for r in ranges]
        assert max(widths) - min(widths) <= 1


def test_partition_positions_validation():
    with pytest.raises(ValueError):
        partition_positions(4, 5)
    with pytest.raises(ValueError):
        partition_positions(4, 0)


def test_ranges_partition_space_detects_gaps_and_overlaps():
    assert ranges_partition_space([HashRange(0, 5), HashRange(5, 10)], 10)
    assert not ranges_partition_space([HashRange(0, 5), HashRange(6, 10)], 10)
    assert not ranges_partition_space([HashRange(0, 6), HashRange(5, 10)], 10)
    assert not ranges_partition_space([HashRange(0, 10)], 11)
    assert ranges_partition_space([], 0)


# ----------------------------------------------------------------------
# NodeHashStore
# ----------------------------------------------------------------------
def test_store_probe_counts_matches():
    pm = PositionMap(1 << 16)
    store = NodeHashStore(pm)
    rng = np.random.default_rng(1)
    r = rng.integers(0, 1000, 5000, dtype=np.uint64)
    s = rng.integers(0, 1000, 3000, dtype=np.uint64)
    store.insert(r[:2500].copy())
    store.insert(r[2500:].copy())
    assert store.stored_tuples == 5000
    assert store.probe(s) == match_count(r, s)


def test_store_probe_empty_cases():
    store = NodeHashStore(PositionMap(256))
    assert store.probe(np.array([1], dtype=np.uint64)) == 0
    store.insert(np.array([1], dtype=np.uint64))
    assert store.probe(np.empty(0, dtype=np.uint64)) == 0


def test_store_extract_position_range_partitions_content():
    pm = PositionMap(1 << 16)
    store = NodeHashStore(pm)
    rng = np.random.default_rng(2)
    values = rng.integers(0, 1 << 32, 10_000, dtype=np.uint64)
    store.insert(values.copy())
    out = store.extract_position_range(0, 1 << 15)
    assert out.size + store.stored_tuples == values.size
    assert (pm(out) < (1 << 15)).all()
    remaining = store.extract_position_range(0, 1 << 16)
    assert (pm(remaining) >= (1 << 15)).all()
    assert store.stored_tuples == 0


def test_store_extract_linear_bucket():
    pm = PositionMap(1 << 16)
    store = NodeHashStore(pm)
    values = np.arange(0, 1 << 32, 1 << 18, dtype=np.uint64)
    store.insert(values.copy())
    modulus, new_bucket = 4, 6  # h_{i+1}(p) = p mod 8 == 6
    out = store.extract_linear_bucket(new_bucket, modulus)
    assert (pm(out) % 8 == 6).all()
    kept = store.extract_position_range(0, 1 << 16)
    assert not (pm(kept) % 8 == 6).any()


def test_store_position_counts():
    pm = PositionMap(16)
    store = NodeHashStore(pm)
    # values mapping to positions 0 and 1
    v0 = np.zeros(5, dtype=np.uint64)
    v1 = np.full(3, 1 << 28, dtype=np.uint64)  # position 1 of 16
    store.insert(v0)
    store.insert(v1)
    counts = store.position_counts(0, 16)
    assert counts[0] == 5 and counts[1] == 3 and counts.sum() == 8
    sub = store.position_counts(1, 3)
    assert sub.tolist() == [3, 0]
    with pytest.raises(ValueError):
        store.position_counts(5, 5)


def test_store_probe_after_extract_is_consistent():
    pm = PositionMap(1 << 16)
    store = NodeHashStore(pm)
    rng = np.random.default_rng(3)
    r = rng.integers(0, 500, 4000, dtype=np.uint64)
    s = rng.integers(0, 500, 4000, dtype=np.uint64)
    store.insert(r.copy())
    moved = store.extract_position_range(0, 1 << 15)
    other = NodeHashStore(pm)
    other.insert(moved)
    assert store.probe(s) + other.probe(s) == match_count(r, s)


# ----------------------------------------------------------------------
# NodeHashStore dtype validation (insert accepts only lossless uint64)
# ----------------------------------------------------------------------
def test_store_insert_coerces_lossless_integer_dtypes():
    store = NodeHashStore(PositionMap(256))
    store.insert(np.array([1, 2, 3], dtype=np.int32))
    store.insert(np.array([4, 5], dtype=np.uint16))
    store.insert(np.array([6.0, 7.0], dtype=np.float64))  # integral floats
    assert store.stored_tuples == 7
    assert store.probe(np.array([5], dtype=np.uint64)) == 1
    # internal storage is uniformly uint64
    store.finalize()
    assert store._uniq.dtype == np.uint64
    assert int(store._ucounts.sum()) == 7


def test_store_insert_rejects_negative_values():
    store = NodeHashStore(PositionMap(256))
    with pytest.raises(ValueError, match="non-negative"):
        store.insert(np.array([3, -1], dtype=np.int64))
    with pytest.raises(ValueError, match="non-negative"):
        store.insert(np.array([-2.0], dtype=np.float32))
    assert store.stored_tuples == 0


def test_store_insert_rejects_lossy_floats():
    store = NodeHashStore(PositionMap(256))
    with pytest.raises(ValueError, match="lossy"):
        store.insert(np.array([1.5], dtype=np.float64))
    with pytest.raises(ValueError, match="finite"):
        store.insert(np.array([np.nan], dtype=np.float64))
    with pytest.raises(ValueError, match="finite"):
        store.insert(np.array([np.inf], dtype=np.float64))
    # float64 cannot represent 2**53 + 1 exactly either way, but a huge
    # magnitude that overflows uint64 entirely must be rejected too
    with pytest.raises(ValueError):
        store.insert(np.array([1e20], dtype=np.float64))
    assert store.stored_tuples == 0


def test_store_insert_rejects_non_numeric_dtypes():
    store = NodeHashStore(PositionMap(256))
    with pytest.raises(TypeError, match="numeric"):
        store.insert(np.array(["a", "b"]))
    with pytest.raises(TypeError, match="numeric"):
        store.insert(np.array([True, False]))
    assert store.stored_tuples == 0


def test_store_insert_uint64_passthrough_is_zero_copy():
    store = NodeHashStore(PositionMap(256))
    values = np.array([9, 10], dtype=np.uint64)
    store.insert(values)
    assert store._chunks[0] is values  # caller cedes ownership, no copy
