"""Unit tests for routing tables (range and linear-hash routers)."""

import numpy as np
import pytest

from repro.hashing import (
    HashRange,
    LinearHashDirectory,
    LinearHashRouter,
    RangeRouter,
    partition_positions,
)

P = 1 << 12


def make_router(parts=4):
    ranges = partition_positions(P, parts)
    return RangeRouter.initial(ranges, list(range(parts)), P)


def all_positions():
    return np.arange(P, dtype=np.int64)


# ----------------------------------------------------------------------
# RangeRouter
# ----------------------------------------------------------------------
def test_initial_router_partitions_every_position():
    router = make_router(4)
    parts = router.partition_build(all_positions())
    assert sorted(parts) == [0, 1, 2, 3]
    assert sum(v.size for v in parts.values()) == P
    # each position routed to the node owning its range
    for node, idx in parts.items():
        rng = router.entries[node][0]
        assert ((idx >= rng.lo) & (idx < rng.hi)).all()


def test_probe_equals_build_without_replicas():
    router = make_router(3)
    pos = np.random.default_rng(0).integers(0, P, 500)
    b = router.partition_build(pos)
    p = router.partition_probe(pos)
    assert sorted(b) == sorted(p)
    for n in b:
        assert np.array_equal(np.sort(b[n]), np.sort(p[n]))


def test_replica_changes_active_build_destination():
    router = make_router(2)
    v1 = router.with_replica(0, 7, version=1)
    pos = all_positions()
    build = v1.partition_build(pos)
    assert 0 not in build, "old replica no longer receives build traffic"
    assert 7 in build and 1 in build


def test_probe_broadcasts_to_whole_chain():
    router = make_router(2).with_replica(0, 7, 1).with_replica(0, 8, 2)
    pos = all_positions()
    probe = router.partition_probe(pos)
    w = router.entries[0][0].width
    assert probe[0].size == probe[7].size == probe[8].size == w
    total = sum(v.size for v in probe.values())
    assert total == P + 2 * w  # duplicates for the two extra replicas


def test_bisection_splits_single_owner_range():
    router = make_router(2)
    v1 = router.with_bisection(1, keeper=1, new_node=9, version=1)
    entries = v1.entries
    assert len(entries) == 3
    assert entries[1][1] == (1,) and entries[2][1] == (9,)
    assert entries[1][0].hi == entries[2][0].lo
    build = v1.partition_build(all_positions())
    assert sum(v.size for v in build.values()) == P


def test_bisect_replicated_range_rejected():
    router = make_router(2).with_replica(0, 7, 1)
    with pytest.raises(ValueError):
        router.with_bisection(0, 0, 9, 2)


def test_router_validation():
    with pytest.raises(ValueError):  # gap
        RangeRouter(P, ((HashRange(0, 10), (0,)),), 0)
    with pytest.raises(ValueError):  # duplicate dest
        RangeRouter(P, ((HashRange(0, P), (1, 1)),), 0)
    with pytest.raises(ValueError):  # empty chain
        RangeRouter(P, ((HashRange(0, P), ()),), 0)


def test_entry_index_for_and_replicated_groups():
    router = make_router(4).with_replica(2, 9, 1)
    rng2 = router.entries[2][0]
    assert router.entry_index_for(rng2.lo) == 2
    assert router.entry_index_for(rng2.hi - 1) == 2
    groups = router.replicated_groups()
    assert len(groups) == 1 and groups[0][1] == (2, 9)


def test_wire_bytes_grows_with_entries():
    small = make_router(2)
    big = make_router(16)
    assert big.wire_bytes() > small.wire_bytes() > 0


def test_owners_lists_every_destination():
    router = make_router(2).with_replica(0, 7, 1)
    assert router.owners() == {0, 1, 7}


# ----------------------------------------------------------------------
# LinearHashRouter (classic mod addressing)
# ----------------------------------------------------------------------
def test_linear_router_initial_matches_mod():
    r = LinearHashRouter(n0=4, level=0, split_pointer=0,
                         bucket_nodes=(10, 11, 12, 13))
    pos = all_positions()
    buckets = r.bucket_of(pos)
    assert np.array_equal(buckets, pos % 4)
    parts = r.partition_build(pos)
    assert sorted(parts) == [10, 11, 12, 13]
    assert sum(v.size for v in parts.values()) == P


def test_linear_router_split_pointer_uses_next_level():
    # n0=2, level=0, pointer=1: bucket 0 already split into {0, 2}.
    r = LinearHashRouter(n0=2, level=0, split_pointer=1,
                         bucket_nodes=(5, 6, 7))
    pos = all_positions()
    buckets = r.bucket_of(pos)
    even = pos % 2 == 0
    assert set(np.unique(buckets[even])) == {0, 2}
    assert set(np.unique(buckets[~even])) == {1}
    assert np.array_equal(buckets[even], pos[even] % 4)


def test_linear_router_validation():
    with pytest.raises(ValueError):
        LinearHashRouter(0, 0, 0, ())
    with pytest.raises(ValueError):
        LinearHashRouter(2, 0, 2, (1, 2, 3, 4))
    with pytest.raises(ValueError):  # wrong bucket count
        LinearHashRouter(2, 0, 1, (1, 2))


# ----------------------------------------------------------------------
# LinearHashDirectory
# ----------------------------------------------------------------------
def test_directory_split_lifecycle():
    d = LinearHashDirectory(2, [0, 1])
    t = d.begin_split(new_node=5)
    assert t.bucket == 0 and t.new_bucket == 2 and t.owner_node == 0
    assert d.split_in_progress
    with pytest.raises(RuntimeError):
        d.begin_split(6)
    with pytest.raises(RuntimeError):
        d.router(1)
    d.complete_split(t)
    assert not d.split_in_progress
    assert d.bucket_nodes == [0, 1, 5]
    d.check_invariants()


def test_directory_level_wraps_after_full_round():
    d = LinearHashDirectory(2, [0, 1])
    for new in (5, 6):
        t = d.begin_split(new)
        d.complete_split(t)
        d.check_invariants()
    assert d.level == 1
    assert d.split_pointer == 0
    assert d.n_buckets == 4


def test_directory_router_reflects_completed_splits():
    d = LinearHashDirectory(2, [0, 1])
    t = d.begin_split(5)
    d.complete_split(t)
    r = d.router(version=3)
    assert r.version == 3
    assert r.n_buckets == 3
    pos = all_positions()
    parts = r.partition_build(pos)
    assert sum(v.size for v in parts.values()) == P
    assert set(parts) == {0, 1, 5}


def test_directory_complete_wrong_ticket_rejected():
    d = LinearHashDirectory(2, [0, 1])
    t = d.begin_split(5)
    d.complete_split(t)
    with pytest.raises(RuntimeError):
        d.complete_split(t)


def test_directory_requires_one_node_per_bucket():
    with pytest.raises(ValueError):
        LinearHashDirectory(2, [0])
