"""Unit tests for the cluster substrate: memory, disk, nodes, assembly."""

import pytest

from repro.cluster import Cluster, MemoryAccount, MemoryFullError, Node
from repro.config import ClusterSpec, CostModel
from repro.sim import Interrupt, Simulator


# ----------------------------------------------------------------------
# MemoryAccount
# ----------------------------------------------------------------------
def test_memory_alloc_and_free_roundtrip():
    mem = MemoryAccount(100)
    assert mem.try_alloc(60)
    assert mem.used == 60 and mem.available == 40
    mem.free(20)
    assert mem.used == 40
    assert mem.peak == 60


def test_memory_rejects_overflow():
    mem = MemoryAccount(100)
    assert not mem.try_alloc(101)
    assert mem.used == 0
    with pytest.raises(MemoryFullError) as err:
        mem.alloc(150)
    assert err.value.requested == 150
    assert err.value.available == 100


def test_memory_exact_fill_is_full():
    mem = MemoryAccount(10)
    assert mem.try_alloc(10)
    assert mem.is_full
    assert mem.fits(0)
    assert not mem.fits(1)


def test_memory_free_more_than_used_raises():
    mem = MemoryAccount(10)
    mem.alloc(5)
    with pytest.raises(ValueError):
        mem.free(6)


def test_memory_negative_operations_rejected():
    mem = MemoryAccount(10)
    with pytest.raises(ValueError):
        mem.try_alloc(-1)
    with pytest.raises(ValueError):
        mem.free(-1)
    with pytest.raises(ValueError):
        MemoryAccount(-5)


# ----------------------------------------------------------------------
# Disk
# ----------------------------------------------------------------------
def test_disk_charges_seek_plus_transfer():
    sim = Simulator()
    cost = CostModel()
    node = Node(sim, 0, "join", cost, hash_memory_bytes=0)

    def writer(sim, node):
        yield from node.disk.write(cost.disk_bandwidth)  # exactly 1 second

    sim.spawn(writer(sim, node))
    sim.run()
    assert sim.now == pytest.approx(cost.disk_seek + 1.0)
    assert node.disk.bytes_written == cost.disk_bandwidth
    assert node.disk.ops == 1


def test_disk_serializes_requests():
    sim = Simulator()
    cost = CostModel()
    node = Node(sim, 0, "join", cost)

    def io(sim, node):
        yield from node.disk.write(0)
        yield from node.disk.read(0)

    sim.spawn(io(sim, node))
    sim.run()
    assert sim.now == pytest.approx(2 * cost.disk_seek)
    assert node.disk.busy_time == pytest.approx(2 * cost.disk_seek)


class _Counter:
    """Minimal duck-typed metric counter (see Disk.written_counter)."""

    def __init__(self):
        self.value = 0

    def inc(self, n):
        self.value += n


def test_disk_accounting_conserved_under_interrupts():
    """Byte/op counters must reflect only *completed* transfers: a writer
    interrupted while queued for the device, or mid-transfer, performed no
    I/O.  Regression test for counters being credited before the device
    was even acquired."""
    sim = Simulator()
    cost = CostModel()
    node = Node(sim, 0, "join", cost)
    node.disk.written_counter = _Counter()
    completed = []

    def writer(tag, nbytes):
        try:
            yield from node.disk.write(nbytes)
            completed.append((tag, nbytes))
        except Interrupt:
            pass

    # a holds the device; b is interrupted while queued; a is interrupted
    # mid-transfer; c (spawned after the carnage) must still complete.
    a = sim.spawn(writer("a", 4 * cost.disk_bandwidth))  # ~4s transfer
    b = sim.spawn(writer("b", cost.disk_bandwidth))

    def saboteur(sim):
        yield sim.timeout(0.5)
        b.interrupt("cancel queued write")
        yield sim.timeout(0.5)
        a.interrupt("cancel in-flight write")
        yield sim.timeout(0.0)
        sim.spawn(writer("c", 2 * cost.disk_bandwidth))

    sim.spawn(saboteur(sim))
    sim.run()

    assert completed == [("c", 2 * cost.disk_bandwidth)]
    assert node.disk.bytes_written == 2 * cost.disk_bandwidth
    assert node.disk.ops == 1
    assert node.disk.written_counter.value == node.disk.bytes_written


def test_disk_read_accounting_conserved_under_interrupts():
    sim = Simulator()
    cost = CostModel()
    node = Node(sim, 0, "join", cost)
    node.disk.read_counter = _Counter()

    def reader(sim, node):
        try:
            yield from node.disk.read(10 * cost.disk_bandwidth)
        except Interrupt:
            pass

    p = sim.spawn(reader(sim, node))

    def saboteur(sim):
        yield sim.timeout(1.0)
        p.interrupt("abort read")

    sim.spawn(saboteur(sim))
    sim.run()
    assert node.disk.bytes_read == 0
    assert node.disk.ops == 0
    assert node.disk.read_counter.value == 0


def test_disk_rejects_negative_sizes():
    sim = Simulator()
    node = Node(sim, 0, "join", CostModel())
    with pytest.raises(ValueError):
        next(node.disk.write(-1))
    with pytest.raises(ValueError):
        next(node.disk.read(-1))


# ----------------------------------------------------------------------
# Node & Cluster
# ----------------------------------------------------------------------
def test_node_compute_occupies_cpu():
    sim = Simulator()
    node = Node(sim, 3, "src", CostModel())

    def worker(sim, node):
        yield from node.compute(1.5)
        yield from node.compute_per_tuple(2.0, 3)

    sim.spawn(worker(sim, node))
    sim.run()
    assert sim.now == pytest.approx(7.5)
    assert node.name == "src3"


def test_cluster_build_layout():
    sim = Simulator()
    spec = ClusterSpec(n_sources=3, n_potential_nodes=5,
                       hash_memory_bytes=1000)
    cluster = Cluster.build(sim, spec)
    assert cluster.scheduler_node.role == "sched"
    assert len(cluster.source_nodes) == 3
    assert len(cluster.join_nodes) == 5
    ids = [n.node_id for n in cluster.all_nodes]
    assert ids == sorted(set(ids)), "node ids must be unique and ordered"
    assert all(n.memory.capacity == 1000 for n in cluster.join_nodes)


def test_cluster_memory_overrides():
    sim = Simulator()
    spec = ClusterSpec(
        n_potential_nodes=4,
        hash_memory_bytes=100,
        node_memory_overrides=((2, 999),),
    )
    cluster = Cluster.build(sim, spec)
    assert cluster.join_node(2).memory.capacity == 999
    assert cluster.join_node(1).memory.capacity == 100
    assert spec.memory_of(2) == 999
    assert spec.memory_of(0) == 100


def test_node_recv_credits_match_cost_model():
    sim = Simulator()
    cost = CostModel(recv_window_chunks=7)
    node = Node(sim, 0, "join", cost)
    assert node.recv_credits.capacity == 7
