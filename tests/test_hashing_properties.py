"""Property-based tests for hash machinery invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import (
    HashRange,
    LinearHashDirectory,
    PositionMap,
    RangeRouter,
    greedy_contiguous_partition,
    partition_positions,
    partition_range_by_counts,
    ranges_partition_space,
)

P = 1 << 10


@given(parts=st.integers(1, 64), positions=st.integers(64, 4096))
@settings(max_examples=200, deadline=None)
def test_partition_positions_always_tiles(parts, positions):
    parts = min(parts, positions)
    ranges = partition_positions(positions, parts)
    assert ranges_partition_space(ranges, positions)
    assert sum(r.width for r in ranges) == positions


@given(
    n_ops=st.integers(0, 12),
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=150, deadline=None)
def test_range_router_tiles_after_any_mutation_sequence(n_ops, seed):
    """Replicas and bisections, in any order, keep the space tiled and
    every position routed to exactly one build destination."""
    rng = np.random.default_rng(seed)
    router = RangeRouter.initial(partition_positions(P, 4), [0, 1, 2, 3], P)
    next_node = 10
    for _ in range(n_ops):
        idx = int(rng.integers(0, len(router.entries)))
        rng_entry, chain = router.entries[idx]
        if rng.random() < 0.5:
            router = router.with_replica(idx, next_node, router.version + 1)
        elif len(chain) == 1 and rng_entry.width >= 2:
            router = router.with_bisection(idx, chain[0], next_node,
                                           router.version + 1)
        else:
            continue
        next_node += 1
    ranges = [r for r, _ in router.entries]
    assert ranges_partition_space(ranges, P)
    positions = np.arange(P, dtype=np.int64)
    build = router.partition_build(positions)
    assert sum(v.size for v in build.values()) == P
    merged = np.sort(np.concatenate(list(build.values())))
    assert np.array_equal(merged, positions), "each position exactly once"
    # probe covers every position at least once
    probe = router.partition_probe(positions)
    covered = np.unique(np.concatenate(list(probe.values())))
    assert covered.size == P


@given(splits=st.integers(0, 20), n0=st.integers(1, 6))
@settings(max_examples=100, deadline=None)
def test_linear_directory_invariants_over_any_split_count(splits, n0):
    d = LinearHashDirectory(n0, list(range(n0)))
    new = 100
    for _ in range(splits):
        t = d.begin_split(new)
        d.check_invariants()
        d.complete_split(t)
        d.check_invariants()
        new += 1
    assert d.n_buckets == n0 + splits
    router = d.router(version=1)
    positions = np.arange(P, dtype=np.int64)
    parts = router.partition_build(positions)
    merged = np.sort(np.concatenate(list(parts.values())))
    assert np.array_equal(merged, positions)
    # every bucket's positions rehash to that bucket under the directory
    buckets = router.bucket_of(positions)
    assert buckets.min() >= 0 and buckets.max() < d.n_buckets


@given(
    weights=st.lists(st.integers(0, 1000), min_size=1, max_size=300),
    parts=st.integers(1, 24),
)
@settings(max_examples=300, deadline=None)
def test_greedy_partition_contiguity_coverage_balance(weights, parts):
    w = np.array(weights, dtype=np.int64)
    slices = greedy_contiguous_partition(w, parts)
    assert len(slices) == parts
    # contiguity + coverage
    assert slices[0][0] == 0 and slices[-1][1] == len(w)
    for (a, b), (c, d) in zip(slices, slices[1:]):
        assert b == c and a <= b and c <= d
    # the paper's balance guarantee: no slice exceeds ideal + max weight
    total = int(w.sum())
    if total > 0:
        bound = total / parts + int(w.max())
        for lo, hi in slices:
            assert int(w[lo:hi].sum()) <= bound + 1e-9


@given(
    width=st.integers(2, 500),
    parts=st.integers(1, 10),
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=150, deadline=None)
def test_partition_range_by_counts_tiles_the_range(width, parts, seed):
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, 50, width)
    hr = HashRange(100, 100 + width)
    cuts = partition_range_by_counts(hr, counts, parts)
    assert len(cuts) == parts
    spans = [c for c in cuts if c is not None]
    assert ranges_partition_space(
        [HashRange(c.lo - 100, c.hi - 100) for c in spans], width
    )


@given(bits=st.integers(1, 20), seed=st.integers(0, 2**32 - 1))
@settings(max_examples=100, deadline=None)
def test_position_map_bounds_and_monotonicity(bits, seed):
    pm = PositionMap(1 << bits)
    rng = np.random.default_rng(seed)
    values = np.sort(rng.integers(0, 1 << 32, 500, dtype=np.uint64))
    pos = pm(values)
    assert pos.min() >= 0 and pos.max() < (1 << bits)
    assert (np.diff(pos) >= 0).all()


# ----------------------------------------------------------------------
# greedy_contiguous_partition: the documented slice-weight bound
# ----------------------------------------------------------------------
@given(
    weights=st.lists(st.integers(0, 10_000), min_size=1, max_size=512),
    parts=st.integers(1, 32),
)
@settings(max_examples=300, deadline=None)
def test_greedy_partition_weight_bound(weights, parts):
    """Every slice's weight is at most total/parts + max(weights), and the
    slices tile [0, n) in order — the function's documented guarantee."""
    w = np.asarray(weights, dtype=np.int64)
    slices = greedy_contiguous_partition(w, parts)
    assert len(slices) == parts
    # tiling: ordered, contiguous, covering
    assert slices[0][0] == 0 and slices[-1][1] == len(w)
    for (_, hi), (lo, _) in zip(slices, slices[1:]):
        assert hi == lo
    bound = w.sum() / parts + w.max()
    for lo, hi in slices:
        assert w[lo:hi].sum() <= bound + 1e-9


@given(n=st.integers(1, 256), parts=st.integers(1, 32))
@settings(max_examples=100, deadline=None)
def test_greedy_partition_all_zero_weights(n, parts):
    """Zero total weight must still tile the range without crashing."""
    slices = greedy_contiguous_partition(np.zeros(n, dtype=np.int64), parts)
    assert len(slices) == parts
    assert slices[0][0] == 0 and slices[-1][1] == n
    for (_, hi), (lo, _) in zip(slices, slices[1:]):
        assert hi == lo


@given(
    n=st.integers(1, 256),
    hot=st.integers(0, 255),
    weight=st.integers(1, 10_000),
    parts=st.integers(1, 32),
)
@settings(max_examples=200, deadline=None)
def test_greedy_partition_single_hot_position(n, hot, weight, parts):
    """All weight on one position: exactly one slice carries it and the
    bound degenerates to max(weights) <= total/parts + max(weights)."""
    hot = hot % n
    w = np.zeros(n, dtype=np.int64)
    w[hot] = weight
    slices = greedy_contiguous_partition(w, parts)
    carriers = [(lo, hi) for lo, hi in slices if lo <= hot < hi]
    assert len(carriers) == 1
    lo, hi = carriers[0]
    assert w[lo:hi].sum() == weight <= weight + weight / parts
