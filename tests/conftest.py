"""Shared fixtures: small, fast join-run configurations.

The integration tests run the full simulated system on shrunken workloads
(thousands of tuples) so the whole suite stays fast while still exercising
every protocol path: expansion, forwarding, splits, reshuffle, spilling,
drain detection and probe broadcast.
"""

import pytest

from repro.config import (
    Algorithm,
    ClusterSpec,
    Distribution,
    RunConfig,
    WorkloadSpec,
)

SMALL_MEMORY = 40_000  # bytes -> 400 tuples of 100B per node


def small_workload(r=4000, s=4000, sigma=None, tuple_bytes=100, chunk=200,
                   seed=7, **kw):
    """Tiny workload in *real* tuples (scale=1)."""
    kw.setdefault(
        "distribution",
        Distribution.UNIFORM if sigma is None else Distribution.GAUSSIAN,
    )
    return WorkloadSpec(
        r_tuples=r,
        s_tuples=s,
        tuple_bytes=tuple_bytes,
        gauss_sigma=sigma if sigma is not None else 0.001,
        chunk_tuples=chunk,
        scale=1.0,
        seed=seed,
        **kw,
    )


def small_cluster(pool=16, memory=SMALL_MEMORY, sources=2, **kw):
    return ClusterSpec(
        n_sources=sources,
        n_potential_nodes=pool,
        hash_memory_bytes=memory,
        **kw,
    )


def small_config(algorithm=Algorithm.HYBRID, initial=2, *, workload=None,
                 cluster=None, **kw):
    kw.setdefault("hash_positions", 1 << 12)
    return RunConfig(
        algorithm=algorithm,
        initial_nodes=initial,
        workload=workload or small_workload(),
        cluster=cluster or small_cluster(),
        **kw,
    )


@pytest.fixture
def config_factory():
    return small_config
