"""Causal tracing and critical-path analysis (repro.obs.causality/critpath).

Unit tests for the CausalLog / kernel provenance plumbing, plus
whole-system assertions: every run yields a complete causal DAG, the
extracted critical path tiles the makespan (within 1%, the ISSUE's
acceptance bound — by construction it is exact up to float noise), and
the ranked report tells the paper's Figure 11 story (replication's probe
broadcast dominates under skew, while splitting pays nothing there).
"""

import math

import pytest

from repro import run_join
from repro.config import Algorithm
from repro.obs import CausalLog, critical_path, explain
from repro.obs.timeline import SpanLog
from repro.sim import Mailbox, Simulator

from .conftest import small_config, small_workload

ALL_ALGOS = (
    Algorithm.SPLIT, Algorithm.REPLICATE, Algorithm.HYBRID,
    Algorithm.OUT_OF_CORE,
)


class FakeMsg:
    kind = "control"

    def __init__(self, nbytes=64, hop=None, tuples=0):
        self.nbytes = nbytes
        if hop is not None:
            self.hop = hop
        self.tuples = tuples


# ----------------------------------------------------------------------
# kernel provenance
# ----------------------------------------------------------------------
def test_event_parent_defaults_to_none():
    sim = Simulator()
    ev = sim.event()
    assert ev.parent is None


def test_current_event_set_during_step():
    sim = Simulator()
    seen = []
    ev = sim.event()
    ev.add_callback(lambda e: seen.append(sim.current_event))
    ev.succeed(None)
    assert sim.current_event is None
    sim.run()
    assert seen == [ev]
    assert sim.current_event is None


def test_mailbox_handoff_stamps_parent():
    sim = Simulator()
    box = Mailbox(sim)
    got = {}

    def getter():
        ev = box.get()          # blocks: queue is empty
        msg = yield ev
        got["msg"] = msg
        got["parent"] = ev.parent

    def putter():
        yield sim.timeout(1.0)
        box.put("hello")

    sim.spawn(getter())
    sim.spawn(putter())
    sim.run()
    assert got["msg"] == "hello"
    # The getter was resumed by the putter's timeout event.
    assert got["parent"] is not None


def test_mailbox_deq_probe_fires_on_get_and_drain():
    sim = Simulator()
    box = Mailbox(sim)
    dequeued = []
    box.deq_probe = dequeued.append
    box.put("a")
    box.put("b")
    assert dequeued == []        # nothing dequeued yet
    ev = box.get()
    sim.run()
    assert ev.value == "a"
    assert dequeued == ["a"]
    assert box.drain() == ["b"]
    assert dequeued == ["a", "b"]


# ----------------------------------------------------------------------
# CausalLog unit behaviour
# ----------------------------------------------------------------------
def test_causal_log_records_edges_and_causes():
    log = CausalLog(aliases={"join3": "join0"})
    m1, m2 = FakeMsg(), FakeMsg(nbytes=128)
    e1 = log.on_send("scheduler0", "join3", m1, t=1.0)
    assert e1.eid == 0 and e1.dst == "join0" and e1.parent is None
    assert not e1.delivered
    log.on_deliver(e1, m1, t=1.5)
    assert e1.delivered and e1.wire_s == pytest.approx(0.5)
    # The receiver dequeues it: it becomes join0's current cause...
    log.note_dequeue("join3", m1)
    assert log.cause_of("join3") == 0 == log.cause_of("join0")
    # ...so its reply is parented on it.
    e2 = log.on_send("join3", "scheduler0", m2, t=2.0)
    assert e2.parent == 0
    assert log.children(0) == [e2]
    assert log.roots() == [e1]
    assert len(log) == 2


def test_causal_log_explicit_parent_and_attempts():
    log = CausalLog()
    e1 = log.on_send("a", "b", FakeMsg(), t=0.0)
    e2 = log.on_send("a", "b", FakeMsg(), t=1.0, parent=e1.eid)
    assert e2.parent == e1.eid
    log.on_attempt(e2)
    assert e2.attempts == 2
    assert log.retransmitted() == [e2]


def test_note_dequeue_ignores_local_messages():
    log = CausalLog()
    log.note_dequeue("a", FakeMsg())   # never delivered via the network
    assert log.cause_of("a") is None


def test_request_pairs_matches_by_parent():
    log = CausalLog()

    class Req(FakeMsg):
        pass

    class Resp(FakeMsg):
        pass

    req, resp = Req(), Resp()
    e_req = log.on_send("sched", "join", req, t=0.0)
    log.on_deliver(e_req, req, t=0.1)
    log.note_dequeue("join", req)
    e_resp = log.on_send("join", "sched", resp, t=0.2)
    pairs = log.request_pairs("Req", "Resp")
    assert pairs == [(e_req, e_resp)]
    assert log.request_pairs("Resp", "Req") == []


def test_edge_to_dict_round_trips_json():
    import json

    log = CausalLog()
    e = log.on_send("a", "b", FakeMsg(hop="primary", tuples=5), t=0.0)
    d = json.loads(json.dumps(log.to_dicts()))[0]
    assert d["eid"] == e.eid and d["hop"] == "primary"
    assert d["t_deliver"] is None     # in flight -> null, not NaN


# ----------------------------------------------------------------------
# critical_path unit behaviour
# ----------------------------------------------------------------------
def test_critical_path_tiles_interval_with_waits():
    spans = SpanLog()
    spans.add("join0", "build", 1.0, 4.0)
    spans.add("join1", "probe", 5.0, 9.0)
    phases = SpanLog()
    phases.add("scheduler", "build", 0.0, 4.0)
    phases.add("scheduler", "probe", 4.0, 10.0)
    path = critical_path(spans.spans, [], 10.0, phases.spans)
    assert sum(s.duration for s in path) == pytest.approx(10.0)
    assert path[0].t0 == 0.0 and path[-1].t1 == 10.0
    # Steps tile: each starts where the previous ended.
    for a, b in zip(path, path[1:]):
        assert a.t1 == pytest.approx(b.t0)
    names = [s.name for s in path]
    assert names == ["wait:build", "build", "wait:probe", "probe", "wait:probe"]
    kinds = [s.kind for s in path]
    assert kinds == ["wait", "node", "wait", "node", "wait"]


def test_critical_path_prefers_segment_reaching_back_earliest():
    spans = SpanLog()
    spans.add("join0", "build", 0.0, 10.0)
    spans.add("join1", "build", 8.0, 10.0)
    path = critical_path(spans.spans, [], 10.0, [])
    assert len(path) == 1
    assert path[0].track == "join0"


def test_critical_path_empty_inputs():
    assert critical_path([], [], 0.0, []) == []
    path = critical_path([], [], 1.0, [])
    assert [s.kind for s in path] == ["wait"]
    assert path[0].duration == pytest.approx(1.0)


# ----------------------------------------------------------------------
# whole-system: causal DAG properties on real runs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ALL_ALGOS, ids=lambda a: a.value)
def test_run_produces_complete_causal_dag(algorithm):
    res = run_join(small_config(algorithm))
    log = res.causal
    assert log is not None and len(log.edges) > 0
    for e in log.edges:
        # End of run: nothing in flight, every edge delivered in order.
        assert e.delivered
        assert e.t_deliver >= e.t_send
        assert e.attempts == 1          # fault-free run
        if e.parent is not None:        # parents precede children
            assert log.edges[e.parent].t_send <= e.t_send
    # Track names are the pool-indexed span tracks, not global node names.
    actors = {e.src for e in log.edges} | {e.dst for e in log.edges}
    assert "scheduler" in actors
    assert any(a.startswith("src") for a in actors)
    assert any(a.startswith("join") for a in actors)


@pytest.mark.parametrize("algorithm", ALL_ALGOS, ids=lambda a: a.value)
def test_recruitment_pairs_cover_activated_nodes(algorithm):
    res = run_join(small_config(algorithm))
    pairs = res.causal.request_pairs("ActivateJoin", "ActivateAck")
    # Every node that was used completed the recruitment handshake.
    assert len(pairs) >= res.nodes_used
    for req, ack in pairs:
        assert req.src == "scheduler" and ack.dst == "scheduler"
        assert req.dst == ack.src       # the recruited node answers itself
        assert ack.t_send >= req.t_deliver


# ----------------------------------------------------------------------
# whole-system: critical path and the explain report
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ALL_ALGOS, ids=lambda a: a.value)
def test_critical_path_sums_to_makespan(algorithm):
    res = run_join(small_config(algorithm))
    report = explain(res)
    assert report.makespan_s == pytest.approx(res.total_s)
    assert report.path, "critical path must not be empty"
    # ISSUE acceptance bound: within 1% of the makespan (exact by
    # construction, so this also guards against tiling bugs).
    assert report.path_total_s == pytest.approx(report.makespan_s, rel=0.01)
    for a, b in zip(report.path, report.path[1:]):
        assert a.t1 == pytest.approx(b.t0, abs=1e-9)
    assert report.path[0].t0 == pytest.approx(0.0, abs=1e-9)
    assert report.path[-1].t1 == pytest.approx(report.makespan_s)
    # Shares are a partition of the makespan.
    assert sum(b["seconds"] for b in report.bottlenecks) == pytest.approx(
        report.makespan_s
    )
    assert sum(b["share"] for b in report.bottlenecks) == pytest.approx(1.0)


def test_replication_probe_broadcast_dominates_under_skew():
    """Figure 11's story: under skew, replication pays a probe broadcast
    (every probe tuple of a replicated range goes to all replicas) that
    ends up dominating the run, while splitting broadcasts nothing."""
    skewed = small_workload(sigma=0.05)
    rep = explain(run_join(small_config(Algorithm.REPLICATE,
                                        workload=skewed)))
    spl = explain(run_join(small_config(Algorithm.SPLIT, workload=skewed)))

    # Replication duplicated a large share of the probe stream...
    assert rep.probe_broadcast["dup_tuples"] > 0
    assert rep.probe_broadcast["dup_share"] > 0.5
    # ...while splitting sent every probe tuple exactly once.
    assert spl.probe_broadcast.get("dup_tuples", 0) == 0

    # And the probe phase is replication's dominant phase: the top-ranked
    # bottleneck is probe work on some join node.
    top = rep.bottlenecks[0]
    assert top["name"] == "probe" and top["track"].startswith("join")
    probe_phase = next(p for p in rep.phases if p["name"] == "probe")
    assert probe_phase["share"] > max(
        p["share"] for p in rep.phases if p["name"] != "probe"
    )


def test_explain_report_structure_and_serialization():
    import json

    res = run_join(small_config(Algorithm.HYBRID))
    report = explain(res)
    doc = json.loads(json.dumps(report.to_dict()))
    assert doc["algorithm"] == "hybrid"
    assert doc["critical_path_total_s"] == pytest.approx(doc["makespan_s"])
    assert len(doc["critical_path"]) == len(report.path)
    # Node report: fractions in range, blocked = active - busy when positive.
    assert doc["nodes"], "utilization report must be populated"
    for n in doc["nodes"]:
        for key in ("active", "busy", "idle", "blocked"):
            assert 0.0 <= n[key] <= 1.0 + 1e-9, (n["track"], key)
        assert n["idle"] == pytest.approx(1.0 - n["active"], abs=1e-9)
    tracks = {n["track"] for n in doc["nodes"]}
    assert any(t.startswith("join") for t in tracks)
    # Phase report covers the timeline's phases with finite skew numbers.
    assert [p["name"] for p in doc["phases"]] == [
        s.name for s in res.timeline.phase_spans()
    ]
    for p in doc["phases"]:
        if p["tuple_skew"] is not None:
            assert p["tuple_skew"] >= 1.0
    text = report.to_text()
    assert "ranked bottlenecks" in text
    assert "critical path" in text


def test_explain_tolerates_results_without_observability():
    class Bare:
        pass

    report = explain(Bare())
    assert report.makespan_s == 0.0
    assert report.path == []
    assert report.bottlenecks == []
    assert report.to_text()


def test_scheduler_relief_messages_are_parented_on_memory_full():
    # The small memory budget forces MemoryFull -> relief cycles; the
    # ReliefPing each cycle sends must be parented on the reporter's
    # MemoryFull edge even though the scheduler dequeued other messages
    # in between (the _full_edges bookkeeping).
    res = run_join(small_config(Algorithm.SPLIT))
    log = res.causal
    pings = [e for e in log.edges if e.msg_type == "ReliefPing"]
    assert pings, "small memory must force at least one relief cycle"
    parent_types = {
        log.edges[p.parent].msg_type for p in pings if p.parent is not None
    }
    # A re-ping after a still-full ack is parented on that ReliefAck —
    # also correct causality — but the first ping of every cycle must
    # point back at the MemoryFull that triggered it.
    assert "MemoryFull" in parent_types
    assert parent_types <= {"MemoryFull", "ReliefAck"}
