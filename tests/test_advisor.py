"""Tests for the strategy advisor (the paper's §6 policy) — including an
end-to-end check that the advice actually wins in simulation."""

import pytest

from tests.conftest import small_cluster, small_config, small_workload
from repro.analysis import recommend_strategy
from repro.config import Algorithm
from repro.core import run_join

CAP = 625_000  # tuples per node under the default calibration


def test_skew_always_recommends_hybrid():
    rec = recommend_strategy(10_000_000, CAP, 4, skewed=True)
    assert rec.algorithm is Algorithm.HYBRID
    assert "skew" in rec.reason


def test_larger_build_relation_recommends_replication():
    rec = recommend_strategy(100_000_000, CAP, 4, build_is_larger=True)
    assert rec.algorithm is Algorithm.REPLICATE


def test_no_expansion_recommends_split():
    rec = recommend_strategy(1_000_000, CAP, 16, estimate_error_factor=1.0)
    assert rec.algorithm is Algorithm.SPLIT
    assert rec.expected_expansion == 1.0


def test_small_expansion_recommends_split():
    # 4 initial nodes, worst case needs ~6 -> E = 1.5 < crossover (~2)
    rec = recommend_strategy(3_000_000, CAP, 4, estimate_error_factor=1.2)
    assert rec.algorithm is Algorithm.SPLIT
    assert 1.0 < rec.expected_expansion < 2.0


def test_large_expansion_recommends_hybrid():
    rec = recommend_strategy(10_000_000, CAP, 1, estimate_error_factor=2.0)
    assert rec.algorithm is Algorithm.HYBRID
    assert rec.expected_expansion > 2.0


def test_skew_outranks_build_size():
    rec = recommend_strategy(100_000_000, CAP, 4, skewed=True,
                             build_is_larger=True)
    assert rec.algorithm is Algorithm.HYBRID


def test_validation_errors():
    with pytest.raises(ValueError):
        recommend_strategy(0, CAP, 4)
    with pytest.raises(ValueError):
        recommend_strategy(100, 0, 4)
    with pytest.raises(ValueError):
        recommend_strategy(100, CAP, 0)
    with pytest.raises(ValueError):
        recommend_strategy(100, CAP, 4, estimate_error_factor=0.5)


def test_str_rendering():
    rec = recommend_strategy(10_000_000, CAP, 2)
    text = str(rec)
    assert rec.algorithm.value in text and "E~" in text


def test_advice_wins_in_simulation_under_skew():
    """The recommended algorithm actually beats the anti-recommendation."""
    rec = recommend_strategy(6000, 400, 4, skewed=True)
    wl = small_workload(r=6000, s=6000, sigma=0.0001)
    cluster = small_cluster(pool=24)
    advised = run_join(small_config(rec.algorithm, initial=4, workload=wl,
                                    cluster=cluster), validate=False)
    split = run_join(small_config(Algorithm.SPLIT, initial=4, workload=wl,
                                  cluster=cluster), validate=False)
    assert advised.total_s < split.total_s
