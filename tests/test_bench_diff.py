"""The bench-diff regression gate (repro.bench.diff + CLI wiring).

The gate's contract: a self-diff of any baseline passes exactly (the
simulator is deterministic, so identical code gives identical timings),
an injected slowdown beyond the threshold fails with exit 1, and a
structurally broken comparison (missing series, different benchmark)
fails rather than silently skipping the vanished points.
"""

import json
import math

import pytest

from repro.bench import BaselineError, diff_baselines, load_baseline
from repro.bench.diff import Delta
from repro.cli import main


def make_baseline(**overrides):
    doc = {
        "benchmark": "fig_parallelism",
        "scale": 0.02,
        "series": {
            "split": {
                "2": {"total_s": 10.0, "build_s": 4.0},
                "4": {"total_s": 6.0, "build_s": 2.5},
                "16": {"total_s": 3.0, "build_s": 1.0},
            },
            "replicate": {
                "2": {"total_s": 12.0, "build_s": 4.5},
            },
        },
    }
    doc.update(overrides)
    return doc


def write_baseline(path, doc):
    path.write_text(json.dumps(doc))
    return str(path)


# ----------------------------------------------------------------------
# load_baseline schema validation
# ----------------------------------------------------------------------
def test_load_baseline_round_trip(tmp_path):
    p = write_baseline(tmp_path / "b.json", make_baseline())
    assert load_baseline(p) == make_baseline()


def test_load_baseline_missing_file(tmp_path):
    with pytest.raises(BaselineError, match="cannot read"):
        load_baseline(tmp_path / "nope.json")


def test_load_baseline_invalid_json(tmp_path):
    p = tmp_path / "b.json"
    p.write_text("{not json")
    with pytest.raises(BaselineError, match="not valid JSON"):
        load_baseline(p)


@pytest.mark.parametrize("doc,msg", [
    ([1, 2], "must be a JSON object"),
    ({"scale": 1, "series": {"a": {"2": {}}}}, "missing 'benchmark'"),
    ({"benchmark": "x", "series": {"a": {"2": {}}}}, "missing 'scale'"),
    ({"benchmark": "x", "scale": 1}, "missing 'series'"),
    ({"benchmark": "x", "scale": 1, "series": {}}, "non-empty"),
    ({"benchmark": "x", "scale": 1, "series": {"a": {}}}, "non-empty"),
    ({"benchmark": "x", "scale": 1,
      "series": {"a": {"2": {"total_s": "fast"}}}}, "finite number"),
    ({"benchmark": "x", "scale": 1,
      "series": {"a": {"2": {"total_s": 1.0}}}}, "finite number"),  # no build_s
], ids=["array", "no-benchmark", "no-scale", "no-series", "empty-series",
        "empty-points", "non-numeric", "missing-metric"])
def test_load_baseline_schema_errors(tmp_path, doc, msg):
    p = write_baseline(tmp_path / "b.json", doc)
    with pytest.raises(BaselineError, match=msg):
        load_baseline(p)


def test_load_baseline_rejects_nan(tmp_path):
    p = (tmp_path / "b.json")
    p.write_text(json.dumps(make_baseline()).replace("10.0", "NaN"))
    with pytest.raises(BaselineError, match="finite number"):
        load_baseline(p)


def test_real_checked_in_baseline_loads():
    doc = load_baseline("BENCH_2.json")
    assert doc["series"], "repo baseline must satisfy the diff schema"


# ----------------------------------------------------------------------
# diff_baselines semantics
# ----------------------------------------------------------------------
def test_self_diff_is_exactly_zero():
    diff = diff_baselines(make_baseline(), make_baseline())
    assert diff.ok
    assert not diff.regressions and not diff.improvements
    assert len(diff.deltas) == 8  # 4 series points x 2 metrics
    assert all(d.pct == 0.0 for d in diff.deltas)
    assert diff.to_text().endswith("PASS")


def test_regression_beyond_threshold_fails():
    new = make_baseline()
    new["series"]["split"]["4"]["total_s"] = 6.3  # +5%
    diff = diff_baselines(make_baseline(), new, threshold_pct=1.0)
    assert not diff.ok
    [reg] = diff.regressions
    assert (reg.algorithm, reg.nodes, reg.metric) == ("split", "4", "total_s")
    assert reg.pct == pytest.approx(5.0)
    text = diff.to_text()
    assert "REGRESSED split/4 total_s" in text and text.endswith("FAIL")


def test_threshold_is_respected_both_ways():
    new = make_baseline()
    new["series"]["split"]["4"]["total_s"] = 6.3   # +5% slower
    new["series"]["split"]["2"]["build_s"] = 3.0   # -25% faster
    assert not diff_baselines(make_baseline(), new, threshold_pct=4.9).ok
    wide = diff_baselines(make_baseline(), new, threshold_pct=5.1)
    assert wide.ok                       # regression inside threshold
    assert not wide.improvements == []   # improvement still reported...
    [imp] = wide.improvements
    assert imp.pct == pytest.approx(-25.0)
    assert wide.to_text().endswith("PASS")  # ...but never fails the gate


def test_negative_threshold_rejected():
    with pytest.raises(ValueError, match=">= 0"):
        diff_baselines(make_baseline(), make_baseline(), threshold_pct=-1)


@pytest.mark.parametrize("mutate,expect", [
    (lambda d: d.update(benchmark="other"), "benchmark differs"),
    (lambda d: d.update(scale=0.5), "scale differs"),
    (lambda d: d["series"].pop("replicate"), "'replicate' missing from NEW"),
    (lambda d: d["series"]["split"].pop("16"), "split/16 missing from NEW"),
], ids=["benchmark", "scale", "series", "point"])
def test_structural_mismatches_fail(mutate, expect):
    new = make_baseline()
    mutate(new)
    diff = diff_baselines(make_baseline(), new)
    assert not diff.ok
    assert any(expect in m for m in diff.mismatches)
    assert diff.to_text().count("MISMATCH") == len(diff.mismatches)


def test_series_added_in_new_is_also_a_mismatch():
    # Symmetric check: a series present only in NEW means the two files
    # aren't comparable either (e.g. diffing against the wrong baseline).
    old = make_baseline()
    old["series"].pop("replicate")
    diff = diff_baselines(old, make_baseline())
    assert not diff.ok
    assert any("missing from OLD" in m for m in diff.mismatches)


def test_delta_pct_edge_cases():
    d = Delta("a", "2", "total_s", old=0.0, new=0.0)
    assert d.pct == 0.0
    d = Delta("a", "2", "total_s", old=0.0, new=1.0)
    assert d.pct == math.inf
    assert json.dumps(diff_baselines(
        make_baseline(), make_baseline()).to_dict())  # JSON-serializable


def test_to_dict_shape():
    new = make_baseline()
    new["series"]["split"]["2"]["total_s"] = 20.0
    doc = diff_baselines(make_baseline(), new).to_dict()
    assert doc["ok"] is False
    assert doc["threshold_pct"] == 1.0
    assert [r["pct"] for r in doc["regressions"]] == [pytest.approx(100.0)]
    assert len(doc["deltas"]) == 8


# ----------------------------------------------------------------------
# CLI exit semantics
# ----------------------------------------------------------------------
def test_cli_self_diff_exits_zero(tmp_path, capsys):
    p = write_baseline(tmp_path / "b.json", make_baseline())
    rc = main(["bench-diff", p, p])
    out = capsys.readouterr().out
    assert rc == 0
    assert "PASS" in out and "8 series points" in out


def test_cli_regression_exits_one(tmp_path, capsys):
    old = write_baseline(tmp_path / "old.json", make_baseline())
    doc = make_baseline()
    doc["series"]["split"]["2"]["total_s"] = 11.0  # +10%
    new = write_baseline(tmp_path / "new.json", doc)
    rc = main(["bench-diff", old, new, "--threshold", "5"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "REGRESSED" in out and "FAIL" in out
    # A generous threshold waves the same delta through.
    assert main(["bench-diff", old, new, "--threshold", "15"]) == 0


def test_cli_bad_baseline_exits_two(tmp_path, capsys):
    good = write_baseline(tmp_path / "good.json", make_baseline())
    rc = main(["bench-diff", good, str(tmp_path / "missing.json")])
    err = capsys.readouterr().err
    assert rc == 2
    assert "cannot read" in err


def test_cli_json_format(tmp_path, capsys):
    p = write_baseline(tmp_path / "b.json", make_baseline())
    rc = main(["bench-diff", p, p, "--format", "json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert doc["ok"] is True and doc["mismatches"] == []


def test_cli_self_diff_of_checked_in_baseline():
    # The exact invocation CI runs as its gate sanity check.
    assert main(["bench-diff", "BENCH_2.json", "BENCH_2.json"]) == 0


# ----------------------------------------------------------------------
# snapshot diffing (repro workload --snapshot-out streams)
# ----------------------------------------------------------------------
def make_snapshot(counters, latencies=()):
    from repro.obs import QuantileSketch, Snapshot

    sk = QuantileSketch()
    for v in latencies:
        sk.add(v)
    return Snapshot(
        t=1.0, shards=("shard0",), counters=dict(counters),
        sketches={"workload.query_latency_s": sk} if latencies else {},
    )


def test_snapshot_self_diff_passes():
    from repro.bench import diff_snapshots

    snap = make_snapshot({"workload.queries": 4}, latencies=[1.0, 2.0])
    diff = diff_snapshots(snap, snap, threshold_pct=1.0)
    assert diff.ok
    assert {d.metric for d in diff.deltas} == {"p50", "p90", "p99"}


def test_snapshot_counter_change_is_a_hard_mismatch():
    from repro.bench import diff_snapshots

    old = make_snapshot({"workload.queries": 4})
    new = make_snapshot({"workload.queries": 5, "extra": 1})
    diff = diff_snapshots(old, new)
    assert not diff.ok
    text = diff.to_text()
    assert "counter 'workload.queries' differs" in text
    assert "counter 'extra' missing from OLD" in text


def test_snapshot_quantile_regression_respects_threshold():
    from repro.bench import diff_snapshots

    old = make_snapshot({"n": 1}, latencies=[1.0] * 10)
    new = make_snapshot({"n": 1}, latencies=[1.5] * 10)
    assert not diff_snapshots(old, new, threshold_pct=10.0).ok
    assert diff_snapshots(old, new, threshold_pct=60.0).ok


def test_load_document_takes_last_jsonl_line(tmp_path):
    from repro.bench import is_snapshot_doc, load_document

    p = tmp_path / "stream.jsonl"
    p.write_text(
        '{"kind": "repro-snapshot", "t": 1}\n'
        '{"kind": "repro-snapshot", "t": 2}\n'
    )
    doc = load_document(p)
    assert is_snapshot_doc(doc)
    assert doc["t"] == 2
