"""Unit tests for generator processes (suspension, failure, composition)."""

import pytest

from repro.sim import AllOf, AnyOf, Interrupt, Simulator
from repro.sim.errors import SimulationError


def test_process_returns_generator_value():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1.0)
        return "done"

    p = sim.spawn(worker(sim))
    sim.run()
    assert p.value == "done"
    assert not p.is_alive


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.spawn(lambda: None)  # type: ignore[arg-type]


def test_yield_non_event_raises_inside_process():
    sim = Simulator()

    def bad(sim):
        yield 42

    sim.spawn(bad(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_timeout_value_passes_through():
    sim = Simulator()

    def worker(sim):
        got = yield sim.timeout(1.0, value="payload")
        return got

    p = sim.spawn(worker(sim))
    sim.run()
    assert p.value == "payload"


def test_process_waits_on_another_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(2.0)
        return 7

    def parent(sim):
        c = sim.spawn(child(sim))
        v = yield c
        return v * 3

    p = sim.spawn(parent(sim))
    sim.run()
    assert p.value == 21
    assert sim.now == 2.0


def test_unobserved_process_failure_surfaces_from_run():
    sim = Simulator()

    def boom(sim):
        yield sim.timeout(1.0)
        raise ValueError("kaput")

    sim.spawn(boom(sim))
    with pytest.raises(ValueError, match="kaput"):
        sim.run()


def test_observed_process_failure_propagates_to_waiter():
    sim = Simulator()

    def boom(sim):
        yield sim.timeout(1.0)
        raise ValueError("inner")

    def waiter(sim, child):
        try:
            yield child
        except ValueError:
            return "caught"
        return "missed"

    child = sim.spawn(boom(sim))
    w = sim.spawn(waiter(sim, child))
    sim.run()
    assert w.value == "caught"


def test_interrupt_reaches_process():
    sim = Simulator()

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
            return "slept"
        except Interrupt as exc:
            return ("interrupted", exc.cause)

    def interrupter(sim, target):
        yield sim.timeout(1.0)
        target.interrupt(cause="wakeup")

    p = sim.spawn(sleeper(sim))
    sim.spawn(interrupter(sim, p))
    sim.run(until=5.0)
    assert p.value == ("interrupted", "wakeup")


def test_interrupt_finished_process_is_error():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(0.1)

    p = sim.spawn(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_allof_collects_all_values():
    sim = Simulator()

    def worker(sim, d):
        yield sim.timeout(d)
        return d

    def parent(sim):
        kids = [sim.spawn(worker(sim, d)) for d in (3.0, 1.0, 2.0)]
        values = yield AllOf(sim, kids)
        return values

    p = sim.spawn(parent(sim))
    sim.run()
    assert p.value == [3.0, 1.0, 2.0]
    assert sim.now == 3.0


def test_allof_empty_fires_immediately():
    sim = Simulator()

    def parent(sim):
        values = yield AllOf(sim, [])
        return values

    p = sim.spawn(parent(sim))
    sim.run()
    assert p.value == []


def test_anyof_returns_first():
    sim = Simulator()

    def worker(sim, d):
        yield sim.timeout(d)
        return d

    def parent(sim):
        kids = [sim.spawn(worker(sim, d)) for d in (3.0, 1.0, 2.0)]
        idx, val = yield AnyOf(sim, kids)
        return idx, val

    p = sim.spawn(parent(sim))
    sim.run()
    assert p.value == (1, 1.0)


def test_anyof_requires_events():
    sim = Simulator()
    with pytest.raises(ValueError):
        AnyOf(sim, [])


def test_immediate_resume_on_processed_event():
    """Yielding an already-processed event resumes without a queue trip."""
    sim = Simulator()

    def worker(sim):
        t = sim.timeout(1.0, value="v")
        yield sim.timeout(2.0)  # t is processed by now
        got = yield t
        return (got, sim.now)

    p = sim.spawn(worker(sim))
    sim.run()
    assert p.value == ("v", 2.0)
