"""Property-based tests for the simulation kernel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Mailbox, Resource, Simulator


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False), min_size=1, max_size=50))
@settings(max_examples=200, deadline=None)
def test_events_always_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        ev = sim.event()
        ev.add_callback(lambda e, d=d: fired.append(sim.now))
        ev.succeed(None, delay=d)
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0,
                                 allow_nan=False), min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_equal_time_events_fire_in_creation_order(delays):
    sim = Simulator()
    fired = []
    # Mix the given delays with a block of equal-time events.
    for i, d in enumerate(delays):
        ev = sim.event()
        ev.add_callback(lambda e, i=i: fired.append(i))
        ev.succeed(None, delay=50.0)  # all equal
    sim.run()
    assert fired == list(range(len(delays)))


@given(
    capacity=st.integers(min_value=1, max_value=5),
    durations=st.lists(st.floats(min_value=0.001, max_value=10.0,
                                 allow_nan=False), min_size=1, max_size=30),
)
@settings(max_examples=100, deadline=None)
def test_resource_never_exceeds_capacity(capacity, durations):
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    max_seen = 0

    def user(sim, res, d):
        nonlocal max_seen
        yield res.acquire()
        max_seen = max(max_seen, res.in_use)
        assert res.in_use <= capacity
        yield sim.timeout(d)
        res.release()

    for d in durations:
        sim.spawn(user(sim, res, d))
    sim.run()
    assert 1 <= max_seen <= capacity
    assert res.in_use == 0


@given(
    messages=st.lists(st.integers(), min_size=1, max_size=50),
    consumer_delay=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_mailbox_preserves_message_order(messages, consumer_delay):
    sim = Simulator()
    box = Mailbox(sim)
    got = []

    def consumer(sim, box, n):
        for _ in range(n):
            msg = yield box.get()
            got.append(msg)
            if consumer_delay:
                yield sim.timeout(consumer_delay)

    def producer(sim, box):
        for m in messages:
            yield sim.timeout(0.5)
            box.put(m)

    sim.spawn(consumer(sim, box, len(messages)))
    sim.spawn(producer(sim, box))
    sim.run()
    assert got == messages


@given(n_procs=st.integers(min_value=1, max_value=20),
       duration=st.floats(min_value=0.1, max_value=2.0, allow_nan=False))
@settings(max_examples=50, deadline=None)
def test_serial_resource_total_time_is_sum(n_procs, duration):
    """FIFO single-capacity resource: makespan == n * duration exactly."""
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user(sim, res):
        yield from res.use(duration)

    for _ in range(n_procs):
        sim.spawn(user(sim, res))
    sim.run()
    assert sim.now == sum([duration] * n_procs)
