"""White-box tests for the scheduler's counting-drain stability logic.

The drain rule (scheduler docstring): a phase is complete only when two
consecutive polling rounds return identical counters AND the flow balances
(sent == received == processed) AND nobody is busy / queued / in relief.
These tests drive ``_collect_report`` directly with synthetic reports.
"""

from tests.conftest import small_config
from repro.config import Algorithm
from repro.core.context import RunContext
from repro.core.messages import StatusReport
from repro.core.scheduler import SchedulerProcess
from repro.sim import Simulator


def make_sched(initial=2):
    cfg = small_config(Algorithm.REPLICATE, initial=initial)
    ctx = RunContext(Simulator(), cfg)
    sched = SchedulerProcess(ctx)
    sched._phase = "build"
    sched._source_done["R"] = set(range(ctx.n_sources))
    return sched


def report(node, token, rb, pb, eb, busy=False):
    return StatusReport(node=node, token=token, received_build=rb,
                        processed_build=pb, emitted_build=eb,
                        received_probe=0, processed_probe=0, busy=busy)


def feed_round(sched, reports):
    sched._poll_token += 1
    sched._round_nodes = tuple(sorted({r.node for r in reports}))
    sched._round_reports = {}
    for r in reports:
        r.token = sched._poll_token
        sched._collect_report(r)


def test_balanced_identical_rounds_drain():
    sched = make_sched()
    sched._source_chunk_maps["R"] = {0: 6, 1: 4}
    round_ = [report(0, 0, rb=6, pb=6, eb=1),
              report(1, 0, rb=5, pb=5, eb=0)]
    feed_round(sched, round_)
    assert not sched._drained, "one balanced round is not enough"
    feed_round(sched, round_)
    assert sched._drained


def test_imbalance_never_drains():
    sched = make_sched()
    sched._source_chunk_maps["R"] = {0: 5, 1: 5}
    # one chunk still in flight: received < sent
    round_ = [report(0, 0, rb=5, pb=5, eb=0),
              report(1, 0, rb=4, pb=4, eb=0)]
    feed_round(sched, round_)
    feed_round(sched, round_)
    assert not sched._drained


def test_busy_node_blocks_drain():
    sched = make_sched()
    sched._source_chunk_maps["R"] = {0: 6, 1: 4}
    round_ = [report(0, 0, rb=6, pb=6, eb=1, busy=True),
              report(1, 0, rb=5, pb=5, eb=0)]
    feed_round(sched, round_)
    feed_round(sched, round_)
    assert not sched._drained


def test_changing_counters_reset_stability():
    sched = make_sched()
    sched._source_chunk_maps["R"] = {0: 6, 1: 4}
    feed_round(sched, [report(0, 0, rb=5, pb=5, eb=0),
                       report(1, 0, rb=4, pb=4, eb=0)])
    # activity happened: now balanced, but this is the FIRST balanced round
    feed_round(sched, [report(0, 0, rb=6, pb=6, eb=1),
                       report(1, 0, rb=5, pb=5, eb=0)])
    assert not sched._drained
    feed_round(sched, [report(0, 0, rb=6, pb=6, eb=1),
                       report(1, 0, rb=5, pb=5, eb=0)])
    assert sched._drained


def test_stale_token_reports_are_ignored():
    sched = make_sched()
    sched._source_chunk_maps["R"] = {0: 1}
    sched._poll_token = 5
    sched._round_nodes = (0, 1)
    sched._round_reports = {}
    stale = report(0, token=3, rb=1, pb=1, eb=0)
    sched._collect_report(stale)
    assert sched._round_reports == {}
    foreign = report(7, token=5, rb=1, pb=1, eb=0)
    sched._collect_report(foreign)
    assert sched._round_reports == {}


def test_expansion_during_round_discards_it():
    sched = make_sched()
    sched._source_chunk_maps["R"] = {0: 6, 1: 5}
    feed_round(sched, [report(0, 0, rb=6, pb=6, eb=1),
                       report(1, 0, rb=5, pb=5, eb=0)])
    # a node was recruited after the round was requested
    sched.activated.append(9)
    feed_round(sched, [report(0, 0, rb=6, pb=6, eb=1),
                       report(1, 0, rb=5, pb=5, eb=0)])
    assert not sched._drained, "round node set no longer matches activated"


def test_memory_full_resets_previous_round():
    from repro.core.messages import MemoryFull

    sched = make_sched()
    sched._source_chunk_maps["R"] = {0: 6, 1: 4}
    round_ = [report(0, 0, rb=6, pb=6, eb=1),
              report(1, 0, rb=5, pb=5, eb=0)]
    feed_round(sched, round_)
    sched._dispatch_common(MemoryFull(0))
    assert sched.full_queue and sched._prev_round is None
    sched.full_queue.clear()
    feed_round(sched, round_)
    assert not sched._drained, "stability must restart after a relief event"


def test_probe_phase_balance_includes_emitted_probe():
    sched = make_sched()
    sched._phase = "probe"
    sched._source_done["S"] = set(range(sched.ctx.n_sources))
    sched._source_chunk_maps["S"] = {0: 4}

    def probe_report(node, rp, pp, ep):
        return StatusReport(node=node, token=0, received_build=0,
                            processed_build=0, emitted_build=0,
                            received_probe=rp, processed_probe=pp,
                            busy=False, emitted_probe=ep)

    # node 0 forwarded 2 output chunks to sink node 1
    round_ = [probe_report(0, rp=4, pp=4, ep=2),
              probe_report(1, rp=2, pp=2, ep=0)]
    feed_round(sched, round_)
    feed_round(sched, round_)
    assert sched._drained
