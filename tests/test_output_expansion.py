"""Tests for probe-phase output materialization & expansion (footnote 1).

The paper assumes probe-phase results are "written to disk or forwarded to
the client"; footnote 1 notes the probing phase "can be executed using an
adaptive algorithm that will expand to additional nodes to avoid memory
overflow".  With ``materialize_output=True`` join nodes keep output pairs
in their memory budget; with ``probe_expansion=True`` an overflowing node
asks the scheduler for an *output sink* node and chains onto it.
"""

import pytest

from tests.conftest import small_cluster, small_config
from repro.config import Algorithm, Distribution, WorkloadSpec
from repro.core import run_join
from repro.core.messages import Hop


def zipf_workload(n=2000):
    """Duplicate-heavy values -> output far larger than the inputs."""
    return WorkloadSpec(r_tuples=n, s_tuples=n, chunk_tuples=100, scale=1.0,
                        distribution=Distribution.ZIPF, zipf_s=1.1, seed=5)


def run(algorithm=Algorithm.SPLIT, **kw):
    kw.setdefault("workload", zipf_workload())
    kw.setdefault("materialize_output", True)
    return run_join(small_config(algorithm, initial=2, **kw))


def test_output_accounting_balances():
    """Every match is either in memory or on disk (driver-checked too)."""
    res = run()
    assert res.output_tuples + res.output_spilled_tuples == res.matches
    assert res.matches > res.config.workload.real_r_tuples  # output amplification


def test_without_expansion_overflow_spills_to_disk():
    res = run(probe_expansion=False)
    assert res.output_sink_nodes == 0
    assert res.output_spilled_tuples > 0
    assert res.output_tuples > 0  # memory filled before spilling started


def test_expansion_recruits_output_sinks():
    res = run(probe_expansion=True, cluster=small_cluster(pool=20))
    assert res.output_sink_nodes > 0
    assert res.comm.tuples_by_hop.get(Hop.OUTPUT, 0) > 0
    # sinks keep more pairs in memory than the no-expansion run
    baseline = run(probe_expansion=False)
    assert res.output_tuples > baseline.output_tuples
    assert res.matches == baseline.matches


def test_sinks_chain_when_they_overflow():
    """With a tiny per-node budget a single sink cannot hold the output."""
    res = run(probe_expansion=True, cluster=small_cluster(pool=20))
    assert res.output_sink_nodes >= 2


def test_exhausted_pool_falls_back_to_disk():
    res = run(probe_expansion=True, cluster=small_cluster(pool=3))
    assert res.output_spilled_tuples > 0
    assert res.output_tuples + res.output_spilled_tuples == res.matches


def test_ooc_pass_output_counts_as_spilled():
    res = run(Algorithm.OUT_OF_CORE)
    assert res.output_spilled_tuples == res.matches
    assert res.output_tuples == 0  # full-Grace: nothing stays in memory


def test_materialization_off_keeps_zero_output_counters():
    res = run(materialize_output=False)
    assert res.output_tuples == 0
    assert res.output_spilled_tuples == 0
    assert res.output_sink_nodes == 0


@pytest.mark.parametrize("algorithm",
                         [Algorithm.REPLICATE, Algorithm.HYBRID])
def test_materialization_composes_with_other_strategies(algorithm):
    res = run(algorithm, probe_expansion=True,
              cluster=small_cluster(pool=20))
    assert res.output_tuples + res.output_spilled_tuples == res.matches


def test_matches_unchanged_by_output_handling():
    answers = {
        run(probe_expansion=False).matches,
        run(probe_expansion=True, cluster=small_cluster(pool=20)).matches,
        run(materialize_output=False).matches,
    }
    assert len(answers) == 1
