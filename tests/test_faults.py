"""Fault-injection & recovery tests (``repro.faults``).

The headline invariant, asserted per algorithm: a run under an adversarial
fault plan (message drops on every link, lost acks, a node crash) produces
**exactly** the same join-match count as the fault-free run — recovery is
exact, not best-effort.  ``run_join(validate=True)`` additionally checks the
count against the sequential oracle and byte conservation on every run
here.

Slow whole-system chaos runs carry ``@pytest.mark.chaos`` so CI can run
them as a dedicated job; plan validation / JSON / unit tests stay in the
default sweep.
"""

import json

import numpy as np
import pytest

from tests.conftest import small_cluster, small_config, small_workload
from repro.config import Algorithm
from repro.core import run_join
from repro.core.context import RunContext
from repro.core.joinnode import JoinProcess
from repro.core.messages import DataChunk, Hop
from repro.faults import (
    CrashSpec,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    LinkSlowdown,
    UnrecoverableFaultError,
    crash_specs_from_cli,
)
from repro.sim import Simulator

ALGOS = list(Algorithm)


def counter_total(res, name, **labels):
    """Sum a counter family over all label sets matching ``labels``."""
    return sum(
        inst["value"] for inst in res.metrics
        if inst["name"] == name and inst["type"] == "counter"
        and all(inst["labels"].get(k) == v for k, v in labels.items())
    )


# ----------------------------------------------------------------------
# plan validation & serialization
# ----------------------------------------------------------------------
def test_plan_rejects_bad_probabilities():
    with pytest.raises(FaultPlanError):
        FaultPlan(drop_prob=1.0)
    with pytest.raises(FaultPlanError):
        FaultPlan(ack_drop_prob=-0.1)


def test_crash_spec_needs_exactly_one_trigger():
    with pytest.raises(FaultPlanError):
        CrashSpec(node=1)
    with pytest.raises(FaultPlanError):
        CrashSpec(node=1, at_time=1.0, at_phase="build")
    with pytest.raises(FaultPlanError):
        CrashSpec(node=1, at_phase="warmup")
    with pytest.raises(FaultPlanError):
        CrashSpec(node=-1, at_time=0.0)


def test_slowdown_validation():
    with pytest.raises(FaultPlanError):
        LinkSlowdown(t0=0.0, t1=1.0, factor=0.5)
    with pytest.raises(FaultPlanError):
        LinkSlowdown(t0=2.0, t1=1.0, factor=2.0)
    s = LinkSlowdown(t0=0.0, t1=1.0, factor=2.0, src=3)
    assert s.matches(3, 9, 0.5)
    assert not s.matches(4, 9, 0.5)
    assert not s.matches(3, 9, 1.0)  # window is half-open


def test_plan_json_roundtrip():
    plan = FaultPlan(
        seed=42,
        drop_prob=0.05,
        ack_drop_prob=0.01,
        crashes=(CrashSpec(node=3, at_phase="build"),
                 CrashSpec(node=4, at_time=1.5)),
        slowdowns=(LinkSlowdown(t0=0.0, t1=2.0, factor=3.0, dst=7),),
        max_attempts=20,
    )
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_plan_rejects_unknown_keys_and_bad_json():
    with pytest.raises(FaultPlanError):
        FaultPlan.from_dict({"seed": 1, "drop_probability": 0.1})
    with pytest.raises(FaultPlanError):
        FaultPlan.from_json("{not json")
    with pytest.raises(FaultPlanError):
        FaultPlan.from_json("[1, 2]")


def test_inactive_plan_is_detected():
    assert not FaultPlan().active
    assert FaultPlan(drop_prob=0.1).active
    assert FaultPlan(crashes=(CrashSpec(node=1, at_time=0.0),)).active
    assert not FaultPlan(crashes=(CrashSpec(node=1, at_time=0.0),)).any_link_faults


def test_crash_specs_from_cli():
    specs = crash_specs_from_cli(["3", "4@1.5", "5@phase:probe"])
    assert specs == (
        CrashSpec(node=3, at_time=0.0),
        CrashSpec(node=4, at_time=1.5),
        CrashSpec(node=5, at_phase="probe"),
    )
    with pytest.raises(FaultPlanError):
        crash_specs_from_cli(["x"])
    with pytest.raises(FaultPlanError):
        crash_specs_from_cli(["3@soon"])


def test_attach_rejects_out_of_pool_crash_target(config_factory):
    cfg = config_factory(faults=FaultPlan(
        crashes=(CrashSpec(node=99, at_time=0.0),)
    ))
    with pytest.raises(FaultPlanError):
        run_join(cfg)


# ----------------------------------------------------------------------
# unit: receiver-side duplicate suppression
# ----------------------------------------------------------------------
def test_joinnode_suppresses_duplicate_chunks():
    cfg = small_config()
    ctx = RunContext(Simulator(), cfg)
    jp = JoinProcess(ctx, 0)
    node = ctx.join_node(0)

    def chunk(seq, origin=1):
        return DataChunk(relation="R", values=np.arange(8, dtype=np.uint64),
                         tuple_bytes=100, hop=Hop.PRIMARY, origin=origin,
                         transfer_seq=seq)

    # The network holds one receive credit per delivered data chunk; take
    # one so the duplicate's release has something to return.
    node.recv_credits.acquire()
    assert not jp._suppress_duplicate(chunk(5))      # first sighting
    assert jp._suppress_duplicate(chunk(5))          # re-delivery
    # The duplicate is counted received AND processed (drain stays balanced)
    assert jp.received_build == jp.processed_build == 1
    assert not jp._suppress_duplicate(chunk(5, origin=2))  # other sender
    assert not jp._suppress_duplicate(chunk(6))      # next sequence
    assert not jp._suppress_duplicate(chunk(-1))     # unstamped: never dedup
    assert ctx.metrics.snapshot()
    assert sum(
        inst["value"] for inst in ctx.metrics.snapshot()
        if inst["name"] == "faults_duplicates_suppressed"
    ) == 1


# ----------------------------------------------------------------------
# unit: injector determinism & RNG frugality
# ----------------------------------------------------------------------
def test_injector_draws_no_rng_when_probability_zero():
    cfg = small_config()
    ctx = RunContext(Simulator(), cfg)
    inj = FaultInjector(FaultPlan(crashes=(CrashSpec(node=1, at_time=0.0),)),
                        ctx.sim, ctx.metrics)
    state_before = inj._rng.bit_generator.state["state"]
    assert not inj.roll_drop(1, 2)
    assert not inj.roll_ack_drop(1, 2)
    assert inj._rng.bit_generator.state["state"] == state_before


def test_injector_loopback_never_drops():
    cfg = small_config()
    ctx = RunContext(Simulator(), cfg)
    inj = FaultInjector(FaultPlan(drop_prob=0.999), ctx.sim, ctx.metrics)
    assert not any(inj.roll_drop(4, 4) for _ in range(50))


def test_rto_backoff_is_exponential_and_capped():
    cfg = small_config()
    ctx = RunContext(Simulator(), cfg)
    inj = FaultInjector(FaultPlan(drop_prob=0.1, rto_s=1.0, rto_backoff=2.0,
                                  rto_max_s=5.0), ctx.sim, ctx.metrics)
    inj.resolve_timing(ctx.cost)
    assert [inj.rto(k) for k in (1, 2, 3, 4, 5)] == [1.0, 2.0, 4.0, 5.0, 5.0]


# ----------------------------------------------------------------------
# whole-system chaos: exact answers under adversity
# ----------------------------------------------------------------------
def chaos_plan(crash_node=15):
    """≥1% drop on every link + lost acks + one pool-node crash."""
    return FaultPlan(
        seed=1234,
        drop_prob=0.02,
        ack_drop_prob=0.02,
        crashes=(CrashSpec(node=crash_node, at_phase="build"),),
    )


@pytest.mark.chaos
@pytest.mark.parametrize("algorithm", ALGOS)
def test_chaos_preserves_exact_match_count(algorithm):
    # Skewed keys so the join has real matches to get wrong.
    wl = small_workload(sigma=1e-5)
    base = run_join(small_config(algorithm, initial=2, workload=wl))
    res = run_join(small_config(algorithm, initial=2, workload=wl,
                                faults=chaos_plan(crash_node=15)))
    # validate=True already checked res.matches against the oracle; the
    # acceptance criterion is equality with the fault-free run.
    assert res.matches == base.matches == res.reference_matches
    assert base.matches > 0
    assert counter_total(res, "faults_injected") > 0
    assert counter_total(res, "faults_injected", kind="message_drop") > 0
    assert counter_total(res, "retries_total") > 0
    assert counter_total(res, "faults_crashes") == 1
    assert counter_total(res, "net.dropped_bytes") > 0
    # The fault-free run must carry no fault accounting at all.
    assert counter_total(base, "faults_injected") == 0
    assert counter_total(base, "net.dropped_bytes") == 0


@pytest.mark.chaos
@pytest.mark.parametrize("algorithm", ALGOS)
def test_crash_of_unused_dormant_node_is_invisible(algorithm):
    """A pure crash plan (no link faults) that kills a node the run never
    recruits must not perturb the result or the timing at all — no RNG is
    drawn and the fast network path stays engaged."""
    base = run_join(small_config(algorithm, initial=12))
    plan = FaultPlan(crashes=(CrashSpec(node=14, at_time=0.0),))
    res = run_join(small_config(algorithm, initial=12, faults=plan))
    assert res.matches == base.matches
    assert res.times == base.times
    assert counter_total(res, "faults_crashes") == 1
    assert counter_total(res, "retries_total") == 0


@pytest.mark.chaos
def test_crash_of_active_node_is_unrecoverable():
    """Crashing a node that holds join state exceeds the documented
    recovery envelope (fail-stop of dormant nodes only)."""
    plan = FaultPlan(crashes=(CrashSpec(node=0, at_phase="probe"),))
    with pytest.raises(UnrecoverableFaultError):
        run_join(small_config(Algorithm.HYBRID, initial=2, faults=plan))


@pytest.mark.chaos
def test_recruit_failure_degrades_to_spill():
    """Kill the whole potential pool: every recruitment times out, the
    scheduler retries different candidates, and on pool exhaustion the
    overflowing node degrades to the out-of-core spill path — still
    producing the exact join answer."""
    plan = FaultPlan(crashes=tuple(
        CrashSpec(node=n, at_time=0.0) for n in (2, 3)
    ))
    wl = small_workload(sigma=1e-5)
    cfg = small_config(Algorithm.SPLIT, initial=2, workload=wl,
                       cluster=small_cluster(pool=4), faults=plan)
    base = run_join(small_config(Algorithm.SPLIT, initial=2, workload=wl,
                                 cluster=small_cluster(pool=4)))
    res = run_join(cfg)
    assert res.matches == base.matches == res.reference_matches
    assert res.spilled_r_tuples > 0
    assert counter_total(res, "faults_recruit_failures") == 2
    assert counter_total(res, "retries_total", kind="recruit") == 2
    assert counter_total(res, "faults_crashes") == 2
    assert res.nodes_used == 2  # nobody joined the party


@pytest.mark.chaos
def test_link_slowdown_slows_the_run():
    plan = FaultPlan(slowdowns=(
        LinkSlowdown(t0=0.0, t1=float("1e12"), factor=4.0),
    ))
    base = run_join(small_config(Algorithm.REPLICATE, initial=2))
    res = run_join(small_config(Algorithm.REPLICATE, initial=2, faults=plan))
    assert res.matches == base.matches
    assert res.times.total_s > base.times.total_s


@pytest.mark.chaos
def test_chaos_runs_are_deterministic():
    cfg1 = small_config(Algorithm.HYBRID, initial=2, faults=chaos_plan())
    cfg2 = small_config(Algorithm.HYBRID, initial=2, faults=chaos_plan())
    r1, r2 = run_join(cfg1), run_join(cfg2)
    assert r1.matches == r2.matches
    assert r1.times == r2.times
    assert (counter_total(r1, "faults_injected")
            == counter_total(r2, "faults_injected"))
    assert (counter_total(r1, "retries_total")
            == counter_total(r2, "retries_total"))


@pytest.mark.chaos
def test_lost_acks_force_suppressed_duplicates():
    """With only ack loss (payloads always arrive), every retransmission
    is a duplicate the network suppresses — delivered exactly once."""
    plan = FaultPlan(seed=5, ack_drop_prob=0.05)
    base = run_join(small_config(Algorithm.REPLICATE, initial=2))
    res = run_join(small_config(Algorithm.REPLICATE, initial=2, faults=plan))
    assert res.matches == base.matches
    assert counter_total(res, "faults_injected", kind="ack_drop") > 0
    assert counter_total(res, "net.duplicate_messages") > 0
    assert counter_total(res, "net.dropped_bytes") == 0


# ----------------------------------------------------------------------
# concurrent-workload chaos (repro.workload on the shared pool)
# ----------------------------------------------------------------------
@pytest.mark.chaos
def test_workload_chaos_every_query_stays_exact():
    """Concurrent queries under link drops plus a dormant-node crash: the
    pool shrinks, recovery retransmits, and *every* query still matches
    its own sequential oracle — and the fault-free run's answer."""
    from repro.config import (
        ClusterSpec,
        Distribution,
        MTUPLES,
        QueryMixEntry,
        WorkloadConfig,
    )
    from repro.workload import run_workload

    def wl_cfg(faults=None):
        return WorkloadConfig(
            n_queries=4,
            arrival_times=(0.0, 0.05, 0.1, 0.15),
            seed=7,
            # Skewed keys so each join has real matches to get wrong.
            mix=(QueryMixEntry(
                r_tuples=MTUPLES, s_tuples=MTUPLES, initial_nodes=2,
                distribution=Distribution.GAUSSIAN, gauss_sigma=1e-5,
            ),),
            cluster=ClusterSpec(n_sources=2, n_potential_nodes=8,
                                hash_memory_bytes=50 * 1024 * 1024),
            scale=1.0 / 50.0,
            faults=faults,
        )

    base = run_workload(wl_cfg())
    assert base.all_valid
    assert any(q.matches > 0 for q in base.queries)

    plan = FaultPlan(
        seed=11,
        drop_prob=0.02,
        # Node 7 is still dormant at t=0.01: admissions grant
        # best-memory-first from a uniform 8-node pool, and only q0's two
        # nodes are out by then.
        crashes=(CrashSpec(node=7, at_time=0.01),),
    )
    res = run_workload(wl_cfg(faults=plan))
    assert res.all_valid, "every query must still match its oracle"
    assert res.pool["crashed_nodes"] == [7]
    assert [q.matches for q in res.queries] == [
        q.matches for q in base.queries
    ], "recovery must be exact, not best-effort"
    assert counter_total(res, "faults_injected", kind="message_drop") > 0
    # workload crashes execute at the pool, not the per-query injector
    assert counter_total(res, "pool.node_crashes") == 1
    assert counter_total(res, "retries_total") > 0
    assert counter_total(res, "net.dropped_bytes") > 0
    # the fault-free workload carries no fault accounting
    assert counter_total(base, "faults_injected") == 0


# ----------------------------------------------------------------------
# conservation accounting
# ----------------------------------------------------------------------
def test_assert_conserved_balances_drops_and_duplicates():
    from repro.cluster.network import Network
    from repro.config import CostModel

    net = Network(Simulator(), CostModel())
    key = (0, 1, "data")
    net.sent_bytes[key] = 300
    net.delivered_bytes[key] = 100
    net.dropped_bytes[key] = 100
    net.duplicate_bytes[key] = 100
    net.assert_conserved()  # balanced: sent == delivered + dropped + dups
    net.dropped_bytes[key] = 50
    with pytest.raises(AssertionError, match="conservation"):
        net.assert_conserved()


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
def cli_args(extra):
    return extra + [
        "--r-tuples", "0.004", "--s-tuples", "0.004",
        "--scale", "1.0", "--chunk-tuples", "200",
        "--pool", "8", "--sources", "2", "--node-memory-mb", "0.04",
    ]


@pytest.mark.chaos
def test_cli_run_with_fault_flags(capsys):
    from repro.cli import main

    rc = main(cli_args(["run", "--algorithm", "hybrid",
                        "--initial-nodes", "2",
                        "--drop-prob", "0.02", "--crash-node", "7"]))
    assert rc == 0
    assert "phases" in capsys.readouterr().out


@pytest.mark.chaos
def test_cli_metrics_reports_fault_counters(capsys):
    from repro.cli import main

    rc = main(cli_args(["metrics", "--algorithm", "split",
                        "--initial-nodes", "2", "--drop-prob", "0.02"]))
    out = capsys.readouterr().out
    assert rc == 0
    assert "faults_injected" in out
    assert "retries_total" in out


def test_cli_fault_plan_file(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "plan.json"
    path.write_text(FaultPlan(seed=3, drop_prob=0.01).to_json())
    rc = main(cli_args(["run", "--algorithm", "replicate",
                        "--initial-nodes", "2", "--fault-plan", str(path)]))
    assert rc == 0


def test_cli_rejects_malformed_fault_plan(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "plan.json"
    path.write_text(json.dumps({"drop_probability": 0.5}))
    with pytest.raises(SystemExit):
        main(cli_args(["run", "--fault-plan", str(path)]))
    assert "unknown fault-plan keys" in capsys.readouterr().err


def test_cli_rejects_bad_crash_spec(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(cli_args(["run", "--crash-node", "2@whenever"]))
    assert "crash-node" in capsys.readouterr().err
