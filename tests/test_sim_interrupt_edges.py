"""Regression tests for interrupt/failure edge cases in the kernel.

These were found by adversarial review: interrupts racing process
termination, abandoned resource/mailbox waiters, multiple failures in one
step, and time regression via run(until=...).
"""

import pytest

from repro.sim import Barrier, Interrupt, Mailbox, Resource, Simulator


def test_interrupt_racing_termination_is_harmless():
    """Interrupt called while the target is alive, but whose wakeup fires
    after the target finished in the same tick: must be a no-op, not a
    throw into an exhausted generator."""
    sim = Simulator()
    target_holder = []

    def interrupter(sim):
        yield sim.timeout(5.0)
        target = target_holder[0]
        assert target.is_alive          # genuinely alive at call time
        target.interrupt("racing")      # wakeup fires after target's event

    def quick(sim):
        yield sim.timeout(5.0)          # same timestamp, later heap seq
        return "finished"

    sim.spawn(interrupter(sim))         # spawned first -> runs first at t=5
    p = sim.spawn(quick(sim))
    target_holder.append(p)
    sim.run()
    assert p.value == "finished"


def test_interrupted_resource_waiter_does_not_leak_slot():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def holder(sim, res):
        yield from res.use(10.0)
        order.append(("holder", sim.now))

    def impatient(sim, res):
        try:
            yield from res.use(1.0)
            order.append(("impatient", sim.now))
        except Interrupt:
            order.append(("interrupted", sim.now))

    def patient(sim, res):
        yield sim.timeout(2.0)
        yield from res.use(1.0)
        order.append(("patient", sim.now))

    h = sim.spawn(holder(sim, res))
    imp = sim.spawn(impatient(sim, res))
    sim.spawn(patient(sim, res))

    def killer(sim, target):
        yield sim.timeout(1.0)
        target.interrupt()

    sim.spawn(killer(sim, imp))
    sim.run()
    # The slot freed by the holder must reach the patient process, not the
    # abandoned waiter.
    assert ("interrupted", 1.0) in order
    assert ("patient", 11.0) in order
    assert res.in_use == 0


def test_cancelled_mailbox_getter_does_not_eat_messages():
    sim = Simulator()
    box = Mailbox(sim)
    got = []

    def abandoner(sim, box):
        ev = box.get()
        try:
            yield ev
        except Interrupt:
            box.cancel_get(ev)
            return "gone"

    def consumer(sim, box):
        msg = yield box.get()
        got.append(msg)

    a = sim.spawn(abandoner(sim, box))
    sim.spawn(consumer(sim, box))

    def driver(sim, a, box):
        yield sim.timeout(1.0)
        a.interrupt()
        yield sim.timeout(1.0)
        box.put("precious")

    sim.spawn(driver(sim, a, box))
    sim.run()
    assert got == ["precious"], "the message must reach the live consumer"


def test_multiple_unobserved_failures_in_one_step_still_raise():
    sim = Simulator()
    bar = Barrier(sim, parties=2)

    def failer(sim, bar, msg):
        yield bar.wait()
        raise RuntimeError(msg)

    sim.spawn(failer(sim, bar, "first"))
    sim.spawn(failer(sim, bar, "second"))
    with pytest.raises(RuntimeError):
        sim.run()


def test_observed_failure_plus_unobserved_failure():
    """If one failure is observed by a waiter and another is not, the
    unobserved one must still surface from run()."""
    sim = Simulator()
    bar = Barrier(sim, parties=2)

    def failer(sim, bar, msg):
        yield bar.wait()
        raise RuntimeError(msg)

    observed = sim.spawn(failer(sim, bar, "observed"))

    def watcher(sim, target):
        try:
            yield target
        except RuntimeError:
            return "caught"

    sim.spawn(watcher(sim, observed))
    sim.spawn(failer(sim, bar, "unobserved"))
    with pytest.raises(RuntimeError, match="unobserved"):
        sim.run()


def test_run_until_cannot_move_time_backwards():
    sim = Simulator()
    sim.timeout(20.0)
    sim.run(until=10.0)
    assert sim.now == 10.0
    with pytest.raises(ValueError):
        sim.run(until=5.0)
    sim.run(until=10.0)  # equal is fine
    assert sim.now == 10.0


def test_interrupted_grab_waiter_does_not_leak_slot():
    """grab() is the interrupt-safe bare acquire: a waiter killed while
    queued must withdraw its request, or the next release hands the slot
    to the corpse and the resource is held forever."""
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def holder(sim, res):
        yield from res.use(10.0)

    def doomed(sim, res):
        try:
            yield from res.grab()
        except Interrupt:
            order.append(("interrupted", sim.now))
            return
        res.release()

    def patient(sim, res):
        yield sim.timeout(2.0)
        yield from res.grab()
        order.append(("patient", sim.now))
        res.release()

    sim.spawn(holder(sim, res))
    d = sim.spawn(doomed(sim, res))
    sim.spawn(patient(sim, res))

    def killer(sim, target):
        yield sim.timeout(1.0)
        target.interrupt()

    sim.spawn(killer(sim, d))
    sim.run()
    assert ("interrupted", 1.0) in order
    assert ("patient", 10.0) in order
    assert res.in_use == 0
