"""Documentation hygiene: every relative markdown link resolves.

Scans the repo's top-level ``*.md`` files and ``docs/`` for
``[text](target)`` links and asserts each non-external target exists on
disk, so ARCHITECTURE/FAULTS/BENCHMARKS cross-references cannot rot
silently.  External (``http``/``https``/``mailto``) links and pure
anchors are skipped — this is a filesystem check, not a crawler.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

# [text](target) — excluding images' surrounding syntax differences is
# unnecessary: ![alt](target) matches too, which is what we want.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def markdown_files():
    files = sorted(REPO.glob("*.md")) + sorted((REPO / "docs").glob("*.md"))
    assert files, "no markdown files found — wrong repo layout?"
    return files


@pytest.mark.parametrize("md", markdown_files(), ids=lambda p: str(p.relative_to(REPO)))
def test_relative_links_resolve(md):
    broken = []
    for target in LINK.findall(md.read_text(encoding="utf-8")):
        if target.startswith(SKIP_PREFIXES):
            continue
        path = target.split("#", 1)[0]  # strip section anchors
        if not path:
            continue
        resolved = (md.parent / path).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{md.name}: broken relative links: {broken}"
