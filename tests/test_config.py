"""Unit tests for configuration, validation, and the co-scaling rule."""

import pytest

from repro.config import (
    Algorithm,
    ClusterSpec,
    CostModel,
    Distribution,
    MTUPLES,
    PoolPolicy,
    QueryMixEntry,
    RunConfig,
    SplitPolicy,
    WorkloadConfig,
    WorkloadSpec,
)
from repro.faults import CrashSpec, FaultPlan


def test_algorithm_expanding_flag():
    assert Algorithm.SPLIT.is_expanding
    assert Algorithm.REPLICATE.is_expanding
    assert Algorithm.HYBRID.is_expanding
    assert not Algorithm.OUT_OF_CORE.is_expanding


def test_workload_real_counts_scale():
    wl = WorkloadSpec(r_tuples=10 * MTUPLES, s_tuples=20 * MTUPLES,
                      chunk_tuples=10_000, scale=0.01)
    assert wl.real_r_tuples == 100_000
    assert wl.real_s_tuples == 200_000
    assert wl.real_chunk_tuples == 100
    assert wl.chunk_bytes == 100 * wl.tuple_bytes


def test_workload_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(tuple_bytes=8)  # smaller than the two 64-bit fields
    with pytest.raises(ValueError):
        WorkloadSpec(scale=0.0)
    with pytest.raises(ValueError):
        WorkloadSpec(scale=1.5)
    with pytest.raises(ValueError):
        WorkloadSpec(chunk_tuples=0)


def test_cost_model_derived_times():
    cost = CostModel(net_bandwidth=10e6, disk_bandwidth=5e6, disk_seek=0.01)
    assert cost.wire_time(10e6) == pytest.approx(1.0)
    assert cost.disk_time(5e6) == pytest.approx(1.01)


def test_cost_model_scaling_rule():
    cost = CostModel()
    half = cost.scaled(0.5)
    # fixed per-op costs shrink with scale
    assert half.net_latency == pytest.approx(cost.net_latency * 0.5)
    assert half.net_per_message_cpu == pytest.approx(
        cost.net_per_message_cpu * 0.5)
    assert half.disk_seek == pytest.approx(cost.disk_seek * 0.5)
    # per-byte / per-tuple costs are untouched
    assert half.net_bandwidth == cost.net_bandwidth
    assert half.cpu_insert_tuple == cost.cpu_insert_tuple
    assert half.disk_bandwidth == cost.disk_bandwidth
    # receive window is counted in chunks: scale-invariant
    assert half.recv_window_chunks == cost.recv_window_chunks
    assert cost.scaled(1.0) is cost


def test_cluster_spec_scaling_shrinks_memory_and_costs():
    spec = ClusterSpec(hash_memory_bytes=1000,
                       node_memory_overrides=((3, 2000),))
    scaled = spec.scaled(0.1)
    assert scaled.hash_memory_bytes == 100
    assert scaled.memory_of(3) == 200
    assert scaled.memory_of(0) == 100
    assert scaled.cost.disk_seek == pytest.approx(spec.cost.disk_seek * 0.1)


def test_run_config_validation():
    with pytest.raises(ValueError):
        RunConfig(initial_nodes=0)
    with pytest.raises(ValueError):
        RunConfig(initial_nodes=25, cluster=ClusterSpec(n_potential_nodes=24))
    with pytest.raises(ValueError):
        RunConfig(hash_positions=8, cluster=ClusterSpec(n_potential_nodes=24))


def test_run_config_effective_cluster_scales_with_workload():
    cfg = RunConfig(workload=WorkloadSpec(scale=0.5))
    eff = cfg.effective_cluster
    assert eff.hash_memory_bytes == ClusterSpec().hash_memory_bytes // 2
    assert cfg.effective_drain_poll == pytest.approx(
        cfg.drain_poll_interval * 0.5)


def test_default_calibration_sixteen_nodes_hold_ten_million_tuples():
    """Figure 2's anchor: 16 nodes' budget just covers 10M 100-byte tuples."""
    wl = WorkloadSpec()  # 10M x 100B
    spec = ClusterSpec()
    per_node_tuples = spec.hash_memory_bytes // wl.tuple_bytes
    assert 14 * per_node_tuples < wl.r_tuples <= 16 * per_node_tuples


def test_split_policy_enum_values():
    assert SplitPolicy("bisect") is SplitPolicy.TARGETED_BISECT
    assert SplitPolicy("linear") is SplitPolicy.LINEAR_POINTER
    assert SplitPolicy("linear_mod") is SplitPolicy.LINEAR_MOD
    assert RunConfig().split_policy is SplitPolicy.TARGETED_BISECT


def test_distribution_enum_roundtrip():
    assert Distribution("uniform") is Distribution.UNIFORM
    assert Distribution("gaussian") is Distribution.GAUSSIAN
    assert Distribution("zipf") is Distribution.ZIPF


def test_pool_policy_enum_values():
    assert PoolPolicy("fifo") is PoolPolicy.FIFO
    assert PoolPolicy("fair") is PoolPolicy.FAIR_SHARE
    assert PoolPolicy("deficit") is PoolPolicy.MEMORY_DEFICIT
    assert WorkloadConfig().policy is PoolPolicy.FIFO


def test_query_mix_entry_validation():
    with pytest.raises(ValueError):
        QueryMixEntry(weight=0)
    with pytest.raises(ValueError):
        QueryMixEntry(weight=-1.5)
    with pytest.raises(ValueError):
        QueryMixEntry(r_tuples=0)
    with pytest.raises(ValueError):
        QueryMixEntry(initial_nodes=0)
    with pytest.raises(ValueError):
        QueryMixEntry(tuple_bytes=8)  # cannot hold the two u64 fields


def test_workload_config_validation():
    with pytest.raises(ValueError):
        WorkloadConfig(n_queries=0)
    with pytest.raises(ValueError):
        WorkloadConfig(arrival_rate_qps=0.0)
    with pytest.raises(ValueError):
        WorkloadConfig(arrival_rate_qps=-2.0)
    with pytest.raises(ValueError):
        WorkloadConfig(mix=())
    with pytest.raises(ValueError):
        WorkloadConfig(fair_share_cap=0)
    with pytest.raises(ValueError):
        WorkloadConfig(grant_timeout_s=0.0)
    with pytest.raises(ValueError):
        WorkloadConfig(grant_timeout_s=float("inf"))
    # trace length must match the query count, entries must be >= 0
    with pytest.raises(ValueError):
        WorkloadConfig(n_queries=3, arrival_times=(0.0, 1.0))
    with pytest.raises(ValueError):
        WorkloadConfig(n_queries=2, arrival_times=(0.0, -1.0))
    # a trace overrides the rate, so a bogus rate is then irrelevant
    cfg = WorkloadConfig(n_queries=2, arrival_times=(0.0, 1.0),
                         arrival_rate_qps=-1.0)
    assert cfg.arrival_times == (0.0, 1.0)
    # a mix entry may not want more initial nodes than the pool holds
    with pytest.raises(ValueError):
        WorkloadConfig(
            mix=(QueryMixEntry(initial_nodes=9),),
            cluster=ClusterSpec(n_potential_nodes=8),
        )


def test_workload_config_fault_restrictions():
    with pytest.raises(ValueError):
        WorkloadConfig(faults=FaultPlan(ack_drop_prob=0.05))
    with pytest.raises(ValueError):
        WorkloadConfig(faults=FaultPlan(
            crashes=(CrashSpec(node=1, at_phase="build"),)
        ))
    # at_time crashes and link drops are the supported workload faults
    cfg = WorkloadConfig(faults=FaultPlan(
        drop_prob=0.01, crashes=(CrashSpec(node=1, at_time=0.5),)
    ))
    assert cfg.faults is not None and cfg.faults.active


def test_workload_config_effective_grant_timeout():
    assert WorkloadConfig(grant_timeout_s=1.25).effective_grant_timeout \
        == pytest.approx(1.25)
    derived = WorkloadConfig(scale=0.02, drain_poll_interval=0.010)
    assert derived.effective_grant_timeout == pytest.approx(
        200.0 * 0.010 * 0.02)
