"""Streaming observability: sketches, rings, reservoirs, snapshots.

Unit coverage for :mod:`repro.obs.streaming` plus the workload-level
contracts the subsystem exists for: budgeted runs shed records *loudly*
(drop counters, never silent truncation), unbudgeted runs are
byte-for-byte unchanged, and shard snapshots merge into exactly what one
collector would have seen.
"""

import json
import math
import random

import numpy as np
import pytest

from repro.config import ObsConfig
from repro.core import run_join
from repro.obs import (
    BoundedCausalLog,
    BoundedSpanLog,
    ObsBudget,
    QuantileSketch,
    ReservoirSample,
    Snapshot,
    StreamingCollector,
    TimeSeriesRing,
    merge_snapshots,
)
from repro.workload import run_workload
from repro.workload.results import _percentiles

from .conftest import small_config
from .test_workload import AMPLE_MEMORY, wl_config


# ----------------------------------------------------------------------
# QuantileSketch
# ----------------------------------------------------------------------
def exact_quantile(values, q):
    """The rank convention the sketch documents: floor(q * (n - 1))."""
    return float(np.percentile(values, q * 100, method="lower"))


def test_sketch_error_bound_on_skewed_data():
    rng = np.random.default_rng(11)
    values = rng.zipf(1.5, size=5000).astype(float)
    sk = QuantileSketch()
    for v in values:
        sk.add(v)
    for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
        exact = exact_quantile(values, q)
        assert abs(sk.quantile(q) - exact) <= sk.alpha * abs(exact)


def test_sketch_merge_equals_single_sketch():
    rng = random.Random(3)
    values = [rng.lognormvariate(0, 2) for _ in range(2000)]
    whole = QuantileSketch()
    parts = [QuantileSketch() for _ in range(4)]
    for i, v in enumerate(values):
        whole.add(v)
        parts[i % 4].add(v)
    merged = parts[0].merge(parts[1]).merge(parts[2]).merge(parts[3])
    assert merged == whole
    assert merged.count == whole.count == len(values)


def test_sketch_handles_negatives_and_zero():
    sk = QuantileSketch()
    for v in (-10.0, -1.0, 0.0, 1.0, 10.0):
        sk.add(v)
    assert sk.quantile(0.0) == pytest.approx(-10.0, rel=0.01)
    assert sk.quantile(1.0) == pytest.approx(10.0, rel=0.01)
    assert abs(sk.quantile(0.5)) <= 1e-12


def test_sketch_rejects_non_finite():
    sk = QuantileSketch()
    for bad in (math.nan, math.inf, -math.inf):
        with pytest.raises(ValueError):
            sk.add(bad)


def test_sketch_collapse_keeps_upper_quantiles():
    sk = QuantileSketch(max_bins=32)
    values = [1.001 ** i for i in range(5000)]  # thousands of distinct bins
    for v in values:
        sk.add(v)
    assert sk.collapsed
    # The collapse folds *low* buckets; the tail stays within the bound.
    exact = exact_quantile(values, 0.99)
    assert abs(sk.quantile(0.99) - exact) <= sk.alpha * abs(exact)


def test_sketch_roundtrip_and_mean():
    sk = QuantileSketch()
    for v in (1.0, 2.0, 3.0, 4.0):
        sk.add(v)
    back = QuantileSketch.from_dict(sk.to_dict())
    assert back == sk
    assert sk.mean == pytest.approx(2.5)


def test_sketch_merge_requires_matching_shape():
    with pytest.raises(ValueError):
        QuantileSketch(alpha=0.01).merge(QuantileSketch(alpha=0.02))


# ----------------------------------------------------------------------
# TimeSeriesRing
# ----------------------------------------------------------------------
def test_ring_buckets_and_eviction():
    ring = TimeSeriesRing(resolution_s=1.0, n_buckets=4)
    for t in range(10):
        ring.observe(float(t), float(t))
    assert ring.count == 10  # count tracks every observation ever seen
    assert ring.evicted == 6  # ...but only the newest 4 buckets survive
    indices = [idx for idx, _ in ring.series()]
    assert indices == [6, 7, 8, 9]


def test_ring_merge_commutes_and_checks_resolution():
    a = TimeSeriesRing(resolution_s=0.5, n_buckets=8)
    b = TimeSeriesRing(resolution_s=0.5, n_buckets=8)
    for t in (0.1, 0.6, 1.2):
        a.observe(t, 1.0)
    for t in (0.4, 2.0):
        b.observe(t, 2.0)
    assert a.merge(b) == b.merge(a)
    with pytest.raises(ValueError):
        a.merge(TimeSeriesRing(resolution_s=1.0, n_buckets=8))


# ----------------------------------------------------------------------
# ReservoirSample
# ----------------------------------------------------------------------
def test_reservoir_is_insert_order_invariant():
    items = [(f"item{i:04d}", float(i % 7), {"i": i}) for i in range(200)]
    a = ReservoirSample(sample=16, outliers=4)
    b = ReservoirSample(sample=16, outliers=4)
    for ident, w, p in items:
        a.add(ident, w, p)
    for ident, w, p in reversed(items):
        b.add(ident, w, p)
    assert a == b
    assert a.dropped == 200 - len(a)


def test_reservoir_always_keeps_heaviest():
    r = ReservoirSample(sample=8, outliers=2)
    for i in range(100):
        r.add(f"small{i}", 1.0, None)
    r.add("huge", 1000.0, None)
    r.add("big", 500.0, None)
    assert "huge" in r and "big" in r


def test_reservoir_merge_equals_single_feed():
    items = [(f"k{i}", float((i * 37) % 11), i) for i in range(300)]
    single = ReservoirSample(sample=12, outliers=3)
    left = ReservoirSample(sample=12, outliers=3)
    right = ReservoirSample(sample=12, outliers=3)
    for i, (ident, w, p) in enumerate(items):
        single.add(ident, w, p)
        (left if i % 2 else right).add(ident, w, p)
    assert left.merge(right) == single == right.merge(left)
    assert single.total == 300


# ----------------------------------------------------------------------
# ObsBudget
# ----------------------------------------------------------------------
def test_obs_budget_floors_and_minimum():
    tiny = ObsBudget.from_bytes(4096)
    assert tiny.span_sample >= 32 and tiny.span_outliers >= 8
    assert tiny.ring_buckets >= 16 and tiny.sketch_bins >= 64
    with pytest.raises(ValueError):
        ObsBudget.from_bytes(4095)
    big = ObsBudget.from_bytes(1 << 20)
    assert big.span_sample > tiny.span_sample
    assert big.edge_sample > tiny.edge_sample


# ----------------------------------------------------------------------
# Snapshot
# ----------------------------------------------------------------------
def _snap(shard, t, counters, latencies=()):
    sk = QuantileSketch()
    for v in latencies:
        sk.add(v)
    sketches = {"workload.query_latency_s": sk} if latencies else {}
    return Snapshot(t=t, shards=(shard,), counters=dict(counters),
                    sketches=sketches)


def test_snapshot_merge_laws():
    a = _snap("shardA", 5.0, {"x": 2, "y|k=1": 3}, latencies=[1.0, 2.0])
    b = _snap("shardB", 7.0, {"x": 5, "z": 1}, latencies=[3.0])
    ab, ba = a.merge(b), b.merge(a)
    assert ab.to_json() == ba.to_json()
    assert ab.t == 7.0
    assert ab.shards == ("shardA", "shardB")
    assert ab.counters == {"x": 7, "y|k=1": 3, "z": 1}
    assert ab.counter_total("y") == 3  # label variants fold in
    assert ab.sketches["workload.query_latency_s"].count == 3


def test_snapshot_json_roundtrip_is_byte_stable():
    snap = _snap("shard0", 1.5, {"b": 2, "a": 1}, latencies=[0.5, 0.25])
    text = snap.to_json()
    again = Snapshot.from_json(text)
    assert again.to_json() == text
    assert json.loads(text)["kind"] == "repro-snapshot"


def test_snapshot_rejects_foreign_documents():
    with pytest.raises(ValueError):
        Snapshot.from_dict({"kind": "something-else", "v": 1})


def test_merge_snapshots_folds_any_grouping():
    snaps = [_snap(f"s{i}", float(i), {"n": i}) for i in range(1, 5)]
    folded = merge_snapshots(snaps)
    paired = merge_snapshots([snaps[0].merge(snaps[1]),
                              snaps[2].merge(snaps[3])])
    assert folded.to_json() == paired.to_json()
    assert folded.counters["n"] == 10


# ----------------------------------------------------------------------
# StreamingCollector
# ----------------------------------------------------------------------
def test_collector_snapshots_are_frozen():
    clock = [0.0]
    col = StreamingCollector(clock=lambda: clock[0])
    col.observe("m", 1.0)
    first = col.snapshot()
    col.observe("m", 100.0)
    clock[0] = 9.0
    second = col.snapshot()
    assert first.sketches["m"].count == 1  # later observes don't leak back
    assert second.sketches["m"].count == 2
    assert second.counters["obs.snapshots_emitted"] == 2


# ----------------------------------------------------------------------
# workload integration
# ----------------------------------------------------------------------
def test_percentiles_of_empty_list_is_empty_dict():
    # Regression: this used to hand numpy an empty array (ValueError) or,
    # worse, fabricate NaN placeholders.
    assert _percentiles([], (50, 90, 99)) == {}


def test_percentiles_track_exact_within_sketch_bound():
    values = [float(v) for v in range(1, 200)]
    pcts = _percentiles(values, (50, 90, 99))
    for q, key in ((0.50, "p50"), (0.90, "p90"), (0.99, "p99")):
        exact = exact_quantile(values, q)
        assert abs(pcts[key] - exact) <= 0.01 * exact


def test_unbudgeted_workload_report_is_unchanged():
    res = run_workload(wl_config(n_queries=2, pool=8, memory=AMPLE_MEMORY))
    assert "obs" not in res.to_dict()
    assert not any(i["name"].startswith("obs.") for i in res.metrics)
    assert res.spans_dropped == 0 and res.edges_dropped == 0
    assert res.snapshot is not None  # the snapshot itself always exists
    assert "obs:" not in res.summary()


def test_budgeted_workload_sheds_loudly_but_answers_exactly():
    base = run_workload(wl_config(n_queries=6, pool=8, memory=AMPLE_MEMORY))
    cfg = wl_config(n_queries=6, pool=8, memory=AMPLE_MEMORY,
                    obs=ObsConfig(budget_bytes=4096))
    res = run_workload(cfg)
    # observability is a pure observer: identical answers and timings
    assert [q.matches for q in res.queries] == [
        q.matches for q in base.queries
    ]
    assert res.makespan_s == base.makespan_s
    # ... but the budget visibly shed spans (6 queries >> the ~40-span
    # floor) and the report says so
    assert res.spans_dropped > 0
    obs = res.to_dict()["obs"]
    assert obs["budget_bytes"] == 4096
    assert obs["spans_dropped"] == res.spans_dropped
    assert "obs: budget shed" in res.summary()
    assert res.snapshot.counter_total("obs.spans_dropped") == res.spans_dropped


def test_budgeted_single_query_bounds_causal_log():
    res = run_join(small_config(obs_budget_bytes=4096))
    assert isinstance(res.causal, BoundedCausalLog)
    assert res.causal.dropped > 0  # small joins still send hundreds of msgs
    dropped = {
        i["name"]: i["value"] for i in res.metrics
        if i["name"].startswith("obs.")
    }
    assert dropped["obs.edges_dropped"] == res.causal.dropped
    # sampled-out edges are gone but lookups fail loudly, not wrongly
    kept = {e.eid for e in res.causal.edges}
    missing = next(i for i in range(res.causal.total) if i not in kept)
    with pytest.raises(KeyError):
        res.causal.edge(missing)


def test_unbudgeted_single_query_keeps_plain_logs():
    res = run_join(small_config())
    assert not isinstance(res.causal, BoundedCausalLog)
    assert not any(i["name"].startswith("obs.") for i in res.metrics)


def test_two_shard_split_merges_to_exact_counters():
    """The acceptance contract: a seeded workload split across two
    independent simulators merges via Snapshot.merge() into exact
    counters and in-bound latency quantiles."""
    shard_a = run_workload(wl_config(
        n_queries=2, pool=8, memory=AMPLE_MEMORY,
        obs=ObsConfig(shard="shardA"),
    ))
    shard_b = run_workload(wl_config(
        n_queries=3, pool=8, memory=AMPLE_MEMORY, seed=13,
        obs=ObsConfig(shard="shardB"),
    ))
    merged = shard_a.snapshot.merge(shard_b.snapshot)
    assert merged.to_json() == shard_b.snapshot.merge(
        shard_a.snapshot
    ).to_json()
    assert merged.shards == ("shardA", "shardB")
    # every catalogued counter is reported exactly: key-union sum
    for key in set(shard_a.snapshot.counters) | set(shard_b.snapshot.counters):
        assert merged.counters[key] == (
            shard_a.snapshot.counters.get(key, 0)
            + shard_b.snapshot.counters.get(key, 0)
        )
    assert merged.counter_total("workload.queries") == 5
    # latency quantiles of the merged sketch stay within the documented
    # bound of the exact combined order statistics
    latencies = [q.latency_s for q in shard_a.queries + shard_b.queries]
    for q in (0.5, 0.9, 0.99):
        exact = exact_quantile(latencies, q)
        got = merged.quantile("workload.query_latency_s", q)
        assert abs(got - exact) <= 0.01 * abs(exact)


def test_final_snapshot_is_deterministic():
    cfg = wl_config(n_queries=3, pool=8, memory=AMPLE_MEMORY,
                    obs=ObsConfig(budget_bytes=32768))
    one = run_workload(cfg).snapshot.to_json()
    two = run_workload(cfg).snapshot.to_json()
    assert one == two


def test_live_interval_emits_periodic_snapshots():
    seen = []
    cfg = wl_config(n_queries=2, pool=8, memory=AMPLE_MEMORY,
                    obs=ObsConfig(live_interval_s=0.05))
    res = run_workload(cfg, on_snapshot=seen.append)
    assert seen, "expected at least one periodic snapshot"
    assert all(isinstance(s, Snapshot) for s in seen)
    assert [s.t for s in seen] == sorted(s.t for s in seen)
    emitted = res.snapshot.counter_total("obs.snapshots_emitted")
    # final snapshot counts itself on top of the periodic ones
    assert emitted == len(seen) + 1
    # periodic snapshots merge cleanly into the final one
    folded = merge_snapshots([*seen, res.snapshot])
    assert folded.counter_total("workload.queries") == 2


def test_bounded_span_log_drops_shortest_first():
    log = BoundedSpanLog(sample=4, outliers=2)
    for i in range(50):
        log.add("track", f"op{i}", float(i), float(i) + 0.001 * (i + 1))
    log.add("track", "slow", 100.0, 200.0)
    assert log.dropped == 51 - len(log.spans)
    assert any(s.name == "slow" for s in log.spans)  # heaviest survives
    assert [s.t0 for s in log.spans] == sorted(s.t0 for s in log.spans)
