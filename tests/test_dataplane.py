"""The columnar data plane (docs/DATA_PLANE.md).

Property tests for the chunk format and the vectorized kernels: the bulk
probe/route/build paths must agree exactly with straightforward
per-tuple reference implementations, chunk admission must be atomic, and
the whole-system simulated-time series must be invariant to everything
the data plane is allowed to vary (and byte-stable run to run) — the
per-chunk == per-tuple cost-equivalence argument of DATA_PLANE.md §3,
checked end to end for all four algorithms plus one chaos run.
"""

from collections import Counter
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from tests.conftest import small_cluster, small_config, small_workload
from repro.config import Algorithm
from repro.core import run_join
from repro.data import (
    KEY_DTYPE,
    ChunkBuffer,
    RelationStream,
    as_key_chunk,
    chunk_slices,
)
from repro.faults import CrashSpec, FaultPlan
from repro.hashing import NodeHashStore, PositionMap
from repro.hashing.routing import _group_indices

REPO = Path(__file__).resolve().parent.parent

uint64_arrays = hnp.arrays(
    dtype=np.uint64,
    shape=st.integers(0, 400),
    elements=st.integers(0, 2**64 - 1),
)
small_key_arrays = hnp.arrays(
    dtype=np.uint64,
    shape=st.integers(0, 300),
    elements=st.integers(0, 50),  # dense keys -> many duplicate matches
)


def counter_total(res, name, **labels):
    return sum(
        inst["value"] for inst in res.metrics
        if inst["name"] == name and inst["type"] == "counter"
        and all(inst["labels"].get(k) == v for k, v in labels.items())
    )


# ----------------------------------------------------------------------
# bulk probe == per-tuple reference
# ----------------------------------------------------------------------
def per_tuple_probe(stored: np.ndarray, probes: np.ndarray) -> int:
    """The per-tuple ancestor: one dict lookup per probe tuple."""
    table = Counter(stored.tolist())
    return sum(table[v] for v in probes.tolist())


def two_pass_probe(stored: np.ndarray, probes: np.ndarray) -> int:
    """The previous vectorized implementation (two searchsorted passes)."""
    if stored.size == 0 or probes.size == 0:
        return 0
    s = np.sort(stored)
    left = np.searchsorted(s, probes, side="left")
    right = np.searchsorted(s, probes, side="right")
    return int((right - left).sum())


@given(stored=small_key_arrays, probes=small_key_arrays)
@settings(max_examples=200, deadline=None)
def test_bulk_probe_matches_both_references(stored, probes):
    store = NodeHashStore(PositionMap(1 << 10))
    store.insert(stored)
    got = store.probe(probes)
    assert got == per_tuple_probe(stored, probes)
    assert got == two_pass_probe(stored, probes)


@given(stored=small_key_arrays, probes=small_key_arrays,
       cut=st.integers(0, 300))
@settings(max_examples=100, deadline=None)
def test_probe_count_invariant_to_chunking(stored, probes, cut):
    """Inserting/probing in one chunk or many yields the same pair count
    — the store-level face of the per-chunk cost-equivalence argument."""
    one = NodeHashStore(PositionMap(1 << 10))
    one.insert(stored)
    many = NodeHashStore(PositionMap(1 << 10))
    k = min(cut, stored.size)
    many.insert_chunks([stored[:k], stored[k:]])
    assert one.stored_tuples == many.stored_tuples
    j = min(cut, probes.size)
    assert one.probe(probes) == many.probe(probes[:j]) + many.probe(probes[j:])


@given(stored=small_key_arrays, probes=small_key_arrays)
@settings(max_examples=50, deadline=None)
def test_probe_after_interleaved_insert_stays_exact(stored, probes):
    """finalize() caches must invalidate on every mutation."""
    store = NodeHashStore(PositionMap(1 << 10))
    k = stored.size // 2
    store.insert(stored[:k])
    first = store.probe(probes)       # forces consolidation
    assert first == per_tuple_probe(stored[:k], probes)
    store.insert(stored[k:])          # mutate after finalize
    assert store.probe(probes) == per_tuple_probe(stored, probes)


# ----------------------------------------------------------------------
# atomic bulk ingest (regression: no partial apply on a bad chunk)
# ----------------------------------------------------------------------
def test_insert_chunks_rejects_atomically():
    store = NodeHashStore(PositionMap(1 << 10))
    good = np.array([1, 2, 3], dtype=np.uint64)
    bad = np.array([1.5, 2.5])  # lossy floats
    with pytest.raises(ValueError, match="lossy"):
        store.insert_chunks([good, bad, good])
    # nothing from the batch — including the leading good chunk — landed
    assert store.stored_tuples == 0
    assert store.probe(good) == 0
    store.insert_chunks([good, good])
    assert store.stored_tuples == 6


def test_insert_chunks_rejects_mixed_dtype_object_chunk():
    store = NodeHashStore(PositionMap(1 << 10))
    with pytest.raises(TypeError, match="numeric"):
        store.insert_chunks([
            np.array([7], dtype=np.uint64),
            np.array(["x"], dtype=object),
        ])
    assert store.stored_tuples == 0


@given(values=hnp.arrays(dtype=np.int64, shape=st.integers(1, 50),
                         elements=st.integers(0, 2**62)))
@settings(max_examples=50, deadline=None)
def test_as_key_chunk_lossless_roundtrip(values):
    chunk = as_key_chunk(values)
    assert chunk.dtype == KEY_DTYPE
    assert np.array_equal(chunk.astype(np.int64), values)


def test_as_key_chunk_rejections():
    with pytest.raises(ValueError, match="non-negative"):
        as_key_chunk(np.array([-1], dtype=np.int64))
    with pytest.raises(ValueError, match="finite"):
        as_key_chunk(np.array([np.inf]))
    with pytest.raises(ValueError, match="range"):
        as_key_chunk(np.array([2.0**65]))
    with pytest.raises(TypeError, match="numeric"):
        as_key_chunk(np.array(["a"]))


# ----------------------------------------------------------------------
# routing: vectorized grouping == per-tuple reference
# ----------------------------------------------------------------------
@given(
    keys=hnp.arrays(dtype=np.int64, shape=st.integers(0, 300),
                    elements=st.integers(0, 7)),
    n_groups=st.integers(1, 8),
)
@settings(max_examples=150, deadline=None)
def test_group_indices_matches_per_tuple_grouping(keys, n_groups):
    keys = keys % n_groups
    groups = _group_indices(keys, n_groups)
    assert len(groups) == n_groups
    reference = [[] for _ in range(n_groups)]
    for i, k in enumerate(keys.tolist()):  # the per-tuple ancestor
        reference[k].append(i)
    for got, want in zip(groups, reference):
        # stable: indices appear in original order within each group
        assert got.tolist() == want


# ----------------------------------------------------------------------
# chunk plumbing
# ----------------------------------------------------------------------
@given(total=st.integers(0, 5000), chunk=st.integers(1, 700))
@settings(max_examples=100, deadline=None)
def test_chunk_slices_tile_exactly(total, chunk):
    spans = list(chunk_slices(total, chunk))
    assert sum(hi - lo for lo, hi in spans) == total
    pos = 0
    for lo, hi in spans:
        assert lo == pos and lo < hi
        assert hi - lo <= chunk
        pos = hi
    if spans:
        assert all(hi - lo == chunk for lo, hi in spans[:-1])


@given(
    appends=st.lists(
        st.tuples(st.integers(0, 3), small_key_arrays), max_size=20
    ),
    chunk=st.integers(1, 50),
)
@settings(max_examples=100, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_chunk_buffer_preserves_order_and_multiset(appends, chunk):
    buf = ChunkBuffer(chunk)
    expect: dict[int, list[int]] = {}
    for dest, values in appends:
        buf.append(dest, values)
        expect.setdefault(dest, []).extend(values.tolist())
    for dest in buf.destinations():
        out = []
        while (c := buf.pop_full_chunk(dest)) is not None:
            assert c.size == chunk
            out.extend(c.tolist())
        rest = buf.pop_all(dest)
        if rest is not None:
            assert rest.size < chunk
            out.extend(rest.tolist())
        assert out == expect[dest]
    assert buf.total_buffered == 0


def test_relation_stream_limit_is_a_prefix():
    wl = small_workload(r=2000, s=500, chunk=150)
    stream = RelationStream(wl, "R", 2, 0)
    full = list(stream.batches())
    assert len(full) == stream.n_batches
    for k in (0, 1, 3, len(full), len(full) + 5):
        prefix = list(stream.batches(limit=k))
        assert len(prefix) == min(k, len(full))
        for a, b in zip(prefix, full):
            assert np.array_equal(a, b)


# ----------------------------------------------------------------------
# whole-system: chunked plane reproduces the per-tuple cost model
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", list(Algorithm))
def test_simulated_series_deterministic_and_oracle_exact(algorithm):
    """Every algorithm: oracle-exact matches and a byte-stable simulated
    makespan across repeated runs of the chunked plane."""
    wl = small_workload(r=3000, s=3000, sigma=0.001, seed=11)
    cfg = small_config(algorithm, initial=2, workload=wl,
                       cluster=small_cluster(pool=10))
    first = run_join(cfg)   # validate=True: asserts matches == oracle
    second = run_join(cfg)
    assert first.is_valid and second.is_valid
    assert first.matches == second.matches
    assert first.total_s == second.total_s  # byte-identical, not approx
    assert counter_total(first, "dataplane.chunks_routed") > 0
    assert counter_total(first, "dataplane.bulk_probe_rows") >= wl.s_tuples


@pytest.mark.chaos
def test_chaos_run_stays_exact_on_the_chunked_plane():
    """PR-2-style adversity (message/ack drops + one dormant-node crash)
    perturbs timing and retries only: the chunked data plane still
    produces the fault-free run's exact match count."""
    plan = FaultPlan(
        seed=1234,
        drop_prob=0.02,
        ack_drop_prob=0.02,
        crashes=(CrashSpec(node=15, at_phase="build"),),
    )
    wl = small_workload(sigma=1e-5)
    base = run_join(small_config(Algorithm.HYBRID, initial=2, workload=wl))
    res = run_join(small_config(Algorithm.HYBRID, initial=2, workload=wl,
                                faults=plan))
    assert res.matches == base.matches == res.reference_matches


# ----------------------------------------------------------------------
# docs wiring (satellite: the new docs are linked from the indexes)
# ----------------------------------------------------------------------
def test_dataplane_docs_are_linked_from_indexes():
    readme = (REPO / "README.md").read_text()
    assert "docs/DATA_PLANE.md" in readme
    assert "docs/PERFORMANCE.md" in readme
    arch = (REPO / "docs" / "ARCHITECTURE.md").read_text()
    assert "DATA_PLANE.md" in arch
    assert "PERFORMANCE.md" in arch
    # the catalogue rows repro lint checks for exist
    obs = (REPO / "docs" / "OBSERVABILITY.md").read_text()
    assert "`dataplane.chunks_routed`" in obs
    assert "`dataplane.bulk_probe_rows`" in obs
