"""Direct unit tests for the Grace-style SpillStore (recursion included)."""

import numpy as np

from tests.conftest import small_config
from repro.config import Algorithm
from repro.core.context import RunContext
from repro.core.joinnode import SpillStore
from repro.hashing import HashRange
from repro.seqjoin import match_count
from repro.sim import Simulator


def make_store(memory=10_000, k_parts=4, rng_width=1 << 12):
    cfg = small_config(Algorithm.OUT_OF_CORE, initial=2)
    ctx = RunContext(Simulator(), cfg)
    node = ctx.join_node(0)
    node.memory.capacity = memory
    store = SpillStore(ctx, 0, k_parts=k_parts,
                       hash_range=HashRange(0, rng_width))
    return ctx, node, store


def drive(ctx, gen):
    p = ctx.sim.spawn(gen)
    ctx.sim.run()
    return p.value


def test_write_r_partitions_by_position():
    ctx, node, store = make_store()
    values = np.random.default_rng(0).integers(0, 1 << 32, 2000,
                                               dtype=np.uint64)
    drive(ctx, store.write_r(values.copy()))
    assert store.spilled_r == 2000
    total = sum(sum(a.size for a in part) for part in store._r_parts)
    assert total == 2000
    assert node.disk.bytes_written == 2000 * 100


def test_write_s_only_touches_parts_with_spilled_r():
    ctx, node, store = make_store(k_parts=4, rng_width=1 << 12)
    # R only in the first quarter of the range -> positions < 2^30 approx
    r = np.random.default_rng(1).integers(0, 1 << 30, 500, dtype=np.uint64)
    drive(ctx, store.write_r(r.copy()))

    def run_s():
        s = np.random.default_rng(2).integers(0, 1 << 32, 1000,
                                              dtype=np.uint64)
        written = yield from store.write_s(s)
        return written

    written = drive(ctx, run_s())
    assert 0 < written < 1000, "only the hot quarter's S tuples spill"
    assert store.spilled_s == written


def test_final_passes_match_oracle_without_recursion():
    ctx, node, store = make_store(memory=1_000_000)
    rng = np.random.default_rng(3)
    r = rng.integers(0, 1000, 3000, dtype=np.uint64)
    s = rng.integers(0, 1000, 3000, dtype=np.uint64)
    drive(ctx, store.write_r(r.copy()))

    def run_all():
        yield from store.write_s(s)
        found = yield from store.final_passes()
        return found

    found = drive(ctx, run_all())
    assert found == match_count(r, s)
    assert store.recursive_passes == 0


def test_final_passes_recurse_on_oversized_partition_and_stay_exact():
    # capacity of 100 tuples; 3000 tuples into 2 parts -> heavy recursion
    ctx, node, store = make_store(memory=100 * 100, k_parts=2)
    rng = np.random.default_rng(4)
    r = rng.integers(0, 500, 3000, dtype=np.uint64)
    s = rng.integers(0, 500, 3000, dtype=np.uint64)
    drive(ctx, store.write_r(r.copy()))

    def run_all():
        yield from store.write_s(s)
        found = yield from store.final_passes()
        return found

    found = drive(ctx, run_all())
    assert found == match_count(r, s)
    assert store.recursive_passes > 0
    # recursion charges extra disk traffic beyond the plain readback
    plain = (store.spilled_r + store.spilled_s) * 100
    assert node.disk.bytes_read > plain


def test_recursion_depth_is_bounded():
    """Identical join values cannot be split apart: the recursion must
    stop at MAX_RECURSION and join in core anyway (exactly)."""
    ctx, node, store = make_store(memory=50 * 100, k_parts=2)
    r = np.full(2000, 7, dtype=np.uint64)  # one hot value
    s = np.full(10, 7, dtype=np.uint64)
    drive(ctx, store.write_r(r.copy()))

    def run_all():
        yield from store.write_s(s)
        found = yield from store.final_passes()
        return found

    found = drive(ctx, run_all())
    assert found == 2000 * 10
    assert store.recursive_passes <= SpillStore.MAX_RECURSION * 2
