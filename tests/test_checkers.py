"""Unit tests for the repo's static-analysis framework (repro.checkers).

Each rule gets a fixture pair: a clean snippet that must pass and a
seeded-violation snippet that must fail with exactly that rule id.  The
fixtures are written into a synthetic mini-repo tree (``src/repro/...``)
because checker scoping is repo-relative.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.checkers import LintError, Violation, run_lint
from repro.checkers.base import SourceFile
from repro.checkers.metricsync import _catalogue_names
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_repo(tmp_path: Path, files: dict[str, str]) -> Path:
    """Materialize a mini repo tree; keys are repo-relative paths."""
    for rel, text in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(text, encoding="utf-8")
    # run_lint requires a src/repro directory to treat the root as a repo.
    (tmp_path / "src" / "repro").mkdir(parents=True, exist_ok=True)
    return tmp_path


def rules_of(violations: list[Violation]) -> set[str]:
    return {v.rule for v in violations}


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
@pytest.mark.parametrize("snippet,rule", [
    ("import time\n\ndef f():\n    return time.time()\n",
     "det-wallclock"),
    ("from time import perf_counter\n\ndef f():\n    return perf_counter()\n",
     "det-wallclock"),
    ("from datetime import datetime\n\ndef f():\n    return datetime.now()\n",
     "det-wallclock"),
    ("import random\n\ndef f():\n    return random.random()\n",
     "det-global-rng"),
    ("import numpy as np\n\ndef f(a):\n    np.random.shuffle(a)\n",
     "det-global-rng"),
    ("import os\n\ndef f():\n    return os.urandom(8)\n",
     "det-global-rng"),
    ("def f():\n    s = {1, 2, 3}\n    for x in s:\n        print(x)\n",
     "det-set-iter"),
    ("def f(pending: set[int]):\n    return [x for x in pending]\n",
     "det-set-iter"),
    ("class C:\n    def __init__(self):\n        self.live = set()\n"
     "    def f(self):\n        return self.live.pop()\n",
     "det-set-iter"),
    ("import os\n\ndef f(p):\n    return os.listdir(p)\n",
     "det-fs-order"),
    ("from pathlib import Path\n\ndef f(p: Path):\n"
     "    return list(p.iterdir())\n",
     "det-fs-order"),
])
def test_determinism_violations(tmp_path, snippet, rule):
    root = make_repo(tmp_path, {"src/repro/sim/mod.py": snippet})
    found = run_lint(root)
    assert rule in rules_of(found), found


@pytest.mark.parametrize("snippet", [
    # seeded RNG is the sanctioned idiom
    "import numpy as np\n\ndef f(seed):\n    return np.random.default_rng(seed)\n",
    # sorted() wrapping sanctions sets and filesystem enumeration
    "def f():\n    s = {1, 2, 3}\n    return [x for x in sorted(s)]\n",
    "import os\n\ndef f(p):\n    return sorted(os.listdir(p))\n",
    # membership tests and len() on sets are order-independent
    "def f(pending: set[int], x):\n    return x in pending and len(pending)\n",
    # simulated clocks are fine: the ban is on the *wall* clock
    "def f(sim):\n    return sim.now\n",
])
def test_determinism_clean(tmp_path, snippet):
    root = make_repo(tmp_path, {"src/repro/sim/mod.py": snippet})
    assert run_lint(root) == []


def test_determinism_out_of_scope_dir_is_ignored(tmp_path):
    # The determinism pass scopes to sim/core/cluster/hashing only.
    snippet = "import time\n\ndef f():\n    return time.time()\n"
    root = make_repo(tmp_path, {"src/repro/analysis/mod.py": snippet})
    assert "det-wallclock" not in rules_of(run_lint(root))


# ----------------------------------------------------------------------
# suppression comments
# ----------------------------------------------------------------------
def test_suppression_drops_matching_rule(tmp_path):
    snippet = ("import time\n\ndef f():\n"
               "    return time.time()  # repro: allow[det-wallclock]\n")
    root = make_repo(tmp_path, {"src/repro/sim/mod.py": snippet})
    assert run_lint(root) == []


def test_suppression_is_per_rule(tmp_path):
    snippet = ("import time\n\ndef f():\n"
               "    return time.time()  # repro: allow[det-set-iter]\n")
    root = make_repo(tmp_path, {"src/repro/sim/mod.py": snippet})
    assert "det-wallclock" in rules_of(run_lint(root))


def test_suppression_marker_in_string_literal_is_inert(tmp_path):
    snippet = ('import time\n\ndef f():\n'
               '    x = "# repro: allow[det-wallclock]"\n'
               '    return time.time(), x\n')
    root = make_repo(tmp_path, {"src/repro/sim/mod.py": snippet})
    assert "det-wallclock" in rules_of(run_lint(root))


def test_suppression_multiple_rules_one_comment(tmp_path):
    snippet = ("import time, os\n\ndef f(p):\n"
               "    return time.time(), os.listdir(p)"
               "  # repro: allow[det-wallclock, det-fs-order]\n")
    root = make_repo(tmp_path, {"src/repro/sim/mod.py": snippet})
    assert run_lint(root) == []


# ----------------------------------------------------------------------
# fault safety
# ----------------------------------------------------------------------
def test_bare_except_flagged(tmp_path):
    snippet = "def f():\n    try:\n        g()\n    except:\n        pass\n"
    root = make_repo(tmp_path, {"src/repro/obs/mod.py": snippet})
    assert "fault-bare-except" in rules_of(run_lint(root))


@pytest.mark.parametrize("exc", ["Exception", "BaseException",
                                 "UnrecoverableFaultError"])
def test_swallowed_broad_handler_flagged(tmp_path, exc):
    snippet = (f"def f():\n    try:\n        g()\n"
               f"    except {exc}:\n        pass\n")
    root = make_repo(tmp_path, {"src/repro/core/mod.py": snippet})
    assert "fault-swallowed" in rules_of(run_lint(root))


def test_reraising_broad_handler_clean(tmp_path):
    snippet = ("def f():\n    try:\n        g()\n"
               "    except BaseException:\n        cleanup()\n        raise\n")
    root = make_repo(tmp_path, {"src/repro/core/mod.py": snippet})
    assert run_lint(root) == []


def test_narrow_handler_clean(tmp_path):
    snippet = ("def f(xs, x):\n    try:\n        xs.remove(x)\n"
               "    except ValueError:\n        pass\n")
    root = make_repo(tmp_path, {"src/repro/core/mod.py": snippet})
    assert run_lint(root) == []


# ----------------------------------------------------------------------
# protocol exhaustiveness
# ----------------------------------------------------------------------
_MINI_MESSAGES = '''\
from dataclasses import dataclass

__all__ = ["Ping"]


@dataclass
class Ping:
    node: int


@dataclass
class Orphan:
    node: int
'''

_MINI_DISPATCH = '''\
from .messages import Ping


class Handler:
    def dispatch(self, msg):
        if isinstance(msg, Ping):
            return msg.node
        raise RuntimeError(msg)

    def hello(self, ctx, a, b):
        yield from ctx.send(a, b, Ping(1))
'''


def test_protocol_unhandled_and_unexported(tmp_path):
    root = make_repo(tmp_path, {
        "src/repro/core/messages.py": _MINI_MESSAGES,
        "src/repro/core/handler.py": _MINI_DISPATCH,
    })
    found = run_lint(root)
    assert {"proto-unhandled", "proto-missing-export"} <= rules_of(found)
    orphan = [v for v in found if v.rule == "proto-unhandled"]
    assert len(orphan) == 1 and "Orphan" in orphan[0].message


def test_protocol_unregistered_send(tmp_path):
    dispatch = _MINI_DISPATCH + (
        "\n    def bad(self, ctx, a, b):\n"
        "        yield from ctx.send(a, b, Rogue())\n"
    )
    root = make_repo(tmp_path, {
        "src/repro/core/messages.py": _MINI_MESSAGES,
        "src/repro/core/handler.py": dispatch,
    })
    found = [v for v in run_lint(root) if v.rule == "proto-unregistered-send"]
    assert len(found) == 1 and "Rogue" in found[0].message


def test_protocol_send_via_local_binding(tmp_path):
    dispatch = _MINI_DISPATCH + (
        "\n    def bad(self, ctx, a, b):\n"
        "        msg = Rogue()\n"
        "        yield from ctx.send(a, b, msg)\n"
    )
    root = make_repo(tmp_path, {
        "src/repro/core/messages.py": _MINI_MESSAGES,
        "src/repro/core/handler.py": dispatch,
    })
    assert "proto-unregistered-send" in rules_of(run_lint(root))


# ----------------------------------------------------------------------
# metrics-catalogue sync
# ----------------------------------------------------------------------
_MINI_CATALOGUE = """\
# Observability

## Metric catalogue

| metric | kind |
|---|---|
| `app.requests` | counter |
| `app.errors`, `app.retries` | counter |

## Something else

| `NotAMetric` | ignore me |
"""


def test_catalogue_parser_reads_multiname_rows():
    names = _catalogue_names(_MINI_CATALOGUE)
    assert set(names) == {"app.requests", "app.errors", "app.retries"}


def test_metrics_uncatalogued(tmp_path):
    code = ('def f(registry):\n'
            '    registry.counter("app.unknown").inc(1)\n')
    root = make_repo(tmp_path, {
        "src/repro/obs/mod.py": code,
        "docs/OBSERVABILITY.md": _MINI_CATALOGUE,
    })
    found = [v for v in run_lint(root) if v.rule == "metrics-uncatalogued"]
    assert len(found) == 1 and "app.unknown" in found[0].message


def test_metrics_stale_catalogue(tmp_path):
    code = ('def f(registry):\n'
            '    registry.counter("app.requests").inc(1)\n'
            '    registry.counter("app.errors").inc(1)\n'
            '    registry.counter("app.retries").inc(1)\n')
    root = make_repo(tmp_path, {"src/repro/obs/mod.py": code,
                                "docs/OBSERVABILITY.md": _MINI_CATALOGUE})
    assert run_lint(root) == []
    # drop one publisher -> its catalogue row goes stale
    (root / "src/repro/obs/mod.py").write_text(
        'def f(registry):\n'
        '    registry.counter("app.requests").inc(1)\n'
        '    registry.counter("app.errors").inc(1)\n')
    found = [v for v in run_lint(root) if v.rule == "metrics-stale-catalogue"]
    assert len(found) == 1 and "app.retries" in found[0].message
    assert found[0].path == "docs/OBSERVABILITY.md"


def test_instrument_level_calls_not_confused_with_registry(tmp_path):
    # counter.inc(5) / hist.observe(t, v) carry no metric-name literal.
    code = ('def f(counter, hist, t):\n'
            '    counter.inc(5)\n'
            '    hist.observe(t, 3)\n')
    root = make_repo(tmp_path, {"src/repro/obs/mod.py": code,
                                "docs/OBSERVABILITY.md":
                                    "# x\n\n## Metric catalogue\n"})
    assert run_lint(root) == []


# ----------------------------------------------------------------------
# framework behavior
# ----------------------------------------------------------------------
def test_violations_sorted_and_formatted(tmp_path):
    root = make_repo(tmp_path, {
        "src/repro/sim/b.py": "import time\n\ndef f():\n    return time.time()\n",
        "src/repro/sim/a.py": "import os\n\ndef f(p):\n    return os.listdir(p)\n",
    })
    found = run_lint(root)
    assert [v.path for v in found] == ["src/repro/sim/a.py", "src/repro/sim/b.py"]
    assert found[0].format().startswith("src/repro/sim/a.py:4: det-fs-order ")


def test_select_filters_passes(tmp_path):
    root = make_repo(tmp_path, {
        "src/repro/sim/mod.py":
            "import time\n\ndef f():\n    try:\n        return time.time()\n"
            "    except:\n        pass\n",
    })
    assert rules_of(run_lint(root)) == {"det-wallclock", "fault-bare-except"}
    assert rules_of(run_lint(root, select=["det-"])) == {"det-wallclock"}
    assert rules_of(run_lint(root, select=["faultsafety"])) == {"fault-bare-except"}


def test_syntax_error_raises_lint_error(tmp_path):
    root = make_repo(tmp_path, {"src/repro/sim/mod.py": "def f(:\n"})
    with pytest.raises(LintError, match="cannot parse"):
        run_lint(root)


def test_bad_path_raises_lint_error(tmp_path):
    root = make_repo(tmp_path, {})
    with pytest.raises(LintError, match="no such file"):
        run_lint(root, paths=["does/not/exist.py"])


def test_sourcefile_records_suppression_lines(tmp_path):
    p = tmp_path / "m.py"
    p.write_text("x = 1  # repro: allow[rule-a,rule-b]\ny = 2\n")
    sf = SourceFile(tmp_path, p)
    assert sf.suppressed(1, "rule-a") and sf.suppressed(1, "rule-b")
    assert not sf.suppressed(2, "rule-a")


# ----------------------------------------------------------------------
# self-hosting + CLI
# ----------------------------------------------------------------------
def test_repo_tree_is_lint_clean():
    assert run_lint(REPO_ROOT) == []


def test_cli_lint_clean_exit_zero(capsys):
    rc = main(["lint", "--root", str(REPO_ROOT)])
    out = capsys.readouterr().out
    assert rc == 0 and "clean" in out


def test_cli_lint_violations_exit_one(tmp_path, capsys):
    make_repo(tmp_path, {
        "src/repro/sim/mod.py": "import time\n\ndef f():\n    return time.time()\n",
    })
    rc = main(["lint", "--root", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "src/repro/sim/mod.py:4: det-wallclock" in out


def test_cli_lint_json_format(tmp_path, capsys):
    import json

    make_repo(tmp_path, {
        "src/repro/sim/mod.py": "import time\n\ndef f():\n    return time.time()\n",
    })
    rc = main(["lint", "--root", str(tmp_path), "--format", "json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 1 and doc["count"] == 1
    assert doc["violations"][0]["rule"] == "det-wallclock"
    assert doc["violations"][0]["line"] == 4


def test_cli_lint_bad_path_exit_two(capsys):
    rc = main(["lint", "--root", str(REPO_ROOT), "no/such/dir"])
    err = capsys.readouterr().err
    assert rc == 2 and "no such file" in err


def test_cli_lint_list_passes(capsys):
    rc = main(["lint", "--list"])
    out = capsys.readouterr().out
    assert rc == 0
    for pass_name in ("determinism", "protocol", "metrics", "faultsafety"):
        assert pass_name in out
