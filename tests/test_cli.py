"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def small_args(extra):
    """Keep CLI test runs tiny and fast."""
    return extra + [
        "--r-tuples", "0.004", "--s-tuples", "0.004",
        "--scale", "1.0", "--chunk-tuples", "200",
        "--pool", "8", "--sources", "2", "--node-memory-mb", "0.04",
    ]


def test_run_command_prints_summary(capsys):
    rc = main(small_args(["run", "--algorithm", "hybrid",
                          "--initial-nodes", "2"]))
    out = capsys.readouterr().out
    assert rc == 0
    assert "hybrid" in out
    assert "phases (paper-scale s)" in out


def test_run_command_with_trace(capsys):
    rc = main(small_args(["run", "--algorithm", "split",
                          "--initial-nodes", "2", "--trace"]))
    out = capsys.readouterr().out
    assert rc == 0
    assert "trace:" in out
    assert "memory_full" in out


def test_run_command_skew_and_policy(capsys):
    rc = main(small_args(["run", "--algorithm", "split",
                          "--initial-nodes", "2", "--sigma", "0.001",
                          "--split-policy", "linear"]))
    assert rc == 0


def test_run_zipf_with_output_materialization(capsys):
    rc = main(small_args(["run", "--algorithm", "replicate",
                          "--initial-nodes", "2", "--zipf", "1.2",
                          "--materialize-output", "--probe-expansion"]))
    assert rc == 0


def test_sweep_command_builds_table(capsys):
    rc = main(small_args(["sweep", "--initial-nodes", "2,4",
                          "--algorithms", "split,ooc"]))
    out = capsys.readouterr().out
    assert rc == 0
    assert "initial nodes" in out and "split" in out and "ooc" in out
    assert len(out.strip().splitlines()) == 4  # header + rule + 2 rows


def test_figures_command_rejects_unknown(capsys):
    rc = main(["figures", "--only", "fig99"])
    assert rc == 2
    assert "unknown figures" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_no_validate_flag(capsys):
    rc = main(small_args(["run", "--algorithm", "ooc",
                          "--initial-nodes", "2", "--no-validate"]))
    out = capsys.readouterr().out
    assert rc == 0
    assert "MISMATCH" not in out


def test_zipf_and_sigma_together_rejected(capsys):
    with pytest.raises(SystemExit) as exc:
        main(small_args(["run", "--zipf", "1.2", "--sigma", "0.001"]))
    assert exc.value.code == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_zipf_exponent_must_exceed_one(capsys):
    with pytest.raises(SystemExit) as exc:
        main(small_args(["run", "--zipf", "1.0"]))
    assert exc.value.code == 2
    assert "must be > 1" in capsys.readouterr().err


def test_trace_command_writes_chrome_json(tmp_path, capsys):
    import json

    out = tmp_path / "trace.json"
    rc = main(small_args(["trace", "--algorithm", "split",
                          "--initial-nodes", "2", "--out", str(out)]))
    assert rc == 0
    doc = json.loads(out.read_text())
    phs = {e["ph"] for e in doc["traceEvents"]}
    assert {"M", "X", "i"} <= phs
    printed = capsys.readouterr().out
    assert "scheduler" in printed  # phase timeline report follows the write


def test_trace_command_jsonl_to_stdout(capsys):
    import json

    rc = main(small_args(["trace", "--algorithm", "hybrid",
                          "--initial-nodes", "2", "--format", "jsonl"]))
    assert rc == 0
    lines = [ln for ln in capsys.readouterr().out.splitlines() if ln]
    assert lines and all("category" in json.loads(ln) for ln in lines)


def test_trace_command_respects_trace_buffer(capsys):
    import json

    rc = main(small_args(["trace", "--algorithm", "split",
                          "--initial-nodes", "2", "--format", "jsonl",
                          "--trace-buffer", "5"]))
    assert rc == 0
    lines = [ln for ln in capsys.readouterr().out.splitlines() if ln]
    assert len(lines) == 5
    assert all(json.loads(ln) for ln in lines)


def test_metrics_command_table_and_jsonl(capsys):
    rc = main(small_args(["metrics", "--algorithm", "split",
                          "--initial-nodes", "2"]))
    out = capsys.readouterr().out
    assert rc == 0
    assert "hash.inserted_tuples" in out and "mailbox.depth" in out

    import json

    rc = main(small_args(["metrics", "--algorithm", "split",
                          "--initial-nodes", "2", "--format", "jsonl"]))
    lines = [ln for ln in capsys.readouterr().out.splitlines() if ln]
    assert rc == 0
    names = {json.loads(ln)["name"] for ln in lines}
    assert "sim.events_executed" in names


def test_metrics_out_writes_table_like_stdout(tmp_path, capsys):
    """--out must honor the table format too, not just jsonl, and the
    file contents must match what stdout would have shown."""
    rc = main(small_args(["metrics", "--algorithm", "split",
                          "--initial-nodes", "2"]))
    stdout_table = capsys.readouterr().out
    assert rc == 0

    out = tmp_path / "metrics.txt"
    rc = main(small_args(["metrics", "--algorithm", "split",
                          "--initial-nodes", "2", "--out", str(out)]))
    printed = capsys.readouterr().out
    assert rc == 0
    assert "wrote" in printed and "active instruments" in printed
    assert out.read_text() == stdout_table  # deterministic run, same table
    assert "net.in_flight_peak" in stdout_table


def test_explain_command_text(capsys):
    rc = main(small_args(["explain", "--algorithm", "replicate",
                          "--initial-nodes", "2", "--sigma", "0.05"]))
    out = capsys.readouterr().out
    assert rc == 0
    assert "ranked bottlenecks" in out
    assert "probe broadcast" in out  # skewed replication amplifies probes
    assert "phases (duration, top critical contributor, skew)" in out


def test_explain_command_json_out(tmp_path, capsys):
    import json

    out = tmp_path / "explain.json"
    rc = main(small_args(["explain", "--algorithm", "split",
                          "--initial-nodes", "2", "--format", "json",
                          "--out", str(out)]))
    printed = capsys.readouterr().out
    assert rc == 0
    assert "wrote" in printed
    doc = json.loads(out.read_text())
    assert doc["algorithm"] == "split"
    assert doc["critical_path"], "path must be non-empty"
    assert doc["critical_path_total_s"] == pytest.approx(
        doc["makespan_s"], rel=0.01
    )


# ----------------------------------------------------------------------
# overwrite guards (--force)
# ----------------------------------------------------------------------
def test_metrics_out_refuses_overwrite_without_force(tmp_path, capsys):
    out = tmp_path / "metrics.txt"
    out.write_text("precious\n")
    rc = main(small_args(["metrics", "--out", str(out)]))
    err = capsys.readouterr().err
    assert rc == 2
    assert "refusing to overwrite" in err and "--force" in err
    assert out.read_text() == "precious\n"  # untouched
    rc = main(small_args(["metrics", "--out", str(out), "--force"]))
    assert rc == 0
    assert out.read_text() != "precious\n"


def test_trace_out_refuses_overwrite_without_force(tmp_path, capsys):
    out = tmp_path / "trace.json"
    out.write_text("{}")
    rc = main(small_args(["trace", "--out", str(out)]))
    err = capsys.readouterr().err
    assert rc == 2
    assert "refusing to overwrite" in err
    assert out.read_text() == "{}"


def test_explain_out_refuses_overwrite_without_force(tmp_path, capsys):
    out = tmp_path / "explain.json"
    out.write_text("precious")
    rc = main(small_args(["explain", "--out", str(out)]))
    assert rc == 2
    assert "refusing to overwrite" in capsys.readouterr().err
    assert out.read_text() == "precious"


def test_figures_out_refuses_overwrite_without_force(tmp_path, capsys):
    out = tmp_path / "reports.md"
    out.write_text("precious")
    rc = main(["figures", "--only", "fig02", "--out", str(out)])
    assert rc == 2
    assert "refusing to overwrite" in capsys.readouterr().err
    assert out.read_text() == "precious"


def test_workload_outputs_refuse_overwrite_without_force(tmp_path, capsys):
    # every workload writer flag goes through the same guard, before any
    # simulation work happens
    for flag in ("--out", "--metrics-out", "--baseline", "--snapshot-out"):
        target = tmp_path / f"wl{flag}.json"
        target.write_text("precious")
        rc = main(["workload", "--queries", "1", flag, str(target)])
        assert rc == 2, flag
        assert "refusing to overwrite" in capsys.readouterr().err
        assert target.read_text() == "precious"


def test_fleet_outputs_refuse_overwrite_without_force(tmp_path, capsys):
    target = tmp_path / "fleet.snap.jsonl"
    target.write_text("precious")
    rc = main(["fleet", "--queries", "1", "--snapshot-out", str(target)])
    assert rc == 2
    assert "refusing to overwrite" in capsys.readouterr().err
    assert target.read_text() == "precious"


# ----------------------------------------------------------------------
# live telemetry: --live / --snapshot-out / tail / snapshot bench-diff
# ----------------------------------------------------------------------
def wl_args(extra):
    """A tiny three-query workload (sizes in Mtuples via --mix)."""
    return extra + [
        "--queries", "3", "--mix", "hybrid:1:0.004:0.004:2",
        "--arrival-times", "0,0.05,0.1", "--scale", "1.0",
        "--pool", "8", "--sources", "2", "--seed", "7",
    ]


def test_workload_live_snapshot_stream(tmp_path, capsys):
    import json as _json

    snap_path = tmp_path / "run.snap.jsonl"
    rc = main(wl_args(["workload", "--live", "--live-interval", "0.05",
                       "--obs-budget", "4096",
                       "--snapshot-out", str(snap_path)]))
    out = capsys.readouterr().out
    assert rc == 0
    assert "live: t=" in out
    lines = [ln for ln in snap_path.read_text().splitlines() if ln.strip()]
    assert len(lines) >= 2  # periodic snapshot(s) + the final one
    for line in lines:
        assert _json.loads(line)["kind"] == "repro-snapshot"

    rc = main(["tail", str(snap_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "final snapshot" in out
    assert "workload.query_latency_s" in out

    # a snapshot stream self-diffs clean through bench-diff
    rc = main(["bench-diff", str(snap_path), str(snap_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "PASS" in out


def test_fleet_command_end_to_end(tmp_path, capsys):
    import json as _json

    snap_path = tmp_path / "fleet.snap.jsonl"
    out_path = tmp_path / "fleet.json"
    rc = main(wl_args(["fleet", "--shards", "2", "--cohorts", "2",
                       "--format", "json", "--out", str(out_path),
                       "--snapshot-out", str(snap_path)]))
    printed = capsys.readouterr().out
    assert rc == 0
    assert "wrote" in printed
    doc = _json.loads(out_path.read_text())
    assert doc["n_queries"] == 3
    assert doc["all_valid"] is True and doc["partial"] is False
    assert doc["wall"]["n_shards"] == 2
    assert [q["query"] for q in doc["queries"]] == [0, 1, 2]
    lines = [ln for ln in snap_path.read_text().splitlines() if ln.strip()]
    assert lines  # final merged snapshot is always appended
    final = _json.loads(lines[-1])
    assert final["kind"] == "repro-snapshot"
    # the merged snapshot carries every cohort's shard tag
    assert set(final["shards"]) == {"cohort0", "cohort1"}

    # the stream renders through `repro tail` like a workload stream
    rc = main(["tail", str(snap_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "final snapshot" in out


def test_bench_diff_rejects_mixed_document_kinds(tmp_path, capsys):
    snap = tmp_path / "snap.json"
    snap.write_text('{"kind": "repro-snapshot", "v": 1, "t": 0, '
                    '"shards": ["s"], "counters": {}, "gauges": {}, '
                    '"histograms": {}, "sketches": {}, "rings": {}, '
                    '"spans": {"sample": 1, "outliers": 0, "total": 0, '
                    '"items": []}}\n')
    rc = main(["bench-diff", str(snap), "BENCH_2.json"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "cannot compare" in err


def test_tail_rejects_garbage(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n")
    rc = main(["tail", str(bad)])
    assert rc == 2
    assert "bad.jsonl:1" in capsys.readouterr().err
