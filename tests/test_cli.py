"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def small_args(extra):
    """Keep CLI test runs tiny and fast."""
    return extra + [
        "--r-tuples", "0.004", "--s-tuples", "0.004",
        "--scale", "1.0", "--chunk-tuples", "200",
        "--pool", "8", "--sources", "2", "--node-memory-mb", "0.04",
    ]


def test_run_command_prints_summary(capsys):
    rc = main(small_args(["run", "--algorithm", "hybrid",
                          "--initial-nodes", "2"]))
    out = capsys.readouterr().out
    assert rc == 0
    assert "hybrid" in out
    assert "phases (paper-scale s)" in out


def test_run_command_with_trace(capsys):
    rc = main(small_args(["run", "--algorithm", "split",
                          "--initial-nodes", "2", "--trace"]))
    out = capsys.readouterr().out
    assert rc == 0
    assert "trace:" in out
    assert "memory_full" in out


def test_run_command_skew_and_policy(capsys):
    rc = main(small_args(["run", "--algorithm", "split",
                          "--initial-nodes", "2", "--sigma", "0.001",
                          "--split-policy", "linear"]))
    assert rc == 0


def test_run_zipf_with_output_materialization(capsys):
    rc = main(small_args(["run", "--algorithm", "replicate",
                          "--initial-nodes", "2", "--zipf", "1.2",
                          "--materialize-output", "--probe-expansion"]))
    assert rc == 0


def test_sweep_command_builds_table(capsys):
    rc = main(small_args(["sweep", "--initial-nodes", "2,4",
                          "--algorithms", "split,ooc"]))
    out = capsys.readouterr().out
    assert rc == 0
    assert "initial nodes" in out and "split" in out and "ooc" in out
    assert len(out.strip().splitlines()) == 4  # header + rule + 2 rows


def test_figures_command_rejects_unknown(capsys):
    rc = main(["figures", "--only", "fig99"])
    assert rc == 2
    assert "unknown figures" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_no_validate_flag(capsys):
    rc = main(small_args(["run", "--algorithm", "ooc",
                          "--initial-nodes", "2", "--no-validate"]))
    out = capsys.readouterr().out
    assert rc == 0
    assert "MISMATCH" not in out
