"""Tests for the fidelity extensions: recursive Grace passes, disk-backed
sources, and the shared-hub topology."""

import pytest

from tests.conftest import small_cluster, small_config, small_workload
from repro.config import Algorithm, Topology
from repro.core import run_join


# ----------------------------------------------------------------------
# recursive Grace re-partitioning
# ----------------------------------------------------------------------
def test_oversized_spill_partition_recurses():
    """Concentrated skew puts one sub-partition far over the memory budget,
    forcing the classic Grace recursion — and the answer stays exact."""
    cfg = small_config(
        Algorithm.OUT_OF_CORE, initial=2,
        workload=small_workload(r=8000, s=4000, sigma=0.00005),
        cluster=small_cluster(memory=20_000),  # 200 tuples per node
    )
    res = run_join(cfg)  # oracle-checked
    assert res.is_valid
    recs = [r for r in res.tracer.records if r.category == "ooc_pass"]
    assert recs, "the spilled node must run final passes"


def test_uniform_spill_does_not_recurse_needlessly():
    cfg = small_config(Algorithm.OUT_OF_CORE, initial=2)
    res = run_join(cfg)
    assert res.is_valid


# ----------------------------------------------------------------------
# disk-backed data sources
# ----------------------------------------------------------------------
def test_disk_sources_produce_identical_results_but_slower():
    generated = run_join(small_config(Algorithm.HYBRID, initial=2))
    from_disk = run_join(small_config(Algorithm.HYBRID, initial=2,
                                      sources_from_disk=True))
    assert from_disk.matches == generated.matches
    # the ~6 MB/s source disks are slower than on-the-fly generation
    assert from_disk.total_s > generated.total_s


@pytest.mark.parametrize("algorithm", list(Algorithm))
def test_disk_sources_validate_for_every_algorithm(algorithm):
    res = run_join(small_config(algorithm, initial=2,
                                sources_from_disk=True))
    assert res.is_valid


# ----------------------------------------------------------------------
# shared-hub topology
# ----------------------------------------------------------------------
def test_hub_topology_validates_and_is_slower_than_switch():
    switch = run_join(small_config(Algorithm.SPLIT, initial=2))
    hub = run_join(small_config(
        Algorithm.SPLIT, initial=2,
        cluster=small_cluster(topology=Topology.SHARED_HUB),
    ))
    assert hub.is_valid
    assert hub.matches == switch.matches
    # one collision domain vs per-node ports: the hub must be slower
    assert hub.total_s > 1.5 * switch.total_s


@pytest.mark.parametrize("algorithm", list(Algorithm))
def test_hub_topology_every_algorithm(algorithm):
    res = run_join(small_config(
        algorithm, initial=2,
        cluster=small_cluster(topology=Topology.SHARED_HUB),
    ))
    assert res.is_valid


def test_hub_hurts_broadcast_heavy_replication_most():
    """Replication's probe broadcast shares one collision domain on a hub,
    so moving from switch to hub slows replication by a larger factor than
    the single-destination split algorithm."""
    def slowdowns():
        out = {}
        for algorithm in (Algorithm.SPLIT, Algorithm.REPLICATE):
            sw = run_join(small_config(
                algorithm, initial=1,
                cluster=small_cluster(topology=Topology.SWITCHED)),
                validate=False)
            hub = run_join(small_config(
                algorithm, initial=1,
                cluster=small_cluster(topology=Topology.SHARED_HUB)),
                validate=False)
            out[algorithm] = hub.total_s / sw.total_s
        return out

    factor = slowdowns()
    assert factor[Algorithm.REPLICATE] > factor[Algorithm.SPLIT]
