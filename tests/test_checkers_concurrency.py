"""Tests for the concurrency analysis passes and reporting surfaces.

Covers the resource-safety pass (rs-*), the wait-graph pass (wg-*), the
framework's stale-suppression rule (lint-unused-allow) and the new CLI
surfaces: ``--format sarif``, ``--explain`` and ``--baseline``.  Same
fixture style as test_checkers.py: snippets written into a synthetic
``src/repro/...`` mini-tree, because checker scoping is repo-relative.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.checkers import Violation, run_lint
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_repo(tmp_path: Path, files: dict[str, str]) -> Path:
    for rel, text in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(text, encoding="utf-8")
    (tmp_path / "src" / "repro").mkdir(parents=True, exist_ok=True)
    return tmp_path


def rules_of(violations: list[Violation]) -> set[str]:
    return {v.rule for v in violations}


# ----------------------------------------------------------------------
# rs-bare-acquire
# ----------------------------------------------------------------------
def test_bare_acquire_flagged(tmp_path):
    snippet = "def f(res):\n    ev = res.acquire()\n    yield ev\n"
    root = make_repo(tmp_path, {"src/repro/core/mod.py": snippet})
    found = [v for v in run_lint(root) if v.rule == "rs-bare-acquire"]
    assert len(found) == 1 and found[0].line == 2


def test_grab_with_finally_release_clean(tmp_path):
    snippet = ("def f(res):\n"
               "    yield from res.grab()\n"
               "    try:\n"
               "        pass\n"
               "    finally:\n"
               "        res.release()\n")
    root = make_repo(tmp_path, {"src/repro/core/mod.py": snippet})
    assert run_lint(root) == []


def test_bare_acquire_suppressable(tmp_path):
    snippet = ("def f(res):\n"
               "    ev = res.acquire()  # repro: allow[rs-bare-acquire]\n"
               "    yield ev\n")
    root = make_repo(tmp_path, {"src/repro/core/mod.py": snippet})
    assert run_lint(root) == []


# ----------------------------------------------------------------------
# rs-unpaired-grab
# ----------------------------------------------------------------------
def test_grab_without_finally_flagged(tmp_path):
    # release on the straight-line path only: leaks on any raise
    snippet = ("def f(res):\n"
               "    yield from res.grab()\n"
               "    yield from work()\n"
               "    res.release()\n")
    root = make_repo(tmp_path, {"src/repro/core/mod.py": snippet})
    assert "rs-unpaired-grab" in rules_of(run_lint(root))


def test_unpaired_grab_matches_dotted_receiver(tmp_path):
    snippet = ("def f(self):\n"
               "    yield from self.node.sem.grab()\n"
               "    try:\n"
               "        pass\n"
               "    finally:\n"
               "        self.node.sem.release()\n")
    root = make_repo(tmp_path, {"src/repro/core/mod.py": snippet})
    assert run_lint(root) == []


def test_cross_actor_grab_suppressable(tmp_path):
    snippet = ("def f(dst):\n"
               "    yield from dst.credits.grab()"
               "  # repro: allow[rs-unpaired-grab]\n")
    root = make_repo(tmp_path, {"src/repro/core/mod.py": snippet})
    assert run_lint(root) == []


# ----------------------------------------------------------------------
# rs-mailbox-get
# ----------------------------------------------------------------------
def test_yield_mailbox_get_flagged(tmp_path):
    snippet = ("def f(self):\n"
               "    msg = yield self.node.mailbox.get()\n"
               "    return msg\n")
    root = make_repo(tmp_path, {"src/repro/core/mod.py": snippet})
    assert "rs-mailbox-get" in rules_of(run_lint(root))


def test_bound_get_without_cancel_flagged(tmp_path):
    snippet = ("from repro.sim import Mailbox\n\n"
               "def f(sim):\n"
               "    box = Mailbox(sim)\n"
               "    ev = box.get()\n"
               "    yield ev\n")
    root = make_repo(tmp_path, {"src/repro/core/mod.py": snippet})
    assert "rs-mailbox-get" in rules_of(run_lint(root))


def test_recv_and_cancel_get_patterns_clean(tmp_path):
    snippet = ("def ok_recv(self):\n"
               "    msg = yield from self.node.mailbox.recv()\n"
               "    return msg\n\n"
               "def ok_manual(self):\n"
               "    ev = self.node.mailbox.get()\n"
               "    try:\n"
               "        msg = yield ev\n"
               "    except Exception:\n"
               "        self.node.mailbox.cancel_get(ev)\n"
               "        raise\n"
               "    return msg\n")
    root = make_repo(tmp_path, {"src/repro/core/mod.py": snippet})
    assert run_lint(root) == []


def test_dict_get_not_confused_with_mailbox(tmp_path):
    snippet = "def f(cfg):\n    v = cfg.get('key')\n    yield v\n"
    root = make_repo(tmp_path, {"src/repro/core/mod.py": snippet})
    assert run_lint(root) == []


# ----------------------------------------------------------------------
# rs-killable-wait
# ----------------------------------------------------------------------
def test_barrier_wait_in_core_flagged(tmp_path):
    snippet = ("from repro.sim import Barrier\n\n"
               "def f(sim):\n"
               "    bar = Barrier(sim, 3)\n"
               "    yield bar.wait()\n")
    root = make_repo(tmp_path, {"src/repro/core/mod.py": snippet})
    assert "rs-killable-wait" in rules_of(run_lint(root))


def test_latch_wait_via_self_attribute_flagged(tmp_path):
    snippet = ("from repro.sim import Latch\n\n"
               "class C:\n"
               "    def __init__(self, sim):\n"
               "        self.gate = Latch(sim, 2)\n"
               "    def f(self):\n"
               "        yield self.gate.wait()\n")
    root = make_repo(tmp_path, {"src/repro/cluster/mod.py": snippet})
    assert "rs-killable-wait" in rules_of(run_lint(root))


def test_barrier_wait_outside_killable_scope_clean(tmp_path):
    # repro.workload processes are not FaultPlan-killable
    snippet = ("from repro.sim import Barrier\n\n"
               "def f(sim):\n"
               "    bar = Barrier(sim, 3)\n"
               "    yield bar.wait()\n")
    root = make_repo(tmp_path, {"src/repro/workload/mod.py": snippet})
    assert "rs-killable-wait" not in rules_of(run_lint(root))


# ----------------------------------------------------------------------
# wait-graph fixtures
# ----------------------------------------------------------------------
_WG_MESSAGES = '''\
from dataclasses import dataclass

__all__ = ["Ping", "Pong"]


@dataclass
class Ping:
    node: int


@dataclass
class Pong:
    node: int
'''

# Alpha exclusively waits for Ping (sent only by Beta); Beta exclusively
# waits for Pong (sent only by Alpha); neither sends from inside its wait
# loop -> a genuine ring.
_WG_CYCLE = '''\
from .messages import Ping, Pong


class Alpha:
    def run(self, node):
        while True:
            msg = yield from node.mailbox.recv()
            if isinstance(msg, Ping):
                break

    def emit(self, peer):
        peer.mailbox.put(Pong(0))


class Beta:
    def run(self, node):
        while True:
            msg = yield from node.mailbox.recv()
            if isinstance(msg, Pong):
                break

    def emit(self, peer):
        peer.mailbox.put(Ping(0))
'''

# Same ring shape, but each class answers from *inside* its wait loop
# (the datasource-services-ReplayOrder pattern) -> discharged, no report.
_WG_DISCHARGED = '''\
from .messages import Ping, Pong


class Gamma:
    def run(self, node, peer):
        while True:
            msg = yield from node.mailbox.recv()
            if isinstance(msg, Ping):
                self.reply(peer)

    def reply(self, peer):
        peer.mailbox.put(Pong(0))


class Delta:
    def run(self, node, peer):
        while True:
            msg = yield from node.mailbox.recv()
            if isinstance(msg, Pong):
                self.reply(peer)

    def reply(self, peer):
        peer.mailbox.put(Ping(0))
'''

# The waiting side routes unmatched traffic through a dispatcher (the
# scheduler's shape) -> non-exclusive wait, no blocking edge, no ring.
_WG_DISPATCHER = '''\
from .messages import Ping, Pong


class Server:
    def run(self, node):
        while True:
            msg = yield from node.mailbox.recv()
            if isinstance(msg, Ping):
                break
            self._dispatch_common(msg)

    def _dispatch_common(self, msg):
        pass

    def emit(self, peer):
        peer.mailbox.put(Pong(0))


class Client:
    def run(self, node):
        while True:
            msg = yield from node.mailbox.recv()
            if isinstance(msg, Pong):
                break

    def emit(self, peer):
        peer.mailbox.put(Ping(0))
'''

_WG_GHOST = '''\
from .messages import Ping


class Ghost:
    def run(self, node):
        while True:
            msg = yield from node.mailbox.recv()
            if isinstance(msg, Ping):
                break
'''


def test_wg_cycle_detected(tmp_path):
    root = make_repo(tmp_path, {
        "src/repro/core/messages.py": _WG_MESSAGES,
        "src/repro/core/actors.py": _WG_CYCLE,
    })
    found = [v for v in run_lint(root, select=["wg-"])
             if v.rule == "wg-cycle"]
    assert len(found) == 1
    msg = found[0].message
    assert "Alpha" in msg and "Beta" in msg
    assert "Ping" in msg and "Pong" in msg


def test_wg_cycle_discharged_by_sends_while_waiting(tmp_path):
    root = make_repo(tmp_path, {
        "src/repro/core/messages.py": _WG_MESSAGES,
        "src/repro/core/actors.py": _WG_DISCHARGED,
    })
    assert run_lint(root, select=["wg-"]) == []


def test_wg_dispatcher_wait_is_non_exclusive(tmp_path):
    root = make_repo(tmp_path, {
        "src/repro/core/messages.py": _WG_MESSAGES,
        "src/repro/core/actors.py": _WG_DISPATCHER,
    })
    assert run_lint(root, select=["wg-"]) == []


def test_wg_cycle_suppressable_on_wait_method(tmp_path):
    suppressed = _WG_CYCLE.replace(
        "class Alpha:\n    def run(self, node):",
        "class Alpha:\n    def run(self, node):"
        "  # repro: allow[wg-cycle]",
    )
    assert "allow[wg-cycle]" in suppressed
    root = make_repo(tmp_path, {
        "src/repro/core/messages.py": _WG_MESSAGES,
        "src/repro/core/actors.py": suppressed,
    })
    assert run_lint(root, select=["wg-"]) == []


def test_wg_no_sender(tmp_path):
    root = make_repo(tmp_path, {
        "src/repro/core/messages.py": _WG_MESSAGES,
        "src/repro/core/actors.py": _WG_GHOST,
    })
    found = [v for v in run_lint(root, select=["wg-"])
             if v.rule == "wg-no-sender"]
    assert len(found) == 1
    assert "Ghost.run" in found[0].message and "Ping" in found[0].message


def test_wg_no_sender_satisfied_from_sibling_dir(tmp_path):
    # a constructor anywhere in core/cluster/workload counts as a sender
    root = make_repo(tmp_path, {
        "src/repro/core/messages.py": _WG_MESSAGES,
        "src/repro/core/actors.py": _WG_GHOST,
        "src/repro/workload/driver.py":
            "from ..core.messages import Ping\n\n"
            "def kick(box):\n    box.put(Ping(0))\n",
    })
    assert run_lint(root, select=["wg-"]) == []


# ----------------------------------------------------------------------
# lint-unused-allow
# ----------------------------------------------------------------------
def test_unused_allow_reported(tmp_path):
    snippet = "def f():\n    return 1  # repro: allow[det-wallclock]\n"
    root = make_repo(tmp_path, {"src/repro/sim/mod.py": snippet})
    found = run_lint(root)
    assert [v.rule for v in found] == ["lint-unused-allow"]
    assert "det-wallclock" in found[0].message and found[0].line == 2


def test_consumed_allow_not_reported(tmp_path):
    snippet = ("import time\n\ndef f():\n"
               "    return time.time()  # repro: allow[det-wallclock]\n")
    root = make_repo(tmp_path, {"src/repro/sim/mod.py": snippet})
    assert run_lint(root) == []


def test_unused_allow_skipped_under_select(tmp_path):
    # a selected run exercises only some passes; the unexercised ones
    # would make every suppression look stale, so the rule stays off
    snippet = "def f():\n    return 1  # repro: allow[det-wallclock]\n"
    root = make_repo(tmp_path, {"src/repro/sim/mod.py": snippet})
    assert run_lint(root, select=["det-"]) == []


# ----------------------------------------------------------------------
# reporting: JSON rule counts, SARIF, --explain, --baseline
# ----------------------------------------------------------------------
_WALLCLOCK = "import time\n\ndef f():\n    return time.time()\n"


def test_json_report_carries_rule_counts(tmp_path, capsys):
    make_repo(tmp_path, {
        "src/repro/sim/a.py": _WALLCLOCK,
        "src/repro/sim/b.py": _WALLCLOCK,
    })
    rc = main(["lint", "--root", str(tmp_path), "--format", "json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert doc["rules"] == {"det-wallclock": 2}


def test_sarif_output_shape(tmp_path, capsys):
    make_repo(tmp_path, {"src/repro/sim/mod.py": _WALLCLOCK})
    rc = main(["lint", "--root", str(tmp_path), "--format", "sarif"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 1 and doc["version"] == "2.1.0"
    run = doc["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    # every declared rule is present, with the long-form rationale
    ids = {r["id"] for r in driver["rules"]}
    assert {"det-wallclock", "rs-bare-acquire", "wg-cycle",
            "lint-unused-allow"} <= ids
    (result,) = run["results"]
    assert result["ruleId"] == "det-wallclock"
    loc = result["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "src/repro/sim/mod.py"
    assert loc["region"]["startLine"] == 4


def test_cli_explain_known_rule(capsys):
    rc = main(["lint", "--explain", "rs-mailbox-get"])
    out = capsys.readouterr().out
    assert rc == 0 and "recv()" in out


def test_cli_explain_unknown_rule(capsys):
    rc = main(["lint", "--explain", "no-such-rule"])
    err = capsys.readouterr().err
    assert rc == 2 and "unknown rule" in err and "wg-cycle" in err


def test_cli_list_includes_new_passes(capsys):
    rc = main(["lint", "--list"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "resourcesafety" in out and "waitgraph" in out


def test_baseline_gate_passes_at_and_fails_above(tmp_path, capsys):
    root = make_repo(tmp_path, {"src/repro/sim/mod.py": _WALLCLOCK})
    rc = main(["lint", "--root", str(root), "--format", "json"])
    assert rc == 1
    base = tmp_path / "base.json"
    base.write_text(capsys.readouterr().out)
    # at the baselined count: exit 0 despite the finding
    assert main(["lint", "--root", str(root),
                 "--baseline", str(base)]) == 0
    capsys.readouterr()
    # one more finding of the same rule: regression, exit 1
    (root / "src/repro/sim/mod2.py").write_text(_WALLCLOCK)
    rc = main(["lint", "--root", str(root), "--baseline", str(base)])
    err = capsys.readouterr().err
    assert rc == 1 and "det-wallclock" in err and "2" in err


def test_baseline_unreadable_exits_two(tmp_path, capsys):
    root = make_repo(tmp_path, {})
    rc = main(["lint", "--root", str(root),
               "--baseline", str(tmp_path / "missing.json")])
    assert rc == 2
    assert "baseline" in capsys.readouterr().err


def test_committed_baseline_is_current():
    """LINT_BASE.json at the repo root must match a clean run."""
    rc = main(["lint", "--root", str(REPO_ROOT),
               "--baseline", str(REPO_ROOT / "LINT_BASE.json")])
    assert rc == 0
