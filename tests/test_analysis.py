"""Unit tests for the analysis layer: §4.2.4 model, load balance, reports."""

import pytest

from repro.analysis import (
    FigureReport,
    OverheadModel,
    format_table,
    hybrid_overhead_s,
    split_moved_capacity_model,
    split_overhead_s,
)
from repro.config import CostModel


# ----------------------------------------------------------------------
# §4.2.4 analytic model
# ----------------------------------------------------------------------
def test_split_overhead_formula():
    # log2(E) * B/2 * t_w
    assert split_overhead_s(1000, 4, 0.01) == pytest.approx(2 * 500 * 0.01)
    assert split_overhead_s(1000, 1, 0.01) == 0.0
    with pytest.raises(ValueError):
        split_overhead_s(1000, 0.5, 0.01)


def test_hybrid_overhead_formula():
    # (E-1)/E * B * t_w
    assert hybrid_overhead_s(1000, 4, 0.01) == pytest.approx(0.75 * 1000 * 0.01)
    assert hybrid_overhead_s(1000, 1, 0.01) == 0.0
    with pytest.raises(ValueError):
        hybrid_overhead_s(1000, 0.9, 0.01)


def test_split_overhead_grows_faster_than_hybrid():
    """The paper's core analytic claim (§4.2.4)."""
    m = OverheadModel(bucket_bytes=1e6, t_w=8e-8)
    ratios = [m.split_s(e) / m.hybrid_s(e) for e in (2, 4, 8, 16, 64)]
    assert ratios == sorted(ratios)
    assert ratios[-1] > ratios[0]


def test_crossover_expansion_solves_equation():
    m = OverheadModel(bucket_bytes=1.0, t_w=1.0)
    e = m.crossover_expansion()
    assert m.split_s(e) == pytest.approx(m.hybrid_s(e), rel=1e-6)
    assert e > 1.0
    # below the crossover split is cheaper, above it hybrid is cheaper
    assert m.split_s(e * 0.9) < m.hybrid_s(e * 0.9)
    assert m.split_s(e * 1.1) > m.hybrid_s(e * 1.1)


def test_from_run_derives_bucket_and_wire_cost():
    cost = CostModel(net_bandwidth=10e6)
    m = OverheadModel.from_run(relation_bytes=100e6, original_buckets=4,
                               cost=cost)
    assert m.bucket_bytes == pytest.approx(25e6)
    assert m.t_w == pytest.approx(1e-7)


def test_capacity_model():
    assert split_moved_capacity_model(10, 1000) == 5000.0
    assert split_moved_capacity_model(0, 1000) == 0.0
    with pytest.raises(ValueError):
        split_moved_capacity_model(-1, 10)


def test_predicted_tuples_moved():
    m = OverheadModel(bucket_bytes=1.0, t_w=1.0)
    assert m.predicted_tuples_moved_split(1000, 1) == 0.0
    assert m.predicted_tuples_moved_split(1000, 4) == pytest.approx(1000.0)
    assert m.predicted_tuples_moved_hybrid(1000, 4) == pytest.approx(750.0)


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------
def test_format_table_alignment():
    out = format_table(["a", "bbb"], [[1, 2.5], [30, 4.25]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert "bbb" in lines[0]
    assert "2.5" in lines[2] and "4.2" in lines[3]


def test_figure_report_checks_and_render():
    rep = FigureReport("Figure X", "demo", ["col"], rows=[[1.0]])
    rep.check("always true", 1 < 2)
    rep.check("always false", 1 > 2)
    assert not rep.all_passed
    text = rep.render()
    assert "[PASS] always true" in text
    assert "[FAIL] always false" in text
    md = rep.to_markdown()
    assert md.startswith("### Figure X")
    assert "| col |" in md
