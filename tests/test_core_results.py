"""Unit tests for run-result plumbing and the datasource/loadbalance glue."""

import pytest

from tests.conftest import small_config
from repro.analysis import load_balance
from repro.config import Algorithm, RunConfig, WorkloadSpec
from repro.core import run_join
from repro.core.messages import Hop
from repro.core.results import CommStats, PhaseTimes


def test_comm_stats_chunk_equivalents():
    comm = CommStats(tuples_by_hop={Hop.SPLIT: 1000, Hop.FORWARD: 500})
    assert comm.tuples(Hop.SPLIT) == 1000
    assert comm.tuples(*Hop.BUILD_EXTRA) == 1500
    assert comm.chunks_equivalent(100, *Hop.BUILD_EXTRA) == 15.0
    assert comm.tuples(Hop.PROBE) == 0


def test_phase_times_accessors():
    t = PhaseTimes(build_s=2.0, reshuffle_s=1.0, probe_s=3.0, ooc_pass_s=0.5)
    assert t.total_s == 6.5
    assert t.table_building_s == 3.0


def test_paper_scale_total_inverts_scale():
    cfg = small_config(Algorithm.OUT_OF_CORE, initial=4)
    res = run_join(cfg)
    assert res.paper_scale_total_s == pytest.approx(res.total_s)
    # at scale 0.5 the paper-scale figure doubles the simulated one
    wl = WorkloadSpec(r_tuples=4000, s_tuples=4000, chunk_tuples=200,
                      scale=0.5)
    res2 = run_join(RunConfig(algorithm=Algorithm.OUT_OF_CORE,
                              initial_nodes=4, workload=wl,
                              cluster=cfg.cluster,
                              hash_positions=1 << 12))
    assert res2.paper_scale_total_s == pytest.approx(res2.total_s * 2)


def test_load_balance_from_run():
    res = run_join(small_config(Algorithm.HYBRID, initial=2))
    lb = load_balance(res)
    assert lb.nodes == res.nodes_used
    assert lb.min_tuples <= lb.avg_tuples <= lb.max_tuples
    assert lb.imbalance >= 1.0
    assert lb.avg_chunks == pytest.approx(
        lb.avg_tuples / res.config.workload.real_chunk_tuples)


def test_load_balance_counts_spilled_tuples_as_load():
    res = run_join(small_config(Algorithm.OUT_OF_CORE, initial=2))
    lb = load_balance(res)
    total = lb.avg_tuples * lb.nodes
    assert total == pytest.approx(res.config.workload.real_r_tuples)


def test_node_load_records_activation_times():
    res = run_join(small_config(Algorithm.REPLICATE, initial=2))
    initial_loads = [l for l in res.loads if l.node < 2]
    recruited = [l for l in res.loads if l.node >= 2]
    assert all(l.activated_at == 0.0 or l.activated_at < 0.01
               for l in initial_loads)
    assert all(l.activated_at > 0 for l in recruited)


def test_expansion_trace_matches_loads():
    res = run_join(small_config(Algorithm.SPLIT, initial=2))
    recruited = {n for _, n in res.expansion_trace}
    assert recruited == {l.node for l in res.loads} - {0, 1}


def test_utilization_reported_per_active_node():
    res = run_join(small_config(Algorithm.SPLIT, initial=2))
    assert res.utilization, "utilization must be populated"
    roles = {u.role for u in res.utilization}
    assert roles == {"src", "join"}
    for u in res.utilization:
        for frac in (u.cpu, u.tx, u.rx, u.disk):
            assert 0.0 <= frac <= 1.0
    # source NICs do real work during the run
    src_tx = [u.tx for u in res.utilization if u.role == "src"]
    assert max(src_tx) > 0.05
    assert "cpu=" in str(res.utilization[0])
