"""Property-based tests (hypothesis) for the streaming sketch laws.

The sketch is the one place the observability layer trades exactness for
memory, so its contracts get adversarial coverage: merge associativity /
commutativity, insert-order invariance, and the documented relative
error bound against ``np.percentile`` on hostile distributions (zipf
tails, constants, bimodal gaps).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import QuantileSketch, ReservoirSample

finite_values = st.floats(min_value=-1e9, max_value=1e9,
                          allow_nan=False, allow_infinity=False)


def fill(values):
    sk = QuantileSketch()
    for v in values:
        sk.add(v)
    return sk


def exact_quantile(values, q):
    return float(np.percentile(values, q * 100, method="lower"))


@given(a=st.lists(finite_values, max_size=60),
       b=st.lists(finite_values, max_size=60),
       c=st.lists(finite_values, max_size=60))
@settings(max_examples=150, deadline=None)
def test_sketch_merge_is_associative_and_commutative(a, b, c):
    sa, sb, sc = fill(a), fill(b), fill(c)
    left = sa.merge(sb).merge(sc)
    right = sa.merge(sb.merge(sc))
    flipped = sc.merge(sb).merge(sa)
    assert left == right == flipped
    assert left.count == len(a) + len(b) + len(c)


@given(values=st.lists(finite_values, min_size=1, max_size=80),
       seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=150, deadline=None)
def test_sketch_is_insert_order_invariant(values, seed):
    shuffled = list(values)
    np.random.default_rng(seed).shuffle(shuffled)
    assert fill(values) == fill(shuffled)


@given(values=st.lists(finite_values, min_size=1, max_size=100),
       q=st.sampled_from([0.0, 0.1, 0.5, 0.9, 0.99, 1.0]))
@settings(max_examples=200, deadline=None)
def test_sketch_quantile_within_relative_error_bound(values, q):
    sk = fill(values)
    exact = exact_quantile(values, q)
    assert abs(sk.quantile(q) - exact) <= sk.alpha * abs(exact) + 1e-12


@given(seed=st.integers(min_value=0, max_value=2**31),
       n=st.integers(min_value=10, max_value=2000))
@settings(max_examples=25, deadline=None)
def test_sketch_bound_holds_on_zipf_tails(seed, n):
    values = np.random.default_rng(seed).zipf(1.3, size=n).astype(float)
    sk = fill(values)
    for q in (0.5, 0.9, 0.99, 1.0):
        exact = exact_quantile(values, q)
        assert abs(sk.quantile(q) - exact) <= sk.alpha * exact


@given(value=finite_values, n=st.integers(min_value=1, max_value=500))
@settings(max_examples=100, deadline=None)
def test_sketch_on_constant_data_returns_the_constant(value, n):
    sk = fill([value] * n)
    for q in (0.0, 0.5, 1.0):
        assert abs(sk.quantile(q) - value) <= sk.alpha * abs(value)


@given(low=st.floats(min_value=0.001, max_value=1.0),
       high=st.floats(min_value=1e6, max_value=1e9),
       n_low=st.integers(min_value=1, max_value=50),
       n_high=st.integers(min_value=1, max_value=50))
@settings(max_examples=100, deadline=None)
def test_sketch_separates_bimodal_clusters(low, high, n_low, n_high):
    values = [low] * n_low + [high] * n_high
    sk = fill(values)
    # p0 must land in the low cluster, p100 in the high one — a sketch
    # that smeared the gap would report something in between.
    assert abs(sk.quantile(0.0) - low) <= sk.alpha * low
    assert abs(sk.quantile(1.0) - high) <= sk.alpha * high


@given(items=st.lists(
    st.tuples(st.text(min_size=1, max_size=8),
              st.floats(min_value=0, max_value=1e6, allow_nan=False)),
    max_size=80,
), seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=150, deadline=None)
def test_reservoir_merge_matches_single_feed(items, seed):
    # idents must be unique: the reservoir keys by ident
    unique = {f"{i}:{k}": w for i, (k, w) in enumerate(items)}
    single = ReservoirSample(sample=8, outliers=2)
    left = ReservoirSample(sample=8, outliers=2)
    right = ReservoirSample(sample=8, outliers=2)
    rng = np.random.default_rng(seed)
    for ident, w in unique.items():
        single.add(ident, w, None)
        (left if rng.integers(2) else right).add(ident, w, None)
    assert left.merge(right) == single == right.merge(left)
