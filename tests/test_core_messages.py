"""Unit tests for protocol messages (sizes, hop tags, validation)."""

import numpy as np
import pytest

from repro.core.messages import (
    CONTROL_BYTES,
    ActivateJoin,
    CountVector,
    DataChunk,
    Hop,
    MemoryFull,
    ReshuffleOrder,
    RouteUpdate,
    SourceDone,
    StartProbe,
    StatusReport,
)
from repro.hashing import HashRange, RangeRouter, partition_positions


def test_data_chunk_size_is_logical_tuple_bytes():
    chunk = DataChunk("R", np.arange(10, dtype=np.uint64), tuple_bytes=100)
    assert chunk.tuples == 10
    assert chunk.nbytes == 1000
    assert chunk.kind == "data"


def test_data_chunk_validation():
    v = np.arange(3, dtype=np.uint64)
    with pytest.raises(ValueError):
        DataChunk("X", v, 100)
    with pytest.raises(ValueError):
        DataChunk("R", v, 100, hop="teleport")


def test_hop_categories():
    assert set(Hop.BUILD_EXTRA) == {Hop.FORWARD, Hop.SPLIT, Hop.RESHUFFLE}
    assert Hop.PRIMARY not in Hop.BUILD_EXTRA
    assert Hop.PROBE in Hop.ALL and Hop.PROBE_DUP in Hop.ALL


def test_control_messages_have_fixed_size():
    for msg in (MemoryFull(3), ActivateJoin(1, hash_range=HashRange(0, 10)),
                StatusReport(1, 2, 3, 4, 5, 6, 7, False)):
        assert msg.nbytes == CONTROL_BYTES
        assert msg.kind == "control"


def test_route_update_size_tracks_router():
    router = RangeRouter.initial(partition_positions(1 << 10, 4),
                                 [0, 1, 2, 3], 1 << 10)
    upd = RouteUpdate(router)
    assert upd.nbytes == router.wire_bytes()


def test_start_probe_size_with_and_without_router():
    router = RangeRouter.initial(partition_positions(1 << 10, 2),
                                 [0, 1], 1 << 10)
    assert StartProbe(router=None).nbytes == CONTROL_BYTES
    assert StartProbe(router=router).nbytes == CONTROL_BYTES + router.wire_bytes()


def test_count_vector_wire_scaling():
    counts = np.zeros(1000, dtype=np.int64)
    full = CountVector(0, 0, 1000, counts, wire_scale=1.0)
    scaled = CountVector(0, 0, 1000, counts, wire_scale=0.02)
    assert full.nbytes == 32 + 8000
    assert scaled.nbytes == 32 + 160
    assert scaled.kind == "counts"


def test_reshuffle_order_size_tracks_assignments():
    a1 = ReshuffleOrder(assignments=((0, HashRange(0, 5)),))
    a3 = ReshuffleOrder(assignments=(
        (0, HashRange(0, 5)), (1, HashRange(5, 9)), (2, None)))
    assert a3.nbytes > a1.nbytes


def test_source_done_carries_counters():
    done = SourceDone(source=2, relation="S",
                      chunks_sent={1: 10, 3: 5},
                      tuples_sent={1: 2000, 3: 1000},
                      dup_tuples=500)
    assert done.nbytes == CONTROL_BYTES
    assert sum(done.chunks_sent.values()) == 15
