"""Deterministic fault injection for the simulated cluster (``repro.faults``).

The paper's premise is elasticity on a *shared* cluster, and shared
clusters misbehave: recruits die before they activate, links drop or delay
packets, acknowledgements get lost.  This module supplies a seeded,
reproducible :class:`FaultPlan` describing such adversity and the
:class:`FaultInjector` that executes it against one run.  The recovery
machinery it exercises lives in the protocol layers:

* ``cluster/network.py`` — per-message ack/timeout/retransmission with
  exponential backoff (``Network.send``); dropped and duplicate bytes are
  accounted separately so byte conservation stays checkable,
* ``core/joinnode.py`` — idempotent receipt of data chunks (duplicate
  suppression keyed on ``(origin, transfer_seq)``) and a crash-safe run
  loop (a fail-stop interrupt while dormant kills the node cleanly),
* ``core/scheduler.py`` — acknowledged recruitment: every ``ActivateJoin``
  is acked by the recruit, timeouts retry a *different* pool node with
  exponential backoff, and pool exhaustion degrades gracefully to the
  out-of-core spill path (``fallback_spill``).

Everything is deterministic: one seeded RNG stream consumed in simulation
event order, so a given ``(RunConfig, FaultPlan)`` pair always produces the
identical trajectory, metrics, and result — chaos you can bisect.

Supported crash model (documented scope): **fail-stop crashes of dormant
pool nodes** — the interesting failure for the paper's algorithms, because
it breaks recruitment mid-expansion.  Crashing a node that already holds
build tuples would require state replication or upstream replay to keep
the join answer exact, which the 2004 protocol does not have; asking for
it raises :class:`UnrecoverableFaultError` instead of silently corrupting
the result.  See docs/FAULTS.md for the schema and worked examples.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from collections.abc import Callable, Iterable
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from .obs import MetricsRegistry
    from .sim import Simulator

__all__ = [
    "PHASES",
    "CrashSpec",
    "LinkSlowdown",
    "FaultPlan",
    "FaultInjector",
    "FaultPlanError",
    "UnrecoverableFaultError",
]

#: phase names a :class:`CrashSpec` may trigger on (scheduler phase entry)
PHASES = ("build", "reshuffle", "probe", "ooc")


class FaultPlanError(ValueError):
    """The fault plan is malformed or references nonexistent targets."""


class UnrecoverableFaultError(RuntimeError):
    """An injected fault exceeds the protocol's recovery envelope.

    Raised when a crash targets a node that already holds join state
    (recovery would need replication/replay — out of scope, see module
    docstring) or when a link is so lossy that a message exhausts
    ``FaultPlan.max_attempts`` retransmissions.
    """


# ----------------------------------------------------------------------
# plan (pure data, JSON round-trippable)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CrashSpec:
    """Fail-stop crash of join-pool node ``node`` (pool index).

    Fires either at simulated time ``at_time`` or on entry to scheduler
    phase ``at_phase`` (one of :data:`PHASES`); exactly one must be set.
    """

    node: int
    at_time: float | None = None
    at_phase: str | None = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise FaultPlanError(f"crash node must be >= 0, got {self.node}")
        if (self.at_time is None) == (self.at_phase is None):
            raise FaultPlanError(
                "crash spec needs exactly one of at_time / at_phase"
            )
        if self.at_time is not None and self.at_time < 0:
            raise FaultPlanError("crash at_time must be >= 0")
        if self.at_phase is not None and self.at_phase not in PHASES:
            raise FaultPlanError(
                f"unknown crash phase {self.at_phase!r}; expected one of {PHASES}"
            )


@dataclass(frozen=True)
class LinkSlowdown:
    """Multiply wire time by ``factor`` on matching links during [t0, t1).

    ``src``/``dst`` are *global* node ids (``Node.node_id``); ``None``
    matches any endpoint.
    """

    t0: float
    t1: float
    factor: float
    src: int | None = None
    dst: int | None = None

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise FaultPlanError("slowdown factor must be >= 1")
        if not (0.0 <= self.t0 < self.t1):
            raise FaultPlanError("slowdown window needs 0 <= t0 < t1")

    def matches(self, src_id: int, dst_id: int, now: float) -> bool:
        return (
            self.t0 <= now < self.t1
            and (self.src is None or self.src == src_id)
            and (self.dst is None or self.dst == dst_id)
        )


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded description of one run's adversity.

    All randomness (drop verdicts) comes from a single RNG stream seeded
    with ``seed`` and consumed in simulation event order — deterministic
    and replayable.  ``drop_prob`` applies to the payload of **every**
    inter-node message; ``ack_drop_prob`` independently loses the delivery
    acknowledgement (the payload arrived, so the retransmission is a
    duplicate the receiver must suppress).  Retransmission timing follows
    ``rto_s * rto_backoff**k`` capped at ``rto_max_s``; a message that
    exhausts ``max_attempts`` raises :class:`UnrecoverableFaultError`
    rather than deadlocking the run.
    """

    seed: int = 0
    drop_prob: float = 0.0
    ack_drop_prob: float = 0.0
    crashes: tuple[CrashSpec, ...] = ()
    slowdowns: tuple[LinkSlowdown, ...] = ()
    #: base retransmission timeout; ``None`` derives it from the cost
    #: model at run start (4 x (propagation latency + 64 KiB wire time))
    rto_s: float | None = None
    rto_backoff: float = 2.0
    rto_max_s: float | None = None
    max_attempts: int = 50
    #: recruit-ack timeout in simulated seconds, checked at drain-poll-tick
    #: granularity (no extra timer events); ``None`` derives it from the
    #: cost model and chunk size so it always dominates worst-case
    #: receive-port queueing of a healthy recruit
    recruit_timeout_s: float | None = None
    recruit_backoff_max_s: float | None = None
    #: control-plane fault tolerance (repro.core.membership).  Setting
    #: ``membership=True`` (or any of the knobs below) arms the heartbeat
    #: failure detector and the backup scheduler, which lifts the
    #: dormant-only crash ban: working-node crashes become recoverable.
    membership: bool = False
    #: heartbeat period; ``None`` derives it from the drain-poll interval
    heartbeat_interval_s: float | None = None
    #: missed-ack window before a node is *suspected* (may false-positive)
    suspect_timeout_s: float | None = None
    #: suspicion age before the detector declares death (no oracle — a
    #: slow link that clears within this window is a tolerated false
    #: positive, counted in ``membership.false_positive``)
    confirm_timeout_s: float | None = None
    #: fail-stop the primary scheduler at this simulated time
    kill_scheduler_at: float | None = None

    def __post_init__(self) -> None:
        for name in ("drop_prob", "ack_drop_prob"):
            p = getattr(self, name)
            if not (0.0 <= p < 1.0):
                raise FaultPlanError(f"{name} must be in [0, 1), got {p}")
        if self.rto_s is not None and self.rto_s <= 0:
            raise FaultPlanError("rto_s must be > 0")
        if self.rto_backoff < 1.0:
            raise FaultPlanError("rto_backoff must be >= 1")
        if self.max_attempts < 1:
            raise FaultPlanError("max_attempts must be >= 1")
        if self.recruit_timeout_s is not None and self.recruit_timeout_s <= 0:
            raise FaultPlanError("recruit_timeout_s must be > 0")
        if (self.recruit_backoff_max_s is not None
                and self.recruit_backoff_max_s <= 0):
            raise FaultPlanError("recruit_backoff_max_s must be > 0")
        for name in ("heartbeat_interval_s", "suspect_timeout_s",
                     "confirm_timeout_s"):
            v = getattr(self, name)
            if v is not None and v <= 0:
                raise FaultPlanError(f"{name} must be > 0")
        if self.kill_scheduler_at is not None and self.kill_scheduler_at < 0:
            raise FaultPlanError("kill_scheduler_at must be >= 0")

    # -- convenience -----------------------------------------------------
    @property
    def any_link_faults(self) -> bool:
        """True if the reliable-transport path must engage at all."""
        return (
            self.drop_prob > 0.0
            or self.ack_drop_prob > 0.0
            or bool(self.slowdowns)
        )

    @property
    def active(self) -> bool:
        return (self.any_link_faults or bool(self.crashes)
                or self.membership_active)

    @property
    def membership_active(self) -> bool:
        """True when the heartbeat detector + backup scheduler are armed."""
        return (
            self.membership
            or self.heartbeat_interval_s is not None
            or self.suspect_timeout_s is not None
            or self.confirm_timeout_s is not None
            or self.kill_scheduler_at is not None
        )

    def with_crashes(self, *specs: CrashSpec) -> FaultPlan:
        return replace(self, crashes=self.crashes + tuple(specs))

    # -- JSON ------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "drop_prob": self.drop_prob,
            "ack_drop_prob": self.ack_drop_prob,
            "crashes": [
                {"node": c.node, "at_time": c.at_time, "at_phase": c.at_phase}
                for c in self.crashes
            ],
            "slowdowns": [
                {"t0": s.t0, "t1": s.t1, "factor": s.factor,
                 "src": s.src, "dst": s.dst}
                for s in self.slowdowns
            ],
            "rto_s": self.rto_s,
            "rto_backoff": self.rto_backoff,
            "rto_max_s": self.rto_max_s,
            "max_attempts": self.max_attempts,
            "recruit_timeout_s": self.recruit_timeout_s,
            "recruit_backoff_max_s": self.recruit_backoff_max_s,
            "membership": self.membership,
            "heartbeat_interval_s": self.heartbeat_interval_s,
            "suspect_timeout_s": self.suspect_timeout_s,
            "confirm_timeout_s": self.confirm_timeout_s,
            "kill_scheduler_at": self.kill_scheduler_at,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> FaultPlan:
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault plan must be an object, got {type(data).__name__}")
        known = {
            "seed", "drop_prob", "ack_drop_prob", "crashes", "slowdowns",
            "rto_s", "rto_backoff", "rto_max_s", "max_attempts",
            "recruit_timeout_s", "recruit_backoff_max_s",
            "membership", "heartbeat_interval_s", "suspect_timeout_s",
            "confirm_timeout_s", "kill_scheduler_at",
        }
        unknown = set(data) - known
        if unknown:
            raise FaultPlanError(f"unknown fault-plan keys: {sorted(unknown)}")
        kwargs = dict(data)
        try:
            kwargs["crashes"] = tuple(
                CrashSpec(**c) for c in data.get("crashes", ())
            )
            kwargs["slowdowns"] = tuple(
                LinkSlowdown(**s) for s in data.get("slowdowns", ())
            )
        except TypeError as exc:
            raise FaultPlanError(f"malformed crash/slowdown entry: {exc}") from exc
        return cls(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> FaultPlan:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str) -> FaultPlan:
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


# ----------------------------------------------------------------------
# injector (runtime, bound to one simulation)
# ----------------------------------------------------------------------
class FaultInjector:
    """Executes a :class:`FaultPlan` against one run.

    The network consults it per message (drop verdicts, slowdown factor,
    retransmission timeouts); the driver attaches the join processes and
    calls :meth:`start`; the scheduler reports phase entries through
    :meth:`notify_phase` so phase-triggered crashes fire synchronously.
    """

    def __init__(
        self,
        plan: FaultPlan,
        sim: Simulator,
        metrics: MetricsRegistry,
        trace: Callable[..., None] | None = None,
    ):
        self.plan = plan
        self.sim = sim
        self.metrics = metrics
        self._trace = trace
        self._rng = np.random.default_rng(
            np.random.SeedSequence(entropy=plan.seed, spawn_key=(91,))
        )
        #: pool indices of nodes killed so far
        self.crashed: set[int] = set()
        self._joins: dict[int, Any] = {}  # pool index -> JoinProcess
        self._procs: dict[int, Any] = {}  # pool index -> sim Process
        self._scheduler_proc: Any = None  # primary scheduler sim Process
        self._fired: set[int] = set()  # indices into plan.crashes
        # resolved retransmission timing (rto_s may be derived from cost)
        self._rto = plan.rto_s
        self._rto_max = plan.rto_max_s

    # -- wiring ----------------------------------------------------------
    def resolve_timing(self, cost: Any) -> None:
        """Derive default RTO from the cost model (driver calls this)."""
        if self._rto is None:
            self._rto = 4.0 * (cost.net_latency + cost.wire_time(64 * 1024))
        if self._rto_max is None:
            self._rto_max = 32.0 * self._rto

    def attach_joins(self, procs: dict[int, Any], joins: dict[int, Any]) -> None:
        """Register join processes so crash specs can find their targets."""
        self._procs = dict(procs)
        self._joins = dict(joins)
        for i, spec in enumerate(self.plan.crashes):
            if spec.node not in self._joins:
                raise FaultPlanError(
                    f"crash spec #{i} targets join node {spec.node}, but the "
                    f"pool has indices {sorted(self._joins)}"
                )

    def attach_scheduler(self, proc: Any) -> None:
        """Register the primary scheduler process (kill_scheduler_at target)."""
        self._scheduler_proc = proc

    def start(self) -> None:
        """Spawn timer processes for time-triggered crashes."""
        for i, spec in enumerate(self.plan.crashes):
            if spec.at_time is not None:
                self.sim.spawn(
                    self._crash_at(i, spec), name=f"fault:crash@{spec.at_time}"
                )
        if self.plan.kill_scheduler_at is not None:
            self.sim.spawn(
                self._kill_scheduler_at(self.plan.kill_scheduler_at),
                name=f"fault:sched-kill@{self.plan.kill_scheduler_at}",
            )

    def _kill_scheduler_at(self, at: float):
        if at > self.sim.now:
            yield self.sim.timeout(at - self.sim.now)
        proc = self._scheduler_proc
        if proc is None or not proc.is_alive:
            self.trace("scheduler_crash_noop")
            return
        proc.interrupt(cause=("scheduler_crash",))
        self.metrics.counter("faults_injected", kind="scheduler_crash").inc()
        self.trace("scheduler_crash")

    def _crash_at(self, idx: int, spec: CrashSpec):
        if spec.at_time > self.sim.now:
            yield self.sim.timeout(spec.at_time - self.sim.now)
        self._fire_crash(idx, spec)

    def notify_phase(self, phase: str) -> None:
        """Scheduler phase-entry hook: fire matching phase crashes now."""
        for i, spec in enumerate(self.plan.crashes):
            if spec.at_phase == phase and i not in self._fired:
                self._fire_crash(i, spec)

    def _fire_crash(self, idx: int, spec: CrashSpec) -> None:
        if idx in self._fired:
            return
        self._fired.add(idx)
        join = self._joins[spec.node]
        proc = self._procs[spec.node]
        if spec.node in self.crashed or not proc.is_alive:
            self.trace("crash_noop", node=spec.node)
            return
        if join.state != join.DORMANT and not self.plan.membership_active:
            raise UnrecoverableFaultError(
                f"fault plan crashes join node {spec.node} while {join.state} "
                "— it holds join state, and recovering it needs the membership "
                "layer (set membership=true in the fault plan to arm the "
                "heartbeat detector + source replay; see docs/FAULTS.md)"
            )
        self.crashed.add(spec.node)
        proc.interrupt(cause=("node_crash", spec.node))
        self.metrics.counter("faults_injected", kind="crash").inc()
        self.metrics.counter("faults_crashes").inc()
        self.trace("node_crash", node=spec.node, state=join.state)

    # -- link verdicts (network hot path) --------------------------------
    @property
    def links_active(self) -> bool:
        return self.plan.any_link_faults

    def roll_drop(self, src_id: int, dst_id: int) -> bool:
        """Payload-loss verdict for one transmission attempt.

        Loopback (``src == dst``) never drops: the message never touches
        a link.  No RNG draw happens when the probability is zero, so a
        plan with only crashes perturbs nothing else.
        """
        if src_id == dst_id or self.plan.drop_prob <= 0.0:
            return False
        if float(self._rng.random()) >= self.plan.drop_prob:
            return False
        self.metrics.counter("faults_injected", kind="message_drop").inc()
        return True

    def roll_ack_drop(self, src_id: int, dst_id: int) -> bool:
        """Ack-loss verdict (payload arrived; sender will retransmit)."""
        if src_id == dst_id or self.plan.ack_drop_prob <= 0.0:
            return False
        if float(self._rng.random()) >= self.plan.ack_drop_prob:
            return False
        self.metrics.counter("faults_injected", kind="ack_drop").inc()
        return True

    def slowdown_factor(self, src_id: int, dst_id: int, now: float) -> float:
        """Wire-time multiplier for this link at this instant (>= 1)."""
        factor = 1.0
        for s in self.plan.slowdowns:
            if s.matches(src_id, dst_id, now):
                factor = max(factor, s.factor)
        return factor

    # -- retransmission timing -------------------------------------------
    def rto(self, attempt: int) -> float:
        """Timeout before retransmission ``attempt`` (1-based), backed off
        exponentially and capped at ``rto_max_s``."""
        assert self._rto is not None, "resolve_timing() not called"
        return min(
            self._rto * self.plan.rto_backoff ** max(attempt - 1, 0),
            self._rto_max if self._rto_max is not None else float("inf"),
        )

    @property
    def max_attempts(self) -> int:
        return self.plan.max_attempts

    def count_retry(self, kind: str) -> None:
        self.metrics.counter("retries_total", kind=kind).inc()

    # -- misc ------------------------------------------------------------
    def is_crashed(self, pool_index: int) -> bool:
        return pool_index in self.crashed

    def trace(self, event: str, **fields: Any) -> None:
        if self._trace is not None:
            self._trace(event, "faults", **fields)


def crash_specs_from_cli(specs: Iterable[str]) -> tuple[CrashSpec, ...]:
    """Parse ``--crash-node`` values: ``N`` (t=0), ``N@T``, ``N@phase:P``."""
    out = []
    for raw in specs:
        node_part, _, when = raw.partition("@")
        try:
            node = int(node_part)
        except ValueError:
            raise FaultPlanError(
                f"bad --crash-node {raw!r}: node must be an int"
            ) from None
        if not when:
            out.append(CrashSpec(node=node, at_time=0.0))
        elif when.startswith("phase:"):
            out.append(CrashSpec(node=node, at_phase=when[len("phase:"):]))
        else:
            try:
                out.append(CrashSpec(node=node, at_time=float(when)))
            except ValueError:
                raise FaultPlanError(
                    f"bad --crash-node {raw!r}: expected N, N@TIME or N@phase:NAME"
                ) from None
    return tuple(out)
