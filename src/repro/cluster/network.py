"""Switched-Ethernet network model with byte-conservation accounting.

Transfer model for one message of ``n`` payload bytes from node *a* to
node *b* (100 Mb/s full-duplex switched Ethernet, non-blocking switch,
TCP-like flow control):

1. sender CPU handles the message (``net_per_message_cpu``),
2. the sender acquires its TX link, waits one propagation ``net_latency``,
3. acquires the receiver's RX link, and holds **both** links for the wire
   time ``n / bandwidth`` — so a message clocks out at the bottleneck of
   the two ports and, crucially, the *sender blocks* while the receiver's
   port is saturated.  This is the congestion-window view of TCP: without
   it, many senders could pour data into one 12.5 MB/s port at unbounded
   rate and the backlog would hide in fictitious in-flight buffers (the
   paper's testbed throttles senders exactly this way),
4. receiver CPU handles it, then it lands in *b*'s mailbox.

Per-pair FIFO ordering is preserved (FIFO links + deterministic
tie-breaking in the kernel).  No deadlock is possible: an RX link is only
ever held across a plain timeout, never while waiting for another
resource.

The network keeps per-(src, dst, kind) byte and message counters;
:meth:`assert_conserved` verifies at end of run that every byte sent was
delivered — a cheap full-system invariant the test suite leans on.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Generator, Protocol

import numpy as np

from ..config import CostModel
from ..sim import Resource, Simulator
from .node import Node

__all__ = ["Network", "Wireable"]


class Wireable(Protocol):
    """Anything the network can carry: must report its payload size."""

    @property
    def nbytes(self) -> int: ...

    @property
    def kind(self) -> str: ...


class Network:
    """The cluster interconnect."""

    def __init__(self, sim: Simulator, cost: CostModel, jitter_seed: int = 0,
                 shared_hub: bool = False):
        self.sim = sim
        self.cost = cost
        # Deterministic jitter stream (only consulted when net_jitter > 0).
        self._jitter_rng = np.random.default_rng(
            np.random.SeedSequence(entropy=jitter_seed, spawn_key=(74,))
        )
        # SHARED_HUB topology: one half-duplex collision domain — every
        # transfer serializes on this single medium instead of the
        # per-node TX/RX port pair.
        self._hub: Resource | None = (
            Resource(sim, capacity=1, name="hub-medium") if shared_hub
            else None
        )
        self.sent_bytes: dict[tuple[int, int, str], int] = defaultdict(int)
        self.delivered_bytes: dict[tuple[int, int, str], int] = defaultdict(int)
        self.sent_messages: dict[str, int] = defaultdict(int)
        self.delivered_messages: dict[str, int] = defaultdict(int)
        self._in_flight = 0

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(self, src: Node, dst: Node, message: Wireable) -> Generator[Any, Any, None]:
        """Send ``message`` from ``src`` to ``dst`` (yield-from in a process).

        Returns once the message has cleared both NICs (flow control: a
        saturated receiver port blocks the sender); the final receiver-CPU
        handling and mailbox deposit complete asynchronously.
        """
        nbytes = message.nbytes
        if nbytes < 0:
            raise ValueError("message reports a negative size")
        key = (src.node_id, dst.node_id, message.kind)
        self.sent_bytes[key] += nbytes
        self.sent_messages[message.kind] += 1
        self._in_flight += 1
        yield from src.cpu.use(self.cost.net_per_message_cpu)
        if message.kind == "data":
            # Receive-window credit: held until the receiving process
            # retires the chunk.  Acquired first — even for loopback
            # delivery — because the receiver releases one credit per
            # retired data chunk unconditionally; and before any link
            # (TCP checks the window before transmitting) so that links
            # are only ever held for bounded wire/latency times — holding
            # TX while waiting on a credit deadlocks two nodes that
            # stream at each other while their control replies queue
            # behind the jammed TX (observed in the reshuffle step).
            yield dst.recv_credits.acquire()
        if src is not dst and self._hub is not None:
            yield self._hub.acquire()
            try:
                yield self.sim.timeout(
                    self.cost.net_latency + self.cost.wire_time(nbytes)
                )
                self._hub.busy_time += self.cost.wire_time(nbytes)
            finally:
                self._hub.release()
        elif src is not dst:
            wire = self.cost.wire_time(nbytes)
            yield src.tx.acquire()
            try:
                yield self.sim.timeout(self.cost.net_latency)
                yield dst.rx.acquire()
                try:
                    yield self.sim.timeout(wire)
                    src.tx.busy_time += wire
                    dst.rx.busy_time += wire
                finally:
                    dst.rx.release()
            finally:
                src.tx.release()
        self.sim.spawn(
            self._deliver(dst, message, nbytes, key),
            name=f"net:{src.name}->{dst.name}",
        )

    def _deliver(
        self,
        dst: Node,
        message: Wireable,
        nbytes: int,
        key: tuple[int, int, str],
    ) -> Generator[Any, Any, None]:
        if self.cost.net_jitter > 0.0:
            # Chaos knob: a random stack/scheduling delay after the wire,
            # holding no link — so messages may arrive REORDERED, which the
            # protocol must tolerate (exercised by the chaos tests).
            yield self.sim.timeout(
                float(self._jitter_rng.uniform(0.0, self.cost.net_jitter))
            )
        yield from dst.cpu.use(self.cost.net_per_message_cpu)
        self.delivered_bytes[key] += nbytes
        self.delivered_messages[message.kind] += 1
        self._in_flight -= 1
        dst.mailbox.put(message)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Messages sent but not yet delivered."""
        return self._in_flight

    def total_sent_bytes(self, kind: str | None = None) -> int:
        return sum(
            v for (s, d, k), v in self.sent_bytes.items()
            if kind is None or k == kind
        )

    def total_delivered_bytes(self, kind: str | None = None) -> int:
        return sum(
            v for (s, d, k), v in self.delivered_bytes.items()
            if kind is None or k == kind
        )

    def assert_conserved(self) -> None:
        """Check that every sent byte has been delivered (end of run)."""
        if self._in_flight != 0:
            raise AssertionError(f"{self._in_flight} messages still in flight")
        if self.sent_bytes != self.delivered_bytes:
            missing = {
                k: (self.sent_bytes[k], self.delivered_bytes.get(k, 0))
                for k in self.sent_bytes
                if self.sent_bytes[k] != self.delivered_bytes.get(k, 0)
            }
            raise AssertionError(f"byte conservation violated: {missing}")
