"""Switched-Ethernet network model with byte-conservation accounting.

Transfer model for one message of ``n`` payload bytes from node *a* to
node *b* (100 Mb/s full-duplex switched Ethernet, non-blocking switch,
TCP-like flow control):

1. sender CPU handles the message (``net_per_message_cpu``),
2. the sender acquires its TX link, waits one propagation ``net_latency``,
3. acquires the receiver's RX link, and holds **both** links for the wire
   time ``n / bandwidth`` — so a message clocks out at the bottleneck of
   the two ports and, crucially, the *sender blocks* while the receiver's
   port is saturated.  This is the congestion-window view of TCP: without
   it, many senders could pour data into one 12.5 MB/s port at unbounded
   rate and the backlog would hide in fictitious in-flight buffers (the
   paper's testbed throttles senders exactly this way),
4. receiver CPU handles it, then it lands in *b*'s mailbox.

Per-pair FIFO ordering is preserved (FIFO links + deterministic
tie-breaking in the kernel).  No deadlock is possible: an RX link is only
ever held across a plain timeout, never while waiting for another
resource.

The network keeps per-(src, dst, kind) byte and message counters;
:meth:`assert_conserved` verifies at end of run that every byte sent was
delivered — a cheap full-system invariant the test suite leans on.

**Reliable transport under fault injection.**  When a
:class:`~repro.faults.FaultInjector` with link faults is attached, every
inter-node ``send`` runs an at-least-once loop: transmit, consult the
seeded drop verdicts, and either finish after one ack propagation delay or
back off (``FaultPlan.rto_s`` x ``rto_backoff^k``, capped) and retransmit.
A lost *payload* is retransmitted until it lands; a lost *ack* means the
payload already landed, so the retransmission is counted as a duplicate
and suppressed — exactly one mailbox delivery per logical message, so
receive-window credits and the drain protocol's message counts stay
balanced.  Dropped and duplicate bytes are accounted per link and
:meth:`assert_conserved` then checks ``sent == delivered + dropped +
duplicates``.  A message that exhausts ``max_attempts`` raises
:class:`~repro.faults.UnrecoverableFaultError` instead of deadlocking.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Generator
from typing import TYPE_CHECKING, Any, Protocol

import numpy as np

from ..config import CostModel
from ..faults import UnrecoverableFaultError
from ..sim import Resource, Simulator
from .node import Node

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults import FaultInjector

__all__ = ["Network", "Wireable"]


class Wireable(Protocol):
    """Anything the network can carry: must report its payload size."""

    @property
    def nbytes(self) -> int: ...

    @property
    def kind(self) -> str: ...


class Network:
    """The cluster interconnect."""

    def __init__(self, sim: Simulator, cost: CostModel, jitter_seed: int = 0,
                 shared_hub: bool = False,
                 faults: FaultInjector | None = None) -> None:
        self.sim = sim
        self.cost = cost
        #: fault injector (None = perfectly reliable links)
        self.faults = faults
        # Deterministic jitter stream (only consulted when net_jitter > 0).
        self._jitter_rng = np.random.default_rng(
            np.random.SeedSequence(entropy=jitter_seed, spawn_key=(74,))
        )
        # SHARED_HUB topology: one half-duplex collision domain — every
        # transfer serializes on this single medium instead of the
        # per-node TX/RX port pair.
        self._hub: Resource | None = (
            Resource(sim, capacity=1, name="hub-medium") if shared_hub
            else None
        )
        self.sent_bytes: dict[tuple[int, int, str], int] = defaultdict(int)
        self.delivered_bytes: dict[tuple[int, int, str], int] = defaultdict(int)
        self.sent_messages: dict[str, int] = defaultdict(int)
        self.delivered_messages: dict[str, int] = defaultdict(int)
        #: payload transmissions lost to injected faults (per link+kind)
        self.dropped_bytes: dict[tuple[int, int, str], int] = defaultdict(int)
        self.dropped_messages: dict[str, int] = defaultdict(int)
        #: retransmissions of an already-delivered payload (lost ack);
        #: the receiver-side sequence check suppresses these
        self.duplicate_bytes: dict[tuple[int, int, str], int] = defaultdict(int)
        self.duplicate_messages: dict[str, int] = defaultdict(int)
        self.retransmissions = 0
        self._in_flight = 0
        #: high-water mark of concurrent in-flight messages
        self.in_flight_peak = 0
        #: optional causal log (duck-typed: on_send/on_attempt/on_deliver;
        #: see repro.obs.causality), wired by RunContext
        self.causality: Any | None = None

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(self, src: Node, dst: Node, message: Wireable,
             parent: int | None = None,
             best_effort: bool = False) -> Generator[Any, Any, None]:
        """Send ``message`` from ``src`` to ``dst`` (yield-from in a process).

        Returns once the message has cleared both NICs (flow control: a
        saturated receiver port blocks the sender); the final receiver-CPU
        handling and mailbox deposit complete asynchronously.

        ``parent`` optionally pins the causal-log provenance of this send
        to a specific edge id; by default the log attributes it to the
        message the sender is currently processing.

        With link faults injected this becomes an at-least-once exchange:
        the sender retransmits on a seeded drop verdict with exponential
        backoff, waits one ack propagation delay on success, and counts a
        lost-ack retransmission as a suppressed duplicate (the payload is
        delivered to the mailbox exactly once either way).  See the module
        docstring for the full recovery semantics.

        ``best_effort=True`` (heartbeats) sends exactly one copy and never
        waits for an ack: a drop verdict simply loses the message — which
        is the point, because a failure detector built on a reliable
        transport would never observe the faults it exists to detect.
        Byte conservation still holds (the loss lands in ``dropped_*``).
        """
        nbytes = message.nbytes
        if nbytes < 0:
            raise ValueError("message reports a negative size")
        key = (src.node_id, dst.node_id, message.kind)
        self.sent_messages[message.kind] += 1
        self._in_flight += 1
        if self._in_flight > self.in_flight_peak:
            self.in_flight_peak = self._in_flight
        # Record the causal edge before the first yield: the sender's
        # current cause must be read while it is still processing the
        # message that triggered this send.
        edge: Any | None = None
        if self.causality is not None:
            edge = self.causality.on_send(
                src.name, dst.name, message, self.sim.now, parent
            )
        # A fail-stop interrupt (crashed sender) can land on any yield in
        # here; the try/finally keeps the conservation books exact in that
        # case: an attempt whose verdict never resolved is charged as
        # dropped (the sender's NIC died mid-transmission) and an
        # undelivered logical message leaves the in-flight count.
        delivered = False      # a copy was handed to _spawn_deliver
        attempt_open = False   # bytes charged to sent_* with no verdict yet
        try:
            yield from src.cpu.use(self.cost.net_per_message_cpu)
            if message.kind == "data":
                # Receive-window credit: held until the receiving process
                # retires the chunk.  Acquired first — even for loopback
                # delivery — because the receiver releases one credit per
                # retired data chunk unconditionally; and before any link
                # (TCP checks the window before transmitting) so that links
                # are only ever held for bounded wire/latency times — holding
                # TX while waiting on a credit deadlocks two nodes that
                # stream at each other while their control replies queue
                # behind the jammed TX (observed in the reshuffle step).
                # One credit covers the logical message across every
                # retransmission attempt (TCP's window tracks sequence space,
                # not wire copies), so duplicates cannot leak credits.
                # grab(), not acquire(): a sender crashed while queued for
                # the window must withdraw its request, or the receiver's
                # next credit release is handed to the corpse and the
                # window shrinks by one forever.  The matching release is
                # on the *consumer* (the join node retires the chunk), so
                # no try/finally here can pair it — that asymmetry is the
                # credit protocol, not a leak.
                yield from dst.recv_credits.grab()  # repro: allow[rs-unpaired-grab]
            faults = self.faults
            if faults is None or not faults.links_active or src is dst:
                attempt_open = True
                self.sent_bytes[key] += nbytes
                yield from self._transmit(src, dst, nbytes)
                attempt_open = False
                self._spawn_deliver(src, dst, message, nbytes, key, edge)
                delivered = True
                return
            if best_effort:
                attempt_open = True
                self.sent_bytes[key] += nbytes
                yield from self._transmit(src, dst, nbytes)
                attempt_open = False
                if faults.roll_drop(src.node_id, dst.node_id):
                    self.dropped_bytes[key] += nbytes
                    self.dropped_messages[message.kind] += 1
                else:
                    self._spawn_deliver(src, dst, message, nbytes, key, edge)
                    delivered = True
                return
            # Reliable transport: transmit / await ack / back off and retry.
            attempt = 0
            while True:
                attempt_open = True
                self.sent_bytes[key] += nbytes
                yield from self._transmit(src, dst, nbytes)
                attempt_open = False
                if faults.roll_drop(src.node_id, dst.node_id):
                    self.dropped_bytes[key] += nbytes
                    self.dropped_messages[message.kind] += 1
                    lost = True
                else:
                    if delivered:
                        self.duplicate_bytes[key] += nbytes
                        self.duplicate_messages[message.kind] += 1
                    else:
                        self._spawn_deliver(src, dst, message, nbytes, key, edge)
                        delivered = True
                    lost = faults.roll_ack_drop(src.node_id, dst.node_id)
                if not lost:
                    # Cumulative ack propagates back (control-sized, modelled
                    # as pure propagation delay on the reverse path).
                    yield self.sim.timeout(self.cost.net_latency)
                    return
                attempt += 1
                if attempt >= faults.max_attempts:
                    raise UnrecoverableFaultError(
                        f"message {src.name}->{dst.name} ({message.kind}, "
                        f"{nbytes} B) exhausted {faults.max_attempts} "
                        "transmission attempts; the configured drop "
                        "probability is beyond the transport's recovery "
                        "envelope (raise max_attempts or lower drop_prob)"
                    )
                self.retransmissions += 1
                faults.count_retry(message.kind)
                if edge is not None:
                    self.causality.on_attempt(edge)
                yield self.sim.timeout(faults.rto(attempt))
        finally:
            if attempt_open:
                self.dropped_bytes[key] += nbytes
                self.dropped_messages[message.kind] += 1
            if not delivered:
                self._in_flight -= 1

    def _transmit(self, src: Node, dst: Node, nbytes: int) -> Generator[Any, Any, None]:
        """Clock one copy of the payload through the interconnect."""
        if src is dst:
            return
        wire = self.cost.wire_time(nbytes)
        if self.faults is not None:
            wire *= self.faults.slowdown_factor(
                src.node_id, dst.node_id, self.sim.now
            )
        # grab(), not acquire(), throughout: a crashed process abandoned
        # mid-wait must withdraw its queued request, or the next release
        # grants the link to the corpse — jamming the port forever (every
        # later sender queues behind a slot nobody will ever release).
        if self._hub is not None:
            yield from self._hub.grab()
            try:
                yield self.sim.timeout(self.cost.net_latency + wire)
                self._hub.busy_time += wire
            finally:
                self._hub.release()
        else:
            yield from src.tx.grab()
            try:
                yield self.sim.timeout(self.cost.net_latency)
                yield from dst.rx.grab()
                try:
                    yield self.sim.timeout(wire)
                    src.tx.busy_time += wire
                    dst.rx.busy_time += wire
                finally:
                    dst.rx.release()
            finally:
                src.tx.release()

    def _spawn_deliver(
        self,
        src: Node,
        dst: Node,
        message: Wireable,
        nbytes: int,
        key: tuple[int, int, str],
        edge: Any | None = None,
    ) -> None:
        self.sim.spawn(
            self._deliver(dst, message, nbytes, key, edge),
            name=f"net:{src.name}->{dst.name}",
        )

    def _deliver(
        self,
        dst: Node,
        message: Wireable,
        nbytes: int,
        key: tuple[int, int, str],
        edge: Any | None = None,
    ) -> Generator[Any, Any, None]:
        if self.cost.net_jitter > 0.0:
            # Chaos knob: a random stack/scheduling delay after the wire,
            # holding no link — so messages may arrive REORDERED, which the
            # protocol must tolerate (exercised by the chaos tests).
            yield self.sim.timeout(
                float(self._jitter_rng.uniform(0.0, self.cost.net_jitter))
            )
        yield from dst.cpu.use(self.cost.net_per_message_cpu)
        self.delivered_bytes[key] += nbytes
        self.delivered_messages[message.kind] += 1
        self._in_flight -= 1
        if edge is not None:
            # Before the deposit: an immediate hand-off to a blocked getter
            # fires the mailbox's dequeue hook synchronously.
            self.causality.on_deliver(edge, message, self.sim.now)
        dst.mailbox.put(message)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Messages sent but not yet delivered."""
        return self._in_flight

    def total_sent_bytes(self, kind: str | None = None) -> int:
        return sum(
            v for (s, d, k), v in self.sent_bytes.items()
            if kind is None or k == kind
        )

    def total_delivered_bytes(self, kind: str | None = None) -> int:
        return sum(
            v for (s, d, k), v in self.delivered_bytes.items()
            if kind is None or k == kind
        )

    def total_dropped_bytes(self, kind: str | None = None) -> int:
        return sum(
            v for (s, d, k), v in self.dropped_bytes.items()
            if kind is None or k == kind
        )

    def total_duplicate_bytes(self, kind: str | None = None) -> int:
        return sum(
            v for (s, d, k), v in self.duplicate_bytes.items()
            if kind is None or k == kind
        )

    def assert_conserved(self) -> None:
        """Check that every sent byte is accounted for (end of run).

        Fault-free: ``sent == delivered`` per (src, dst, kind).  Under
        fault injection each transmitted copy is still accounted exactly
        once: ``sent == delivered + dropped + duplicates`` — drops burned
        the wire but never reached a mailbox, duplicates reached the
        receiver's NIC but were suppressed by the sequence check.
        """
        if self._in_flight != 0:
            raise AssertionError(f"{self._in_flight} messages still in flight")
        keys = (
            set(self.sent_bytes) | set(self.delivered_bytes)
            | set(self.dropped_bytes) | set(self.duplicate_bytes)
        )
        bad = {}
        for k in keys:
            sent = self.sent_bytes.get(k, 0)
            accounted = (
                self.delivered_bytes.get(k, 0)
                + self.dropped_bytes.get(k, 0)
                + self.duplicate_bytes.get(k, 0)
            )
            if sent != accounted:
                bad[k] = (sent, accounted)
        if bad:
            raise AssertionError(
                "byte conservation violated (sent != delivered + dropped "
                f"+ duplicates): {bad}"
            )
