"""Local-disk model: a FIFO device charging seek + sequential-transfer time.

Used by the out-of-core baseline (Grace-style spill partitions) and by the
optional match-output sink.  One :class:`Disk` per node; concurrent
requests queue FIFO like a real single-spindle 2004 IDE disk.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

from ..config import CostModel
from ..sim import Resource, Simulator

__all__ = ["Disk"]


class Disk:
    """A single-spindle disk with batched sequential transfers.

    Byte/op counters are credited only once a transfer *completes*: a
    process interrupted while queued for the device — or mid-transfer —
    performed no I/O, so it must not inflate the accounting the OOC
    figures are computed from.
    """

    def __init__(self, sim: Simulator, cost: CostModel, name: str = "disk") -> None:
        self.sim = sim
        self.cost = cost
        self.name = name
        self._device = Resource(sim, capacity=1, name=f"{name}.device")
        self.bytes_written = 0
        self.bytes_read = 0
        self.ops = 0
        #: optional live metric counters (objects with ``inc(n)``; wired by
        #: the cluster's metrics setup)
        self.written_counter: Any | None = None
        self.read_counter: Any | None = None

    def write(self, nbytes: int) -> Generator[Any, Any, None]:
        """Charge one batched write of ``nbytes`` (yield-from inside a process)."""
        if nbytes < 0:
            raise ValueError("negative write size")
        yield from self._device.use(self.cost.disk_time(nbytes))
        self.bytes_written += nbytes
        self.ops += 1
        if self.written_counter is not None:
            self.written_counter.inc(nbytes)

    def read(self, nbytes: int) -> Generator[Any, Any, None]:
        """Charge one batched read of ``nbytes`` (yield-from inside a process)."""
        if nbytes < 0:
            raise ValueError("negative read size")
        yield from self._device.use(self.cost.disk_time(nbytes))
        self.bytes_read += nbytes
        self.ops += 1
        if self.read_counter is not None:
            self.read_counter.inc(nbytes)

    @property
    def busy_time(self) -> float:
        return self._device.busy_time
