"""Byte-granular memory accounting for join nodes.

Models the paper's per-node memory budget for hash-table buckets.  A join
process *tries* to allocate space for incoming tuples; a failed allocation
is exactly the paper's "memory full" condition that triggers expansion.
"""

from __future__ import annotations

from typing import Any

__all__ = ["MemoryAccount", "MemoryFullError"]


class MemoryFullError(Exception):
    """Raised by :meth:`MemoryAccount.alloc` when the budget is exceeded."""

    def __init__(self, requested: int, available: int) -> None:
        super().__init__(
            f"requested {requested} bytes, only {available} available"
        )
        self.requested = requested
        self.available = available


class MemoryAccount:
    """Tracks bytes used against a fixed capacity."""

    def __init__(self, capacity: int, name: str = "memory") -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self.name = name
        self._used = 0
        #: high-water mark (diagnostics / load metrics)
        self.peak = 0
        #: optional usage timeline (any object with ``set(time, bytes)``;
        #: wired by the cluster's metrics setup); paired ``clock`` supplies
        #: timestamps since the account itself is simulator-agnostic
        self.usage_probe: Any | None = None
        self.clock: Any = None

    def _sample_usage(self) -> None:
        if self.usage_probe is not None:
            self.usage_probe.set(self.clock() if self.clock else 0.0, self._used)

    @property
    def used(self) -> int:
        return self._used

    @property
    def available(self) -> int:
        return self.capacity - self._used

    @property
    def is_full(self) -> bool:
        return self._used >= self.capacity

    def fits(self, nbytes: int) -> bool:
        return self._used + nbytes <= self.capacity

    def try_alloc(self, nbytes: int) -> bool:
        """Allocate if it fits; return whether the allocation happened."""
        if nbytes < 0:
            raise ValueError("cannot allocate a negative size")
        if not self.fits(nbytes):
            return False
        self._used += nbytes
        if self._used > self.peak:
            self.peak = self._used
        self._sample_usage()
        return True

    def alloc(self, nbytes: int) -> None:
        """Allocate or raise :class:`MemoryFullError`."""
        if not self.try_alloc(nbytes):
            raise MemoryFullError(nbytes, self.available)

    def reset(self) -> None:
        """Forget all usage *and* the high-water mark.

        Workload mode reuses physical join nodes across queries: the pool
        hands a released node to the next query, whose fresh JoinProcess
        must see an empty account and a per-query peak (FinalReport reads
        ``peak``).  The usage probe is sampled so the shared metrics
        timeline shows the release."""
        self._used = 0
        self.peak = 0
        self._sample_usage()

    def free(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("cannot free a negative size")
        if nbytes > self._used:
            raise ValueError(
                f"freeing {nbytes} bytes but only {self._used} are in use"
            )
        self._used -= nbytes
        self._sample_usage()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryAccount({self.name!r}, used={self._used}, "
            f"capacity={self.capacity})"
        )
