"""A simulated cluster node: CPU, NIC links, memory budget, disk, mailbox.

Every actor in the reproduction (scheduler, data source, join process) runs
as a simulation process bound to one :class:`Node`.  The node owns the
serially shared hardware: a single CPU (the Pentium III), full-duplex NIC
modelled as independent TX and RX links (switched Ethernet port), a
hash-table memory budget, and a local disk.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

from ..config import CostModel
from ..sim import Mailbox, Resource, Simulator
from .disk import Disk
from .memory import MemoryAccount

__all__ = ["Node"]


class Node:
    """One machine in the simulated cluster."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        role: str,
        cost: CostModel,
        hash_memory_bytes: int = 0,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.role = role
        self.name = f"{role}{node_id}"
        self.cost = cost
        self.cpu = Resource(sim, capacity=1, name=f"{self.name}.cpu")
        self.tx = Resource(sim, capacity=1, name=f"{self.name}.tx")
        self.rx = Resource(sim, capacity=1, name=f"{self.name}.rx")
        #: receive-window credits for data chunks (see Network docstring);
        #: the consuming process must release one credit per retired chunk
        self.recv_credits = Resource(
            sim, capacity=cost.recv_window_chunks, name=f"{self.name}.rwnd"
        )
        self.mailbox = Mailbox(sim, name=f"{self.name}.mailbox")
        self.memory = MemoryAccount(hash_memory_bytes, name=f"{self.name}.mem")
        self.disk = Disk(sim, cost, name=f"{self.name}.disk")

    def compute(self, seconds: float) -> Generator[Any, Any, None]:
        """Occupy this node's CPU for ``seconds`` (yield-from in a process)."""
        yield from self.cpu.use(seconds)

    def compute_per_tuple(self, cost_per_tuple: float, n: int) -> Generator[Any, Any, None]:
        """Charge a vectorized per-tuple CPU cost for ``n`` tuples."""
        if n:
            yield from self.cpu.use(cost_per_tuple * n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.name})"
