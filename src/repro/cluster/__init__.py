"""Simulated-cluster substrate: nodes, network, memory, disk.

Stands in for the paper's OSUMed testbed (24 Pentium-III nodes on switched
100 Mb/s Ethernet).  See DESIGN.md §2 for the substitution argument.
"""

from .cluster import Cluster, WorkloadCluster
from .disk import Disk
from .memory import MemoryAccount, MemoryFullError
from .network import Network, Wireable
from .node import Node

__all__ = [
    "Cluster",
    "Disk",
    "MemoryAccount",
    "MemoryFullError",
    "Network",
    "Node",
    "Wireable",
    "WorkloadCluster",
]
