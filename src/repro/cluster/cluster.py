"""Cluster assembly: build all simulated nodes from a :class:`ClusterSpec`.

Node layout mirrors the paper's system architecture (§4.1): one scheduler
node, ``n_sources`` data-source nodes, and a pool of ``n_potential_nodes``
join nodes of which ``initial_nodes`` are working at start and the rest are
*potential* join nodes the scheduler may recruit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..config import ClusterSpec
from ..sim import Simulator
from .network import Network
from .node import Node

__all__ = ["Cluster", "WorkloadCluster"]


def _instrument(node: Node, metrics: Any) -> None:
    """Wire one node's hardware into the metrics registry.

    Mailbox depth becomes a time-weighted histogram, the memory account
    gains a usage-timeline gauge, and disk transfers publish byte counters
    as they complete (see ``docs/OBSERVABILITY.md`` for the catalogue).
    """
    node.mailbox.depth_probe = metrics.histogram(
        "mailbox.depth", node=node.name
    )
    node.disk.written_counter = metrics.counter(
        "disk.bytes_written", node=node.name
    )
    node.disk.read_counter = metrics.counter("disk.bytes_read", node=node.name)
    if node.memory.capacity > 0:
        node.memory.usage_probe = metrics.gauge("mem.used_bytes", node=node.name)
        node.memory.clock = lambda: node.sim.now


@dataclass
class Cluster:
    """All simulated machines plus the shared interconnect."""

    sim: Simulator
    spec: ClusterSpec
    network: Network
    scheduler_node: Node
    source_nodes: list[Node]
    join_nodes: list[Node] = field(default_factory=list)
    #: standby scheduler machine (control-plane fault tolerance); only
    #: built when the fault plan arms the membership layer, so fault-free
    #: topology — node ids, metric labels — is unchanged
    backup_node: Node | None = None

    @classmethod
    def build(
        cls, sim: Simulator, spec: ClusterSpec, metrics: Any | None = None,
        faults: Any | None = None,
    ) -> Cluster:
        from ..config import Topology

        network = Network(
            sim, spec.cost,
            shared_hub=spec.topology is Topology.SHARED_HUB,
            faults=faults,
        )
        next_id = 0

        scheduler_node = Node(sim, next_id, "sched", spec.cost)
        next_id += 1

        source_nodes = []
        for _ in range(spec.n_sources):
            source_nodes.append(Node(sim, next_id, "src", spec.cost))
            next_id += 1

        join_nodes = []
        for j in range(spec.n_potential_nodes):
            join_nodes.append(
                Node(
                    sim,
                    next_id,
                    "join",
                    spec.cost,
                    hash_memory_bytes=spec.memory_of(j),
                )
            )
            next_id += 1

        backup_node = None
        if faults is not None and faults.plan.membership_active:
            # Appended after the join pool so every pre-existing global
            # node id is unchanged whether or not the backup exists.
            backup_node = Node(sim, next_id, "sched-backup", spec.cost)
            next_id += 1

        cluster = cls(
            sim=sim,
            spec=spec,
            network=network,
            scheduler_node=scheduler_node,
            source_nodes=source_nodes,
            join_nodes=join_nodes,
            backup_node=backup_node,
        )
        if metrics is not None:
            for node in cluster.all_nodes:
                _instrument(node, metrics)
        return cluster

    def join_node(self, index: int) -> Node:
        """Potential/working join node by pool index (0-based)."""
        return self.join_nodes[index]

    @property
    def all_nodes(self) -> list[Node]:
        nodes = [self.scheduler_node, *self.source_nodes, *self.join_nodes]
        if self.backup_node is not None:
            nodes.append(self.backup_node)
        return nodes


@dataclass
class WorkloadCluster:
    """Shared-cluster layout for multi-tenant workloads (repro.workload).

    One interconnect, one communal join-node pool, plus *per query*: a
    scheduler node and a private set of source nodes.  ``views[q]`` is a
    plain :class:`Cluster` facade over the shared hardware — the per-query
    :class:`~repro.core.context.RunContext` consumes it unchanged, which is
    what lets every single-query actor run unmodified in workload mode.

    Node-id layout: pool coordinator first, then the per-query scheduler
    and source nodes, then the shared join pool (so join-node global ids —
    and with them trace/metric labels — are stable in the query count).
    """

    sim: Simulator
    spec: ClusterSpec
    network: Network
    pool_node: Node
    join_nodes: list[Node]
    views: list[Cluster]

    @classmethod
    def build(
        cls, sim: Simulator, spec: ClusterSpec, n_queries: int,
        metrics: Any | None = None, faults: Any | None = None,
    ) -> WorkloadCluster:
        from ..config import Topology

        network = Network(
            sim, spec.cost,
            shared_hub=spec.topology is Topology.SHARED_HUB,
            faults=faults,
        )
        next_id = 0
        pool_node = Node(sim, next_id, "pool", spec.cost)
        next_id += 1

        scheduler_nodes = []
        for _ in range(n_queries):
            scheduler_nodes.append(Node(sim, next_id, "sched", spec.cost))
            next_id += 1
        source_nodes: list[list[Node]] = []
        for _ in range(n_queries):
            per_query = []
            for _ in range(spec.n_sources):
                per_query.append(Node(sim, next_id, "src", spec.cost))
                next_id += 1
            source_nodes.append(per_query)

        join_nodes = []
        for j in range(spec.n_potential_nodes):
            join_nodes.append(
                Node(
                    sim, next_id, "join", spec.cost,
                    hash_memory_bytes=spec.memory_of(j),
                )
            )
            next_id += 1

        views = [
            Cluster(
                sim=sim, spec=spec, network=network,
                scheduler_node=scheduler_nodes[q],
                source_nodes=source_nodes[q],
                join_nodes=join_nodes,
            )
            for q in range(n_queries)
        ]
        wc = cls(
            sim=sim, spec=spec, network=network, pool_node=pool_node,
            join_nodes=join_nodes, views=views,
        )
        if metrics is not None:
            for node in wc.all_nodes:
                _instrument(node, metrics)
        return wc

    @property
    def all_nodes(self) -> list[Node]:
        nodes = [self.pool_node]
        for view in self.views:
            nodes.append(view.scheduler_node)
            nodes.extend(view.source_nodes)
        nodes.extend(self.join_nodes)
        return nodes

    def reset_join_node(self, index: int) -> None:
        """Return a released pool node to factory state for its next tenant.

        The previous query's JoinProcess has exited (its Shutdown was
        answered with a FinalReport and the drain protocol guarantees no
        data is still in flight), but exit does not free hardware state:
        the memory account (and its peak), any unclaimed receive credits,
        and stray mailbox items must be cleared before a fresh JoinProcess
        adopts the node.
        """
        node = self.join_nodes[index]
        node.mailbox.drain()
        node.memory.reset()
        credits = node.recv_credits
        assert credits.queue_length == 0, (
            f"reset of {node.name} with senders still waiting for credits"
        )
        for _ in range(credits.in_use):
            credits.release()
