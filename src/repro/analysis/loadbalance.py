"""Load-balance metrics (Figures 12 and 13).

The paper reports the average, maximum and minimum number of stored build
tuples across join nodes, in chunk units.  We add the standard imbalance
coefficient (max/avg) used throughout the parallel-join literature.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.results import JoinRunResult

__all__ = ["LoadBalance", "load_balance"]


@dataclass(frozen=True)
class LoadBalance:
    """Per-run load distribution summary (tuples and chunk units)."""

    nodes: int
    avg_tuples: float
    max_tuples: int
    min_tuples: int
    chunk_tuples: int

    @property
    def avg_chunks(self) -> float:
        return self.avg_tuples / self.chunk_tuples

    @property
    def max_chunks(self) -> float:
        return self.max_tuples / self.chunk_tuples

    @property
    def min_chunks(self) -> float:
        return self.min_tuples / self.chunk_tuples

    @property
    def imbalance(self) -> float:
        """max/avg; 1.0 is perfect balance."""
        return self.max_tuples / self.avg_tuples if self.avg_tuples else float("inf")


def load_balance(result: JoinRunResult) -> LoadBalance:
    """Extract the Figure 12/13 metrics from a run result.

    Counts in-memory stored tuples plus any disk-spilled build tuples —
    both represent work the node performs in the probe/OOC phase.
    """
    totals = [l.stored_tuples + l.spilled_r_tuples for l in result.loads]
    if not totals:
        raise ValueError("run used no join nodes")
    return LoadBalance(
        nodes=len(totals),
        avg_tuples=sum(totals) / len(totals),
        max_tuples=max(totals),
        min_tuples=min(totals),
        chunk_tuples=result.config.workload.real_chunk_tuples,
    )
