"""Analysis utilities: the §4.2.4 overhead model, load-balance metrics,
and report tables for the figure-reproduction harness."""

from .advisor import Recommendation, recommend_strategy
from .costmodel import (
    OverheadModel,
    hybrid_overhead_s,
    split_moved_capacity_model,
    split_overhead_s,
)
from .loadbalance import LoadBalance, load_balance
from .report import FigureReport, ShapeCheck, format_table

__all__ = [
    "FigureReport",
    "LoadBalance",
    "OverheadModel",
    "Recommendation",
    "ShapeCheck",
    "recommend_strategy",
    "format_table",
    "hybrid_overhead_s",
    "load_balance",
    "split_moved_capacity_model",
    "split_overhead_s",
]
