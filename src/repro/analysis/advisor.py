"""Strategy advisor: the paper's §6 conclusions as an executable policy.

The paper closes with operational guidance:

* "the replication-based algorithm should be preferred over the split-based
  algorithm if the distribution of the join attribute values is highly
  skewed and/or the larger relation has to be used to build the hash
  table.  Otherwise, the split-based algorithm achieves better
  performance."
* "on the average, the hybrid algorithm generally performs close to the
  better of the two or is the best algorithm."

:func:`recommend_strategy` turns that — plus the §4.2.4 overhead
crossover — into a concrete recommendation for a workload estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import Algorithm
from .costmodel import OverheadModel

__all__ = ["Recommendation", "recommend_strategy"]


@dataclass(frozen=True)
class Recommendation:
    """The advised algorithm with its expected shape and rationale."""

    algorithm: Algorithm
    expected_expansion: float
    reason: str

    def __str__(self) -> str:
        return (f"{self.algorithm.value} "
                f"(expected expansion E~{self.expected_expansion:.1f}): "
                f"{self.reason}")


def recommend_strategy(
    estimated_build_tuples: int,
    node_capacity_tuples: int,
    initial_nodes: int,
    *,
    estimate_error_factor: float = 2.0,
    skewed: bool = False,
    build_is_larger: bool = False,
) -> Recommendation:
    """Pick an expansion strategy for a join whose build size is uncertain.

    ``estimate_error_factor`` is how far off (multiplicatively) the size
    estimate might be — the paper's motivating scenario is exactly that
    the estimate *cannot* be trusted.

    Decision order (paper §6):

    1. heavy skew  -> never split; hybrid repairs the imbalance too;
    2. building from the larger relation -> replication (no build-phase
       tuple movement; the probe broadcast multiplies only the small S);
    3. otherwise compare the §4.2.4 overheads at the worst-case expansion:
       below the crossover the split's probing simplicity wins, above it
       the hybrid's one-shot reshuffle is cheaper.
    """
    if estimated_build_tuples < 1 or node_capacity_tuples < 1:
        raise ValueError("sizes must be positive")
    if initial_nodes < 1:
        raise ValueError("initial_nodes must be >= 1")
    if estimate_error_factor < 1.0:
        raise ValueError("estimate_error_factor must be >= 1")

    worst_tuples = estimated_build_tuples * estimate_error_factor
    final_nodes = max(
        initial_nodes, math.ceil(worst_tuples / node_capacity_tuples)
    )
    expansion = final_nodes / initial_nodes

    if skewed:
        return Recommendation(
            Algorithm.HYBRID, expansion,
            "skewed join attributes: splitting re-ships the hot range "
            "repeatedly (Figs 10-13); the hybrid's reshuffle also repairs "
            "the load imbalance",
        )
    if build_is_larger:
        return Recommendation(
            Algorithm.REPLICATE, expansion,
            "building from the larger relation: replication moves no "
            "stored tuples and the probe broadcast multiplies only the "
            "small relation (Figs 8-9)",
        )
    if expansion <= 1.0:
        return Recommendation(
            Algorithm.SPLIT, expansion,
            "the initial nodes already hold the worst-case table; with no "
            "expansion every strategy degenerates to the same plan and "
            "split's single-destination probing has no overhead to amortize",
        )
    model = OverheadModel(bucket_bytes=1.0, t_w=1.0)  # ratios only
    if expansion <= model.crossover_expansion():
        return Recommendation(
            Algorithm.SPLIT, expansion,
            f"expected expansion E~{expansion:.1f} is below the §4.2.4 "
            "crossover: the (serialized) split transfers stay cheaper than "
            "a full reshuffle",
        )
    return Recommendation(
        Algorithm.HYBRID, expansion,
        f"expected expansion E~{expansion:.1f} exceeds the §4.2.4 "
        "crossover: reshuffling each tuple at most once beats the growing "
        "split-transfer volume, and probing stays single-destination",
    )
