"""The paper's §4.2.4 analytic overhead model.

With bucket size ``B`` bytes, ``O`` original buckets, ``F`` final buckets
and expansion factor ``E = F / O``, and ``t_w`` seconds per byte across the
network, the paper derives:

* split-based overhead    ``T_split  = log2(E) * (B / 2) * t_w``
  (per original bucket: each of the ``log2 E`` doubling rounds transfers
  half a bucket's worth of data),
* hybrid (reshuffle)      ``T_hybrid = ((E - 1) / E) * B * t_w``
  (each tuple moves at most once; in expectation the fraction that ends up
  on a different node is ``(E-1)/E``).

The model predicts the split overhead grows faster with E — validated by
``benchmarks/bench_model_validation.py`` against measured transfers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import CostModel

__all__ = ["OverheadModel", "split_overhead_s", "hybrid_overhead_s"]


def split_overhead_s(bucket_bytes: float, expansion: float, t_w: float) -> float:
    """``T_split`` per original bucket (seconds)."""
    if expansion < 1:
        raise ValueError("expansion factor must be >= 1")
    if expansion == 1:
        return 0.0
    return math.log2(expansion) * (bucket_bytes / 2.0) * t_w


def hybrid_overhead_s(bucket_bytes: float, expansion: float, t_w: float) -> float:
    """``T_hybrid`` per original bucket (seconds)."""
    if expansion < 1:
        raise ValueError("expansion factor must be >= 1")
    return ((expansion - 1.0) / expansion) * bucket_bytes * t_w


@dataclass(frozen=True)
class OverheadModel:
    """Convenience wrapper binding the model to a workload/cluster shape."""

    #: bytes initially assigned per original bucket (relation share)
    bucket_bytes: float
    #: seconds per byte on the wire
    t_w: float

    @classmethod
    def from_run(cls, relation_bytes: int, original_buckets: int,
                 cost: CostModel) -> OverheadModel:
        return cls(
            bucket_bytes=relation_bytes / original_buckets,
            t_w=1.0 / cost.net_bandwidth,
        )

    def split_s(self, expansion: float) -> float:
        return split_overhead_s(self.bucket_bytes, expansion, self.t_w)

    def hybrid_s(self, expansion: float) -> float:
        return hybrid_overhead_s(self.bucket_bytes, expansion, self.t_w)

    def crossover_expansion(self) -> float:
        """Expansion factor above which the split overhead exceeds the
        hybrid overhead: solve log2(E)/2 = (E-1)/E numerically."""
        lo, hi = 1.0 + 1e-9, 2.0
        # f(E) = log2(E)/2 - (E-1)/E; f(1+) < 0, find sign change upward
        def f(e: float) -> float:
            return math.log2(e) / 2.0 - (e - 1.0) / e
        while f(hi) < 0:
            hi *= 2.0
            if hi > 1e9:  # pragma: no cover - defensive
                raise RuntimeError("no crossover found")
        for _ in range(200):
            mid = (lo + hi) / 2.0
            if f(mid) < 0:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2.0

    def predicted_tuples_moved_split(self, relation_tuples: int, expansion: float) -> float:
        """Paper's asymptotic split traffic in tuples (B = final bucket
        content): each original bucket transfers half of itself once per
        doubling round."""
        if expansion <= 1:
            return 0.0
        return math.log2(expansion) * relation_tuples / 2.0

    def predicted_tuples_moved_hybrid(self, relation_tuples: int, expansion: float) -> float:
        """Model's total reshuffle traffic in tuples: the fraction of
        tuples whose final owner differs from where they were built."""
        return ((expansion - 1.0) / expansion) * relation_tuples


def split_moved_capacity_model(n_splits: int, capacity_tuples: int) -> float:
    """Measured-granularity split-traffic prediction.

    §4.2.4 defines B as "the bucket size" — at split time a bucket holds at
    most the node's memory capacity, and each split ships half of it, so a
    run with ``n_splits = F - O`` completed splits moves at most
    ``n_splits * capacity / 2`` tuples.  This is the form the measured
    transfer volumes are validated against (the asymptotic log2 form above
    over-counts when splits trigger at capacity rather than at the end of
    the build, which is exactly what the expanding algorithms do).
    """
    if n_splits < 0 or capacity_tuples < 0:
        raise ValueError("negative inputs")
    return n_splits * capacity_tuples / 2.0
