"""ASCII report tables for benchmark output and EXPERIMENTS.md.

Each figure bench produces a :class:`FigureReport` — the series the paper
plots, plus the qualitative 'shape checks' derived from the paper's text
(who wins, what converges, what explodes).  The benches assert the checks;
EXPERIMENTS.md records the numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

__all__ = ["FigureReport", "ShapeCheck", "format_table"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain fixed-width table (no external deps)."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for k, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if k == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.1f}"
    return str(v)


@dataclass
class ShapeCheck:
    """One qualitative expectation from the paper's text."""

    description: str
    passed: bool

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.description}"


@dataclass
class FigureReport:
    """One reproduced figure: identity, data table, shape checks."""

    figure: str
    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    checks: list[ShapeCheck] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def check(self, description: str, predicate: bool) -> None:
        self.checks.append(ShapeCheck(description, bool(predicate)))

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def render(self) -> str:
        out = [f"== {self.figure}: {self.title} =="]
        out.append(format_table(self.headers, self.rows))
        for c in self.checks:
            out.append(str(c))
        for n in self.notes:
            out.append(f"note: {n}")
        return "\n".join(out)

    def to_csv(self) -> str:
        """Comma-separated table (for plotting tools); checks/notes omitted."""
        import csv
        import io

        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buf.getvalue()

    def to_markdown(self) -> str:
        """Markdown block for EXPERIMENTS.md."""
        out = [f"### {self.figure}: {self.title}", ""]
        out.append("| " + " | ".join(self.headers) + " |")
        out.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            out.append("| " + " | ".join(_fmt(c) for c in row) + " |")
        out.append("")
        for c in self.checks:
            out.append(f"- {c}")
        for n in self.notes:
            out.append(f"- note: {n}")
        out.append("")
        return "\n".join(out)
