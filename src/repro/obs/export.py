"""Trace and metrics export: JSONL and Chrome ``trace_event`` JSON.

The Chrome format (one JSON object with a ``traceEvents`` list) loads
directly into ``chrome://tracing`` or https://ui.perfetto.dev.  Simulated
seconds are exported as microseconds (the format's native unit), so a
2.4-second simulated run renders as a 2.4 s timeline.

Everything here is duck-typed: ``chrome_trace`` accepts any object with
``timeline`` (:class:`~repro.obs.timeline.PhaseTimeline`) and optionally
``tracer`` (an object with ``records``) attributes — in practice a
``JoinRunResult`` — keeping this package import-cycle free.
"""

from __future__ import annotations

import json
import re
from collections.abc import Iterable, Iterator
from typing import Any

from .timeline import SCHEDULER_TRACK, PhaseTimeline

__all__ = ["trace_to_jsonl", "metrics_to_jsonl", "chrome_trace"]

_SECONDS_TO_US = 1e6

_TRACK_RE = re.compile(r"^([a-z]+)(\d+)$")


def _json_default(obj: Any) -> Any:
    """Fallback encoder for numpy scalars/arrays and other odd values."""
    if hasattr(obj, "item"):
        return obj.item()
    if hasattr(obj, "tolist"):
        return obj.tolist()
    return str(obj)


def _dumps(obj: Any) -> str:
    return json.dumps(obj, default=_json_default)


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def trace_to_jsonl(tracer: Any) -> Iterator[str]:
    """One JSON object per :class:`~repro.sim.trace.TraceRecord` line.

    Keys: ``t`` (simulated seconds), ``category``, ``actor``, ``detail``.
    """
    for r in tracer.records:
        yield _dumps({
            "t": r.time,
            "category": r.category,
            "actor": r.actor,
            "detail": r.detail,
        })


def metrics_to_jsonl(snapshot: Iterable[dict[str, Any]]) -> Iterator[str]:
    """One JSON object per instrument (see ``MetricsRegistry.snapshot``)."""
    for inst in snapshot:
        yield _dumps(inst)


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
def _track_sort_key(track: str) -> tuple[int, str, int]:
    """Scheduler first, then actors grouped by role in numeric order."""
    if track == SCHEDULER_TRACK:
        return (0, "", 0)
    m = _TRACK_RE.match(track)
    if m:
        return (1, m.group(1), int(m.group(2)))
    return (2, track, 0)


def chrome_trace(result: Any) -> dict[str, Any]:
    """Build a Chrome ``trace_event`` document from a run result.

    Emits one thread (track) per actor: complete events (``ph: "X"``) for
    every timeline span — the scheduler's phase spans plus per-node
    build/probe/split/reshuffle/ooc spans — instant events (``ph: "i"``)
    for every collected trace record, and flow events (``ph: "s"``/``"f"``)
    for every delivered causal message edge, drawn as arrows between
    sender and receiver tracks in Perfetto.  Flow events bind by ``id``
    (the causal edge id) and carry the edge's ``parent`` provenance in
    ``args``, so the on-screen arrows are the causal DAG.
    """
    timeline: PhaseTimeline | None = getattr(result, "timeline", None)
    tracer = getattr(result, "tracer", None)
    causal = getattr(result, "causal", None)
    edges = list(causal.edges) if causal is not None else []
    if timeline is None:
        timeline = PhaseTimeline()

    tracks = list(timeline.tracks())
    if tracer is not None:
        for r in tracer.records:
            if r.actor not in tracks:
                tracks.append(r.actor)
    for e in edges:
        for track in (e.src, e.dst):
            if track not in tracks:
                tracks.append(track)
    tracks.sort(key=_track_sort_key)
    tids = {track: i for i, track in enumerate(tracks)}

    events: list[dict[str, Any]] = [
        {
            "ph": "M", "pid": 0, "tid": 0, "name": "process_name",
            "args": {"name": "repro simulated join"},
        },
    ]
    for track, tid in tids.items():
        events.append({
            "ph": "M", "pid": 0, "tid": tid, "name": "thread_name",
            "args": {"name": track},
        })

    for span in timeline.spans:
        events.append({
            "ph": "X",
            "pid": 0,
            "tid": tids[span.track],
            "ts": span.t0 * _SECONDS_TO_US,
            "dur": span.duration * _SECONDS_TO_US,
            "name": span.name,
            "cat": "phase" if span.track == SCHEDULER_TRACK else "node",
            "args": dict(span.args),
        })

    if tracer is not None:
        for r in tracer.records:
            events.append({
                "ph": "i",
                "pid": 0,
                "tid": tids[r.actor],
                "ts": r.time * _SECONDS_TO_US,
                "name": r.category,
                "s": "t",
                "args": dict(r.detail),
            })

    for e in edges:
        if not e.delivered:
            continue
        args = {
            "edge": e.eid,
            "parent": e.parent,
            "kind": e.kind,
            "hop": e.hop,
            "nbytes": e.nbytes,
            "attempts": e.attempts,
        }
        common = {"pid": 0, "name": e.msg_type, "cat": "causal", "id": e.eid}
        events.append({
            "ph": "s", "tid": tids[e.src],
            "ts": e.t_send * _SECONDS_TO_US, "args": args, **common,
        })
        events.append({
            "ph": "f", "bp": "e", "tid": tids[e.dst],
            "ts": e.t_deliver * _SECONDS_TO_US, "args": args, **common,
        })

    doc: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"tool": "repro", "time_unit": "simulated seconds x 1e6"},
    }
    config = getattr(result, "config", None)
    if config is not None:
        doc["otherData"]["algorithm"] = getattr(
            getattr(config, "algorithm", None), "value", None
        )
    # Round-trip through the tolerant encoder so numpy scalars in span/trace
    # args can't make the document unserializable for callers using a plain
    # json.dump.
    return json.loads(_dumps(doc))
