"""Run timelines: named spans on per-actor tracks.

Actors record :class:`Span` entries ("join3 ran its build phase from
t=0.01 to t=2.4", "join5 shipped a split from t=1.1 to t=1.3") into a
shared :class:`SpanLog`.  The driver folds them — together with the
scheduler's phase boundaries — into a :class:`PhaseTimeline` attached to
``JoinRunResult``, which renders as a report and feeds the Chrome
``trace_event`` exporter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Span", "SpanLog", "PhaseTimeline"]

#: track name used for the run-wide phase spans
SCHEDULER_TRACK = "scheduler"

#: span names the scheduler track uses, in phase order
PHASE_NAMES = ("build", "reshuffle", "probe", "ooc")


@dataclass(frozen=True)
class Span:
    """A named closed interval on one actor's track."""

    track: str
    name: str
    t0: float
    t1: float
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def cells(self) -> tuple[str, str, str, str, str]:
        """Column cells for tabular rendering (no padding applied)."""
        kv = " ".join(f"{k}={v}" for k, v in self.args.items())
        return (self.track, self.name,
                f"[{self.t0:.6f}, {self.t1:.6f}]",
                f"dur={self.duration:.6f}", kv)

    def __str__(self) -> str:
        return " ".join(self.cells()).rstrip()


class SpanLog:
    """Append-only collection of spans, in recording order."""

    def __init__(self) -> None:
        self.spans: list[Span] = []

    def add(self, track: str, name: str, t0: float, t1: float,
            **args: Any) -> Span:
        if t1 < t0:
            raise ValueError(f"span {name!r} ends before it starts")
        span = Span(track, name, t0, t1, args)
        self.spans.append(span)
        return span

    def for_track(self, track: str) -> list[Span]:
        return [s for s in self.spans if s.track == track]

    def __len__(self) -> int:
        return len(self.spans)


@dataclass
class PhaseTimeline:
    """Everything that happened, when, on which node.

    ``spans`` holds the scheduler's phase spans (track ``"scheduler"``,
    names ``build``/``reshuffle``/``probe``/``ooc``) plus every per-node
    span the actors recorded (``build``, ``probe``, ``split``,
    ``reshuffle``, ``ooc`` on tracks ``join<N>``).
    """

    spans: list[Span] = field(default_factory=list)

    def phase_spans(self) -> list[Span]:
        """The run-wide phase spans, in phase order."""
        by_name = {s.name: s for s in self.spans if s.track == SCHEDULER_TRACK}
        return [by_name[n] for n in PHASE_NAMES if n in by_name]

    def tracks(self) -> list[str]:
        """All track names, scheduler first, then actors in name order."""
        seen = {s.track for s in self.spans}
        rest = sorted(t for t in seen if t != SCHEDULER_TRACK)
        return ([SCHEDULER_TRACK] if SCHEDULER_TRACK in seen else []) + rest

    def for_track(self, track: str) -> list[Span]:
        return sorted(
            (s for s in self.spans if s.track == track),
            key=lambda s: (s.t0, s.t1),
        )

    @property
    def end(self) -> float:
        return max((s.t1 for s in self.spans), default=0.0)

    def render(self) -> str:
        """Human-readable phase report: one line per span, per track,
        columns padded to the widest cell (not hard-coded widths)."""
        rows = [
            span.cells()
            for track in self.tracks()
            for span in self.for_track(track)
        ]
        if not rows:
            return ""
        widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
        return "\n".join(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
            for row in rows
        )
