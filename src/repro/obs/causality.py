"""Causal message log: the run's send -> deliver DAG.

Flat spans and counters say *what* happened; causality says *why*.  Every
network send is recorded as a :class:`MessageEdge` carrying a ``parent``
provenance tag — the edge of the message its sender was processing when it
sent — so a run yields a causal DAG of message edges (Dapper-style) that
the critical-path analysis (:mod:`repro.obs.critpath`) and the Chrome
trace's flow events are computed from.

Capture points (all duck-typed, wired by ``RunContext``):

* ``Network.send`` calls :meth:`CausalLog.on_send` before its first yield,
  so the sending actor's *current cause* is read synchronously, and
  :meth:`CausalLog.on_attempt` on every fault-injected retransmission.
* ``Network._deliver`` calls :meth:`CausalLog.on_deliver` just before the
  mailbox deposit.
* Every node mailbox's ``deq_probe`` hook calls
  :meth:`CausalLog.note_dequeue` when an actor takes a message out, which
  updates that actor's current cause — actors are single-threaded state
  machines with at most one pending ``get()``, so dequeue order equals
  processing order and the per-actor cause is exact.
* Actors that send *asynchronously* (spawned transfer processes) capture
  :meth:`CausalLog.cause_of` at spawn time and pass it as an explicit
  ``parent``, because their main loop keeps dequeuing concurrently.

Like the rest of ``repro.obs`` this module imports nothing from the rest
of ``repro``: messages are duck-typed (``kind``, ``nbytes``, optional
``hop``/``tuples``) and node names are translated to track names through a
plain alias dict supplied at construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

__all__ = ["MessageEdge", "CausalLog"]


@dataclass
class MessageEdge:
    """One network message: a timed edge of the causal DAG."""

    eid: int
    src: str
    dst: str
    kind: str
    msg_type: str
    hop: str | None
    nbytes: int
    tuples: int
    t_send: float
    t_deliver: float = math.nan
    #: wire transmissions of this logical message (1 + retransmissions)
    attempts: int = 1
    #: eid of the edge whose delivery caused this send (None for roots)
    parent: int | None = None

    @property
    def delivered(self) -> bool:
        return self.t_deliver == self.t_deliver  # not NaN

    @property
    def wire_s(self) -> float:
        """Send-to-deliver latency (NaN while in flight)."""
        return self.t_deliver - self.t_send

    def to_dict(self) -> dict[str, Any]:
        return {
            "eid": self.eid,
            "src": self.src,
            "dst": self.dst,
            "kind": self.kind,
            "msg_type": self.msg_type,
            "hop": self.hop,
            "nbytes": self.nbytes,
            "tuples": self.tuples,
            "t_send": self.t_send,
            "t_deliver": self.t_deliver if self.delivered else None,
            "attempts": self.attempts,
            "parent": self.parent,
        }


class CausalLog:
    """Append-only log of message edges plus per-actor cause tracking."""

    def __init__(self, aliases: dict[str, str] | None = None) -> None:
        self.edges: list[MessageEdge] = []
        self._aliases = dict(aliases or {})
        #: actor (track name) -> eid of the message it last dequeued
        self._cause: dict[str, int] = {}
        #: id(message) -> eid, from delivery until the actor dequeues it
        self._pending: dict[int, int] = {}

    def alias(self, raw: str) -> str:
        """Translate a node name to its track name (identity if unknown)."""
        return self._aliases.get(raw, raw)

    def __len__(self) -> int:
        return len(self.edges)

    # ------------------------------------------------------------------
    # network hooks
    # ------------------------------------------------------------------
    def on_send(self, src: str, dst: str, message: Any, t: float,
                parent: int | None = None) -> MessageEdge:
        """Record a send; must run before the sender's first yield so the
        per-actor cause is still the message being processed."""
        if parent is None:
            parent = self._cause.get(self.alias(src))
        edge = MessageEdge(
            eid=len(self.edges),
            src=self.alias(src),
            dst=self.alias(dst),
            kind=message.kind,
            msg_type=type(message).__name__,
            hop=getattr(message, "hop", None),
            nbytes=int(message.nbytes),
            tuples=int(getattr(message, "tuples", 0) or 0),
            t_send=t,
            parent=parent,
        )
        self.edges.append(edge)
        return edge

    def on_attempt(self, edge: MessageEdge) -> None:
        """Count one retransmission of an already-recorded edge."""
        edge.attempts += 1

    def on_deliver(self, edge: MessageEdge, message: Any, t: float) -> None:
        """Stamp the delivery time; must run before the mailbox deposit so
        an immediate hand-off to a waiting getter finds the edge."""
        edge.t_deliver = t
        self._pending[id(message)] = edge.eid

    # ------------------------------------------------------------------
    # actor hooks
    # ------------------------------------------------------------------
    def note_dequeue(self, actor: str, message: Any) -> None:
        """An actor took ``message`` out of its mailbox: it becomes the
        actor's current cause (locally-originated messages are no-ops)."""
        eid = self._pending.pop(id(message), None)
        if eid is not None:
            self._cause[self.alias(actor)] = eid

    def cause_of(self, actor: str) -> int | None:
        """The eid of the message ``actor`` is currently processing."""
        return self._cause.get(self.alias(actor))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def edge(self, eid: int) -> MessageEdge:
        return self.edges[eid]

    def children(self, eid: int) -> list[MessageEdge]:
        """Edges sent while processing edge ``eid``."""
        return [e for e in self.edges if e.parent == eid]

    def roots(self) -> list[MessageEdge]:
        """Edges with no recorded cause (the run's spontaneous sends)."""
        return [e for e in self.edges if e.parent is None]

    def request_pairs(
        self, request_type: str, response_type: str
    ) -> list[tuple[MessageEdge, MessageEdge]]:
        """Matched request -> response edge pairs, e.g. the recruitment
        handshake ``("ActivateJoin", "ActivateAck")``: a response pairs
        with a request when the request's delivery caused the response."""
        out: list[tuple[MessageEdge, MessageEdge]] = []
        for e in self.edges:
            if e.msg_type != response_type or e.parent is None:
                continue
            p = self.edges[e.parent]
            if p.msg_type == request_type:
                out.append((p, e))
        return out

    def retransmitted(self) -> list[MessageEdge]:
        """Edges that needed more than one wire transmission."""
        return [e for e in self.edges if e.attempts > 1]

    def to_dicts(self) -> list[dict[str, Any]]:
        return [e.to_dict() for e in self.edges]
