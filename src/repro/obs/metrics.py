"""Metric instruments and the per-run registry.

Three instrument kinds cover everything the simulator needs to report:

* :class:`Counter` — monotonically increasing totals (bytes sent, chunks
  processed, relief cycles).
* :class:`Gauge` — a sampled value with a bounded ``(time, value)``
  timeline plus high/low-water marks (memory usage, relief latencies).
* :class:`TimeWeightedHistogram` — how long a quantity *stayed* at each
  level, bucketed (mailbox queue depths: a queue that is 50 deep for one
  microsecond is very different from one that is 5 deep for a second).

Instruments are addressed by ``(name, labels)``; the registry memoizes
them, so publishing sites can call ``registry.counter(...)`` every time
or hold on to the instrument — both are cheap.  All timestamps come from
the registry's ``clock`` (wired to ``Simulator.now`` in a run).
"""

from __future__ import annotations

import json
from collections import deque
from collections.abc import Callable, Iterable
from typing import Any

__all__ = ["Counter", "Gauge", "TimeWeightedHistogram", "MetricsRegistry"]

#: default bound on gauge timelines (old samples are evicted FIFO; the
#: high/low-water marks and the last value are exact regardless)
DEFAULT_TIMELINE_SAMPLES = 4096

#: default bucket upper bounds for time-weighted histograms (the last
#: bucket is open-ended)
DEFAULT_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64, 128)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, value: float = 1) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += value

    def as_dict(self) -> dict[str, Any]:
        return {
            "type": "counter",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """A sampled value with a bounded timeline and watermark tracking."""

    __slots__ = ("name", "labels", "timeline", "last", "high", "low", "samples")

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        max_samples: int = DEFAULT_TIMELINE_SAMPLES,
    ):
        self.name = name
        self.labels = labels
        #: bounded (time, value) history, oldest evicted first
        self.timeline: deque[tuple[float, float]] = deque(maxlen=max_samples)
        self.last: float | None = None
        self.high: float | None = None
        self.low: float | None = None
        self.samples = 0

    def set(self, time: float, value: float) -> None:
        self.timeline.append((time, value))
        self.last = value
        self.samples += 1
        if self.high is None or value > self.high:
            self.high = value
        if self.low is None or value < self.low:
            self.low = value

    def mean(self) -> float:
        """Arithmetic mean over the retained timeline samples."""
        if not self.timeline:
            return 0.0
        return sum(v for _, v in self.timeline) / len(self.timeline)

    def as_dict(self) -> dict[str, Any]:
        return {
            "type": "gauge",
            "name": self.name,
            "labels": dict(self.labels),
            "last": self.last,
            "high": self.high,
            "low": self.low,
            "samples": self.samples,
            "mean": self.mean(),
        }


class TimeWeightedHistogram:
    """Duration spent at each value level, bucketed by upper bounds.

    ``observe(t, v)`` closes the interval since the previous observation
    and charges it to the previous value's bucket; call :meth:`close` at
    end of run to flush the final interval.
    """

    __slots__ = (
        "name", "labels", "bounds", "bucket_seconds",
        "_last_t", "_last_v", "high", "weighted_sum", "total_seconds",
    )

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        bounds: Iterable[float] = DEFAULT_BUCKETS,
    ):
        self.name = name
        self.labels = labels
        self.bounds = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        #: seconds spent at a level <= bounds[i]; [-1] is the overflow bucket
        self.bucket_seconds = [0.0] * (len(self.bounds) + 1)
        self._last_t: float | None = None
        self._last_v: float = 0.0
        self.high: float = 0.0
        self.weighted_sum = 0.0
        self.total_seconds = 0.0

    def _bucket_of(self, value: float) -> int:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                return i
        return len(self.bounds)

    def observe(self, time: float, value: float) -> None:
        if self._last_t is not None and time > self._last_t:
            held = time - self._last_t
            self.bucket_seconds[self._bucket_of(self._last_v)] += held
            self.weighted_sum += self._last_v * held
            self.total_seconds += held
        self._last_t = time
        self._last_v = value
        if value > self.high:
            self.high = value

    def close(self, time: float) -> None:
        """Flush the interval from the last observation up to ``time``."""
        self.observe(time, self._last_v)

    def time_weighted_mean(self) -> float:
        if self.total_seconds == 0.0:
            return 0.0
        return self.weighted_sum / self.total_seconds

    def as_dict(self) -> dict[str, Any]:
        buckets = {}
        for i, bound in enumerate(self.bounds):
            if self.bucket_seconds[i]:
                buckets[f"le_{bound:g}"] = self.bucket_seconds[i]
        if self.bucket_seconds[-1]:
            buckets["overflow"] = self.bucket_seconds[-1]
        return {
            "type": "histogram",
            "name": self.name,
            "labels": dict(self.labels),
            "high": self.high,
            "time_weighted_mean": self.time_weighted_mean(),
            "total_seconds": self.total_seconds,
            "bucket_seconds": buckets,
        }


class MetricsRegistry:
    """One registry per run; every subsystem publishes into it.

    The ``clock`` callable supplies timestamps (``lambda: sim.now`` in a
    simulation); instruments are memoized by ``(name, labels)``.
    """

    def __init__(self, clock: Callable[[], float] | None = None):
        self.clock: Callable[[], float] = clock or (lambda: 0.0)
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], TimeWeightedHistogram] = {}

    # ------------------------------------------------------------------
    # instrument access (memoized)
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter(name, key[1])
        return inst

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge(name, key[1])
        return inst

    def histogram(
        self,
        name: str,
        bounds: Iterable[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> TimeWeightedHistogram:
        key = (name, _label_key(labels))
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = TimeWeightedHistogram(
                name, key[1], bounds
            )
        return inst

    # ------------------------------------------------------------------
    # convenience publishers
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        self.counter(name, **labels).inc(value)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        self.gauge(name, **labels).set(self.clock(), value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        self.histogram(name, **labels).observe(self.clock(), value)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush open histogram intervals up to the current clock time."""
        now = self.clock()
        for hist in self._histograms.values():
            hist.close(now)

    def instruments(self) -> list[Any]:
        """All instruments, counters first, in name order."""
        def order(inst: Any) -> tuple[str, LabelKey]:
            return (inst.name, inst.labels)

        return (
            sorted(self._counters.values(), key=order)
            + sorted(self._gauges.values(), key=order)
            + sorted(self._histograms.values(), key=order)
        )

    def snapshot(self) -> list[dict[str, Any]]:
        """Export every instrument as a plain-dict list (JSON-safe)."""
        return [inst.as_dict() for inst in self.instruments()]

    def to_jsonl(self) -> str:
        """One JSON object per instrument, one per line."""
        return "\n".join(json.dumps(d) for d in self.snapshot())

    def find(self, name: str, **labels: Any) -> Any | None:
        """Look up an existing instrument without creating it."""
        key = (name, _label_key(labels))
        for table in (self._counters, self._gauges, self._histograms):
            if key in table:
                return table[key]
        return None
