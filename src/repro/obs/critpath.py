"""Critical-path extraction and the ``repro explain`` bottleneck report.

The makespan of a run is tiled, end to start, by a chain of *segments*:

* **node** segments — per-node activity spans from the timeline
  (``build``/``probe``/``split``/``reshuffle``/``ooc`` on ``join<N>``
  tracks);
* **message** segments — ``send -> deliver`` wire edges from the causal
  log (:mod:`repro.obs.causality`), attributed to the *receiving* track;
* **wait** segments — synthetic gaps where nothing recorded was running
  (scheduler decision latency, mailbox idling), attributed to the
  scheduler phase that contains them.

The extraction is a backward sweep: starting from the makespan, repeatedly
pick the segment that is active at the current frontier and reaches back
earliest, clip it to the frontier, and jump to its start; gaps become wait
segments.  Because the path tiles ``[0, makespan]`` exactly, the step
durations sum to the makespan by construction — the acceptance invariant
``sum(step.duration) == makespan`` (within float noise) holds for every
algorithm and fault plan.

:func:`explain` packages the path into an :class:`ExplainReport` with
ranked bottlenecks, per-node busy/idle/blocked utilization, and per-phase
skew (max/mean tuple and byte imbalance across receiving join nodes).
Everything is duck-typed off ``JoinRunResult`` attributes (``timeline``,
``causal``, ``utilization``, ``comm``, ``times``, ``config``) so this
module keeps the ``repro.obs`` no-upward-imports rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .causality import MessageEdge
from .timeline import SCHEDULER_TRACK, Span

__all__ = ["PathStep", "ExplainReport", "critical_path", "explain"]


@dataclass(frozen=True)
class PathStep:
    """One clipped segment of the critical path."""

    kind: str  # "node" | "message" | "wait"
    track: str
    name: str
    t0: float
    t1: float
    detail: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "track": self.track,
            "name": self.name,
            "t0": self.t0,
            "t1": self.t1,
            "duration_s": self.duration,
            **({"detail": self.detail} if self.detail else {}),
        }


@dataclass(frozen=True)
class _Seg:
    kind: str
    track: str
    name: str
    t0: float
    t1: float
    detail: dict[str, Any]


def _segments(spans: list[Span], edges: list[MessageEdge]) -> list[_Seg]:
    segs = [
        _Seg("node", s.track, s.name, s.t0, s.t1, dict(s.args))
        for s in spans
        if s.track != SCHEDULER_TRACK and s.t1 > s.t0
    ]
    for e in edges:
        if e.delivered and e.t_deliver > e.t_send:
            segs.append(_Seg(
                "message", e.dst, f"net:{e.msg_type}", e.t_send, e.t_deliver,
                {"src": e.src, "hop": e.hop, "nbytes": e.nbytes, "eid": e.eid},
            ))
    return segs


def critical_path(
    spans: list[Span],
    edges: list[MessageEdge],
    makespan: float,
    phase_spans: list[Span] | None = None,
) -> list[PathStep]:
    """Tile ``[0, makespan]`` with the chain of segments that gated the end
    of the run, earliest first.  Gaps covered by no recorded activity
    become ``wait`` steps named after the enclosing scheduler phase."""
    if makespan <= 0.0:
        return []
    eps = makespan * 1e-9 + 1e-12
    phases = list(phase_spans or [])

    def phase_at(t: float) -> str:
        for p in phases:
            if p.t0 - eps <= t <= p.t1 + eps:
                return p.name
        return "idle"

    # Sorted by end time, descending: segments become candidates as the
    # frontier sweeps backward past their end.
    todo = sorted(_segments(spans, edges), key=lambda s: (-s.t1, s.t0))
    pool: list[_Seg] = []
    i = 0
    frontier = makespan
    path: list[PathStep] = []
    while frontier > eps:
        while i < len(todo) and todo[i].t1 >= frontier - eps:
            pool.append(todo[i])
            i += 1
        cands = [s for s in pool if s.t0 < frontier - eps]
        if cands:
            # Deterministic pick: reaches back earliest, then stable keys.
            best = min(cands, key=lambda s: (s.t0, s.track, s.name, s.kind))
            path.append(PathStep(
                best.kind, best.track, best.name,
                max(best.t0, 0.0), frontier, best.detail,
            ))
            frontier = max(best.t0, 0.0)
            # Segments starting at/after the new frontier can never again
            # reach back past it; drop them so the sweep stays near-linear.
            pool = [s for s in pool if s.t0 < frontier - eps]
        else:
            prev_end = max(
                (s.t1 for s in todo[i:] if s.t1 < frontier - eps),
                default=0.0,
            )
            prev_end = max(prev_end, 0.0)
            mid = (prev_end + frontier) / 2.0
            path.append(PathStep(
                "wait", SCHEDULER_TRACK, f"wait:{phase_at(mid)}",
                prev_end, frontier, {},
            ))
            frontier = prev_end
    path.reverse()
    return path


# ----------------------------------------------------------------------
# report assembly
# ----------------------------------------------------------------------
@dataclass
class ExplainReport:
    """Ranked bottleneck report for one run (text and JSON renderable)."""

    algorithm: str | None
    makespan_s: float
    path: list[PathStep]
    #: path seconds aggregated by (track, name), ranked by share
    bottlenecks: list[dict[str, Any]]
    #: per-node {track, role, active, busy, idle, blocked, cpu, tx, rx, disk}
    nodes: list[dict[str, Any]]
    #: per-phase duration/share/top critical contributor/skew numbers
    phases: list[dict[str, Any]]
    #: probe replica broadcast stats ({} when the run had none)
    probe_broadcast: dict[str, Any]
    #: causal-log edge totals
    messages: dict[str, Any]

    @property
    def path_total_s(self) -> float:
        return sum(s.duration for s in self.path)

    def to_dict(self) -> dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "makespan_s": self.makespan_s,
            "critical_path_total_s": self.path_total_s,
            "critical_path": [s.to_dict() for s in self.path],
            "bottlenecks": self.bottlenecks,
            "nodes": self.nodes,
            "phases": self.phases,
            "probe_broadcast": self.probe_broadcast,
            "messages": self.messages,
        }

    def to_text(self) -> str:
        lines = [
            f"critical path: {len(self.path)} segments covering "
            f"{self.path_total_s:.6f}s of a {self.makespan_s:.6f}s makespan"
            + (f" [{self.algorithm}]" if self.algorithm else ""),
            "",
            "ranked bottlenecks (critical-path seconds by track/activity):",
        ]
        for rank, b in enumerate(self.bottlenecks, start=1):
            lines.append(
                f"  {rank:2d}. {b['track']:<10} {b['name']:<18} "
                f"{b['seconds']:10.6f}s  {b['share']:6.1%}  "
                f"({b['steps']} segment{'s' if b['steps'] != 1 else ''})"
            )
        if self.probe_broadcast:
            pb = self.probe_broadcast
            lines += [
                "",
                "probe broadcast: "
                f"{pb['dup_tuples']} duplicate of {pb['probe_tuples']} probe "
                f"tuples (replica amplification {pb['dup_share']:.1%})",
            ]
        if self.phases:
            lines += ["", "phases (duration, top critical contributor, skew):"]
            for ph in self.phases:
                skew = ph.get("tuple_skew")
                skew_txt = (f" tuple-skew={skew:.2f}x" if skew else "")
                bskew = ph.get("byte_skew")
                skew_txt += (f" byte-skew={bskew:.2f}x" if bskew else "")
                lines.append(
                    f"  {ph['name']:<10} {ph['seconds']:10.6f}s "
                    f"({ph['share']:6.1%})  top={ph['top']}" + skew_txt
                )
        if self.nodes:
            lines += ["", "nodes (active/busy/idle/blocked fractions):"]
            for n in self.nodes:
                lines.append(
                    f"  {n['track']:<10} active={n['active']:6.1%} "
                    f"busy={n['busy']:6.1%} idle={n['idle']:6.1%} "
                    f"blocked={n['blocked']:6.1%}"
                )
        return "\n".join(lines)


def _union_length(intervals: list[tuple[float, float]]) -> float:
    """Total length of the union of closed intervals."""
    total = 0.0
    end = float("-inf")
    for t0, t1 in sorted(intervals):
        if t1 <= end:
            continue
        total += t1 - max(t0, end)
        end = t1
    return total


def _overlap(t0: float, t1: float, lo: float, hi: float) -> float:
    return max(0.0, min(t1, hi) - max(t0, lo))


def _rank_bottlenecks(
    path: list[PathStep], makespan: float
) -> list[dict[str, Any]]:
    agg: dict[tuple[str, str], dict[str, Any]] = {}
    for step in path:
        key = (step.track, step.name)
        slot = agg.setdefault(
            key,
            {"track": step.track, "name": step.name, "kind": step.kind,
             "seconds": 0.0, "steps": 0},
        )
        slot["seconds"] += step.duration
        slot["steps"] += 1
    ranked = sorted(
        agg.values(),
        key=lambda b: (-b["seconds"], b["track"], b["name"]),
    )
    for b in ranked:
        b["share"] = b["seconds"] / makespan if makespan else 0.0
    return ranked


def _node_report(
    utilization: list[Any], spans: list[Span], makespan: float
) -> list[dict[str, Any]]:
    by_track: dict[str, list[tuple[float, float]]] = {}
    for s in spans:
        if s.track != SCHEDULER_TRACK:
            by_track.setdefault(s.track, []).append((s.t0, s.t1))
    out = []
    for u in utilization:
        track = getattr(u, "track", "") or f"{u.role}{u.node}"
        # "active" counts span coverage (the node had work in hand);
        # "busy" is the hottest hardware resource; the gap between the two
        # is time spent blocked on something else (credits, mailbox, peers).
        active = min(
            1.0, _union_length(by_track.get(track, [])) / makespan
        ) if makespan else 0.0
        busy = max(u.cpu, u.tx, u.rx, u.disk)
        out.append({
            "track": track,
            "role": u.role,
            "node": u.node,
            "active": active,
            "busy": busy,
            "idle": max(0.0, 1.0 - active),
            "blocked": max(0.0, active - busy),
            "cpu": u.cpu, "tx": u.tx, "rx": u.rx, "disk": u.disk,
        })
    return out


def _phase_report(
    phase_spans: list[Span],
    path: list[PathStep],
    edges: list[MessageEdge],
    makespan: float,
) -> list[dict[str, Any]]:
    out = []
    for p in phase_spans:
        # Top critical-path contributor inside this phase window.
        contrib: dict[tuple[str, str], float] = {}
        for step in path:
            ov = _overlap(step.t0, step.t1, p.t0, p.t1)
            if ov > 0.0:
                key = (step.track, step.name)
                contrib[key] = contrib.get(key, 0.0) + ov
        top = "-"
        if contrib:
            (track, name), secs = max(
                contrib.items(), key=lambda kv: (kv[1], kv[0])
            )
            top = f"{track}/{name} ({secs:.6f}s)"
        # Skew: data-plane delivery imbalance across receiving join nodes.
        tuples_by_dst: dict[str, int] = {}
        bytes_by_dst: dict[str, int] = {}
        for e in edges:
            if (e.kind == "data" and e.delivered
                    and p.t0 - 1e-12 <= e.t_deliver <= p.t1 + 1e-12
                    and e.dst.startswith("join")):
                tuples_by_dst[e.dst] = tuples_by_dst.get(e.dst, 0) + e.tuples
                bytes_by_dst[e.dst] = bytes_by_dst.get(e.dst, 0) + e.nbytes

        def skew(by_dst: dict[str, int]) -> float | None:
            vals = [v for v in by_dst.values() if v > 0]
            if not vals:
                return None
            mean = sum(vals) / len(vals)
            return max(vals) / mean if mean else None

        out.append({
            "name": p.name,
            "t0": p.t0,
            "t1": p.t1,
            "seconds": p.duration,
            "share": p.duration / makespan if makespan else 0.0,
            "top": top,
            "tuple_skew": skew(tuples_by_dst),
            "byte_skew": skew(bytes_by_dst),
            "receiving_nodes": len(tuples_by_dst),
        })
    return out


def explain(result: Any) -> ExplainReport:
    """Build the full bottleneck report from a ``JoinRunResult``."""
    timeline = getattr(result, "timeline", None)
    spans: list[Span] = list(timeline.spans) if timeline is not None else []
    phase_spans: list[Span] = (
        timeline.phase_spans() if timeline is not None else []
    )
    causal = getattr(result, "causal", None)
    edges: list[MessageEdge] = list(causal.edges) if causal is not None else []

    times = getattr(result, "times", None)
    if times is not None:
        makespan = float(times.total_s)
    elif timeline is not None:
        makespan = timeline.end
    else:
        makespan = 0.0

    path = critical_path(spans, edges, makespan, phase_spans)

    config = getattr(result, "config", None)
    algorithm = getattr(getattr(config, "algorithm", None), "value", None)

    comm = getattr(result, "comm", None)
    probe_broadcast: dict[str, Any] = {}
    if comm is not None:
        probe = int(comm.tuples_by_hop.get("probe", 0))
        dup = int(comm.tuples_by_hop.get("probe_dup", 0))
        if probe or dup:
            probe_broadcast = {
                "probe_tuples": probe,
                "dup_tuples": dup,
                "dup_share": dup / probe if probe else 0.0,
            }

    delivered = [e for e in edges if e.delivered]
    messages = {
        "edges": len(edges),
        "delivered": len(delivered),
        "retransmitted": sum(1 for e in edges if e.attempts > 1),
        "bytes": sum(e.nbytes for e in delivered),
        "roots": sum(1 for e in edges if e.parent is None),
    }

    return ExplainReport(
        algorithm=algorithm,
        makespan_s=makespan,
        path=path,
        bottlenecks=_rank_bottlenecks(path, makespan),
        nodes=_node_report(
            list(getattr(result, "utilization", []) or []), spans, makespan
        ),
        phases=_phase_report(phase_spans, path, edges, makespan),
        probe_broadcast=probe_broadcast,
        messages=messages,
    )
