"""Streaming, mergeable observability: sketches, rings, bounded logs.

Everything in this module holds **O(budget)** state no matter how many
events a run produces, and everything merges:

* :class:`QuantileSketch` — a DDSketch-style logarithmic-bucket quantile
  sketch.  For ``alpha = 0.01`` every quantile estimate is within 1%
  *relative* error of the exact order statistic at rank
  ``floor(q * (n - 1))`` (``np.percentile(..., method="lower")``).
  Merging two sketches is bucket-wise addition, so merge is associative,
  commutative and insert-order invariant — the laws the fleet layer
  (ROADMAP item 2) needs to sum shard results in any order.
* :class:`TimeSeriesRing` — a fixed-resolution ring of per-interval
  aggregates ``(count, sum, min, max, last)`` keyed by the *absolute*
  bucket index ``floor(t / resolution)``, so rings from independent
  shards align by simulated time when merged.
* :class:`ReservoirSample` — deterministic bottom-k sampling by a
  content hash (``blake2b``, never Python's salted ``hash()``), plus an
  always-keep set of the ``outliers`` heaviest records.  The retained
  set is a pure function of the *offered* set (canonical form is
  re-established after every insert), which makes it insert-order
  invariant and gives ``merge(a, b) == sample(a ∪ b)``.
* :class:`BoundedSpanLog` / :class:`BoundedCausalLog` — drop-in
  ``SpanLog`` / ``CausalLog`` replacements that keep a reservoir sample
  (weight = span duration / edge bytes) instead of every record, and
  count what they shed (``obs.spans_dropped`` / ``obs.edges_dropped``).
* :class:`Snapshot` — the frozen, JSON-stable union of counters,
  gauge/histogram summaries, sketches, rings and sampled spans.
  ``Snapshot.merge()`` is the wire contract between future fleet
  processes: associative, commutative, and byte-identical across
  repeated runs (``to_json()`` sorts keys and uses canonical floats).
* :class:`ObsBudget` — translates a ``--obs-budget`` byte budget into
  per-collector capacities with documented per-record byte estimates.
* :class:`StreamingCollector` — the per-run owner of the above, with a
  registry-to-snapshot converter used by the workload driver and the
  ``--live`` emitter.

Like the rest of ``repro.obs`` this module imports nothing from the rest
of ``repro`` and nothing beyond the stdlib.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any

from .causality import CausalLog, MessageEdge
from .timeline import Span, SpanLog

__all__ = [
    "DEFAULT_ALPHA",
    "BoundedCausalLog",
    "BoundedSpanLog",
    "ObsBudget",
    "QuantileSketch",
    "ReservoirSample",
    "Snapshot",
    "StreamingCollector",
    "TimeSeriesRing",
    "instrument_key",
    "merge_snapshots",
]

#: default sketch relative-error bound (1%)
DEFAULT_ALPHA = 0.01

#: default cap on sketch buckets per sign (collapse beyond this); at
#: alpha=0.01 each decade of dynamic range costs ~115 buckets, so 4096
#: covers ~35 decades — collapse is a pathological-input escape hatch
DEFAULT_MAX_BINS = 4096

#: values with magnitude at or below this land in the zero bucket
_MIN_TRACKABLE = 1e-12

#: unbudgeted snapshot-time defaults
DEFAULT_RING_BUCKETS = 512
DEFAULT_SPAN_SAMPLE = 256
DEFAULT_SPAN_OUTLIERS = 32

#: default ring resolution (simulated seconds per bucket)
DEFAULT_RING_RESOLUTION_S = 0.25


# ----------------------------------------------------------------------
# quantile sketch
# ----------------------------------------------------------------------
class QuantileSketch:
    """DDSketch-style mergeable quantile sketch.

    Values are binned by ``k = ceil(log_gamma(|v|))`` with
    ``gamma = (1 + alpha) / (1 - alpha)``; the estimate for bucket ``k``
    is the bucket midpoint ``2 * gamma^k / (gamma + 1)``, which is within
    ``alpha`` relative error of every value in the bucket.  Negative
    values use a mirrored bucket table; ``|v| <= 1e-12`` lands in an
    exact zero bucket.  Estimates are clamped to the observed
    ``[min, max]``, so the bound also holds at the extremes.

    ``merge`` is bucket-wise addition — associative, commutative, and
    independent of insertion order.  If a pathological input produces
    more than ``max_bins`` buckets per sign, the lowest buckets are
    collapsed upward deterministically and ``collapsed`` is set (the
    error bound then only holds above the collapse point).
    """

    __slots__ = ("alpha", "max_bins", "gamma", "_log_gamma",
                 "count", "total", "vmin", "vmax", "zero_count",
                 "_pos", "_neg", "collapsed")

    def __init__(self, alpha: float = DEFAULT_ALPHA,
                 max_bins: int = DEFAULT_MAX_BINS) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if max_bins < 2:
            raise ValueError(f"max_bins must be >= 2, got {max_bins}")
        self.alpha = alpha
        self.max_bins = max_bins
        self.gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self.gamma)
        self.count = 0
        self.total = 0.0
        self.vmin: float | None = None
        self.vmax: float | None = None
        self.zero_count = 0
        self._pos: dict[int, int] = {}
        self._neg: dict[int, int] = {}
        self.collapsed = False

    # -- ingest --------------------------------------------------------
    def _key(self, magnitude: float) -> int:
        return math.ceil(math.log(magnitude) / self._log_gamma)

    def add(self, value: float, count: int = 1) -> None:
        if not math.isfinite(value):
            raise ValueError(f"sketch value must be finite, got {value!r}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        value = float(value)
        if abs(value) <= _MIN_TRACKABLE:
            self.zero_count += count
        elif value > 0:
            k = self._key(value)
            self._pos[k] = self._pos.get(k, 0) + count
            self._collapse(self._pos)
        else:
            k = self._key(-value)
            self._neg[k] = self._neg.get(k, 0) + count
            self._collapse(self._neg)
        self.count += count
        self.total += value * count
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value

    def _collapse(self, bins: dict[int, int]) -> None:
        while len(bins) > self.max_bins:
            keys = sorted(bins)
            bins[keys[1]] += bins.pop(keys[0])
            self.collapsed = True

    # -- merge ---------------------------------------------------------
    def merge(self, other: QuantileSketch) -> QuantileSketch:
        """Bucket-wise sum of two sketches (same ``alpha``/``max_bins``)."""
        if (self.alpha, self.max_bins) != (other.alpha, other.max_bins):
            raise ValueError(
                "cannot merge sketches with different parameters: "
                f"alpha {self.alpha} vs {other.alpha}, "
                f"max_bins {self.max_bins} vs {other.max_bins}"
            )
        out = QuantileSketch(self.alpha, self.max_bins)
        for src in (self, other):
            for k, c in src._pos.items():
                out._pos[k] = out._pos.get(k, 0) + c
            for k, c in src._neg.items():
                out._neg[k] = out._neg.get(k, 0) + c
            out.zero_count += src.zero_count
            out.count += src.count
            out.total += src.total
            if src.vmin is not None and (out.vmin is None or src.vmin < out.vmin):
                out.vmin = src.vmin
            if src.vmax is not None and (out.vmax is None or src.vmax > out.vmax):
                out.vmax = src.vmax
            out.collapsed = out.collapsed or src.collapsed
        out._collapse(out._pos)
        out._collapse(out._neg)
        return out

    # -- query ---------------------------------------------------------
    def _estimate(self, key: int) -> float:
        return 2.0 * self.gamma ** key / (self.gamma + 1.0)

    def _clamp(self, value: float) -> float:
        assert self.vmin is not None and self.vmax is not None
        return min(max(value, self.vmin), self.vmax)

    def quantile(self, q: float) -> float:
        """Estimate the order statistic at rank ``floor(q * (count-1))``.

        Returns 0.0 on an empty sketch.  The estimate is within
        ``alpha`` relative error of the exact rank value (unless
        ``collapsed``).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = math.floor(q * (self.count - 1))
        cum = 0
        # ascending value order: most-negative first (largest |v| key)
        for k in sorted(self._neg, reverse=True):
            cum += self._neg[k]
            if cum > rank:
                return self._clamp(-self._estimate(k))
        cum += self.zero_count
        if cum > rank:
            return self._clamp(0.0)
        for k in sorted(self._pos):
            cum += self._pos[k]
            if cum > rank:
                return self._clamp(self._estimate(k))
        return self.vmax  # type: ignore[return-value]  # count > 0

    def percentiles(self, qs: tuple[float, ...] = (50, 90, 99)) -> dict[str, float]:
        """``{"p50": ..., ...}`` for percentile points in [0, 100]."""
        return {f"p{q:g}": self.quantile(q / 100.0) for q in qs}

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    # -- codec ---------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "alpha": self.alpha,
            "max_bins": self.max_bins,
            "count": self.count,
            "total": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "zero": self.zero_count,
            "pos": {str(k): c for k, c in sorted(self._pos.items())},
            "neg": {str(k): c for k, c in sorted(self._neg.items())},
            "collapsed": self.collapsed,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> QuantileSketch:
        out = cls(d["alpha"], d["max_bins"])
        out.count = int(d["count"])
        out.total = float(d["total"])
        out.vmin = None if d["min"] is None else float(d["min"])
        out.vmax = None if d["max"] is None else float(d["max"])
        out.zero_count = int(d["zero"])
        out._pos = {int(k): int(c) for k, c in d["pos"].items()}
        out._neg = {int(k): int(c) for k, c in d["neg"].items()}
        out.collapsed = bool(d["collapsed"])
        return out

    def __eq__(self, other: object) -> bool:
        """Structural equality: buckets/counts/extremes exact; ``total``
        (a float accumulator) within rounding, since float addition is
        not associative in the last ulp."""
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        a, b = self.to_dict(), other.to_dict()
        ta, tb = a.pop("total"), b.pop("total")
        return a == b and math.isclose(ta, tb, rel_tol=1e-9, abs_tol=1e-12)

    def __repr__(self) -> str:
        return (f"QuantileSketch(alpha={self.alpha}, count={self.count}, "
                f"bins={len(self._pos) + len(self._neg)})")


# ----------------------------------------------------------------------
# fixed-resolution time-series ring
# ----------------------------------------------------------------------
class TimeSeriesRing:
    """Per-interval aggregates keyed by absolute bucket index.

    Each bucket is ``[count, sum, min, max, t_last, v_last]`` over the
    observations in ``[idx * res, (idx + 1) * res)``.  Only the newest
    ``n_buckets`` buckets are retained; evicted observation counts are
    tracked in ``evicted``.  Merging aligns buckets by index (both rings
    must share a resolution), so shard rings line up on simulated time.
    """

    __slots__ = ("resolution_s", "n_buckets", "evicted", "_buckets")

    def __init__(self, resolution_s: float, n_buckets: int) -> None:
        if resolution_s <= 0:
            raise ValueError(f"resolution must be positive, got {resolution_s}")
        if n_buckets < 1:
            raise ValueError(f"ring needs >= 1 bucket, got {n_buckets}")
        self.resolution_s = float(resolution_s)
        self.n_buckets = int(n_buckets)
        self.evicted = 0
        self._buckets: dict[int, list[float]] = {}

    def observe(self, t: float, value: float) -> None:
        idx = math.floor(t / self.resolution_s)
        b = self._buckets.get(idx)
        if b is None:
            self._buckets[idx] = [1, value, value, value, t, value]
        else:
            b[0] += 1
            b[1] += value
            b[2] = min(b[2], value)
            b[3] = max(b[3], value)
            if (t, value) >= (b[4], b[5]):
                b[4], b[5] = t, value
        self._trim()

    def _trim(self) -> None:
        if len(self._buckets) <= self.n_buckets:
            return
        for idx in sorted(self._buckets)[: len(self._buckets) - self.n_buckets]:
            self.evicted += int(self._buckets.pop(idx)[0])

    def merge(self, other: TimeSeriesRing) -> TimeSeriesRing:
        if self.resolution_s != other.resolution_s:
            raise ValueError(
                f"cannot merge rings with different resolutions: "
                f"{self.resolution_s} vs {other.resolution_s}"
            )
        out = TimeSeriesRing(self.resolution_s,
                             max(self.n_buckets, other.n_buckets))
        out.evicted = self.evicted + other.evicted
        for src in (self, other):
            for idx, b in src._buckets.items():
                cur = out._buckets.get(idx)
                if cur is None:
                    out._buckets[idx] = list(b)
                else:
                    cur[0] += b[0]
                    cur[1] += b[1]
                    cur[2] = min(cur[2], b[2])
                    cur[3] = max(cur[3], b[3])
                    if (b[4], b[5]) >= (cur[4], cur[5]):
                        cur[4], cur[5] = b[4], b[5]
        out._trim()
        return out

    @property
    def count(self) -> int:
        return self.evicted + sum(int(b[0]) for b in self._buckets.values())

    def series(self) -> list[tuple[int, list[float]]]:
        """Retained ``(index, bucket)`` pairs in time order."""
        return [(idx, list(self._buckets[idx]))
                for idx in sorted(self._buckets)]

    def to_dict(self) -> dict[str, Any]:
        return {
            "resolution_s": self.resolution_s,
            "n": self.n_buckets,
            "evicted": self.evicted,
            "buckets": {str(idx): list(b)
                        for idx, b in sorted(self._buckets.items())},
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> TimeSeriesRing:
        out = cls(d["resolution_s"], d["n"])
        out.evicted = int(d["evicted"])
        out._buckets = {int(k): list(v) for k, v in d["buckets"].items()}
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeriesRing):
            return NotImplemented
        return self.to_dict() == other.to_dict()


# ----------------------------------------------------------------------
# deterministic reservoir
# ----------------------------------------------------------------------
def _priority(ident: str) -> int:
    """Deterministic sampling priority: a keyed content hash.

    Never Python's builtin ``hash()`` — that is salted per interpreter
    run and would make sampling (and snapshot bytes) irreproducible.
    """
    digest = hashlib.blake2b(ident.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ReservoirSample:
    """Bottom-k-by-hash sample plus an always-keep heavy-outlier set.

    The retained set is *canonical*: after every insert it equals
    ``bottom(sample)`` of the offered idents by ``(priority, ident)``
    union ``top(outliers)`` by ``(-weight, priority, ident)``.  Because
    that is a pure function of the offered set, insertion order never
    matters and ``a.merge(b)`` retains exactly what a single reservoir
    offered ``a ∪ b`` would — the property that makes shard samples
    combinable.  ``dropped`` counts offered-but-shed records.
    """

    __slots__ = ("sample", "outliers", "total", "_items")

    def __init__(self, sample: int, outliers: int = 0) -> None:
        if sample < 1:
            raise ValueError(f"reservoir sample must be >= 1, got {sample}")
        if outliers < 0:
            raise ValueError(f"outlier count must be >= 0, got {outliers}")
        self.sample = int(sample)
        self.outliers = int(outliers)
        self.total = 0
        #: ident -> (priority, weight, payload)
        self._items: dict[str, tuple[int, float, Any]] = {}

    def add(self, ident: str, weight: float, payload: Any) -> None:
        self.total += 1
        if ident not in self._items:
            self._items[ident] = (_priority(ident), float(weight), payload)
            self._trim()

    def _trim(self) -> None:
        if len(self._items) <= self.sample:
            return
        by_priority = sorted(self._items.items(),
                             key=lambda kv: (kv[1][0], kv[0]))
        keep = {k for k, _ in by_priority[: self.sample]}
        if self.outliers:
            by_weight = sorted(self._items.items(),
                               key=lambda kv: (-kv[1][1], kv[1][0], kv[0]))
            keep.update(k for k, _ in by_weight[: self.outliers])
        if len(keep) < len(self._items):
            self._items = {k: v for k, v in self._items.items() if k in keep}

    def merge(self, other: ReservoirSample) -> ReservoirSample:
        if (self.sample, self.outliers) != (other.sample, other.outliers):
            raise ValueError(
                "cannot merge reservoirs with different capacities: "
                f"({self.sample},{self.outliers}) vs "
                f"({other.sample},{other.outliers})"
            )
        out = ReservoirSample(self.sample, self.outliers)
        out.total = self.total + other.total
        out._items = dict(self._items)
        for k, v in other._items.items():
            out._items.setdefault(k, v)
        out._trim()
        return out

    @property
    def dropped(self) -> int:
        return self.total - len(self._items)

    def kept(self) -> list[tuple[str, float, Any]]:
        """Retained ``(ident, weight, payload)`` in priority order."""
        return [(k, v[1], v[2])
                for k, v in sorted(self._items.items(),
                                   key=lambda kv: (kv[1][0], kv[0]))]

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, ident: str) -> bool:
        return ident in self._items

    def to_dict(self) -> dict[str, Any]:
        return {
            "sample": self.sample,
            "outliers": self.outliers,
            "total": self.total,
            "items": [
                {"ident": ident, "weight": weight, "payload": payload}
                for ident, weight, payload in self.kept()
            ],
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> ReservoirSample:
        out = cls(d["sample"], d["outliers"])
        for item in d["items"]:
            out._items[item["ident"]] = (
                _priority(item["ident"]),
                float(item["weight"]),
                item["payload"],
            )
        out.total = int(d["total"])
        out._trim()
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReservoirSample):
            return NotImplemented
        return self.to_dict() == other.to_dict()


# ----------------------------------------------------------------------
# bounded span / causal logs
# ----------------------------------------------------------------------
class BoundedSpanLog(SpanLog):
    """``SpanLog`` that keeps a deterministic sample instead of everything.

    Sampling weight is the span's duration, so the ``outliers`` longest
    spans are always retained (they are the ones critical-path and phase
    reports care about); the rest are an unbiased-by-hash sample.
    ``spans`` stays a list (sorted by start time) so every existing
    consumer — ``PhaseTimeline``, exporters, reports — works unchanged.
    """

    def __init__(self, sample: int = DEFAULT_SPAN_SAMPLE,
                 outliers: int = DEFAULT_SPAN_OUTLIERS) -> None:
        # deliberately not calling super().__init__: ``spans`` is a
        # property here, backed by the reservoir
        self._reservoir = ReservoirSample(sample, outliers)
        self._seq = 0
        self._cache: list[Span] | None = None

    @property
    def spans(self) -> list[Span]:  # type: ignore[override]
        if self._cache is None:
            self._cache = sorted(
                (payload for _, _, payload in self._reservoir.kept()),
                key=lambda s: (s.t0, s.t1, s.track, s.name),
            )
        return self._cache

    def add(self, track: str, name: str, t0: float, t1: float,
            **args: Any) -> Span:
        if t1 < t0:
            raise ValueError(f"span {name!r} ends before it starts")
        span = Span(track, name, t0, t1, args)
        ident = f"{self._seq:08d}|{track}|{name}"
        self._seq += 1
        self._reservoir.add(ident, t1 - t0, span)
        self._cache = None
        return span

    @property
    def total(self) -> int:
        return self._reservoir.total

    @property
    def dropped(self) -> int:
        return self._reservoir.dropped


class BoundedCausalLog(CausalLog):
    """``CausalLog`` that samples edges instead of keeping all of them.

    Sampling weight is the edge's wire bytes, so the heaviest transfers
    are always retained.  Edge ids keep counting monotonically
    (``total``), edge objects are shared with the network (delivery
    stamps and retransmission counts mutate the same object whether or
    not it is retained), and the query surface skips sampled-out parents
    instead of indexing positionally.
    """

    def __init__(self, aliases: dict[str, str] | None = None,
                 sample: int = DEFAULT_SPAN_SAMPLE,
                 outliers: int = DEFAULT_SPAN_OUTLIERS) -> None:
        # deliberately not calling super().__init__: ``edges`` is a
        # property here, backed by the reservoir
        self._aliases = dict(aliases or {})
        self._cause = {}
        self._pending = {}
        self._reservoir = ReservoirSample(sample, outliers)
        self._next_eid = 0
        self._cache: list[MessageEdge] | None = None

    @property
    def edges(self) -> list[MessageEdge]:  # type: ignore[override]
        if self._cache is None:
            self._cache = sorted(
                (payload for _, _, payload in self._reservoir.kept()),
                key=lambda e: e.eid,
            )
        return self._cache

    def on_send(self, src: str, dst: str, message: Any, t: float,
                parent: int | None = None) -> MessageEdge:
        if parent is None:
            parent = self._cause.get(self.alias(src))
        edge = MessageEdge(
            eid=self._next_eid,
            src=self.alias(src),
            dst=self.alias(dst),
            kind=message.kind,
            msg_type=type(message).__name__,
            hop=getattr(message, "hop", None),
            nbytes=int(message.nbytes),
            tuples=int(getattr(message, "tuples", 0) or 0),
            t_send=t,
            parent=parent,
        )
        self._next_eid += 1
        self._reservoir.add(f"{edge.eid:012d}", float(edge.nbytes), edge)
        self._cache = None
        return edge

    @property
    def total(self) -> int:
        return self._next_eid

    @property
    def dropped(self) -> int:
        return self._reservoir.dropped

    # -- query surface over the retained sample ------------------------
    def _by_eid(self) -> dict[int, MessageEdge]:
        return {e.eid: e for e in self.edges}

    def edge(self, eid: int) -> MessageEdge:
        try:
            return self._by_eid()[eid]
        except KeyError:
            raise KeyError(f"edge {eid} was sampled out "
                           f"(kept {len(self.edges)}/{self.total})") from None

    def children(self, eid: int) -> list[MessageEdge]:
        return [e for e in self.edges if e.parent == eid]

    def request_pairs(
        self, request_type: str, response_type: str
    ) -> list[tuple[MessageEdge, MessageEdge]]:
        by_eid = self._by_eid()
        out: list[tuple[MessageEdge, MessageEdge]] = []
        for e in self.edges:
            if e.msg_type != response_type or e.parent is None:
                continue
            p = by_eid.get(e.parent)
            if p is not None and p.msg_type == request_type:
                out.append((p, e))
        return out


# ----------------------------------------------------------------------
# byte budget
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ObsBudget:
    """Capacities derived from a ``--obs-budget`` byte budget.

    The budget is split 40% spans / 30% causal edges / 15% rings /
    15% sketch buckets, using conservative per-record byte estimates
    (span ≈ 160 B, edge ≈ 200 B, ring bucket ≈ 48 B, sketch bucket
    ≈ 16 B) with floors that keep tiny budgets functional.
    """

    budget_bytes: int
    span_sample: int
    span_outliers: int
    edge_sample: int
    edge_outliers: int
    ring_buckets: int
    sketch_bins: int

    MIN_BYTES = 4096
    SPAN_BYTES = 160
    EDGE_BYTES = 200
    RING_BUCKET_BYTES = 48
    SKETCH_BIN_BYTES = 16

    @classmethod
    def from_bytes(cls, budget_bytes: int) -> ObsBudget:
        if budget_bytes < cls.MIN_BYTES:
            raise ValueError(
                f"obs budget must be >= {cls.MIN_BYTES} bytes, "
                f"got {budget_bytes}"
            )
        span_total = max(40, int(0.40 * budget_bytes) // cls.SPAN_BYTES)
        span_outliers = max(8, span_total // 5)
        edge_total = max(40, int(0.30 * budget_bytes) // cls.EDGE_BYTES)
        edge_outliers = max(8, edge_total // 5)
        return cls(
            budget_bytes=int(budget_bytes),
            span_sample=max(32, span_total - span_outliers),
            span_outliers=span_outliers,
            edge_sample=max(32, edge_total - edge_outliers),
            edge_outliers=edge_outliers,
            ring_buckets=max(16, int(0.15 * budget_bytes)
                             // cls.RING_BUCKET_BYTES),
            sketch_bins=max(64, int(0.15 * budget_bytes)
                            // cls.SKETCH_BIN_BYTES),
        )


# ----------------------------------------------------------------------
# snapshot
# ----------------------------------------------------------------------
def instrument_key(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    """Flatten ``(name, labels)`` into the snapshot's string key."""
    if not labels:
        return name
    return name + "|" + ",".join(f"{k}={v}" for k, v in sorted(labels))


SNAPSHOT_KIND = "repro-snapshot"
SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class Snapshot:
    """A frozen, JSON-stable, mergeable summary of one (partial) run.

    The merge laws, per section:

    * ``counters`` — key-union sum;
    * ``gauges`` — ``high`` max, ``low`` min, ``samples`` sum (the
      point-in-time ``last``/``mean`` of a gauge are not mergeable and
      are deliberately not carried);
    * ``histograms`` — bucket-wise second sums, ``high`` max (bounds
      must match);
    * ``sketches`` / ``rings`` / ``spans`` — delegated to
      :class:`QuantileSketch` / :class:`TimeSeriesRing` /
      :class:`ReservoirSample` merges;
    * ``t`` — max; ``shards`` — sorted union.

    Every law is associative and commutative, so a fleet can fold shard
    snapshots in any order and get byte-identical ``to_json()`` output.
    """

    t: float
    shards: tuple[str, ...]
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, dict[str, float]] = field(default_factory=dict)
    histograms: dict[str, dict[str, Any]] = field(default_factory=dict)
    sketches: dict[str, QuantileSketch] = field(default_factory=dict)
    rings: dict[str, TimeSeriesRing] = field(default_factory=dict)
    spans: ReservoirSample = field(
        default_factory=lambda: ReservoirSample(
            DEFAULT_SPAN_SAMPLE, DEFAULT_SPAN_OUTLIERS
        )
    )

    # -- merge ---------------------------------------------------------
    def merge(self, other: Snapshot) -> Snapshot:
        counters = dict(self.counters)
        for k, v in other.counters.items():
            counters[k] = counters.get(k, 0) + v

        gauges = {k: dict(v) for k, v in self.gauges.items()}
        for k, g in other.gauges.items():
            cur = gauges.get(k)
            if cur is None:
                gauges[k] = dict(g)
            else:
                cur["high"] = max(cur["high"], g["high"])
                cur["low"] = min(cur["low"], g["low"])
                cur["samples"] = cur["samples"] + g["samples"]

        histograms = {k: _copy_hist(v) for k, v in self.histograms.items()}
        for k, h in other.histograms.items():
            cur = histograms.get(k)
            if cur is None:
                histograms[k] = _copy_hist(h)
            elif cur["bounds"] != h["bounds"]:
                raise ValueError(
                    f"cannot merge histogram {k!r}: bucket bounds differ"
                )
            else:
                cur["high"] = max(cur["high"], h["high"])
                cur["total_seconds"] += h["total_seconds"]
                cur["weighted_sum"] += h["weighted_sum"]
                for label, sec in h["buckets"].items():
                    cur["buckets"][label] = cur["buckets"].get(label, 0.0) + sec

        sketches = dict(self.sketches)
        for k, s in other.sketches.items():
            sketches[k] = sketches[k].merge(s) if k in sketches else s

        rings = dict(self.rings)
        for k, r in other.rings.items():
            rings[k] = rings[k].merge(r) if k in rings else r

        return Snapshot(
            t=max(self.t, other.t),
            shards=tuple(sorted(set(self.shards) | set(other.shards))),
            counters=counters,
            gauges=gauges,
            histograms=histograms,
            sketches=sketches,
            rings=rings,
            spans=self.spans.merge(other.spans),
        )

    # -- queries -------------------------------------------------------
    def counter_total(self, name: str) -> float:
        """Sum of a counter across all label variants."""
        return sum(v for k, v in self.counters.items()
                   if k == name or k.startswith(name + "|"))

    def quantile(self, metric: str, q: float) -> float:
        sk = self.sketches.get(metric)
        return sk.quantile(q) if sk is not None else 0.0

    def describe(self) -> str:
        """One-line progress summary for ``--live`` / ``repro tail``."""
        parts = [f"t={self.t:9.3f}s"]
        sk = self.sketches.get("workload.query_latency_s")
        # Mid-run the registry counter lags (queries are counted at
        # post-run assembly); the latency sketch sees each finish live.
        queries = self.counter_total("workload.queries") or (
            sk.count if sk is not None else 0
        )
        if queries:
            parts.append(f"queries={queries:g}")
        if sk is not None and sk.count:
            parts.append(f"lat p50={sk.quantile(0.50):.3f}s "
                         f"p99={sk.quantile(0.99):.3f}s")
        parts.append(f"spans={len(self.spans)}")
        dropped = (self.counter_total("obs.spans_dropped")
                   + self.counter_total("obs.edges_dropped"))
        if dropped:
            parts.append(f"dropped={dropped:g}")
        parts.append(f"shards={','.join(self.shards)}")
        return "  ".join(parts)

    # -- codec ---------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": SNAPSHOT_KIND,
            "v": SNAPSHOT_VERSION,
            "t": self.t,
            "shards": list(self.shards),
            "counters": dict(sorted(self.counters.items())),
            "gauges": {k: dict(sorted(v.items()))
                       for k, v in sorted(self.gauges.items())},
            "histograms": {
                k: {
                    "bounds": list(v["bounds"]),
                    "high": v["high"],
                    "total_seconds": v["total_seconds"],
                    "weighted_sum": v["weighted_sum"],
                    "buckets": dict(sorted(v["buckets"].items())),
                }
                for k, v in sorted(self.histograms.items())
            },
            "sketches": {k: v.to_dict()
                         for k, v in sorted(self.sketches.items())},
            "rings": {k: v.to_dict() for k, v in sorted(self.rings.items())},
            "spans": self.spans.to_dict(),
        }

    def to_json(self) -> str:
        """Canonical bytes: sorted keys, no whitespace, repr floats."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> Snapshot:
        if d.get("kind") != SNAPSHOT_KIND:
            raise ValueError(
                f"not a {SNAPSHOT_KIND} document (kind={d.get('kind')!r})"
            )
        if d.get("v") != SNAPSHOT_VERSION:
            raise ValueError(f"unsupported snapshot version {d.get('v')!r}")
        return cls(
            t=float(d["t"]),
            shards=tuple(d["shards"]),
            counters=dict(d["counters"]),
            gauges={k: dict(v) for k, v in d["gauges"].items()},
            histograms={
                k: {
                    "bounds": tuple(v["bounds"]),
                    "high": v["high"],
                    "total_seconds": v["total_seconds"],
                    "weighted_sum": v["weighted_sum"],
                    "buckets": dict(v["buckets"]),
                }
                for k, v in d["histograms"].items()
            },
            sketches={k: QuantileSketch.from_dict(v)
                      for k, v in d["sketches"].items()},
            rings={k: TimeSeriesRing.from_dict(v)
                   for k, v in d["rings"].items()},
            spans=ReservoirSample.from_dict(d["spans"]),
        )

    @classmethod
    def from_json(cls, text: str) -> Snapshot:
        return cls.from_dict(json.loads(text))


def _copy_hist(h: dict[str, Any]) -> dict[str, Any]:
    out = dict(h)
    out["buckets"] = dict(h["buckets"])
    return out


def merge_snapshots(snapshots: list[Snapshot]) -> Snapshot:
    """Left-fold of :meth:`Snapshot.merge` (order-independent result)."""
    if not snapshots:
        raise ValueError("need at least one snapshot to merge")
    out = snapshots[0]
    for snap in snapshots[1:]:
        out = out.merge(snap)
    return out


# ----------------------------------------------------------------------
# collector
# ----------------------------------------------------------------------
class StreamingCollector:
    """Per-run owner of the streaming state + registry→snapshot bridge.

    Unbudgeted, it owns a plain :class:`SpanLog` and unlimited-precision
    sketches/rings at default capacities (reports are unchanged vs the
    full-history path, and drop counters stay zero).  With an
    :class:`ObsBudget` it swaps in the bounded log variants and shrinks
    every capacity to fit the byte budget.
    """

    def __init__(self, clock: Any = None, budget: ObsBudget | None = None,
                 shard: str = "shard0",
                 ring_resolution_s: float = DEFAULT_RING_RESOLUTION_S,
                 alpha: float = DEFAULT_ALPHA) -> None:
        self.clock = clock or (lambda: 0.0)
        self.budget = budget
        self.shard = shard
        self.ring_resolution_s = ring_resolution_s
        self.alpha = alpha
        self.spans: SpanLog = (
            BoundedSpanLog(budget.span_sample, budget.span_outliers)
            if budget is not None else SpanLog()
        )
        self.sketches: dict[str, QuantileSketch] = {}
        self.rings: dict[str, TimeSeriesRing] = {}
        self.snapshots_emitted = 0
        self._causal_logs: list[CausalLog] = []

    # -- construction helpers -----------------------------------------
    def causal_log(self, aliases: dict[str, str] | None = None) -> CausalLog:
        """A (budget-appropriate) causal log, registered for drop counts."""
        log: CausalLog = (
            BoundedCausalLog(aliases, self.budget.edge_sample,
                             self.budget.edge_outliers)
            if self.budget is not None else CausalLog(aliases)
        )
        self._causal_logs.append(log)
        return log

    # -- ingest --------------------------------------------------------
    def observe(self, name: str, value: float, t: float | None = None) -> None:
        """Feed one sample into the metric's sketch and time ring."""
        t = self.clock() if t is None else t
        sk = self.sketches.get(name)
        if sk is None:
            bins = (self.budget.sketch_bins if self.budget is not None
                    else DEFAULT_MAX_BINS)
            sk = self.sketches[name] = QuantileSketch(self.alpha, bins)
        sk.add(value)
        ring = self.rings.get(name)
        if ring is None:
            buckets = (self.budget.ring_buckets if self.budget is not None
                       else DEFAULT_RING_BUCKETS)
            ring = self.rings[name] = TimeSeriesRing(
                self.ring_resolution_s, buckets)
        ring.observe(t, value)

    # -- drop accounting -----------------------------------------------
    @property
    def spans_dropped(self) -> int:
        return self.spans.dropped if isinstance(self.spans, BoundedSpanLog) else 0

    @property
    def edges_dropped(self) -> int:
        return sum(log.dropped for log in self._causal_logs
                   if isinstance(log, BoundedCausalLog))

    # -- snapshot ------------------------------------------------------
    def snapshot(self, registry: Any = None, t: float | None = None) -> Snapshot:
        """Freeze the current state (plus a registry's instruments).

        ``registry`` is duck-typed on ``MetricsRegistry.instruments()``;
        each instrument is folded into the mergeable summary shape
        (counters exactly, gauges as watermarks, histograms as bucket
        seconds).  Increments ``obs.snapshots_emitted``.
        """
        self.snapshots_emitted += 1
        t = self.clock() if t is None else t
        counters: dict[str, float] = {}
        gauges: dict[str, dict[str, float]] = {}
        histograms: dict[str, dict[str, Any]] = {}
        if registry is not None:
            for inst in registry.instruments():
                key = instrument_key(inst.name, inst.labels)
                d = inst.as_dict()
                if d["type"] == "counter":
                    counters[key] = inst.value
                elif d["type"] == "gauge":
                    if inst.samples:
                        gauges[key] = {
                            "high": inst.high,
                            "low": inst.low,
                            "samples": inst.samples,
                        }
                else:
                    buckets = {}
                    for i, bound in enumerate(inst.bounds):
                        if inst.bucket_seconds[i]:
                            buckets[f"le_{bound:g}"] = inst.bucket_seconds[i]
                    if inst.bucket_seconds[-1]:
                        buckets["overflow"] = inst.bucket_seconds[-1]
                    histograms[key] = {
                        "bounds": tuple(inst.bounds),
                        "high": inst.high,
                        "total_seconds": inst.total_seconds,
                        "weighted_sum": inst.weighted_sum,
                        "buckets": buckets,
                    }
        counters["obs.snapshots_emitted"] = float(self.snapshots_emitted)
        counters["obs.spans_dropped"] = float(self.spans_dropped)
        counters["obs.edges_dropped"] = float(self.edges_dropped)

        if self.budget is not None:
            span_sample = self.budget.span_sample
            span_outliers = self.budget.span_outliers
        else:
            span_sample = DEFAULT_SPAN_SAMPLE
            span_outliers = DEFAULT_SPAN_OUTLIERS
        spans = ReservoirSample(span_sample, span_outliers)
        for i, s in enumerate(self.spans.spans):
            ident = f"{self.shard}|{i:08d}|{s.track}|{s.name}"
            spans.add(ident, s.duration, {
                "track": s.track,
                "name": s.name,
                "t0": s.t0,
                "t1": s.t1,
                "args": {k: str(v) for k, v in sorted(s.args.items())},
            })
        if isinstance(self.spans, BoundedSpanLog):
            spans.total = self.spans.total

        return Snapshot(
            t=t,
            shards=(self.shard,),
            counters=counters,
            gauges=gauges,
            histograms=histograms,
            sketches={k: QuantileSketch.from_dict(v.to_dict())
                      for k, v in self.sketches.items()},
            rings={k: TimeSeriesRing.from_dict(v.to_dict())
                   for k, v in self.rings.items()},
            spans=spans,
        )
