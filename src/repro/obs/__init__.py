"""Observability: structured metrics, span timelines, trace/metrics export.

This package is the measurement substrate for the whole reproduction.
Every layer publishes into one :class:`MetricsRegistry` per run — the
simulator (events executed), the network (bytes per (src, dst, kind)),
disks (bytes/ops per node), memory accounts (usage timelines with
high-water marks), mailboxes (queue depths), the hash stores (inserted
tuples / matches) and the scheduler (relief-cycle latencies, drain
rounds).  Phase and transfer *spans* land in a :class:`SpanLog` and are
attached to ``JoinRunResult`` as a :class:`PhaseTimeline`, exportable as
JSONL or Chrome ``trace_event`` JSON (``chrome://tracing`` / Perfetto).
Network sends additionally land in a :class:`CausalLog` — a causal DAG of
``send -> deliver`` edges with parent provenance — from which
:func:`explain` extracts the makespan's critical path and a ranked
bottleneck report (``repro explain``).

Deliberately dependency-free: ``repro.obs`` imports nothing from the rest
of ``repro``, so the simulation substrate, the cluster model and the join
protocol can all publish into it without import cycles.  See
``docs/OBSERVABILITY.md`` for the metric catalogue and CLI usage.
"""

from .causality import CausalLog, MessageEdge
from .critpath import ExplainReport, PathStep, critical_path, explain
from .export import (
    chrome_trace,
    metrics_to_jsonl,
    trace_to_jsonl,
)
from .harvest import harvest_network, harvest_nodes, harvest_simulator
from .metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    TimeWeightedHistogram,
)
from .streaming import (
    BoundedCausalLog,
    BoundedSpanLog,
    ObsBudget,
    QuantileSketch,
    ReservoirSample,
    Snapshot,
    StreamingCollector,
    TimeSeriesRing,
    merge_snapshots,
)
from .timeline import (
    PHASE_NAMES,
    SCHEDULER_TRACK,
    PhaseTimeline,
    Span,
    SpanLog,
)

__all__ = [
    "BoundedCausalLog",
    "BoundedSpanLog",
    "CausalLog",
    "Counter",
    "ExplainReport",
    "PHASE_NAMES",
    "SCHEDULER_TRACK",
    "Gauge",
    "MessageEdge",
    "MetricsRegistry",
    "ObsBudget",
    "PathStep",
    "PhaseTimeline",
    "QuantileSketch",
    "ReservoirSample",
    "Snapshot",
    "Span",
    "SpanLog",
    "StreamingCollector",
    "TimeSeriesRing",
    "TimeWeightedHistogram",
    "chrome_trace",
    "critical_path",
    "explain",
    "harvest_network",
    "harvest_nodes",
    "harvest_simulator",
    "merge_snapshots",
    "metrics_to_jsonl",
    "trace_to_jsonl",
]
