"""End-of-run harvesting of substrate counters into the registry.

Hot-path components (the kernel's event loop, the network's per-pair byte
tables) keep their own plain-int counters and are folded into the
:class:`~repro.obs.metrics.MetricsRegistry` once, at end of run — the
cheap half of "everything publishes into one registry".  Live timelines
(memory usage, mailbox depth) are instead wired up front by
``Cluster.build``.  All parameters are duck-typed to keep this package
free of ``repro`` imports.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

from .metrics import MetricsRegistry

__all__ = ["harvest_simulator", "harvest_network", "harvest_nodes"]


def harvest_simulator(registry: MetricsRegistry, sim: Any) -> None:
    """Kernel totals: events executed."""
    registry.counter("sim.events_executed").inc(sim.processed_events)


def harvest_network(registry: MetricsRegistry, network: Any) -> None:
    """Per-(src, dst, kind) byte totals and per-kind message totals."""
    for (src, dst, kind), nbytes in network.sent_bytes.items():
        registry.counter(
            "net.sent_bytes", src=src, dst=dst, kind=kind
        ).inc(nbytes)
    for (src, dst, kind), nbytes in network.delivered_bytes.items():
        registry.counter(
            "net.delivered_bytes", src=src, dst=dst, kind=kind
        ).inc(nbytes)
    for kind, count in network.sent_messages.items():
        registry.counter("net.sent_messages", kind=kind).inc(count)
    for kind, count in network.delivered_messages.items():
        registry.counter("net.delivered_messages", kind=kind).inc(count)
    # Fault-injection accounting (all zero / absent on fault-free runs).
    for (src, dst, kind), nbytes in network.dropped_bytes.items():
        registry.counter(
            "net.dropped_bytes", src=src, dst=dst, kind=kind
        ).inc(nbytes)
    for (src, dst, kind), nbytes in network.duplicate_bytes.items():
        registry.counter(
            "net.duplicate_bytes", src=src, dst=dst, kind=kind
        ).inc(nbytes)
    for kind, count in network.dropped_messages.items():
        registry.counter("net.dropped_messages", kind=kind).inc(count)
    for kind, count in network.duplicate_messages.items():
        registry.counter("net.duplicate_messages", kind=kind).inc(count)
    if network.retransmissions:
        registry.counter("net.retransmissions").inc(network.retransmissions)
    if network.in_flight_peak:
        registry.set_gauge("net.in_flight_peak", network.in_flight_peak)


def harvest_nodes(registry: MetricsRegistry, nodes: Iterable[Any]) -> None:
    """Per-node memory peaks, disk op counts and mailbox traffic.

    Disk *byte* totals are published live by the wired-up ``Disk``
    counters; only the op count is folded in here.
    """
    for node in nodes:
        name = node.name
        if node.disk.ops:
            registry.counter("disk.ops", node=name).inc(node.disk.ops)
        if node.memory.peak:
            registry.set_gauge("mem.peak_bytes", node.memory.peak, node=name)
        if node.mailbox.total_put:
            registry.counter("mailbox.messages", node=name).inc(
                node.mailbox.total_put
            )
