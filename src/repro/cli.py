"""Command-line interface: ``python -m repro <command>`` (or ``repro``).

Eleven commands:

* ``run``     — one simulated join, printing the phase/traffic summary.
* ``workload`` — many concurrent joins over one shared node pool, with
  admission control and per-query latency/queueing percentiles.
* ``fleet``   — the workload sharded across OS worker processes by
  deterministic query cohorts, merged back into one fleet-wide result
  (shard-count invariant; see ``docs/FLEET.md``).
* ``sweep``   — a grid of runs (algorithms x initial nodes), as a table.
* ``figures`` — regenerate the paper's figures (or a subset) and print /
  save the reproduction reports.
* ``trace``   — run one join and export its execution trace (Chrome
  ``trace_event`` JSON for chrome://tracing / Perfetto, or JSONL).
* ``metrics`` — run one join and dump the metrics registry snapshot.
* ``explain`` — run one join and print the causal critical-path /
  bottleneck report (see ``docs/OBSERVABILITY.md``).
* ``bench-diff`` — compare two ``BENCH_*.json`` baselines or two
  observability snapshots (``--snapshot-out`` files; auto-detected);
  nonzero exit on regressions beyond the threshold (the CI perf gate).
* ``tail``    — render a ``--snapshot-out`` JSONL snapshot stream as
  per-snapshot progress lines plus a final-state digest.
* ``lint``    — run the repo's own static-analysis passes (determinism,
  protocol exhaustiveness, metrics-catalogue sync, fault safety); see
  ``docs/STATIC_ANALYSIS.md``.

Examples::

    python -m repro run --algorithm hybrid --initial-nodes 4
    python -m repro run --algorithm split --sigma 0.0001 --trace
    python -m repro workload --queries 6 --pool 8 --policy fair
    python -m repro workload --mix hybrid:2:2:2:2 --mix ooc:1:4:4:2 --format json
    python -m repro workload --queries 8 --live --obs-budget 65536 \\
        --snapshot-out run.snap.jsonl
    python -m repro fleet --queries 200 --shards 4 --arrival-profile bursty
    python -m repro tail run.snap.jsonl
    python -m repro sweep --initial-nodes 1,2,4,8,16
    python -m repro figures --only fig02 fig10 --out reports.md
    python -m repro trace --algorithm hybrid --format chrome --out trace.json
    python -m repro metrics --algorithm split --format table
    python -m repro explain --algorithm replicate --sigma 0.05
    python -m repro bench-diff BENCH_2.json BENCH_new.json --threshold 2
    python -m repro lint
    python -m repro lint --format json src/repro/core
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from collections.abc import Sequence

from .analysis import format_table
from .config import (
    Algorithm,
    ClusterSpec,
    Distribution,
    FleetConfig,
    MTUPLES,
    ObsConfig,
    PoolPolicy,
    QueryMixEntry,
    RunConfig,
    SplitPolicy,
    Topology,
    WorkloadConfig,
    WorkloadSpec,
)
from .core import run_join
from .faults import FaultPlan, FaultPlanError, crash_specs_from_cli

__all__ = ["main", "build_parser"]


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--r-tuples", type=float, default=10.0, metavar="M",
                   help="build relation size in millions of tuples "
                        "(paper units; default 10)")
    p.add_argument("--s-tuples", type=float, default=10.0, metavar="M",
                   help="probe relation size in millions of tuples")
    p.add_argument("--tuple-bytes", type=int, default=100)
    p.add_argument("--sigma", type=float, default=None,
                   help="Gaussian skew (fraction of the value range); "
                        "omit for uniform data")
    p.add_argument("--zipf", type=float, default=None, metavar="S",
                   help="Zipf exponent (> 1); mutually exclusive with "
                        "--sigma")
    p.add_argument("--chunk-tuples", type=int, default=10_000)
    p.add_argument("--scale", type=float, default=WorkloadSpec().scale,
                   help="down-scaling factor (default 1/50); 1.0 = full size")
    p.add_argument("--seed", type=int, default=WorkloadSpec().seed)


def _add_cluster_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--initial-nodes", type=str, default="4",
                   help="initial join nodes; a comma list sweeps (sweep "
                        "command only)")
    p.add_argument("--pool", type=int, default=24,
                   help="potential join nodes (default 24)")
    p.add_argument("--sources", type=int, default=4,
                   help="data-source nodes (default 4)")
    p.add_argument("--node-memory-mb", type=float, default=64.0,
                   help="hash-table budget per node in MB (default 64)")
    p.add_argument("--topology", default="switched",
                   choices=[t.value for t in Topology],
                   help="interconnect: switched ports or one shared hub")
    p.add_argument("--sources-from-disk", action="store_true",
                   help="sources read relations from disk instead of "
                        "generating them")


def _add_fault_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--fault-plan", metavar="PATH",
                   help="JSON fault plan (see docs/FAULTS.md for the schema)")
    p.add_argument("--drop-prob", type=float, default=None, metavar="P",
                   help="drop every inter-node message with probability P "
                        "(sender retransmits; overrides the plan's value)")
    p.add_argument("--crash-node", action="append", default=[],
                   metavar="N[@T|@phase:NAME]",
                   help="fail-stop a pool node: pool index, optionally at "
                        "sim time T or on phase entry (build/reshuffle/"
                        "probe/ooc); repeatable.  Crashing a *working* node "
                        "requires the membership layer (--membership or any "
                        "control-plane knob), which recovers its hash range")
    p.add_argument("--membership", action="store_true",
                   help="arm the control-plane fault-tolerance layer "
                        "(heartbeat failure detector + standby scheduler; "
                        "see docs/FAULTS.md)")
    p.add_argument("--heartbeat-interval", type=float, default=None,
                   metavar="S",
                   help="heartbeat period in simulated seconds (implies "
                        "--membership; suspect/confirm timeouts derive "
                        "from it unless pinned in the fault plan)")
    p.add_argument("--kill-scheduler-at", type=float, default=None,
                   metavar="T",
                   help="fail-stop the primary scheduler at sim time T "
                        "(implies --membership; the standby takes over)")
    p.add_argument("--lockdep", action="store_true",
                   help="arm the runtime deadlock detector (sim-time "
                        "wait-for graph over resources, mailboxes, "
                        "barriers and latches; pure observer, on by "
                        "default under pytest — see "
                        "docs/STATIC_ANALYSIS.md)")


def _faults(args: argparse.Namespace) -> FaultPlan | None:
    """Fold the fault CLI flags into one plan.

    Returns ``None`` when no fault flag was given, which keeps the run on
    the exact fault-free code path (no injector is constructed at all).
    """
    plan = FaultPlan.from_file(args.fault_plan) if args.fault_plan else None
    if args.drop_prob is not None:
        plan = replace(plan or FaultPlan(), drop_prob=args.drop_prob)
    if args.membership:
        plan = replace(plan or FaultPlan(), membership=True)
    if args.heartbeat_interval is not None:
        plan = replace(plan or FaultPlan(),
                       heartbeat_interval_s=args.heartbeat_interval)
    if args.kill_scheduler_at is not None:
        plan = replace(plan or FaultPlan(),
                       kill_scheduler_at=args.kill_scheduler_at)
    if args.crash_node:
        plan = (plan or FaultPlan()).with_crashes(
            *crash_specs_from_cli(args.crash_node)
        )
    return plan


def _parse_arrival_times(text: str | None) -> tuple[float, ...]:
    """Parse ``--arrival-times``: comma-separated floats, whitespace and
    empty segments (e.g. a trailing comma) tolerated; a non-numeric
    segment raises a ValueError that names the flag."""
    if not text:
        return ()
    times = []
    for segment in text.split(","):
        segment = segment.strip()
        if not segment:
            continue
        try:
            times.append(float(segment))
        except ValueError:
            raise ValueError(
                f"--arrival-times: {segment!r} is not a number (expected "
                f"a comma-separated list like 1.0,2.5,4.0)"
            ) from None
    return tuple(times)


def _workload(args: argparse.Namespace) -> WorkloadSpec:
    # --zipf and --sigma are rejected as a pair up front (see main()), so
    # the branches below never silently discard a skew request.
    if args.zipf is not None:
        dist, sigma = Distribution.ZIPF, 0.001
    elif args.sigma is not None:
        dist, sigma = Distribution.GAUSSIAN, args.sigma
    else:
        dist, sigma = Distribution.UNIFORM, 0.001
    return WorkloadSpec(
        r_tuples=int(args.r_tuples * MTUPLES),
        s_tuples=int(args.s_tuples * MTUPLES),
        tuple_bytes=args.tuple_bytes,
        distribution=dist,
        gauss_sigma=sigma,
        zipf_s=args.zipf if args.zipf is not None else 1.1,
        chunk_tuples=args.chunk_tuples,
        scale=args.scale,
        seed=args.seed,
    )


def _cluster(args: argparse.Namespace) -> ClusterSpec:
    return ClusterSpec(
        n_sources=args.sources,
        n_potential_nodes=args.pool,
        hash_memory_bytes=int(args.node_memory_mb * 1024 * 1024),
        topology=Topology(args.topology),
    )


def _config(args: argparse.Namespace, algorithm: Algorithm,
            initial_nodes: int, force_trace: bool = False) -> RunConfig:
    return RunConfig(
        algorithm=algorithm,
        initial_nodes=initial_nodes,
        workload=_workload(args),
        cluster=_cluster(args),
        split_policy=SplitPolicy(args.split_policy),
        materialize_output=args.materialize_output,
        probe_expansion=args.probe_expansion,
        sources_from_disk=args.sources_from_disk,
        trace=args.trace or force_trace,
        trace_buffer=args.trace_buffer,
        faults=_faults(args),
        lockdep=args.lockdep,
    )


def _refuse_overwrite(path: str | None, force: bool, command: str) -> bool:
    """True when ``path`` exists and ``--force`` was not given.

    Checked before the simulation runs, so a collision fails in
    milliseconds instead of after the join completes — and an existing
    export is never clobbered by a fat-fingered re-run.
    """
    import os

    if path and os.path.exists(path) and not force:
        print(f"{command}: refusing to overwrite existing {path}; "
              f"pass --force to replace it", file=sys.stderr)
        return True
    return False


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def cmd_run(args: argparse.Namespace) -> int:
    algorithm = Algorithm(args.algorithm)
    initial = int(args.initial_nodes.split(",")[0])
    cfg = _config(args, algorithm, initial)
    res = run_join(cfg, validate=not args.no_validate)
    print(res.summary())
    t = res.times
    scale = cfg.workload.scale
    print(f"\nphases (paper-scale s): build={t.build_s / scale:.1f} "
          f"reshuffle={t.reshuffle_s / scale:.1f} "
          f"probe={t.probe_s / scale:.1f} ooc={t.ooc_pass_s / scale:.1f} "
          f"total={res.paper_scale_total_s:.1f}")
    if args.trace:
        print("\ntrace:")
        print(res.tracer.format())
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    algorithms = (
        list(Algorithm) if args.algorithms == "all"
        else [Algorithm(a) for a in args.algorithms.split(",")]
    )
    initials = [int(x) for x in args.initial_nodes.split(",")]
    rows = []
    for k in initials:
        row: list[object] = [k]
        for algorithm in algorithms:
            cfg = _config(args, algorithm, k)
            res = run_join(cfg, validate=not args.no_validate)
            row.append(round(res.paper_scale_total_s, 1))
        rows.append(row)
    print(format_table(
        ["initial nodes"] + [a.value for a in algorithms], rows
    ))
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from .bench import FigureHarness

    harness = FigureHarness(scale=args.scale, validate=not args.no_validate)
    available = {
        "fig02": harness.fig02, "fig03": harness.fig03,
        "fig04": harness.fig04, "fig05": harness.fig05,
        "fig06": harness.fig06, "fig07": harness.fig07,
        "fig08": harness.fig08, "fig09": harness.fig09,
        "fig10": harness.fig10, "fig11": harness.fig11,
        "fig12": harness.fig12, "fig13": harness.fig13,
        "model": harness.model_validation,
    }
    # --json alone snapshots the fig02 baseline without rendering reports;
    # combined with --only it does both (the sweep is memoized and shared).
    wanted = args.only or ([] if args.json else list(available))
    unknown = [w for w in wanted if w not in available]
    if unknown:
        print(f"unknown figures: {unknown}; choose from "
              f"{sorted(available)}", file=sys.stderr)
        return 2
    import os

    csv_paths = (
        [os.path.join(args.csv_dir, f"{name}.csv") for name in wanted]
        if args.csv_dir else []
    )
    for path in (args.out, args.json, *csv_paths):
        if _refuse_overwrite(path, args.force, "figures"):
            return 2
    reports = []
    for name in wanted:
        report = available[name]()
        reports.append(report)
        print(report.render())
        print()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write("\n".join(r.to_markdown() for r in reports))
        print(f"wrote {args.out}")
    if args.csv_dir:
        os.makedirs(args.csv_dir, exist_ok=True)
        for name, report in zip(wanted, reports):
            path = os.path.join(args.csv_dir, f"{name}.csv")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(report.to_csv())
        print(f"wrote {len(reports)} csv files to {args.csv_dir}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(harness.baseline(), fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json} (fig02 baseline)")
    return 0 if all(r.all_passed for r in reports) else 1


def cmd_trace(args: argparse.Namespace) -> int:
    from .obs import chrome_trace, trace_to_jsonl

    if _refuse_overwrite(args.out, args.force, "trace"):
        return 2
    algorithm = Algorithm(args.algorithm)
    initial = int(args.initial_nodes.split(",")[0])
    cfg = _config(args, algorithm, initial, force_trace=True)
    res = run_join(cfg, validate=not args.no_validate)
    if args.format == "chrome":
        payload = json.dumps(chrome_trace(res), indent=1) + "\n"
    else:
        lines = list(trace_to_jsonl(res.tracer))
        payload = "\n".join(lines) + ("\n" if lines else "")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(payload)
        print(f"wrote {args.out} ({args.format})")
        print()
        print(res.timeline.render())
    else:
        print(payload, end="")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    from .obs import metrics_to_jsonl

    if _refuse_overwrite(args.out, args.force, "metrics"):
        return 2
    algorithm = Algorithm(args.algorithm)
    initial = int(args.initial_nodes.split(",")[0])
    cfg = _config(args, algorithm, initial)
    res = run_join(cfg, validate=not args.no_validate)
    if args.format == "jsonl":
        payload = "\n".join(metrics_to_jsonl(res.metrics))
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
            print(f"wrote {args.out} ({len(res.metrics)} instruments)")
        else:
            print(payload)
        return 0
    rows = []
    for inst in res.metrics:
        # The table view hides instruments that never fired (the registry
        # eagerly instruments every pool node); --format jsonl keeps them.
        labels = ",".join(f"{k}={v}" for k, v in sorted(inst["labels"].items()))
        if inst["type"] == "counter":
            if not inst["value"]:
                continue
            value = f"{inst['value']:g}"
        elif inst["type"] == "gauge":
            if inst["samples"] == 0:
                continue
            value = f"last={inst['last']:g} high={inst['high']:g}"
        else:
            if not inst["total_seconds"]:
                continue
            value = (f"mean={inst['time_weighted_mean']:.3f} "
                     f"high={inst['high']:g}")
        rows.append([inst["name"], labels, inst["type"], value])
    table = format_table(["metric", "labels", "type", "value"], rows)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(table + "\n")
        print(f"wrote {args.out} ({len(rows)} active instruments)")
    else:
        print(table)
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from .obs import explain

    if _refuse_overwrite(args.out, args.force, "explain"):
        return 2
    algorithm = Algorithm(args.algorithm)
    initial = int(args.initial_nodes.split(",")[0])
    cfg = _config(args, algorithm, initial)
    res = run_join(cfg, validate=not args.no_validate)
    report = explain(res)
    if args.format == "json":
        payload = json.dumps(report.to_dict(), indent=1) + "\n"
    else:
        payload = report.to_text() + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(payload)
        print(f"wrote {args.out} ({args.format})")
    else:
        print(payload, end="")
    return 0


def _parse_mix_entry(text: str) -> QueryMixEntry:
    """``ALG[:WEIGHT[:R_M[:S_M[:INITIAL[:SIGMA]]]]]`` -> QueryMixEntry.

    Sizes are in millions of tuples (paper units); a sixth field turns the
    entry Gaussian-skewed with that sigma.  Example: ``hybrid:2:10:10:4``.
    """
    parts = text.split(":")
    if not 1 <= len(parts) <= 6:
        raise ValueError(
            f"mix entry {text!r}: expected ALG[:WEIGHT[:R_M[:S_M"
            f"[:INITIAL[:SIGMA]]]]]"
        )
    alg = Algorithm(parts[0])
    weight = float(parts[1]) if len(parts) > 1 else 1.0
    r_m = float(parts[2]) if len(parts) > 2 else 2.0
    s_m = float(parts[3]) if len(parts) > 3 else r_m
    initial = int(parts[4]) if len(parts) > 4 else 2
    sigma = float(parts[5]) if len(parts) > 5 else None
    return QueryMixEntry(
        weight=weight,
        algorithm=alg,
        r_tuples=int(r_m * MTUPLES),
        s_tuples=int(s_m * MTUPLES),
        initial_nodes=initial,
        distribution=(
            Distribution.GAUSSIAN if sigma is not None
            else Distribution.UNIFORM
        ),
        gauss_sigma=sigma if sigma is not None else 0.001,
    )


def _workload_config(
    args: argparse.Namespace, plan: FaultPlan | None
) -> WorkloadConfig:
    """Fold the shared workload CLI flags into a :class:`WorkloadConfig`
    (raises ValueError exactly like the dataclass validators)."""
    live = args.live or args.live_interval is not None
    mix = tuple(_parse_mix_entry(m) for m in args.mix) if args.mix else (
        QueryMixEntry(initial_nodes=2),
    )
    obs = ObsConfig(
        budget_bytes=args.obs_budget,
        live_interval_s=(
            (args.live_interval if args.live_interval is not None
             else 25.0 * args.scale)
            if live else None
        ),
    )
    return WorkloadConfig(
        n_queries=args.queries,
        arrival_rate_qps=args.arrival_rate,
        arrival_times=_parse_arrival_times(args.arrival_times),
        seed=args.seed,
        mix=mix,
        policy=PoolPolicy(args.policy),
        fair_share_cap=args.fair_share_cap,
        grant_timeout_s=args.grant_timeout,
        cluster=ClusterSpec(
            n_sources=args.sources,
            n_potential_nodes=args.pool,
            hash_memory_bytes=int(args.node_memory_mb * 1024 * 1024),
            topology=Topology(args.topology),
        ),
        scale=args.scale,
        trace=args.trace,
        faults=plan,
        lockdep=args.lockdep,
        obs=obs,
    )


def _check_membership(plan: FaultPlan | None, command: str) -> bool:
    """True (with a message) when the single-query-only control-plane
    fault layer was requested from a multi-query command."""
    if plan is not None and plan.membership_active:
        print(f"{command}: the control-plane fault-tolerance layer "
              "(--membership / --heartbeat-interval / --kill-scheduler-at) "
              "is single-query only; see docs/FAULTS.md",
              file=sys.stderr)
        return True
    return False


def cmd_workload(args: argparse.Namespace) -> int:
    from .obs import Snapshot
    from .workload import run_workload

    plan = _faults(args)
    if _check_membership(plan, "workload"):
        return 2
    live = args.live or args.live_interval is not None
    try:
        cfg = _workload_config(args, plan)
    except ValueError as exc:
        print(f"workload: {exc}", file=sys.stderr)
        return 2
    for path in (args.out, args.metrics_out, args.baseline,
                 args.snapshot_out):
        if _refuse_overwrite(path, args.force, "workload"):
            return 2

    # Live telemetry: one progress line per periodic snapshot, optionally
    # streamed to a JSONL file (`repro tail` renders it; the final
    # snapshot is always appended last, so the file's last line is the
    # run's end state — what bench-diff compares).
    snap_fh = None
    if args.snapshot_out:
        snap_fh = open(args.snapshot_out, "w", encoding="utf-8")

    def on_snapshot(snap: Snapshot) -> None:
        if live:
            print(f"live: {snap.describe()}")
        if snap_fh is not None:
            snap_fh.write(snap.to_json() + "\n")
            snap_fh.flush()

    try:
        res = run_workload(cfg, validate=not args.no_validate,
                           on_snapshot=on_snapshot)
        if res.snapshot is not None:
            on_snapshot(res.snapshot)
    finally:
        if snap_fh is not None:
            snap_fh.close()
    if args.snapshot_out:
        print(f"wrote {args.snapshot_out} (snapshot stream)")
    if args.format == "json":
        payload = json.dumps(res.to_dict(), indent=1) + "\n"
    else:
        payload = res.summary() + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(payload)
        print(f"wrote {args.out} ({args.format})")
    else:
        print(payload, end="")
    if args.metrics_out:
        from .obs import metrics_to_jsonl

        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            for line in metrics_to_jsonl(res.metrics):
                fh.write(line + "\n")
        print(f"wrote {args.metrics_out} ({len(res.metrics)} instruments)")
    if args.baseline:
        # bench-diff's schema keys are fixed (total_s / build_s); for a
        # workload they carry makespan and p99 latency respectively.
        base = {
            "benchmark": "workload",
            "scale": cfg.scale,
            "series": {
                cfg.policy.value: {
                    str(cfg.n_queries): {
                        "total_s": res.makespan_s,
                        "build_s": res.latency_percentiles()["p99"],
                    }
                }
            },
        }
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(base, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.baseline} (workload baseline)")
    if args.trace:
        print("\ntrace:")
        print(res.tracer.format())
    return 0 if res.all_valid else 1


def cmd_fleet(args: argparse.Namespace) -> int:
    from .obs import Snapshot, metrics_to_jsonl
    from .workload import profile_arrivals, run_fleet

    plan = _faults(args)
    if _check_membership(plan, "fleet"):
        return 2
    live = args.live or args.live_interval is not None
    try:
        wl = _workload_config(args, plan)
        if args.arrival_profile != "poisson":
            wl = replace(
                wl, arrival_times=profile_arrivals(args.arrival_profile, wl)
            )
        cfg = FleetConfig(
            workload=wl,
            n_cohorts=args.cohorts,
            n_shards=args.shards,
            worker_timeout_s=args.worker_timeout,
        )
    except ValueError as exc:
        print(f"fleet: {exc}", file=sys.stderr)
        return 2
    for path in (args.out, args.metrics_out, args.baseline,
                 args.snapshot_out):
        if _refuse_overwrite(path, args.force, "fleet"):
            return 2

    # Live telemetry mirrors `repro workload`, except each line carries the
    # *merged* fleet-wide snapshot (latest per cohort, folded with the
    # snapshot merge laws) — tailing the JSONL mid-run shows global
    # progress across all worker processes; the final merged snapshot is
    # always appended last.
    snap_fh = None
    if args.snapshot_out:
        snap_fh = open(args.snapshot_out, "w", encoding="utf-8")

    def on_snapshot(snap: Snapshot) -> None:
        if live:
            print(f"live: {snap.describe()}")
        if snap_fh is not None:
            snap_fh.write(snap.to_json() + "\n")
            snap_fh.flush()

    try:
        res = run_fleet(cfg, validate=not args.no_validate,
                        on_snapshot=on_snapshot)
        if res.snapshot is not None:
            on_snapshot(res.snapshot)
    finally:
        if snap_fh is not None:
            snap_fh.close()
    if args.snapshot_out:
        print(f"wrote {args.snapshot_out} (merged snapshot stream)")
    for failure in res.failures:
        print(f"fleet: shard {failure.shard} failed ({failure.kind}, "
              f"cohorts {list(failure.cohorts)}): {failure.detail}",
              file=sys.stderr)
    if args.format == "json":
        payload = json.dumps(res.to_dict(), indent=1) + "\n"
    else:
        payload = res.summary() + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(payload)
        print(f"wrote {args.out} ({args.format})")
    else:
        print(payload, end="")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            for line in metrics_to_jsonl(res.metrics):
                fh.write(line + "\n")
        print(f"wrote {args.metrics_out} ({len(res.metrics)} instruments)")
    if args.baseline:
        # Same fixed bench-diff keys as the workload baseline; the series
        # name carries the arrival profile so one file can hold curves for
        # several profiles side by side.
        base = {
            "benchmark": "fleet",
            "scale": wl.scale,
            "series": {
                f"{args.arrival_profile}-{wl.policy.value}": {
                    str(wl.n_queries): {
                        "total_s": res.makespan_s,
                        "build_s": res.latency_percentiles().get("p99", 0.0),
                    }
                }
            },
        }
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(base, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.baseline} (fleet baseline)")
    return res.exit_code


def cmd_bench_diff(args: argparse.Namespace) -> int:
    from .bench import (
        BaselineError,
        diff_baselines,
        diff_snapshots,
        is_snapshot_doc,
        load_baseline,
        load_document,
    )
    from .obs import Snapshot

    try:
        old_doc = load_document(args.old)
        new_doc = load_document(args.new)
        old_snap, new_snap = is_snapshot_doc(old_doc), is_snapshot_doc(new_doc)
        if old_snap != new_snap:
            kinds = [
                "snapshot" if s else "figure baseline"
                for s in (old_snap, new_snap)
            ]
            print(f"bench-diff: cannot compare a {kinds[0]} ({args.old}) "
                  f"against a {kinds[1]} ({args.new})", file=sys.stderr)
            return 2
        if old_snap:
            diff = diff_snapshots(
                Snapshot.from_dict(old_doc), Snapshot.from_dict(new_doc),
                threshold_pct=args.threshold,
            )
        else:
            old = load_baseline(args.old)
            new = load_baseline(args.new)
            diff = diff_baselines(old, new, threshold_pct=args.threshold)
    except (BaselineError, ValueError) as exc:
        print(f"bench-diff: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(diff.to_dict(), indent=1))
    else:
        print(diff.to_text())
    return 0 if diff.ok else 1


def cmd_tail(args: argparse.Namespace) -> int:
    from .obs import Snapshot

    try:
        with open(args.path, encoding="utf-8") as fh:
            lines = [ln for ln in fh.read().splitlines() if ln.strip()]
    except OSError as exc:
        print(f"tail: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    if not lines:
        print(f"tail: {args.path}: empty snapshot stream", file=sys.stderr)
        return 2
    snaps = []
    for lineno, line in enumerate(lines, 1):
        try:
            snaps.append(Snapshot.from_json(line))
        except ValueError as exc:
            print(f"tail: {args.path}:{lineno}: {exc}", file=sys.stderr)
            return 2
    for snap in snaps:
        print(snap.describe())
    last = snaps[-1]
    rows = [[name, f"{value:g}"]
            for name, value in sorted(last.counters.items()) if value]
    for name, sk in sorted(last.sketches.items()):
        if not sk.count:
            continue
        pcts = sk.percentiles((50, 90, 99))
        rows.append([
            name,
            f"p50={pcts['p50']:g} p90={pcts['p90']:g} p99={pcts['p99']:g} "
            f"(n={sk.count})",
        ])
    print()
    print(f"final snapshot: {len(snaps)} snapshot(s), "
          f"shards={','.join(last.shards)}, "
          f"{len(last.spans)} sampled spans "
          f"({last.spans.dropped} shed)")
    print(format_table(["metric", "value"], rows))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    import textwrap
    from pathlib import Path

    from .checkers import (
        FRAMEWORK_EXPLANATIONS,
        LintError,
        all_checkers,
        report_json,
        report_sarif,
        report_text,
        rule_counts,
        run_lint,
    )

    # Force registration so listings and explanations match a real run.
    from .checkers import passes  # noqa: F401

    if args.list:
        for cls in all_checkers():
            print(f"{cls.name}: {', '.join(cls.rules)}")
        return 0
    if args.explain:
        index: dict[str, str] = dict(FRAMEWORK_EXPLANATIONS)
        for cls in all_checkers():
            index.update(cls.explanations)
        text = index.get(args.explain)
        if text is None:
            print(f"lint: unknown rule {args.explain!r}; known rules:\n  "
                  + "\n  ".join(sorted(index)), file=sys.stderr)
            return 2
        print(f"{args.explain}:")
        print(textwrap.fill(text, width=76, initial_indent="  ",
                            subsequent_indent="  "))
        return 0
    root = Path(args.root) if args.root else Path.cwd()
    try:
        violations = run_lint(root, paths=args.paths or None,
                              select=args.select)
    except LintError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        report_json(violations, sys.stdout)
    elif args.format == "sarif":
        report_sarif(violations, sys.stdout)
    else:
        report_text(violations, sys.stdout)
    if args.baseline:
        try:
            with open(args.baseline, encoding="utf-8") as fh:
                base = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"lint: cannot read baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
        allowed = base.get("rules", {})
        current = rule_counts(violations)
        regressed = {r: (allowed.get(r, 0), n) for r, n in current.items()
                     if n > allowed.get(r, 0)}
        if regressed:
            for rule, (old, new) in sorted(regressed.items()):
                print(f"baseline: {rule}: {new} finding(s) > {old} allowed "
                      f"by {args.baseline}", file=sys.stderr)
            return 1
        print(f"baseline: ok — no rule above its count in {args.baseline}")
        return 0
    return 1 if violations else 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Expanding Hash-based Join Algorithms (HPDC 2004) — "
                    "simulated reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    _add_workload_args(common)
    _add_cluster_args(common)
    _add_fault_args(common)
    common.add_argument("--split-policy", default="bisect",
                        choices=[p.value for p in SplitPolicy])
    common.add_argument("--materialize-output", action="store_true",
                        help="keep join output pairs in node memory")
    common.add_argument("--probe-expansion", action="store_true",
                        help="recruit output-sink nodes on probe overflow "
                             "(paper footnote 1)")
    common.add_argument("--no-validate", action="store_true",
                        help="skip the sequential-oracle check")
    common.add_argument("--trace", action="store_true",
                        help="collect and print the protocol trace")
    common.add_argument("--trace-buffer", type=int, default=None,
                        metavar="N",
                        help="keep only the most recent N trace records "
                             "(bounded-buffer mode; default unbounded)")

    p_run = sub.add_parser("run", parents=[common],
                           help="run one simulated join")
    p_run.add_argument("--algorithm", default="hybrid",
                       choices=[a.value for a in Algorithm])
    p_run.set_defaults(func=cmd_run)

    def _add_workload_cli(p: argparse.ArgumentParser) -> None:
        # Flags shared verbatim by `workload` (in-process) and `fleet`
        # (OS-process sharded) — both fold into one WorkloadConfig.
        p.add_argument("--queries", type=int, default=4,
                       help="number of concurrent queries (default 4)")
        p.add_argument("--arrival-rate", type=float, default=0.5,
                       metavar="QPS",
                       help="Poisson arrival rate in queries per simulated "
                            "second (default 0.5)")
        p.add_argument("--arrival-times", metavar="T0,T1,...",
                       help="explicit arrival trace (simulated seconds, one "
                            "per query; overrides --arrival-rate)")
        p.add_argument("--mix", action="append", default=[],
                       metavar="ALG[:W[:R_M[:S_M[:K[:SIGMA]]]]]",
                       help="weighted query class: algorithm, weight, "
                            "relation sizes in Mtuples, initial nodes, "
                            "optional Gaussian sigma; repeatable (default "
                            "one 2Mx2M hybrid class on 2 nodes)")
        p.add_argument("--policy", default="fifo",
                       choices=[p.value for p in PoolPolicy],
                       help="pool arbitration policy (default fifo)")
        p.add_argument("--fair-share-cap", type=int, default=4, metavar="N",
                       help="max pool nodes one query may hold beyond its "
                            "admission grant (fair policy only; default 4)")
        p.add_argument("--grant-timeout", type=float, default=None,
                       metavar="S",
                       help="deny a parked recruit after S simulated "
                            "seconds (default: scale-derived)")
        p.add_argument("--pool", type=int, default=24,
                       help="shared join nodes in the pool (default 24)")
        p.add_argument("--sources", type=int, default=2,
                       help="data-source nodes per query (default 2)")
        p.add_argument("--node-memory-mb", type=float, default=64.0,
                       help="hash-table budget per node in MB (default 64)")
        p.add_argument("--topology", default="switched",
                       choices=[t.value for t in Topology])
        p.add_argument("--scale", type=float, default=WorkloadSpec().scale,
                       help="down-scaling factor (default 1/50)")
        p.add_argument("--seed", type=int, default=WorkloadConfig().seed)
        _add_fault_args(p)
        p.add_argument("--no-validate", action="store_true",
                       help="skip the per-query sequential-oracle check")
        p.add_argument("--trace", action="store_true",
                       help="collect and print the protocol trace")
        p.add_argument("--format", default="text", choices=["text", "json"])
        p.add_argument("--out", help="write here instead of stdout")
        p.add_argument("--metrics-out", metavar="PATH",
                       help="also dump the shared metrics registry as JSONL")
        p.add_argument("--baseline", metavar="PATH",
                       help="write a bench-diff-compatible baseline "
                            "(total_s=makespan, build_s=p99 latency)")
        p.add_argument("--live", action="store_true",
                       help="print one progress line per periodic "
                            "observability snapshot (simulated-clock "
                            "cadence; see docs/OBSERVABILITY.md)")
        p.add_argument("--live-interval", type=float, default=None,
                       metavar="S",
                       help="snapshot cadence in simulated seconds "
                            "(implies --live; default 25*scale)")
        p.add_argument("--obs-budget", type=int, default=None,
                       metavar="BYTES",
                       help="cap observability memory: bounded span/edge "
                            "sampling, ring buffers and sketch bins sized "
                            "to this many bytes (min 4096; shed records "
                            "are counted, never silent)")
        p.add_argument("--snapshot-out", metavar="PATH",
                       help="append each snapshot as one JSON line "
                            "(final snapshot last; render with "
                            "'repro tail PATH', compare with "
                            "'repro bench-diff')")
        p.add_argument("--force", action="store_true",
                       help="overwrite existing --out/--metrics-out/"
                            "--baseline/--snapshot-out files")

    p_wl = sub.add_parser(
        "workload",
        help="run many concurrent joins against one shared node pool",
    )
    _add_workload_cli(p_wl)
    p_wl.set_defaults(func=cmd_workload)

    p_fleet = sub.add_parser(
        "fleet",
        help="shard one workload trace across OS worker processes and "
             "merge the results (docs/FLEET.md)",
    )
    _add_workload_cli(p_fleet)
    p_fleet.add_argument("--shards", type=int, default=2, metavar="N",
                         help="worker processes to launch (default 2; "
                              "results are shard-count invariant)")
    p_fleet.add_argument("--cohorts", type=int, default=8, metavar="N",
                         help="deterministic partition count — part of the "
                              "model, not the parallelism (default 8)")
    p_fleet.add_argument("--worker-timeout", type=float, default=600.0,
                         metavar="S",
                         help="wall-clock seconds of worker silence before "
                              "the shard is killed and reported as failed "
                              "(default 600)")
    p_fleet.add_argument("--arrival-profile", default="poisson",
                         choices=["poisson", "diurnal", "bursty"],
                         help="named arrival trace: the config's Poisson "
                              "process, a sinusoidal day/night rate, or "
                              "on-off bursts (default poisson)")
    p_fleet.set_defaults(func=cmd_fleet)

    p_tail = sub.add_parser(
        "tail",
        help="render a --snapshot-out JSONL snapshot stream",
    )
    p_tail.add_argument("path", metavar="SNAPSHOT.jsonl",
                        help="snapshot stream written by "
                             "'repro workload --snapshot-out'")
    p_tail.set_defaults(func=cmd_tail)

    p_trace = sub.add_parser(
        "trace", parents=[common],
        help="run one join and export its execution trace",
    )
    p_trace.add_argument("--algorithm", default="hybrid",
                         choices=[a.value for a in Algorithm])
    p_trace.add_argument("--format", default="chrome",
                         choices=["chrome", "jsonl"],
                         help="chrome trace_event JSON (chrome://tracing / "
                              "Perfetto) or JSONL records")
    p_trace.add_argument("--out", help="write here instead of stdout "
                                       "(also prints the phase timeline)")
    p_trace.add_argument("--force", action="store_true",
                         help="overwrite an existing --out file")
    p_trace.set_defaults(func=cmd_trace)

    p_metrics = sub.add_parser(
        "metrics", parents=[common],
        help="run one join and dump the metrics registry",
    )
    p_metrics.add_argument("--algorithm", default="hybrid",
                           choices=[a.value for a in Algorithm])
    p_metrics.add_argument("--format", default="table",
                           choices=["table", "jsonl"])
    p_metrics.add_argument("--out",
                           help="write here instead of stdout (either format)")
    p_metrics.add_argument("--force", action="store_true",
                           help="overwrite an existing --out file")
    p_metrics.set_defaults(func=cmd_metrics)

    p_explain = sub.add_parser(
        "explain", parents=[common],
        help="run one join and print the critical-path bottleneck report",
    )
    p_explain.add_argument("--algorithm", default="hybrid",
                           choices=[a.value for a in Algorithm])
    p_explain.add_argument("--format", default="text",
                           choices=["text", "json"])
    p_explain.add_argument("--out", help="write here instead of stdout")
    p_explain.add_argument("--force", action="store_true",
                           help="overwrite an existing --out file")
    p_explain.set_defaults(func=cmd_explain)

    p_bdiff = sub.add_parser(
        "bench-diff",
        help="compare two BENCH_*.json baselines; exit 1 on regressions",
    )
    p_bdiff.add_argument("old", help="baseline JSON (the reference)")
    p_bdiff.add_argument("new", help="candidate JSON to compare against it")
    p_bdiff.add_argument("--threshold", type=float, default=1.0,
                         metavar="PCT",
                         help="regression threshold in percent (default 1)")
    p_bdiff.add_argument("--format", default="text",
                         choices=["text", "json"])
    p_bdiff.set_defaults(func=cmd_bench_diff)

    p_sweep = sub.add_parser("sweep", parents=[common],
                             help="grid of runs: algorithms x initial nodes")
    p_sweep.add_argument("--algorithms", default="all",
                         help='comma list or "all"')
    p_sweep.set_defaults(func=cmd_sweep)

    p_fig = sub.add_parser("figures", help="regenerate the paper's figures")
    p_fig.add_argument("--only", nargs="*", metavar="figNN",
                       help="subset, e.g. --only fig02 fig10")
    p_fig.add_argument("--out", help="write markdown reports to this file")
    p_fig.add_argument("--csv-dir", help="write one CSV per figure here")
    p_fig.add_argument("--json", metavar="PATH",
                       help="write the machine-readable fig02 baseline "
                            "(total/build s per algorithm x initial nodes) "
                            "for regression tracking; alone, skips the "
                            "figure reports")
    p_fig.add_argument("--scale", type=float, default=WorkloadSpec().scale)
    p_fig.add_argument("--no-validate", action="store_true")
    p_fig.add_argument("--force", action="store_true",
                       help="overwrite existing --out/--csv-dir/--json files")
    p_fig.set_defaults(func=cmd_figures)

    p_lint = sub.add_parser(
        "lint",
        help="run the repo's static-analysis passes (determinism, "
             "protocol, metrics sync, fault safety, resource safety, "
             "wait graph)",
    )
    p_lint.add_argument("paths", nargs="*", metavar="PATH",
                        help="files/directories to lint (default: src/repro "
                             "under --root)")
    p_lint.add_argument("--root", default=None,
                        help="repo root for repo-relative scoping "
                             "(default: current directory)")
    p_lint.add_argument("--format", default="text",
                        choices=["text", "json", "sarif"],
                        help="text, machine-readable json (stable rule-id "
                             "counts), or SARIF 2.1.0 for code scanning")
    p_lint.add_argument("--select", nargs="*", metavar="RULE",
                        help="restrict to pass names or rule-id prefixes, "
                             "e.g. determinism or det-")
    p_lint.add_argument("--list", action="store_true",
                        help="list registered passes and their rule ids")
    p_lint.add_argument("--explain", metavar="RULE",
                        help="print the long-form rationale for one rule id "
                             "and exit")
    p_lint.add_argument("--baseline", metavar="PATH",
                        help="gate against a committed --format json "
                             "document (LINT_BASE.json): exit 1 only when "
                             "some rule exceeds its baselined count")
    p_lint.set_defaults(func=cmd_lint)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "zipf", None) is not None:
        if getattr(args, "sigma", None) is not None:
            parser.error(
                "--zipf and --sigma are mutually exclusive skew knobs; "
                "pass exactly one"
            )
        if args.zipf <= 1.0:
            parser.error(f"--zipf exponent must be > 1, got {args.zipf}")
    try:
        return args.func(args)
    except FaultPlanError as exc:
        parser.error(str(exc))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
