"""Benchmark harness: figure-reproduction runners shared by benchmarks/,
examples/ and the EXPERIMENTS.md generator, plus the ``bench-diff``
baseline regression gate (:mod:`repro.bench.diff`)."""

from .diff import (
    BaselineError,
    BenchDiff,
    Delta,
    diff_baselines,
    diff_snapshots,
    is_snapshot_doc,
    load_baseline,
    load_document,
)
from .figures import ALGORITHMS, EHJAS, FigureHarness

__all__ = [
    "ALGORITHMS",
    "BaselineError",
    "BenchDiff",
    "Delta",
    "EHJAS",
    "FigureHarness",
    "diff_baselines",
    "diff_snapshots",
    "is_snapshot_doc",
    "load_baseline",
    "load_document",
]
