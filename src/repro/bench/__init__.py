"""Benchmark harness: figure-reproduction runners shared by benchmarks/,
examples/ and the EXPERIMENTS.md generator."""

from .figures import ALGORITHMS, EHJAS, FigureHarness

__all__ = ["ALGORITHMS", "EHJAS", "FigureHarness"]
