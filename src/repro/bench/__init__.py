"""Benchmark harness: figure-reproduction runners shared by benchmarks/,
examples/ and the EXPERIMENTS.md generator, plus the ``bench-diff``
baseline regression gate (:mod:`repro.bench.diff`)."""

from .diff import BaselineError, BenchDiff, Delta, diff_baselines, load_baseline
from .figures import ALGORITHMS, EHJAS, FigureHarness

__all__ = [
    "ALGORITHMS",
    "BaselineError",
    "BenchDiff",
    "Delta",
    "EHJAS",
    "FigureHarness",
    "diff_baselines",
    "load_baseline",
]
