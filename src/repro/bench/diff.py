"""Benchmark baseline comparison: the ``repro bench-diff`` regression gate.

Compares two ``BENCH_*.json`` baselines produced by ``repro figures
--json`` (see :meth:`repro.bench.FigureHarness.baseline`): per-algorithm /
per-node-count deltas on every timing metric, with a percentage threshold
separating noise from regressions.  Structural differences (different
benchmark name or scale, series present in one file but not the other)
are hard failures — a diff that silently skipped a vanished series would
wave regressions through.

Timings come from the deterministic simulator, so on identical code a
self-diff is exactly zero; any nonzero delta is a real model change.
The CLI exits nonzero when :attr:`BenchDiff.ok` is false, which CI uses
to guard the perf trajectory (see ``docs/BENCHMARKS.md``).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..obs.streaming import Snapshot

__all__ = ["BaselineError", "Delta", "BenchDiff", "load_baseline",
           "load_document", "diff_baselines", "diff_snapshots",
           "is_snapshot_doc"]

#: metrics carried per (algorithm, node-count) series point
METRICS = ("total_s", "build_s")

#: sketch quantiles compared per snapshot sketch
SKETCH_QUANTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99))


class BaselineError(ValueError):
    """A baseline file is missing, unparsable, or schema-invalid."""


def load_document(path: str | Path) -> dict[str, Any]:
    """Load one comparison document: baseline JSON or a snapshot stream.

    A ``--snapshot-out`` file is JSONL (one snapshot per line, final
    snapshot last); for those the last non-empty line is the document —
    the run's end state is what regression gates care about.
    """
    p = Path(path)
    try:
        text = p.read_text()
    except OSError as exc:
        raise BaselineError(f"{p}: cannot read baseline: {exc}") from exc
    lines = [ln for ln in text.splitlines() if ln.strip()]
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        if len(lines) < 2:
            raise BaselineError(f"{p}: not valid JSON") from None
        try:
            doc = json.loads(lines[-1])
        except json.JSONDecodeError as exc:
            raise BaselineError(
                f"{p}: neither JSON nor JSONL (last line: {exc})"
            ) from exc
    if not isinstance(doc, dict):
        raise BaselineError(f"{p}: baseline must be a JSON object")
    return doc


def is_snapshot_doc(doc: dict[str, Any]) -> bool:
    """Is this a ``repro-snapshot`` document (vs a figure baseline)?"""
    return doc.get("kind") == "repro-snapshot"


def load_baseline(path: str | Path) -> dict[str, Any]:
    """Load and schema-check one figure-baseline JSON file."""
    p = Path(path)
    doc = load_document(p)
    for key in ("benchmark", "scale", "series"):
        if key not in doc:
            raise BaselineError(f"{p}: baseline is missing {key!r}")
    series = doc["series"]
    if not isinstance(series, dict) or not series:
        raise BaselineError(f"{p}: 'series' must be a non-empty object")
    for algo, points in series.items():
        if not isinstance(points, dict) or not points:
            raise BaselineError(
                f"{p}: series[{algo!r}] must be a non-empty object"
            )
        for nodes, point in points.items():
            for metric in METRICS:
                value = point.get(metric) if isinstance(point, dict) else None
                if not isinstance(value, (int, float)) or not math.isfinite(
                    float(value)
                ):
                    raise BaselineError(
                        f"{p}: series[{algo!r}][{nodes!r}][{metric!r}] "
                        "must be a finite number"
                    )
    return doc


@dataclass(frozen=True)
class Delta:
    """One metric's change between baselines."""

    algorithm: str
    nodes: str
    metric: str
    old: float
    new: float

    @property
    def pct(self) -> float:
        """Percent change relative to old (+inf for 0 -> nonzero)."""
        if self.old == 0.0:
            return 0.0 if self.new == 0.0 else math.inf
        return (self.new - self.old) / self.old * 100.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "nodes": self.nodes,
            "metric": self.metric,
            "old": self.old,
            "new": self.new,
            "pct": self.pct,
        }


@dataclass
class BenchDiff:
    """Full comparison of two baselines."""

    threshold_pct: float
    deltas: list[Delta] = field(default_factory=list)
    #: structural problems (missing/extra series, benchmark/scale mismatch)
    mismatches: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[Delta]:
        """Slowdowns beyond the threshold (time metrics: bigger is worse)."""
        return [d for d in self.deltas if d.pct > self.threshold_pct]

    @property
    def improvements(self) -> list[Delta]:
        return [d for d in self.deltas if d.pct < -self.threshold_pct]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.mismatches

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "threshold_pct": self.threshold_pct,
            "regressions": [d.to_dict() for d in self.regressions],
            "improvements": [d.to_dict() for d in self.improvements],
            "mismatches": list(self.mismatches),
            "deltas": [d.to_dict() for d in self.deltas],
        }

    def to_text(self) -> str:
        lines = [
            f"bench-diff: {len(self.deltas)} series points compared, "
            f"threshold {self.threshold_pct:g}%"
        ]
        for m in self.mismatches:
            lines.append(f"  MISMATCH  {m}")
        for d in self.regressions:
            lines.append(
                f"  REGRESSED {d.algorithm}/{d.nodes} {d.metric}: "
                f"{d.old:g} -> {d.new:g} ({d.pct:+.2f}%)"
            )
        for d in self.improvements:
            lines.append(
                f"  improved  {d.algorithm}/{d.nodes} {d.metric}: "
                f"{d.old:g} -> {d.new:g} ({d.pct:+.2f}%)"
            )
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


def diff_baselines(
    old: dict[str, Any], new: dict[str, Any], threshold_pct: float = 1.0
) -> BenchDiff:
    """Compare two loaded baselines (see :func:`load_baseline`)."""
    if threshold_pct < 0:
        raise ValueError(f"threshold_pct must be >= 0, got {threshold_pct}")
    diff = BenchDiff(threshold_pct=threshold_pct)
    for key in ("benchmark", "scale"):
        if old.get(key) != new.get(key):
            diff.mismatches.append(
                f"{key} differs: old={old.get(key)!r} new={new.get(key)!r}"
            )
    old_series, new_series = old["series"], new["series"]
    for algo in sorted(set(old_series) | set(new_series)):
        if algo not in new_series:
            diff.mismatches.append(f"series {algo!r} missing from NEW")
            continue
        if algo not in old_series:
            diff.mismatches.append(f"series {algo!r} missing from OLD")
            continue
        old_pts, new_pts = old_series[algo], new_series[algo]
        for nodes in sorted(
            set(old_pts) | set(new_pts), key=lambda n: (len(n), n)
        ):
            if nodes not in new_pts:
                diff.mismatches.append(f"{algo}/{nodes} missing from NEW")
                continue
            if nodes not in old_pts:
                diff.mismatches.append(f"{algo}/{nodes} missing from OLD")
                continue
            for metric in METRICS:
                diff.deltas.append(Delta(
                    algorithm=algo,
                    nodes=nodes,
                    metric=metric,
                    old=float(old_pts[nodes][metric]),
                    new=float(new_pts[nodes][metric]),
                ))
    return diff


def diff_snapshots(
    old: Snapshot, new: Snapshot, threshold_pct: float = 1.0
) -> BenchDiff:
    """Compare two observability snapshots (``repro.obs.Snapshot``).

    Counters are compared *exactly* — the simulator is deterministic, so
    any counter difference is a real behaviour change and fails the gate
    as a mismatch, like a vanished series would.  Sketch quantiles
    (p50/p90/p99 per sketch) go through the percentage threshold like
    timing metrics, since the sketch itself carries a ~1% relative-error
    bound.
    """
    if threshold_pct < 0:
        raise ValueError(f"threshold_pct must be >= 0, got {threshold_pct}")
    diff = BenchDiff(threshold_pct=threshold_pct)
    if tuple(old.shards) != tuple(new.shards):
        diff.mismatches.append(
            f"shards differ: old={list(old.shards)} new={list(new.shards)}"
        )
    for key in sorted(set(old.counters) | set(new.counters)):
        if key not in old.counters:
            diff.mismatches.append(f"counter {key!r} missing from OLD")
        elif key not in new.counters:
            diff.mismatches.append(f"counter {key!r} missing from NEW")
        elif old.counters[key] != new.counters[key]:
            diff.mismatches.append(
                f"counter {key!r} differs: old={old.counters[key]:g} "
                f"new={new.counters[key]:g}"
            )
    for key in sorted(set(old.sketches) | set(new.sketches)):
        if key not in new.sketches:
            diff.mismatches.append(f"sketch {key!r} missing from NEW")
            continue
        if key not in old.sketches:
            diff.mismatches.append(f"sketch {key!r} missing from OLD")
            continue
        osk, nsk = old.sketches[key], new.sketches[key]
        for label, q in SKETCH_QUANTILES:
            diff.deltas.append(Delta(
                algorithm=key,
                nodes="sketch",
                metric=label,
                old=osk.quantile(q),
                new=nsk.quantile(q),
            ))
    return diff
