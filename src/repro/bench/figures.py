"""Figure-reproduction harness: one function per paper figure.

Each ``figNN`` method runs (or reuses) the simulated sweeps behind that
figure, returns a :class:`~repro.analysis.report.FigureReport` holding the
series the paper plots, and embeds the qualitative *shape checks* taken
from the paper's text (see DESIGN.md §4).  ``benchmarks/`` wraps these in
pytest-benchmark; ``examples/`` and EXPERIMENTS.md reuse them directly.

Sweeps are memoized: Figures 2-5 share one initial-node sweep, Figures
10-13 one skew sweep, etc.  All runs validate against the sequential
oracle unless constructed with ``validate=False``.
"""

from __future__ import annotations


from ..analysis import FigureReport, OverheadModel, load_balance
from ..config import (
    Algorithm,
    ClusterSpec,
    DEFAULT_SCALE,
    Distribution,
    MTUPLES,
    RunConfig,
    WorkloadSpec,
)
from ..core import JoinRunResult, run_join

__all__ = ["FigureHarness", "ALGORITHMS", "EHJAS"]

ALGORITHMS = (
    Algorithm.REPLICATE,
    Algorithm.SPLIT,
    Algorithm.HYBRID,
    Algorithm.OUT_OF_CORE,
)
EHJAS = ALGORITHMS[:3]

_LABEL = {
    Algorithm.REPLICATE: "Replicated",
    Algorithm.SPLIT: "Split",
    Algorithm.HYBRID: "Hybrid",
    Algorithm.OUT_OF_CORE: "Out of Core",
}


def _growth_ratio(rows: list[list], col_model: int, col_hyb: int) -> bool:
    """True when measured split/reshuffle traffic ratio grows with the
    expansion factor (rows are ordered by initial nodes ascending, i.e.
    expansion descending)."""
    ratios = [row[col_model] / row[col_hyb] for row in rows if row[col_hyb] > 0]
    return len(ratios) >= 2 and ratios[0] > ratios[-1]


class FigureHarness:
    """Runs and caches the simulated experiments behind Figures 2-13."""

    INITIAL_NODES = (1, 2, 4, 8, 16)
    TABLE_SIZES_M = (10, 20, 40, 80)
    TUPLE_BYTES = (100, 200, 400)
    SKEWS: tuple[float | None, ...] = (None, 0.001, 0.0001)

    def __init__(self, scale: float = DEFAULT_SCALE, validate: bool = True):
        self.scale = scale
        self.validate = validate
        self._cache: dict[tuple, JoinRunResult] = {}

    # ------------------------------------------------------------------
    # run plumbing
    # ------------------------------------------------------------------
    def run(
        self,
        algo: Algorithm,
        initial_nodes: int = 4,
        *,
        r_m: int = 10,
        s_m: int = 10,
        tuple_bytes: int = 100,
        sigma: float | None = None,
        pool: int = 24,
    ) -> JoinRunResult:
        key = (algo, initial_nodes, r_m, s_m, tuple_bytes, sigma, pool)
        if key not in self._cache:
            wl = WorkloadSpec(
                r_tuples=r_m * MTUPLES,
                s_tuples=s_m * MTUPLES,
                tuple_bytes=tuple_bytes,
                distribution=(
                    Distribution.UNIFORM if sigma is None else Distribution.GAUSSIAN
                ),
                gauss_sigma=sigma if sigma is not None else 0.001,
                scale=self.scale,
            )
            cfg = RunConfig(
                algorithm=algo,
                initial_nodes=initial_nodes,
                workload=wl,
                cluster=ClusterSpec(n_potential_nodes=pool),
                trace=False,
            )
            self._cache[key] = run_join(cfg, validate=self.validate)
        return self._cache[key]

    def _paper_s(self, result: JoinRunResult) -> float:
        return result.paper_scale_total_s

    # ------------------------------------------------------------------
    # machine-readable baseline (regression tracking)
    # ------------------------------------------------------------------
    def baseline(self) -> dict:
        """Fig02-default baseline as a JSON-ready dict.

        Per algorithm and initial-node count: paper-scale total and build
        time, fault-free.  The simulation is deterministic, so these
        numbers are exactly reproducible — ``python -m repro figures
        --json BENCH_N.json`` snapshots them and future changes diff
        against the committed file (see docs/BENCHMARKS.md).
        """
        res = self._init_sweep()
        return {
            "benchmark": "fig02",
            "description": "paper-scale seconds, uniform R=S=10M tuples, "
                           "fault-free",
            "scale": self.scale,
            "validated": self.validate,
            "series": {
                a.value: {
                    str(k): {
                        "total_s": round(self._paper_s(res[a, k]), 6),
                        "build_s": round(
                            res[a, k].times.build_s / self.scale, 6
                        ),
                    }
                    for k in self.INITIAL_NODES
                }
                for a in ALGORITHMS
            },
        }

    # ------------------------------------------------------------------
    # Figures 2-5: initial-node sweep, R = S = 10M uniform
    # ------------------------------------------------------------------
    def _init_sweep(self) -> dict[tuple[Algorithm, int], JoinRunResult]:
        return {
            (a, k): self.run(a, k)
            for a in ALGORITHMS
            for k in self.INITIAL_NODES
        }

    def fig02(self) -> FigureReport:
        res = self._init_sweep()
        rep = FigureReport(
            "Figure 2", "Total execution time vs initial join nodes "
            "(uniform, R=S=10M tuples)",
            ["initial nodes"] + [_LABEL[a] for a in ALGORITHMS],
        )
        for k in self.INITIAL_NODES:
            rep.rows.append(
                [k] + [self._paper_s(res[a, k]) for a in ALGORITHMS]
            )
        t = {(a, k): self._paper_s(res[a, k])
             for a in ALGORITHMS for k in self.INITIAL_NODES}
        ooc = Algorithm.OUT_OF_CORE
        rep.check(
            "every algorithm improves (or holds) as initial nodes grow",
            all(
                t[a, self.INITIAL_NODES[i]] >= t[a, self.INITIAL_NODES[i + 1]] * 0.95
                for a in ALGORITHMS
                for i in range(len(self.INITIAL_NODES) - 1)
            ),
        )
        rep.check(
            "EHJAs beat Out-of-Core when initial nodes are few (<=4)",
            all(t[a, k] < t[ooc, k] for a in EHJAS for k in (1, 2, 4)),
        )
        rep.check(
            "split & hybrid beat replicated at <=4 initial nodes",
            all(
                t[a, k] < t[Algorithm.REPLICATE, k]
                for a in (Algorithm.SPLIT, Algorithm.HYBRID)
                for k in (1, 2, 4)
            ),
        )
        rep.check(
            "all four algorithms converge at 16 initial nodes (within 2%)",
            max(t[a, 16] for a in ALGORITHMS)
            <= 1.02 * min(t[a, 16] for a in ALGORITHMS),
        )
        rep.check(
            "split & hybrid are least sensitive to the initial estimate",
            all(
                t[a, 1] / t[a, 16] < t[Algorithm.REPLICATE, 1] / t[Algorithm.REPLICATE, 16]
                for a in (Algorithm.SPLIT, Algorithm.HYBRID)
            ),
        )
        return rep

    def fig03(self) -> FigureReport:
        res = self._init_sweep()
        rep = FigureReport(
            "Figure 3", "Hash table building time vs initial join nodes "
            "(uniform, R=S=10M tuples)",
            ["initial nodes"] + [_LABEL[a] for a in ALGORITHMS],
        )
        b = {
            (a, k): res[a, k].times.table_building_s / self.scale
            for a in ALGORITHMS for k in self.INITIAL_NODES
        }
        for k in self.INITIAL_NODES:
            rep.rows.append([k] + [b[a, k] for a in ALGORITHMS])
        rep.check(
            "hybrid's table-building time (build + reshuffle) exceeds "
            "replicated's at every under-provisioned start",
            all(
                b[Algorithm.HYBRID, k] > b[Algorithm.REPLICATE, k]
                for k in (1, 2, 4, 8)
            ),
        )
        rep.check(
            "replicated's plain build matches or beats split's once a few "
            "receivers exist (>= 4 initial nodes)",
            all(
                b[Algorithm.REPLICATE, k] <= 1.15 * b[Algorithm.SPLIT, k]
                for k in (4, 8)
            ),
        )
        rep.check(
            "build times converge at 16 initial nodes (within 2%)",
            max(b[a, 16] for a in ALGORITHMS)
            <= 1.02 * min(b[a, 16] for a in ALGORITHMS),
        )
        rep.notes.append(
            "at 1-2 initial nodes replicated's build is slower than "
            "split's in our model: a replica chain has a single active "
            "receiver NIC, while splits activate receivers in parallel "
            "(see EXPERIMENTS.md deviation notes)"
        )
        return rep

    def fig04(self) -> FigureReport:
        res = self._init_sweep()
        rep = FigureReport(
            "Figure 4", "Extra communication in the build phase (chunks; "
            "R = 1000 chunks)",
            ["initial nodes"] + [_LABEL[a] for a in EHJAS] + ["Size of Table R"],
        )
        size_r = 1000.0 * (res[Algorithm.SPLIT, 1].config.workload.r_tuples
                           / (10 * MTUPLES))
        e = {
            (a, k): res[a, k].extra_build_chunks()
            for a in EHJAS for k in self.INITIAL_NODES
        }
        for k in self.INITIAL_NODES:
            rep.rows.append([k] + [e[a, k] for a in EHJAS] + [size_r])
        rep.check(
            "split and hybrid both incur substantial extra build traffic "
            "at poor initial estimates (>= 3x replicated's)",
            all(
                e[a, k] > 3 * max(e[Algorithm.REPLICATE, k], 1.0)
                for a in (Algorithm.SPLIT, Algorithm.HYBRID)
                for k in (1, 2)
            ),
        )
        rep.check(
            "replicated causes the least extra build communication",
            all(
                e[Algorithm.REPLICATE, k] < e[a, k]
                for a in (Algorithm.SPLIT, Algorithm.HYBRID)
                for k in (1, 2, 4)
            ),
        )
        rep.check(
            "no extra communication at 16 initial nodes",
            all(e[a, 16] == 0 for a in EHJAS),
        )
        rep.check(
            "split's extra traffic at 1 initial node is comparable to the "
            "size of table R (>= 50%)",
            e[Algorithm.SPLIT, 1] >= 0.5 * size_r,
        )
        return rep

    def fig05(self) -> FigureReport:
        res = self._init_sweep()
        rep = FigureReport(
            "Figure 5", "Split time vs reshuffle time (uniform, R=S=10M)",
            ["initial nodes", "Split time", "Reshuffle time"],
        )
        split_t = {
            k: res[Algorithm.SPLIT, k].split_busy_s / self.scale
            for k in self.INITIAL_NODES
        }
        resh_t = {
            k: res[Algorithm.HYBRID, k].times.reshuffle_s / self.scale
            for k in self.INITIAL_NODES
        }
        for k in self.INITIAL_NODES:
            rep.rows.append([k, split_t[k], resh_t[k]])
        rep.check(
            "split overhead exceeds reshuffle overhead when the initial "
            "estimate is poor (<=4 nodes)",
            all(split_t[k] > resh_t[k] for k in (1, 2, 4)),
        )
        rep.check(
            "both overheads vanish at 16 initial nodes",
            split_t[16] == 0.0 and resh_t[16] < 1e-9 / self.scale,
        )
        rep.check(
            "both overheads shrink as the initial estimate improves",
            split_t[1] > split_t[8] and resh_t[1] > resh_t[8],
        )
        return rep

    # ------------------------------------------------------------------
    # Figure 6: table-size sweep (4 initial nodes, elastic pool)
    # ------------------------------------------------------------------
    def _size_sweep(self) -> dict[tuple[Algorithm, int], JoinRunResult]:
        return {
            (a, m): self.run(a, 4, r_m=m, s_m=m, pool=128)
            for a in ALGORITHMS
            for m in self.TABLE_SIZES_M
        }

    def fig06(self) -> FigureReport:
        res = self._size_sweep()
        rep = FigureReport(
            "Figure 6", "Total execution time vs table size "
            "(R=S, 4 initial nodes, elastic pool)",
            ["table size (M)"] + [_LABEL[a] for a in ALGORITHMS],
        )
        t = {
            (a, m): self._paper_s(res[a, m])
            for a in ALGORITHMS for m in self.TABLE_SIZES_M
        }
        for m in self.TABLE_SIZES_M:
            rep.rows.append([m] + [t[a, m] for a in ALGORITHMS])
        big, small = self.TABLE_SIZES_M[-1], self.TABLE_SIZES_M[0]
        growth = {a: t[a, big] / t[a, small] for a in ALGORITHMS}
        rep.check(
            "split and hybrid scale better with table size than replicated",
            growth[Algorithm.SPLIT] < growth[Algorithm.REPLICATE]
            and growth[Algorithm.HYBRID] < growth[Algorithm.REPLICATE],
        )
        rep.check(
            "split and hybrid beat replicated at the largest size",
            t[Algorithm.SPLIT, big] < t[Algorithm.REPLICATE, big]
            and t[Algorithm.HYBRID, big] < t[Algorithm.REPLICATE, big],
        )
        rep.notes.append(
            "pool widened to 128 potential nodes so the EHJAs can expand "
            "with the relation (see EXPERIMENTS.md)"
        )
        return rep

    # ------------------------------------------------------------------
    # Figure 7: tuple-size sweep
    # ------------------------------------------------------------------
    def _tuple_sweep(self) -> dict[tuple[Algorithm, int], JoinRunResult]:
        return {
            (a, tb): self.run(a, 4, tuple_bytes=tb, pool=80)
            for a in ALGORITHMS
            for tb in self.TUPLE_BYTES
        }

    def fig07(self) -> FigureReport:
        res = self._tuple_sweep()
        rep = FigureReport(
            "Figure 7", "Total execution time vs tuple size (R=S=10M)",
            ["tuple bytes"] + [_LABEL[a] for a in ALGORITHMS],
        )
        t = {
            (a, tb): self._paper_s(res[a, tb])
            for a in ALGORITHMS for tb in self.TUPLE_BYTES
        }
        for tb in self.TUPLE_BYTES:
            rep.rows.append([tb] + [t[a, tb] for a in ALGORITHMS])
        rep.check(
            "hybrid scales best with tuple size among the EHJAs",
            all(
                t[Algorithm.HYBRID, 400] / t[Algorithm.HYBRID, 100]
                <= t[a, 400] / t[a, 100]
                for a in (Algorithm.SPLIT, Algorithm.REPLICATE)
            ),
        )
        rep.check(
            "hybrid is fastest at the largest tuple size",
            all(
                t[Algorithm.HYBRID, 400] <= t[a, 400]
                for a in (Algorithm.SPLIT, Algorithm.REPLICATE)
            ),
        )
        return rep

    # ------------------------------------------------------------------
    # Figures 8/9: building from the larger relation
    # ------------------------------------------------------------------
    def _asym_sweep(self) -> dict[tuple[Algorithm, str], JoinRunResult]:
        out = {}
        for a in ALGORITHMS:
            out[a, "R10_S100"] = self.run(a, 4, r_m=10, s_m=100)
            out[a, "R100_S10"] = self.run(a, 4, r_m=100, s_m=10)
        return out

    def fig08(self) -> FigureReport:
        res = self._asym_sweep()
        rep = FigureReport(
            "Figure 8", "Total execution time when the larger relation "
            "builds the hash table",
            ["configuration"] + [_LABEL[a] for a in ALGORITHMS],
        )
        for key, label in (("R10_S100", "R=10M, S=100M"),
                           ("R100_S10", "R=100M, S=10M")):
            rep.rows.append(
                [label] + [self._paper_s(res[a, key]) for a in ALGORITHMS]
            )
        small = {a: self._paper_s(res[a, "R10_S100"]) for a in ALGORITHMS}
        rep.check(
            "split & hybrid win when probing with the larger relation "
            "(R=10M, S=100M)",
            all(
                small[a] < small[Algorithm.REPLICATE]
                for a in (Algorithm.SPLIT, Algorithm.HYBRID)
            ),
        )
        rep.check(
            "replicated never moves stored tuples: its extra build "
            "communication stays negligible even at R=100M, while split's "
            "grows with the expansion",
            res[Algorithm.REPLICATE, "R100_S10"].extra_build_chunks()
            < 0.2 * res[Algorithm.SPLIT, "R100_S10"].extra_build_chunks(),
        )
        repl_big = res[Algorithm.REPLICATE, "R100_S10"]
        spec = repl_big.config.effective_cluster
        dup_wire_s = (
            repl_big.probe_dup_chunks()
            * repl_big.config.workload.chunk_bytes
            / (spec.n_sources * spec.cost.net_bandwidth)
        )
        rep.check(
            "replicated's probe broadcast is cheap when S is the small "
            "relation: duplicate traffic costs < 30% of the total at "
            "R=100M, S=10M",
            dup_wire_s < 0.3 * repl_big.total_s,
        )
        rep.notes.append(
            "DEVIATION: the paper reports replication fastest overall at "
            "R=100M,S=10M; in our model the whole cluster memory is ~6x "
            "too small for R=100M, and replication funnels the overflow "
            "through the 4 active replicas' disks while split spreads it "
            "over all 24 — see EXPERIMENTS.md for the arithmetic"
        )
        return rep

    def fig09(self) -> FigureReport:
        res = self._asym_sweep()
        rep = FigureReport(
            "Figure 9", "Hash table building time when the larger relation "
            "builds the hash table",
            ["configuration"] + [_LABEL[a] for a in ALGORITHMS],
        )
        for key, label in (("R10_S100", "R=10M, S=100M"),
                           ("R100_S10", "R=100M, S=10M")):
            rep.rows.append(
                [label]
                + [res[a, key].times.table_building_s / self.scale
                   for a in ALGORITHMS]
            )
        b10 = {a: res[a, "R10_S100"].times.table_building_s for a in ALGORITHMS}
        rep.check(
            "replicated's build is cheapest (or tied) when the build "
            "relation fits the expanded cluster (R=10M case)",
            all(b10[Algorithm.REPLICATE] <= 1.15 * b10[a]
                for a in (Algorithm.SPLIT, Algorithm.HYBRID)),
        )
        rep.notes.append(
            "DEVIATION: in the R=100M case our replication build pays the "
            "concentrated-spill penalty (4 active disks vs split's 24) "
            "that dominates the paper-reported ordering; see EXPERIMENTS.md"
        )
        return rep

    # ------------------------------------------------------------------
    # Figures 10-13: skew sweep (4 initial nodes, R=S=10M)
    # ------------------------------------------------------------------
    def _skew_sweep(self) -> dict[tuple[Algorithm, float | None], JoinRunResult]:
        return {
            (a, s): self.run(a, 4, sigma=s)
            for a in ALGORITHMS
            for s in self.SKEWS
        }

    @staticmethod
    def _skew_label(sigma: float | None) -> str:
        return "uniform" if sigma is None else f"sigma = {sigma}"

    def fig10(self) -> FigureReport:
        res = self._skew_sweep()
        rep = FigureReport(
            "Figure 10", "Total execution time vs data skew "
            "(R=S=10M, 4 initial nodes)",
            ["distribution"] + [_LABEL[a] for a in ALGORITHMS],
        )
        t = {(a, s): self._paper_s(res[a, s])
             for a in ALGORITHMS for s in self.SKEWS}
        for s in self.SKEWS:
            rep.rows.append(
                [self._skew_label(s)] + [t[a, s] for a in ALGORITHMS]
            )
        rep.check(
            "extreme skew (sigma=0.0001) degrades every algorithm",
            all(t[a, 0.0001] > t[a, None] for a in ALGORITHMS),
        )
        rep.check(
            "hybrid degrades the least under extreme skew",
            all(
                t[Algorithm.HYBRID, 0.0001] / t[Algorithm.HYBRID, None]
                <= t[a, 0.0001] / t[a, None]
                for a in (Algorithm.SPLIT, Algorithm.REPLICATE)
            ),
        )
        rep.check(
            "split performs worst among the EHJAs under extreme skew",
            all(
                t[Algorithm.SPLIT, 0.0001] > t[a, 0.0001]
                for a in (Algorithm.REPLICATE, Algorithm.HYBRID)
            ),
        )
        rep.check(
            "hybrid is the best algorithm under extreme skew",
            all(
                t[Algorithm.HYBRID, 0.0001] <= t[a, 0.0001]
                for a in ALGORITHMS
            ),
        )
        return rep

    def fig11(self) -> FigureReport:
        res = self._skew_sweep()
        rep = FigureReport(
            "Figure 11", "Extra build-phase communication vs data skew "
            "(chunks; R = 1000 chunks)",
            ["distribution"] + [_LABEL[a] for a in EHJAS] + ["Size of Table R"],
        )
        e = {(a, s): res[a, s].extra_build_chunks()
             for a in EHJAS for s in self.SKEWS}
        size_r = 1000.0
        for s in self.SKEWS:
            rep.rows.append(
                [self._skew_label(s)] + [e[a, s] for a in EHJAS] + [size_r]
            )
        rep.check(
            "split moves the same tuples repeatedly under extreme skew "
            "(extra traffic comparable to table R)",
            e[Algorithm.SPLIT, 0.0001] >= 0.5 * size_r,
        )
        rep.check(
            "split's extra traffic exceeds replicated's and hybrid's under "
            "extreme skew",
            all(
                e[Algorithm.SPLIT, 0.0001] > e[a, 0.0001]
                for a in (Algorithm.REPLICATE, Algorithm.HYBRID)
            ),
        )
        rep.check(
            "replicated's extra build traffic stays small at every skew "
            "(< 20% of table R)",
            all(e[Algorithm.REPLICATE, s] < 0.2 * size_r for s in self.SKEWS),
        )
        return rep

    def fig12(self) -> FigureReport:
        return self._load_figure(None, "Figure 12")

    def fig13(self) -> FigureReport:
        return self._load_figure(0.0001, "Figure 13")

    def _load_figure(self, sigma: float | None, figure: str) -> FigureReport:
        res = self._skew_sweep()
        rep = FigureReport(
            figure,
            f"Load balance across join nodes ({self._skew_label(sigma)}; "
            "avg/max/min stored tuples in chunks)",
            ["algorithm", "Average Load", "Maximum Load", "Minimum Load",
             "max/avg"],
        )
        lbs = {a: load_balance(res[a, sigma]) for a in EHJAS}
        for a in EHJAS:
            lb = lbs[a]
            rep.rows.append(
                [_LABEL[a], lb.avg_chunks, lb.max_chunks, lb.min_chunks,
                 lb.imbalance]
            )
        if sigma is None:
            rep.check(
                "split and hybrid are well balanced under uniform data "
                "(max/avg < 1.2)",
                lbs[Algorithm.SPLIT].imbalance < 1.2
                and lbs[Algorithm.HYBRID].imbalance < 1.2,
            )
        else:
            rep.check(
                "split suffers heavy load imbalance under extreme skew",
                lbs[Algorithm.SPLIT].imbalance
                > 2.0 * lbs[Algorithm.HYBRID].imbalance,
            )
            rep.check(
                "hybrid maintains a relatively good balance under extreme "
                "skew (max/avg < 2)",
                lbs[Algorithm.HYBRID].imbalance < 2.0,
            )
        return rep

    # ------------------------------------------------------------------
    # §4.2.4 model validation
    # ------------------------------------------------------------------
    def model_validation(self) -> FigureReport:
        from ..analysis import split_moved_capacity_model

        res = self._init_sweep()
        rep = FigureReport(
            "Model (§4.2.4)",
            "Analytic overhead model vs measured transfer volumes "
            "(split: n_splits * B/2 with B = bucket capacity; "
            "reshuffle: (E-1)/E * R)",
            ["initial nodes", "expansion E", "splits", "split moved (model)",
             "split moved (measured)", "reshuffle moved (model)",
             "reshuffle moved (measured)"],
        )
        wl = res[Algorithm.SPLIT, 1].config.workload
        r_tuples = wl.real_r_tuples
        cap_tuples = (
            res[Algorithm.SPLIT, 1].config.effective_cluster.hash_memory_bytes
            // wl.tuple_bytes
        )
        model = OverheadModel(bucket_bytes=cap_tuples * wl.tuple_bytes,
                              t_w=1.0)
        ok_split = True
        ok_hyb = True
        for k in self.INITIAL_NODES:
            split_run = res[Algorithm.SPLIT, k]
            hyb_run = res[Algorithm.HYBRID, k]
            e = split_run.nodes_used / k
            pm_split = split_moved_capacity_model(split_run.n_splits, cap_tuples)
            pm_hyb = model.predicted_tuples_moved_hybrid(
                r_tuples, hyb_run.nodes_used / k
            )
            ms = split_run.split_moved_tuples
            mh = hyb_run.reshuffle_moved_tuples
            rep.rows.append(
                [k, e, split_run.n_splits, pm_split, float(ms), pm_hyb, float(mh)]
            )
            if pm_split > 0 and not (0.25 * pm_split <= ms <= 1.25 * pm_split):
                ok_split = False
            if pm_hyb > 0 and abs(mh - pm_hyb) > 0.3 * pm_hyb:
                ok_hyb = False
        rep.check(
            "measured split traffic matches n_splits * capacity/2 "
            "(within [0.25x, 1.25x])",
            ok_split,
        )
        rep.check(
            "measured reshuffle traffic within 30% of (E-1)/E * R",
            ok_hyb,
        )
        # The paper's asymptotic formulas: T_split/T_hybrid grows with E.
        ratio_small = (model.split_s(2.0) / model.hybrid_s(2.0))
        ratio_large = (model.split_s(16.0) / model.hybrid_s(16.0))
        rep.check(
            "the paper's analytic conclusion holds: T_split/T_hybrid grows "
            "with the expansion factor (asymptotic formulas)",
            ratio_large > ratio_small,
        )
        rep.notes.append(
            "measured transfer volumes follow the capacity-granular form "
            "(splits trigger at bucket capacity); the wall-clock gap of "
            "Figure 5 comes from split serialization vs parallel reshuffle"
        )
        return rep

    # ------------------------------------------------------------------
    def all_figures(self) -> list[FigureReport]:
        """Every reproduced figure plus the analytic-model validation."""
        return [
            self.fig02(), self.fig03(), self.fig04(), self.fig05(),
            self.fig06(), self.fig07(), self.fig08(), self.fig09(),
            self.fig10(), self.fig11(), self.fig12(), self.fig13(),
            self.model_validation(),
        ]
