"""The non-expanding out-of-core baseline ("Out of Core" in the figures).

Only the initial join nodes are ever used.  When a node's bucket memory is
exceeded it spills Grace-style to its local disk (``auto_spill``), probes
arrive normally, and after the probe stream drains each spilled node runs
its out-of-core bucket passes (:class:`~repro.core.joinnode.SpillStore`).
The scheduler never expands, so ``expand`` is unreachable.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

from ..hashing import RangeRouter, Router, partition_positions
from .messages import ReliefAck
from .strategy import ExpansionStrategy

__all__ = ["OutOfCoreStrategy"]


class OutOfCoreStrategy(ExpansionStrategy):
    """No expansion; join nodes degrade to disk on overflow."""

    auto_spill = True

    def make_initial_router(self, initial: list[int]) -> Router:
        ranges = partition_positions(self.sched.cfg.hash_positions, len(initial))
        return RangeRouter.initial(ranges, initial, self.sched.cfg.hash_positions)

    def expand(self, reporter: int) -> Generator[Any, Any, ReliefAck]:
        raise AssertionError(
            "OOC join nodes spill locally and never report memory-full"
        )
