"""Replication-based expansion (paper §4.2.2).

When a join node's bucket overflows, its hash-table range is **replicated**
on a freshly recruited node: the full node stops receiving build tuples
(forwarding anything pending), the data sources redirect the range's
remaining build traffic to the replica.  No stored tuple ever moves, so the
build phase stays cheap — but every probe tuple whose hash falls in a
replicated range must be broadcast to the entire replica chain, which is
the strategy's probe-phase cost (handled by ``RangeRouter.partition_probe``).
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

from ..hashing import RangeRouter, Router, partition_positions
from .messages import ActivateJoin, ReliefAck, ReplicateOrder, RouteUpdate
from .strategy import ExpansionStrategy

__all__ = ["ReplicationStrategy"]


class ReplicationStrategy(ExpansionStrategy):
    """Replicate the overflowing range on the new node."""

    def make_initial_router(self, initial: list[int]) -> Router:
        ranges = partition_positions(self.sched.cfg.hash_positions, len(initial))
        return RangeRouter.initial(ranges, initial, self.sched.cfg.hash_positions)

    def expand(self, reporter: int) -> Generator[Any, Any, ReliefAck]:
        sched = self.sched
        router: RangeRouter = sched.router  # type: ignore[assignment]
        idx = _entry_of_active(router, reporter)
        rng, _chain = router.entries[idx]

        # Recruit the replica with the same hash range (acked — a dead
        # recruit is retried on a different pool node, and routing only
        # ever references confirmed-live replicas), then tell the full
        # node to forward its pending buffers and close.
        new_node = yield from sched.recruit_node(
            lambda j: ActivateJoin(j, hash_range=rng)
        )
        if new_node is None:
            return (yield from self.fallback_spill(reporter))
        # WAL before mutating the table: a standby re-drives from here.
        yield from sched.wal_decision(("replicate", reporter, new_node),
                                      parties=(reporter, new_node))
        sched.router = router.with_replica(idx, new_node, sched.next_version())
        yield from sched.send_to_join(reporter, ReplicateOrder(new_node=new_node))
        yield from sched.broadcast_to_sources(RouteUpdate(sched.router))
        sched.mark_full(reporter)
        sched.ctx.trace("expand_replicate", "scheduler",
                        reporter=reporter, new_node=new_node, range=str(rng))
        ack = yield from sched.await_relief_ack(reporter)
        yield from sched.clear_decision()
        return ack

    def redrive(self, pending: tuple) -> Generator[Any, Any, ReliefAck]:
        """Re-drive a WAL'd replication: the snapshot table predates the
        decision, so apply the replica if absent, then repeat the (wholly
        idempotent) order/update/ack sequence."""
        _kind, reporter, new_node = pending[0], int(pending[1]), int(pending[2])
        sched = self.sched
        router: RangeRouter = sched.router  # type: ignore[assignment]
        idx = _entry_of_active(router, reporter)
        if new_node not in router.entries[idx][1]:
            sched.router = router.with_replica(idx, new_node,
                                               sched.next_version())
        yield from sched.send_to_join(reporter, ReplicateOrder(new_node=new_node))
        yield from sched.broadcast_to_sources(RouteUpdate(sched.router))
        sched.mark_full(reporter)
        return (yield from sched.await_relief_ack(reporter))


def _entry_of_active(router: RangeRouter, node: int) -> int:
    """Index of the entry whose *active* (newest) replica is ``node``."""
    for i, (_rng, chain) in enumerate(router.entries):
        if chain[-1] == node:
            return i
    raise LookupError(f"node {node} is not an active replica of any range")
