"""Expansion-strategy interface.

A strategy encapsulates what the scheduler does when a join node reports
*memory full* (paper §4.2): recruit a node and either split, replicate, or
— for the non-expanding baseline — nothing (join nodes spill to disk on
their own).  Strategies run *inside* the scheduler process and use its
messaging/await helpers; each ``expand`` call is one complete relief cycle
ending with the reporter's :class:`~repro.core.messages.ReliefAck`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Generator
from typing import TYPE_CHECKING, Any

from ..config import Algorithm, RunConfig
from ..hashing import Router
from .messages import ReliefAck, SpillOrder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .scheduler import SchedulerProcess

__all__ = ["ExpansionStrategy", "make_strategy"]


class ExpansionStrategy(ABC):
    """One relief policy; owned and driven by the scheduler process."""

    #: hybrid runs the reshuffling step between build and probe
    needs_reshuffle: bool = False
    #: OOC join nodes spill to disk instead of reporting memory-full
    auto_spill: bool = False

    def __init__(self, sched: SchedulerProcess) -> None:
        self.sched = sched

    @abstractmethod
    def make_initial_router(self, initial: list[int]) -> Router:
        """Initial bucket assignment: one bucket per initial join node."""

    @abstractmethod
    def expand(self, reporter: int) -> Generator[Any, Any, ReliefAck]:
        """Run one relief cycle for ``reporter`` (a full node).

        Must allocate the new node itself (so fallbacks do not leak pool
        slots) and return the reporter's ReliefAck.
        """

    def probe_router(self) -> Router:
        """Routing table for the probe phase (default: current table)."""
        return self.sched.router

    # ------------------------------------------------------------------
    # control-plane fault tolerance hooks (repro.core.membership)
    # ------------------------------------------------------------------
    def adopt_router(self, router: Router, activated: list[int]) -> None:
        """Rebuild strategy-private state from a routing table.

        Called after a standby takeover (the table came from a snapshot)
        and after a crash-recovery takeover rewrote it.  Default: the
        strategy keeps no state beyond the table itself."""

    def redrive(self, pending: tuple) -> Generator[Any, Any, ReliefAck | None]:
        """Idempotently re-drive a WAL'd relief decision after a standby
        takeover.  Strategies that never WAL (no expansion, or expansion
        without multi-step commitment) cannot see one."""
        raise RuntimeError(
            f"{type(self).__name__} cannot re-drive pending decision "
            f"{pending!r}"
        )
        yield  # pragma: no cover - makes this a generator

    # ------------------------------------------------------------------
    # shared fallback
    # ------------------------------------------------------------------
    def fallback_spill(self, reporter: int) -> Generator[Any, Any, ReliefAck]:
        """Pool exhausted (or range atomic): degrade the reporter to local
        out-of-core spilling.  Documented deviation — the paper's
        experiments never exhaust the potential pool."""
        sched = self.sched
        sched.spilled_nodes.add(reporter)
        sched.ctx.trace("fallback_spill", "scheduler", reporter=reporter)
        yield from sched.send_to_join(reporter, SpillOrder())
        return (yield from sched.await_relief_ack(reporter))


def make_strategy(sched: SchedulerProcess, cfg: RunConfig) -> ExpansionStrategy:
    """Strategy factory keyed on the configured algorithm."""
    from .hybrid import HybridStrategy
    from .ooc import OutOfCoreStrategy
    from .replicate import ReplicationStrategy
    from .split import SplitStrategy

    if cfg.algorithm is Algorithm.REPLICATE:
        return ReplicationStrategy(sched)
    if cfg.algorithm is Algorithm.HYBRID:
        return HybridStrategy(sched)
    if cfg.algorithm is Algorithm.SPLIT:
        return SplitStrategy(sched, cfg.split_policy)
    if cfg.algorithm is Algorithm.OUT_OF_CORE:
        return OutOfCoreStrategy(sched)
    raise ValueError(f"unknown algorithm {cfg.algorithm}")
