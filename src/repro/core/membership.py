"""Control-plane fault tolerance: failure detection and scheduler failover.

Two actors live here, both only built when the fault plan arms the
membership layer (``FaultPlan.membership_active``):

* :class:`Membership` — the primary scheduler's heartbeat failure
  detector.  It pings every watched join node (and the standby) over the
  same faulty interconnect the data flows on — there is **no oracle**: a
  slowed link is indistinguishable from a dead peer, so the detector uses
  a two-stage timeout (*suspect* then *confirm*) and publishes a
  ``membership.false_positive`` metric whenever a suspicion resolves.
  Only a *confirmed* silence becomes a :class:`DeathVerdict`, which the
  scheduler turns into a recovery cycle (``SchedulerProcess``); a falsely
  declared node is fenced — never trusted again — but the query still
  terminates with exact counts because its hash range is re-streamed to a
  fresh node and the survivor quarantines itself on ``NodeLost``.
* :class:`BackupSchedulerProcess` — a standby scheduler that passively
  replicates the primary's routing decisions (:class:`StateSync`, shipped
  WAL-style *before* the primary acts) and watches a dead-man timer fed
  by any primary traffic.  When the primary falls silent past the confirm
  timeout it takes over: repoints ``ctx.scheduler_node``, deposes the old
  primary (split-brain backstop), rebuilds a :class:`SchedulerProcess`
  from the last snapshot, re-drives the in-flight decision and resumes
  the interrupted phase.  Everyone else re-announces state the primary
  may have taken to its grave on :class:`SchedulerFailover`.

Timing defaults derive from the drain-poll interval so one knob scales
the whole control plane; all three can be pinned in the fault plan.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..sim import Interrupt
from .messages import (
    DeathVerdict,
    Depose,
    HeartbeatAck,
    HeartbeatPing,
    PollTick,
    Shutdown,
    StateSync,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..config import RunConfig
    from ..faults import FaultPlan
    from .context import RunContext
    from .scheduler import SchedulerProcess

__all__ = ["MembershipTiming", "resolve_timing", "Membership",
           "BackupSchedulerProcess"]


@dataclass(frozen=True)
class MembershipTiming:
    """Resolved detector timings (simulated seconds)."""

    interval: float  #: heartbeat period
    suspect: float   #: silence before a node is suspected
    confirm: float   #: silence before a suspected node is declared dead


def resolve_timing(plan: FaultPlan, cfg: RunConfig) -> MembershipTiming:
    """Fill unset knobs from the drain-poll interval.

    Defaults are deliberately generous (suspect at 6 missed heartbeats,
    confirm at 20) so congestion alone rarely produces a false verdict;
    tests pin tighter values to exercise the false-positive path."""
    interval = plan.heartbeat_interval_s or 2.0 * cfg.effective_drain_poll
    suspect = plan.suspect_timeout_s or 6.0 * interval
    confirm = plan.confirm_timeout_s or 20.0 * interval
    return MembershipTiming(interval, suspect, max(confirm, suspect))


class Membership:
    """Heartbeat failure detector, run by the *primary* scheduler.

    One generator (:meth:`loop`) pings; ack bookkeeping (:meth:`note_ack`)
    is driven by the scheduler's dispatch, because acks arrive in the
    scheduler mailbox.  Verdicts are delivered as local
    :class:`DeathVerdict` messages into the same mailbox, so the
    scheduler consumes them at a protocol-safe point (a message
    boundary), never mid-decision.
    """

    def __init__(self, sched: SchedulerProcess) -> None:
        self.sched = sched
        self.ctx: RunContext = sched.ctx
        assert self.ctx.faults is not None
        self.timing = resolve_timing(self.ctx.faults.plan, self.ctx.cfg)
        self._token = 0
        self._last_ack: dict[int, float] = {}
        self.suspected: set[int] = set()
        self._declared: set[int] = set()

    # ------------------------------------------------------------------
    def note_ack(self, msg: HeartbeatAck) -> None:
        """An ack arrived; a live suspicion resolving is a false positive."""
        j = msg.node
        self._last_ack[j] = self.ctx.sim.now
        if j in self.suspected:
            self.suspected.discard(j)
            if j not in self._declared:
                self.ctx.metrics.inc("membership.false_positive", 1)
                self.ctx.trace("suspicion_cleared", "scheduler", node=j)

    # ------------------------------------------------------------------
    def loop(self, flag: Any) -> Generator[Any, Any, None]:
        """Ping watched nodes each interval and grade their silence.

        Pings are best-effort (single transmit, no retransmission): a
        *lost* heartbeat must look exactly like a dead peer, or the
        detector would be an oracle.  The standby is pinged too, so its
        dead-man timer stays fresh between state syncs.

        The stop flag covers the idle path; a halt that lands while a
        ping is mid-send arrives as an :class:`Interrupt` instead (a
        crashed primary can strand this loop on its node's dead CPU
        forever — the flag alone is only checked between ticks)."""
        try:
            yield from self._loop(flag)
        except Interrupt:
            return

    def _loop(self, flag: Any) -> Generator[Any, Any, None]:
        ctx = self.ctx
        sched = self.sched
        while not flag.stopped:
            yield ctx.sim.timeout(self.timing.interval)
            if flag.stopped:
                return
            self._token += 1
            now = ctx.sim.now
            watched = [j for j in sched.activated if j not in sched.fenced]
            for j in watched:
                self._last_ack.setdefault(j, now)
                yield from ctx.send(
                    sched.node, ctx.join_node(j),
                    HeartbeatPing(self._token), best_effort=True,
                )
                ctx.metrics.inc("membership.pings", 1)
            backup = ctx.backup_node
            if backup is not None and backup is not sched.node:
                yield from ctx.send(
                    sched.node, backup, HeartbeatPing(self._token),
                    best_effort=True,
                )
            if sched._phase not in ("build", "probe"):
                # Grading pauses outside the recovery envelope: reshuffle
                # and out-of-core passes park nodes in long disk/transfer
                # operations where silence means busy, not dead — and a
                # verdict here could not be acted on anyway.  Pings (and
                # the standby dead-man refresh) continue so acks keep
                # clearing suspicions.
                continue
            for j in watched:
                if j in self._declared:
                    continue
                silent = now - self._last_ack.get(j, now)
                if silent >= self.timing.confirm and j in self.suspected:
                    self._declared.add(j)
                    ctx.metrics.inc("membership.deaths_declared", 1)
                    ctx.trace("death_declared", "scheduler", node=j,
                              silent_s=silent)
                    sched.node.mailbox.put(DeathVerdict(j))
                elif silent >= self.timing.suspect and j not in self.suspected:
                    self.suspected.add(j)
                    ctx.metrics.inc("membership.suspected", 1)
                    ctx.trace("suspected", "scheduler", node=j,
                              silent_s=silent)


class BackupSchedulerProcess:
    """Standby scheduler: replicate passively, take over on silence.

    The dead-man timer resets on *any* primary traffic (heartbeats or
    state syncs) and fires after the membership confirm timeout.  On
    takeover the backup's node becomes "the scheduler" for every actor
    (see ``RunContext.set_scheduler_node``) and a fresh
    :class:`SchedulerProcess` — running inline in this process, on this
    mailbox — adopts the last snapshot and resumes the interrupted phase.
    The query outcome then lives in ``self.outcome`` (the driver falls
    back to it when the primary returned none).
    """

    def __init__(self, ctx: RunContext) -> None:
        assert ctx.backup_node is not None
        assert ctx.faults is not None
        self.ctx = ctx
        self.node = ctx.backup_node
        self.outcome: Any = None
        #: the adopted SchedulerProcess after a takeover (diagnostics)
        self.scheduler: SchedulerProcess | None = None
        #: the spawned simulation process (set by spawn_query_pipeline)
        self.proc: Any = None
        self.timing = resolve_timing(ctx.faults.plan, ctx.cfg)
        self._stopped = False

    # ------------------------------------------------------------------
    def run(self) -> Generator[Any, Any, None]:
        ctx = self.ctx
        ctx.sim.spawn(self._tick_loop(), name="backup-deadman")
        last_primary = ctx.sim.now
        sync: StateSync | None = None
        try:
            while True:
                msg = yield from self.node.mailbox.recv()
                if isinstance(msg, StateSync):
                    if sync is None or msg.sync_seq > sync.sync_seq:
                        sync = msg
                    last_primary = ctx.sim.now
                elif isinstance(msg, HeartbeatPing):
                    last_primary = ctx.sim.now
                elif isinstance(msg, PollTick):
                    if ctx.sim.now - last_primary >= self.timing.confirm:
                        self._stopped = True
                        self.outcome = yield from self._takeover(sync)
                        return
                elif isinstance(msg, Shutdown):
                    return  # primary finished the query; stand down
                # anything else is stray traffic for a standby: ignore
        finally:
            self._stopped = True

    def _tick_loop(self) -> Generator[Any, Any, None]:
        """Local dead-man ticks (never cross the network)."""
        while not self._stopped:
            yield self.ctx.sim.timeout(self.timing.interval)
            self.node.mailbox.put(PollTick())

    # ------------------------------------------------------------------
    def _takeover(self, sync: StateSync | None) -> Generator[Any, Any, Any]:
        ctx = self.ctx
        ctx.metrics.inc("sched.failover_count", 1)
        ctx.trace("failover", "backup",
                  phase=sync.phase if sync is not None else "fresh",
                  sync_seq=sync.sync_seq if sync is not None else -1)
        old_primary = ctx.cluster.scheduler_node
        ctx.set_scheduler_node(self.node)
        # Split-brain backstop: if the primary is merely slow (a false
        # dead-man verdict), it must stand down — two schedulers driving
        # one query would both run relief cycles and corrupt the router.
        yield from ctx.send(self.node, old_primary,
                            Depose(self.node.node_id))
        from .scheduler import SchedulerProcess

        sched = SchedulerProcess(ctx)  # resolves to the backup node now
        self.scheduler = sched
        return (yield from sched.resume_after_takeover(sync))
