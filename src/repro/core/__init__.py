"""The paper's contribution: Expanding Hash-based Join Algorithms.

Actors (scheduler / data sources / join processes, §4.1), the three
expansion strategies plus the out-of-core baseline (§4.2), and the run
driver that assembles a :class:`JoinRunResult` per simulated join.
"""

from .context import RunContext
from .datasource import DataSourceProcess
from .driver import run_join
from .hybrid import HybridStrategy
from .joinnode import JoinProcess, SpillStore
from .messages import DataChunk, Hop
from .ooc import OutOfCoreStrategy
from .pool import PoolClient, PoolStats, ResourcePoolProcess
from .replicate import ReplicationStrategy
from .results import CommStats, JoinRunResult, NodeLoad, NodeUtilization, PhaseTimes
from .scheduler import SchedulerProcess
from .split import SplitStrategy
from .strategy import ExpansionStrategy, make_strategy

__all__ = [
    "CommStats",
    "DataChunk",
    "DataSourceProcess",
    "ExpansionStrategy",
    "Hop",
    "HybridStrategy",
    "JoinProcess",
    "JoinRunResult",
    "NodeLoad",
    "NodeUtilization",
    "OutOfCoreStrategy",
    "PhaseTimes",
    "PoolClient",
    "PoolStats",
    "ReplicationStrategy",
    "ResourcePoolProcess",
    "RunContext",
    "SchedulerProcess",
    "SpillStore",
    "SplitStrategy",
    "make_strategy",
    "run_join",
]
