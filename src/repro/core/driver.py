"""Run driver: wire the actors, run the simulation, assemble the result.

This is the public entry point::

    from repro import run_join, RunConfig, Algorithm

    result = run_join(RunConfig(algorithm=Algorithm.HYBRID, initial_nodes=4))
    print(result.summary())

The driver also validates the run end-to-end by default: the distributed
match count must equal the sequential oracle on the identical relations,
and the network must conserve bytes.

The assembly half (`assemble_result`) is shared with the multi-tenant
workload driver (:mod:`repro.workload`), which runs many of these
pipelines inside one simulator and turns each scheduler outcome into a
per-query :class:`JoinRunResult` with the same code path.
"""

from __future__ import annotations

from ..config import Algorithm, RunConfig
from ..data import materialize_relation
from ..obs import (
    PHASE_NAMES,
    SCHEDULER_TRACK,
    BoundedCausalLog,
    BoundedSpanLog,
    PhaseTimeline,
    harvest_network,
    harvest_nodes,
    harvest_simulator,
)
from ..seqjoin import match_count
from ..sim import Simulator
from .context import RunContext
from .datasource import DataSourceProcess
from .joinnode import JoinProcess
from .messages import Hop
from .results import JoinRunResult, NodeLoad, NodeUtilization, PhaseTimes
from .scheduler import SchedulerOutcome, SchedulerProcess

__all__ = ["run_join", "assemble_result", "spawn_query_pipeline"]


def spawn_query_pipeline(
    ctx: RunContext, *, spawn_joins: bool = True,
) -> SchedulerProcess:
    """Spawn one query's scheduler + sources (+ optionally all join nodes).

    Single-query mode spawns a JoinProcess for the entire potential pool up
    front.  Workload mode passes ``spawn_joins=False``: join processes are
    created lazily, one per pool *grant*, by the workload driver's adopt
    callback — a dormant shared node must not be bound to any one query.
    Returns the scheduler process object; its spawned simulation process is
    available as ``ctx.sim`` process return value via the caller's spawn.
    """
    scheduler = SchedulerProcess(ctx)
    scheduler.proc = ctx.sim.spawn(
        scheduler.run(), name=f"scheduler-q{ctx.query}"
    )

    # Control-plane fault tolerance (single-query mode only): a standby
    # scheduler that passively replicates state and takes over on primary
    # silence.  The driver reads the query outcome from whichever of the
    # two actually finished it.
    scheduler.backup = None
    if (
        spawn_joins
        and ctx.faults is not None
        and ctx.faults.plan.membership_active
        and ctx.backup_node is not None
    ):
        from .membership import BackupSchedulerProcess

        backup = BackupSchedulerProcess(ctx)
        backup.proc = ctx.sim.spawn(backup.run(), name="sched-backup")
        scheduler.backup = backup

    if spawn_joins:
        auto_spill = ctx.cfg.algorithm is Algorithm.OUT_OF_CORE
        joins = [
            JoinProcess(ctx, j, auto_spill=auto_spill)
            for j in range(ctx.n_potential)
        ]
        join_procs = {}
        for jp in joins:
            join_procs[jp.index] = ctx.sim.spawn(jp.run(), name=f"join{jp.index}")
        if ctx.faults is not None:
            ctx.faults.attach_scheduler(scheduler.proc)
            ctx.faults.attach_joins(join_procs, {jp.index: jp for jp in joins})
            ctx.faults.start()

    sources = [
        DataSourceProcess(ctx, s, scheduler.router) for s in range(ctx.n_sources)
    ]
    for sp in sources:
        ctx.sim.spawn(sp.run(), name=f"src{sp.index}-q{ctx.query}")
    return scheduler


def assemble_result(
    ctx: RunContext,
    outcome: SchedulerOutcome,
    validate: bool,
    span_track: str = SCHEDULER_TRACK,
) -> JoinRunResult:
    """Turn a finished scheduler outcome into a validated JoinRunResult.

    Phase times are measured from ``outcome.t_start`` (nonzero in workload
    mode, where a query's pipeline starts at its arrival time), so the
    per-query latency accounting is arrival-relative while the span
    timeline keeps absolute simulated time.
    """
    cfg = ctx.cfg
    # Fold the probe-side replica duplicates into the hop accounting.
    if outcome.probe_dup_tuples:
        ctx.comm.tuples_by_hop[Hop.PROBE_DUP] = outcome.probe_dup_tuples

    times = PhaseTimes(
        build_s=outcome.t_build - outcome.t_start,
        reshuffle_s=outcome.t_reshuffle - outcome.t_build,
        probe_s=outcome.t_probe - outcome.t_reshuffle,
        ooc_pass_s=outcome.t_ooc - outcome.t_probe,
    )

    # Scheduler-track phase spans come straight from the outcome stamps, so
    # the chrome trace's phase lanes agree with PhaseTimes by construction.
    boundaries = (
        outcome.t_start, outcome.t_build, outcome.t_reshuffle,
        outcome.t_probe, outcome.t_ooc,
    )
    for name, t0, t1 in zip(PHASE_NAMES, boundaries, boundaries[1:]):
        if t1 > t0 or name == "build":
            ctx.spans.add(span_track, name, t0, t1)

    reports = outcome.final_reports
    loads = [
        NodeLoad(
            node=j,
            stored_tuples=r.stored_tuples,
            activated_at=r.activated_at,
            peak_memory=r.peak_memory,
            spilled_r_tuples=r.spilled_r_tuples,
        )
        for j, r in sorted(reports.items())
    ]
    matches = sum(r.matches for r in reports.values())

    reference = None
    if validate:
        r_values = materialize_relation(cfg.workload, "R", ctx.n_sources)
        s_values = materialize_relation(cfg.workload, "S", ctx.n_sources)
        reference = match_count(r_values, s_values)
        if matches != reference:
            raise AssertionError(
                f"join result mismatch: distributed={matches} oracle={reference} "
                f"({cfg.algorithm.value}, initial={cfg.initial_nodes})"
            )
        stored_total = sum(l.stored_tuples for l in loads)
        spilled_total = sum(r.spilled_r_tuples for r in reports.values())
        if stored_total + spilled_total != r_values.size:
            raise AssertionError(
                f"build tuples lost: stored={stored_total} spilled={spilled_total} "
                f"generated={r_values.size}"
            )

    result = JoinRunResult(
        config=cfg,
        times=times,
        matches=matches,
        reference_matches=reference,
        comm=ctx.comm,
        loads=loads,
        nodes_used=len(outcome.activated),
        expansion_trace=list(outcome.expansion_trace),
        n_splits=outcome.n_splits,
        split_moved_tuples=outcome.split_moved_tuples,
        # Split time (Figure 5): serialized relief-cycle overhead plus the
        # wall time of the actual split transfers on the join nodes.
        split_busy_s=outcome.split_busy_s
        + sum(r.split_transfer_s for r in reports.values()),
        reshuffle_moved_tuples=outcome.reshuffle_moved_tuples,
        overcommit_bytes=sum(r.overcommit_bytes for r in reports.values()),
        spilled_r_tuples=sum(r.spilled_r_tuples for r in reports.values()),
        spilled_s_tuples=sum(r.spilled_s_tuples for r in reports.values()),
        output_tuples=sum(r.output_tuples for r in reports.values()),
        output_spilled_tuples=sum(
            r.output_spilled_tuples for r in reports.values()
        ),
        output_sink_nodes=sum(
            1 for r in reports.values() if r.is_output_sink
        ),
        timeline=PhaseTimeline(ctx.spans.spans),
        tracer=ctx.tracer,
        causal=ctx.causal,
    )
    if validate and cfg.materialize_output:
        kept = result.output_tuples + result.output_spilled_tuples
        if kept != matches:
            raise AssertionError(
                f"materialized output lost: kept={kept} matches={matches}"
            )
    return result


def run_join(cfg: RunConfig, validate: bool = True) -> JoinRunResult:
    """Execute one simulated parallel join under ``cfg``.

    ``validate=True`` additionally computes the exact join cardinality with
    the sequential reference and raises ``AssertionError`` on any mismatch
    or conservation violation — the whole-system invariant the test suite
    leans on.  Pass ``validate=False`` for large benchmark sweeps where the
    oracle's O((|R|+|S|) log |R|) cost is unwanted.
    """
    sim = Simulator()
    ctx = RunContext(sim, cfg)
    scheduler = spawn_query_pipeline(ctx)

    sim.run()

    outcome = scheduler.proc.value
    if outcome is None and scheduler.backup is not None:
        # The primary was killed (or deposed): the standby owns the result.
        outcome = scheduler.backup.outcome
    if outcome is None:
        raise RuntimeError(
            "query did not complete: scheduler produced no outcome "
            "(primary crashed with no standby takeover?)"
        )
    ctx.cluster.network.assert_conserved()

    harvest_simulator(ctx.metrics, sim)
    harvest_network(ctx.metrics, ctx.cluster.network)
    harvest_nodes(ctx.metrics, ctx.cluster.all_nodes)
    ctx.metrics.close()

    result = assemble_result(ctx, outcome, validate)
    # Budgeted observability: publish what the bounded collectors shed
    # (after assemble_result, whose phase spans also count against the
    # budget).  Unbudgeted runs publish nothing — report unchanged.
    if isinstance(ctx.spans, BoundedSpanLog):
        ctx.metrics.inc("obs.spans_dropped", ctx.spans.dropped)
    if isinstance(ctx.causal, BoundedCausalLog):
        ctx.metrics.inc("obs.edges_dropped", ctx.causal.dropped)
    result.metrics = ctx.metrics.snapshot()

    total = sim.now
    if total > 0:
        reports = outcome.final_reports
        tracked = [
            (f"src{s}", node)
            for s, node in enumerate(ctx.cluster.source_nodes)
        ] + [(f"join{j}", ctx.join_node(j)) for j in sorted(reports)]
        for track, node in tracked:
            result.utilization.append(NodeUtilization(
                node=node.node_id,
                role=node.role,
                track=track,
                cpu=node.cpu.busy_time / total,
                tx=node.tx.busy_time / total,
                rx=node.rx.busy_time / total,
                disk=node.disk.busy_time / total,
            ))

    return result
