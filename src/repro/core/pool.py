"""The shared resource-pool actor (``repro.workload`` multi-tenancy).

One :class:`ResourcePoolProcess` owns every dormant join node of the
cluster and arbitrates them between concurrent queries — the paper's
"additional resources become available" made literal: a node is available
to a query exactly when no other query holds it.

Two request flavours arrive as :class:`~repro.core.messages.RecruitRequest`:

* **admission** (``admission=True``): a freshly arrived query asks for its
  ``initial_nodes``.  Admissions park in strict FIFO with head-of-line
  blocking and are never denied — the wait *is* the workload's queueing
  delay.  Head-of-line nodes are reserved: a recruit is only granted from
  nodes in excess of the oldest parked admission's need, so admissions can
  neither starve nor idle the pool.
* **recruit** (``admission=False``): a running query's scheduler asks for
  one expansion node mid-relief.  Recruits park under the configured
  :class:`~repro.config.PoolPolicy` and carry a deadline
  (``grant_timeout_s``); an expired or policy-capped request gets a
  :class:`~repro.core.messages.RecruitDeny`, and the scheduler degrades
  the reporter to the out-of-core spill path — denial is backpressure,
  never an error.

The finite recruit deadline is what makes the whole workload deadlock-free:
a denied query finishes via spilling, its :class:`QueryDone` releases its
nodes, and parked admissions proceed.

Determinism: requests are ordered by an arrival sequence number, grants
pick the free node with the most memory (lowest index tie-break — the same
rule as ``SchedulerProcess._pick_candidate``), and deadlines are checked on
the pool's own :class:`~repro.core.messages.PollTick` ticker, so no state
depends on anything but simulation event order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from collections.abc import Callable, Generator
from typing import Any

from ..config import PoolPolicy
from ..cluster import Node
from .messages import (
    PollTick,
    QueryDone,
    RecruitDeny,
    RecruitGrant,
    RecruitRequest,
    Shutdown,
)

__all__ = ["PoolClient", "PoolStats", "ResourcePoolProcess"]


@dataclass
class PoolClient:
    """Per-query handle to the shared pool, carried on the query's
    :class:`~repro.core.context.RunContext` (``ctx.pool``).

    ``adopt`` is the workload driver's callback that resets a granted node
    and spawns this query's :class:`~repro.core.joinnode.JoinProcess` on
    it — join processes are lazy in workload mode, created only on grant.
    """

    node: Node
    query_id: int
    adopt: Callable[[int], None]


@dataclass
class PoolStats:
    """End-of-run pool accounting (also published as ``pool.*`` metrics)."""

    requests: int = 0
    admissions: int = 0
    grants: int = 0
    denials: int = 0
    denials_by_query: dict[int, int] = field(default_factory=dict)
    denials_by_reason: dict[str, int] = field(default_factory=dict)
    crashed_nodes: list[int] = field(default_factory=list)
    leaked_nodes: list[int] = field(default_factory=list)
    peak_in_use: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "admissions": self.admissions,
            "grants": self.grants,
            "denials": self.denials,
            "denials_by_query": dict(self.denials_by_query),
            "denials_by_reason": dict(self.denials_by_reason),
            "crashed_nodes": list(self.crashed_nodes),
            "leaked_nodes": list(self.leaked_nodes),
            "peak_in_use": self.peak_in_use,
        }


@dataclass
class _Parked:
    """One pending request with its arrival order and deadline."""

    seq: int
    req: RecruitRequest
    enqueued_at: float
    deadline: float | None  # None: admissions never expire


class _StopFlag:
    def __init__(self) -> None:
        self.stopped = False


class ResourcePoolProcess:
    """Drive with ``sim.spawn(pool.run())``; stats in ``pool.stats``."""

    def __init__(
        self,
        sim: Any,
        network: Any,
        node: Node,
        free_nodes: list[int],
        sched_nodes: dict[int, Node],
        *,
        policy: PoolPolicy = PoolPolicy.FIFO,
        fair_share_cap: int = 4,
        grant_timeout_s: float = 0.1,
        poll_interval: float = 0.001,
        memory_of: Callable[[int], int] = lambda j: 0,
        metrics: Any = None,
        trace: Callable[..., None] | None = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.node = node
        self.free: list[int] = list(free_nodes)
        self.sched_nodes = dict(sched_nodes)
        self.policy = policy
        self.fair_share_cap = fair_share_cap
        self.grant_timeout_s = grant_timeout_s
        self.poll_interval = poll_interval
        self.memory_of = memory_of
        self.metrics = metrics
        self._trace = trace
        self.total_nodes = len(self.free)

        self.stats = PoolStats()
        #: query -> pool nodes it currently holds (grant order)
        self.held: dict[int, list[int]] = {}
        #: query -> how many of its held nodes were its admission grant
        self._admitted_count: dict[int, int] = {}
        self.crashed: list[int] = []
        self._admission_q: deque[_Parked] = deque()
        self._recruit_q: list[_Parked] = []
        self._seq = 0
        self._stop = _StopFlag()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def trace(self, event: str, **fields: Any) -> None:
        if self._trace is not None:
            self._trace(event, "pool", **fields)

    def _sample_levels(self) -> None:
        if self.metrics is None:
            return
        in_use = self._in_use
        self.metrics.set_gauge("pool.free_nodes", len(self.free))
        self.metrics.observe("pool.nodes_in_use", in_use)
        if in_use > self.stats.peak_in_use:
            self.stats.peak_in_use = in_use

    @property
    def _in_use(self) -> int:
        return sum(len(nodes) for nodes in self.held.values())

    def _take_best(self) -> int:
        """Free node with the most memory, lowest index tie-break — the
        same selection rule as the private-pool ``_pick_candidate``."""
        best = max(self.free, key=lambda j: (self.memory_of(j), -j))
        self.free.remove(best)
        return best

    def _extra_held(self, query: int) -> int:
        """Nodes ``query`` holds beyond its admission grant."""
        return len(self.held.get(query, [])) - self._admitted_count.get(query, 0)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> Generator[Any, Any, PoolStats]:
        self.sim.spawn(self._ticker(), name="pool-ticker")
        self._sample_levels()
        while True:
            msg = yield from self.node.mailbox.recv()
            if isinstance(msg, RecruitRequest):
                yield from self._on_request(msg)
            elif isinstance(msg, QueryDone):
                yield from self._on_query_done(msg)
            elif isinstance(msg, PollTick):
                yield from self._expire_recruits()
                yield from self._serve()
            elif isinstance(msg, Shutdown):
                break
            else:
                raise RuntimeError(f"pool: unexpected message {msg!r}")
        self._stop.stopped = True
        # Held-but-never-released nodes (zombie recruits) are leaked.
        for query in sorted(self.held):
            for j in self.held[query]:
                self.stats.leaked_nodes.append(j)
        self._sample_levels()
        return self.stats

    def _ticker(self) -> Generator[Any, Any, None]:
        """PollTicks for deadline checks; runs on the pool node, so ticks
        never cross the network (mirrors the scheduler's drain ticker)."""
        while not self._stop.stopped:
            yield self.sim.timeout(self.poll_interval)
            self.node.mailbox.put(PollTick())

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _on_request(self, req: RecruitRequest) -> Generator[Any, Any, None]:
        self.stats.requests += 1
        now = self.sim.now
        parked = _Parked(self._seq, req, now, None)
        self._seq += 1
        if self.metrics is not None:
            self.metrics.inc("pool.recruit_requests", 1,
                             admission=str(req.admission).lower())
        if req.admission:
            self._admission_q.append(parked)
            self.trace("pool_admission_request", query=req.query,
                       want=req.want)
        else:
            if (
                self.policy is PoolPolicy.FAIR_SHARE
                and self._extra_held(req.query) >= self.fair_share_cap
            ):
                yield from self._deny(parked, "fair_share_cap")
                return
            parked.deadline = now + self.grant_timeout_s
            self._recruit_q.append(parked)
            self.trace("pool_recruit_request", query=req.query,
                       phase=req.phase, deficit=req.deficit_bytes)
        yield from self._serve()

    def _on_query_done(self, msg: QueryDone) -> Generator[Any, Any, None]:
        released = [j for j in msg.released if j not in self.crashed]
        for j in released:
            held = self.held.get(msg.query, [])
            if j in held:
                held.remove(j)
                self.free.append(j)
        self.held.pop(msg.query, None)
        self._admitted_count.pop(msg.query, None)
        self.trace("pool_release", query=msg.query, released=len(released),
                   free=len(self.free))
        if self.metrics is not None:
            self.metrics.inc("pool.releases", len(released))
        self._sample_levels()
        yield from self._serve()

    # ------------------------------------------------------------------
    # arbitration
    # ------------------------------------------------------------------
    def _serve(self) -> Generator[Any, Any, None]:
        # Admissions first: strict FIFO with head-of-line blocking.
        while self._admission_q and len(self.free) >= self._admission_q[0].req.want:
            parked = self._admission_q.popleft()
            nodes = [self._take_best() for _ in range(parked.req.want)]
            self.stats.admissions += 1
            self._admitted_count[parked.req.query] = len(nodes)
            if self.metrics is not None:
                self.metrics.set_gauge(
                    "pool.admission_wait_s", self.sim.now - parked.enqueued_at
                )
            yield from self._grant(parked, nodes)
        # Recruits only from nodes beyond the oldest admission's need.
        reserve = self._admission_q[0].req.want if self._admission_q else 0
        while self._recruit_q and len(self.free) > reserve:
            parked = self._pick_recruit()
            if parked is None:
                break
            self._recruit_q.remove(parked)
            yield from self._grant(parked, [self._take_best()])

    def _pick_recruit(self) -> _Parked | None:
        """Next parked recruit under the configured policy, or None when
        no parked request is currently eligible."""
        if self.policy is PoolPolicy.MEMORY_DEFICIT:
            candidates = sorted(
                self._recruit_q, key=lambda p: (p.req.deficit_bytes, p.seq)
            )
        else:
            candidates = sorted(self._recruit_q, key=lambda p: p.seq)
        for parked in candidates:
            if (
                self.policy is PoolPolicy.FAIR_SHARE
                and self._extra_held(parked.req.query) >= self.fair_share_cap
            ):
                continue  # holdings grew while parked; deadline handles it
            return parked
        return None

    def _grant(self, parked: _Parked, nodes: list[int]) -> Generator[Any, Any, None]:
        query = parked.req.query
        self.held.setdefault(query, []).extend(nodes)
        self.stats.grants += len(nodes)
        if self.metrics is not None:
            self.metrics.inc("pool.recruit_grants", len(nodes))
        self._sample_levels()
        self.trace("pool_grant", query=query, nodes=list(nodes),
                   waited=self.sim.now - parked.enqueued_at)
        yield from self.network.send(
            self.node, self.sched_nodes[query],
            RecruitGrant(query=query, nodes=tuple(nodes)),
        )

    def _deny(self, parked: _Parked, reason: str) -> Generator[Any, Any, None]:
        query = parked.req.query
        self.stats.denials += 1
        self.stats.denials_by_query[query] = (
            self.stats.denials_by_query.get(query, 0) + 1
        )
        self.stats.denials_by_reason[reason] = (
            self.stats.denials_by_reason.get(reason, 0) + 1
        )
        if self.metrics is not None:
            self.metrics.inc("pool.recruit_denials", 1, reason=reason)
        self.trace("pool_deny", query=query, reason=reason)
        yield from self.network.send(
            self.node, self.sched_nodes[query],
            RecruitDeny(query=query, reason=reason),
        )

    def _expire_recruits(self) -> Generator[Any, Any, None]:
        now = self.sim.now
        expired = [
            p for p in self._recruit_q
            if p.deadline is not None and now >= p.deadline
        ]
        for parked in expired:
            self._recruit_q.remove(parked)
            yield from self._deny(parked, "timeout")

    # ------------------------------------------------------------------
    # faults (workload chaos: crash a node still sitting in the pool)
    # ------------------------------------------------------------------
    def crash_node(self, j: int) -> None:
        """Fail-stop a *pool-resident* (dormant, unheld) node.

        Called by the workload driver's crash timers.  A node currently
        held by a query is out of the supported crash model (it may hold
        join state) — the crash is recorded as a no-op, mirroring
        ``FaultInjector._fire_crash`` on an already-dead target.
        """
        if j in self.free:
            self.free.remove(j)
            self.crashed.append(j)
            self.stats.crashed_nodes.append(j)
            if self.metrics is not None:
                self.metrics.inc("pool.node_crashes", 1)
            self.trace("pool_node_crash", node=j)
            self._sample_levels()
        else:
            self.trace("pool_crash_noop", node=j)
