"""The join-process actor (paper §4.1.3).

One join process per recruited node.  It builds and maintains a portion of
the hash table, detects memory-full conditions, executes split / replicate
/ reshuffle orders from the scheduler, probes its portion in the probe
phase, and — for the out-of-core baseline or the pool-exhausted fallback —
spills to local disk Grace-style.

Misrouted tuples (in-flight chunks routed with a stale table, or pending
buffers at a node that has since shed part of its range) are handled with a
**shed chain**: every split the node performed is remembered as a
``(predicate-on-positions, successor)`` pair, applied in chronological
order to each arriving chunk, so any tuple the node no longer owns is
forwarded to exactly the node that took that range over.  This replays the
node's split history and is therefore exact.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Generator
from typing import Any

import numpy as np

from ..data import chunk_slices
from ..hashing import HashRange, NodeHashStore
from ..seqjoin import match_count
from ..sim import Interrupt
from .context import RunContext
from .messages import (
    ActivateAck,
    ActivateJoin,
    BisectOrder,
    CountRequest,
    CountVector,
    DataChunk,
    FinalReport,
    FinalizePass,
    HeartbeatAck,
    HeartbeatPing,
    Hop,
    LinearSplitOrder,
    MemoryFull,
    NodeLost,
    NodeLostAck,
    OutputRedirect,
    PassDone,
    ReliefAck,
    ReliefPing,
    ReplicateOrder,
    ReshuffleDone,
    ReshuffleOrder,
    SchedulerFailover,
    Shutdown,
    SpillOrder,
    SplitDone,
    StartProbe,
    StatusReport,
    StatusRequest,
)

__all__ = ["JoinProcess", "SpillStore"]

ShedPredicate = Callable[[np.ndarray], np.ndarray]


class SpillStore:
    """Grace-style disk partitions for one node's overflow (paper §2).

    The node's hash range is cut into ``k_parts`` position sub-ranges.
    Overflow build tuples are appended to their sub-partition's R file;
    probe tuples are written to the S file of sub-partitions that actually
    hold spilled R tuples.  The final passes join each (R_p, S_p) pair in
    core; a partition whose R side still exceeds the node's memory budget
    is **recursively re-partitioned** (classic Grace behaviour), charging
    an extra disk round trip per level.
    """

    MAX_RECURSION = 8

    def __init__(self, ctx: RunContext, node_index: int, k_parts: int = 8,
                 hash_range: HashRange | None = None) -> None:
        self.ctx = ctx
        self.node = ctx.join_node(node_index)
        self.k = k_parts
        # Sub-partition over the node's own range (a bucket only ever sees
        # its own positions); bucket-addressed nodes (LINEAR_MOD) fall back
        # to the full table.
        self.lo = hash_range.lo if hash_range else 0
        self.hi = hash_range.hi if hash_range else ctx.cfg.hash_positions
        self._r_parts: list[list[np.ndarray]] = [[] for _ in range(self.k)]
        self._s_parts: list[list[np.ndarray]] = [[] for _ in range(self.k)]
        self.spilled_r = 0
        self.spilled_s = 0
        #: extra disk round trips caused by recursive re-partitioning
        self.recursive_passes = 0
        self._tb = ctx.cfg.workload.tuple_bytes
        self._cap_tuples = max(1, self.node.memory.capacity // self._tb)

    def _part_of(self, positions: np.ndarray) -> np.ndarray:
        width = self.hi - self.lo
        rel = np.clip(positions - self.lo, 0, width - 1)
        return np.minimum(rel * self.k // width, self.k - 1)

    def write_r(self, values: np.ndarray) -> Generator[Any, Any, None]:
        parts = self._part_of(self.ctx.posmap(values))
        for p in range(self.k):
            sel = values[parts == p]
            if sel.size:
                self._r_parts[p].append(sel)
        self.spilled_r += int(values.size)
        yield from self.node.disk.write(int(values.size) * self._tb)

    def write_s(self, values: np.ndarray) -> Generator[Any, Any, int]:
        """Spill only probe tuples whose sub-partition has spilled R."""
        parts = self._part_of(self.ctx.posmap(values))
        written = 0
        for p in range(self.k):
            if not self._r_parts[p]:
                continue
            sel = values[parts == p]
            if sel.size:
                self._s_parts[p].append(sel)
                written += int(sel.size)
        if written:
            self.spilled_s += written
            yield from self.node.disk.write(written * self._tb)
        return written

    def final_passes(self) -> Generator[Any, Any, int]:
        """Join every spilled (R_p, S_p) pair; returns match count."""
        matches = 0
        for p in range(self.k):
            if not self._r_parts[p]:
                continue
            r_p = np.concatenate(self._r_parts[p])
            s_p = (np.concatenate(self._s_parts[p]) if self._s_parts[p]
                   else np.empty(0, dtype=np.uint64))
            matches += yield from self._join_partition(r_p, s_p, depth=0)
        return matches

    def _join_partition(
        self, r_p: np.ndarray, s_p: np.ndarray, depth: int
    ) -> Generator[Any, Any, int]:
        """In-core join of one bucket pair, recursing while R overflows."""
        cost = self.ctx.cost
        yield from self.node.disk.read(int(r_p.size) * self._tb)
        if r_p.size > self._cap_tuples and depth < self.MAX_RECURSION:
            # Classic Grace recursion: re-partition both sides on disk and
            # join the finer bucket pairs (one extra write per level; the
            # reads happen in the recursive calls).
            self.recursive_passes += 1
            yield from self.node.disk.read(int(s_p.size) * self._tb)
            yield from self.node.disk.write(
                (int(r_p.size) + int(s_p.size)) * self._tb
            )
            yield from self.node.compute_per_tuple(
                cost.cpu_route_tuple, r_p.size + s_p.size
            )
            sub = max(2, -(-int(r_p.size) // self._cap_tuples))
            r_keys = self.ctx.posmap(r_p) % sub
            s_keys = self.ctx.posmap(s_p) % sub
            matches = 0
            for q in range(sub):
                r_q = r_p[r_keys == q]
                if r_q.size == 0:
                    continue
                s_q = s_p[s_keys == q]
                matches += yield from self._join_partition(r_q, s_q, depth + 1)
            return matches
        yield from self.node.compute_per_tuple(cost.cpu_insert_tuple, r_p.size)
        if s_p.size == 0:
            return 0
        yield from self.node.disk.read(int(s_p.size) * self._tb)
        yield from self.node.compute_per_tuple(cost.cpu_probe_tuple, s_p.size)
        found = match_count(r_p, s_p)
        yield from self.node.compute_per_tuple(cost.cpu_output_match, found)
        return found


class JoinProcess:
    """One join node's state machine; drive with ``sim.spawn(proc.run())``."""

    # lifecycle states
    DORMANT = "dormant"    # in the potential pool, not yet recruited
    BUILD = "build"        # accepting build tuples
    CLOSED = "closed"      # replication: full, forwards build traffic
    PROBE = "probe"
    DONE = "done"
    CRASHED = "crashed"    # fail-stop fault injected while dormant

    def __init__(self, ctx: RunContext, join_index: int, auto_spill: bool = False) -> None:
        self.ctx = ctx
        self.index = join_index
        self.node = ctx.join_node(join_index)
        self.auto_spill = auto_spill  # OOC baseline behaviour
        self.state = self.DORMANT
        self.store = NodeHashStore(ctx.posmap)
        self.store.inserted_counter = ctx.metrics.counter(
            "hash.inserted_tuples", node=self.node.name
        )
        self.store.match_counter = ctx.metrics.counter(
            "hash.matches", node=self.node.name
        )
        self.store.probe_rows_counter = ctx.metrics.counter(
            "dataplane.bulk_probe_rows", node=self.node.name
        )
        self.spill: SpillStore | None = None
        self.my_range: HashRange | None = None
        self.bucket: int | None = None
        self.successor: int | None = None       # replication forwarding
        #: sequence numbers of data chunks already received — duplicate
        #: suppression for the at-least-once transport (idempotent receipt);
        #: cleared at FinalizePass (its high-water mark is the
        #: ``node.dedup_window`` gauge)
        self._seen_seqs: set[tuple[int, int]] = set()
        #: successor may be ``None`` after its target was declared dead —
        #: shed tuples are then discarded (the recovery replay covers them)
        self.shed_chain: list[tuple[ShedPredicate, int | None]] = []
        self.parked: deque[DataChunk] = deque()
        self.pre_activation: deque[DataChunk] = deque()
        self.full_pending = False
        self.activated_at: float = float("nan")
        self.probe_started_at: float = float("nan")
        self.matches = 0
        self.overcommit_bytes = 0
        # drain counters (chunks)
        self.received_build = 0
        self.processed_build = 0
        self.emitted_build = 0
        self.received_probe = 0
        self.processed_probe = 0
        #: asynchronous join->join transfers still in flight (drain 'busy')
        self.transfers_pending = 0
        #: accumulated wall time of this node's split transfers (Figure 5)
        self.split_transfer_s = 0.0
        # --- probe-phase output materialization (footnote 1) ---
        self.is_output_sink = False
        self.output_tuples = 0          # pairs materialized in memory
        self.output_spilled = 0         # pairs spilled to local disk
        self.output_pending = 0         # pairs awaiting a sink/spill order
        self.output_sink_node: int | None = None
        self.output_full_pending = False
        self._output_spill_mode = False  # pool exhausted: disk from now on
        self.emitted_probe = 0
        self._tb = ctx.cfg.workload.tuple_bytes
        # --- control-plane fault tolerance (repro.core.membership) ---
        #: pool indices of peers the scheduler declared dead
        self.fenced: set[int] = set()
        #: their global node ids (data chunks carry the global ``origin``)
        self._fenced_gids: set[int] = set()
        #: purged after a replica-chain member died: stored segment dropped,
        #: all further data discarded (the replay re-streams the range)
        self.quarantined = False
        # Per-peer drain-counter components, so a dead peer's contribution
        # can be subtracted from the totals reported to the drain protocol
        # (its own counters died with it, and the books must still balance).
        self._recv_build_by_origin: dict[int, int] = {}
        self._proc_build_by_origin: dict[int, int] = {}
        self._emitted_build_by_dest: dict[int, int] = {}
        #: linear splits already executed (idempotent re-drive after failover)
        self._applied_splits: set[tuple[int, int]] = set()
        self._finalized_pass = False
        #: the data chunk being dispatched still holds its receive credit
        self._msg_credit = False

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> Generator[Any, Any, None]:
        try:
            while self.state not in (self.DONE, self.CRASHED):
                # recv() withdraws the pending getter on Interrupt, so
                # later deliveries are not consumed by a dead waiter.
                msg = yield from self.node.mailbox.recv()
                self._msg_credit = isinstance(msg, DataChunk)
                yield from self._dispatch(msg)
                self._msg_credit = False
        except Interrupt as itr:
            # Fail-stop crash injected by the fault plan, possibly mid-
            # dispatch (a working node dies holding join state).  The node
            # vanishes without a trace — no FinalReport, no acks: a dormant
            # recruit's death surfaces through the scheduler's recruit
            # timeout, a working node's through the heartbeat detector.
            self.state = self.CRASHED
            self.ctx.trace("crashed", f"join{self.index}",
                           cause=str(itr.cause))
            yield from self._tombstone()

    def _tombstone(self) -> Generator[Any, Any, None]:
        """Absorb traffic addressed to the corpse.

        Delivery completes regardless of receiver liveness (byte
        conservation), but receive-window credits are released by the
        *consumer* — so a dead node must keep returning them or live
        senders eventually jam on its receive window.  Credits held by the
        in-dispatch chunk and by parked chunks are returned immediately;
        every later data chunk is retired on arrival.  A Shutdown ends the
        absorber (the scheduler still sweeps dead nodes at end of run).
        """
        if self._msg_credit:
            self.node.recv_credits.release()
            self._msg_credit = False
        while self.parked:
            self.parked.popleft()
            self.node.recv_credits.release()
        while self.pre_activation:
            self.pre_activation.popleft()
            self.node.recv_credits.release()
        while True:
            msg = yield from self.node.mailbox.recv()
            if isinstance(msg, DataChunk):
                self.node.recv_credits.release()
            elif isinstance(msg, Shutdown):
                return

    def _dispatch(self, msg: Any) -> Generator[Any, Any, None]:
        if isinstance(msg, DataChunk):
            if self._suppress_duplicate(msg):
                return
            if msg.relation == "R":
                yield from self._on_build_chunk(msg)
            elif msg.relation == "O":
                yield from self._on_output_chunk(msg)
            else:
                yield from self._on_probe_chunk(msg)
        elif isinstance(msg, ActivateJoin):
            yield from self._on_activate(msg)
        elif isinstance(msg, ReplicateOrder):
            yield from self._on_replicate_order(msg)
        elif isinstance(msg, BisectOrder):
            yield from self._on_bisect_order(msg)
        elif isinstance(msg, LinearSplitOrder):
            yield from self._on_linear_split_order(msg)
        elif isinstance(msg, ReliefPing):
            yield from self._on_relief_ping(msg)
        elif isinstance(msg, OutputRedirect):
            yield from self._on_output_redirect(msg)
        elif isinstance(msg, SpillOrder):
            yield from self._on_spill_order(msg)
        elif isinstance(msg, StatusRequest):
            yield from self._on_status_request(msg)
        elif isinstance(msg, StartProbe):
            yield from self._on_start_probe(msg)
        elif isinstance(msg, CountRequest):
            yield from self._on_count_request(msg)
        elif isinstance(msg, ReshuffleOrder):
            yield from self._on_reshuffle_order(msg)
        elif isinstance(msg, FinalizePass):
            yield from self._on_finalize_pass(msg)
        elif isinstance(msg, HeartbeatPing):
            yield from self._on_heartbeat_ping(msg)
        elif isinstance(msg, NodeLost):
            yield from self._on_node_lost(msg)
        elif isinstance(msg, SchedulerFailover):
            yield from self._on_scheduler_failover(msg)
        elif isinstance(msg, Shutdown):
            yield from self._on_shutdown(msg)
        else:
            raise RuntimeError(f"join{self.index}: unexpected message {msg!r}")

    def _suppress_duplicate(self, chunk: DataChunk) -> bool:
        """Idempotent receipt: drop a re-delivered data chunk.

        The reliable transport suppresses lost-ack retransmissions at the
        network layer, so in an integrated run duplicates never reach a
        mailbox; this is the actor-level defense the at-least-once contract
        still requires (and the unit tests exercise directly).  A duplicate
        is counted as received *and* processed — it arrived and was retired
        without effect — and its receive-window credit is returned, so the
        drain counters and flow control stay balanced either way.
        """
        if chunk.transfer_seq < 0:
            return False
        key = (chunk.origin, chunk.transfer_seq)
        if key not in self._seen_seqs:
            self._seen_seqs.add(key)
            return False
        if chunk.relation == "R":
            self.received_build += 1
            self.processed_build += 1
            if chunk.origin >= 0:
                self._recv_build_by_origin[chunk.origin] = (
                    self._recv_build_by_origin.get(chunk.origin, 0) + 1
                )
                self._proc_build_by_origin[chunk.origin] = (
                    self._proc_build_by_origin.get(chunk.origin, 0) + 1
                )
        else:
            self.received_probe += 1
            self.processed_probe += 1
        self.node.recv_credits.release()
        self._msg_credit = False
        self.ctx.metrics.inc("faults_duplicates_suppressed", 1,
                             node=self.node.name)
        self.ctx.trace("duplicate_suppressed", f"join{self.index}",
                       origin=chunk.origin, seq=chunk.transfer_seq)
        return True

    # ------------------------------------------------------------------
    # activation
    # ------------------------------------------------------------------
    def _on_activate(self, msg: ActivateJoin) -> Generator[Any, Any, None]:
        if self.state != self.DORMANT:
            # Idempotent re-activation: a scheduler failover re-drives its
            # pending decision, and the recruit may have acked the dead
            # primary.  Re-confirm to the current scheduler and keep state.
            yield from self.ctx.send(
                self.node, self.ctx.scheduler_node, ActivateAck(self.index)
            )
            return
        self.my_range = msg.hash_range
        self.bucket = msg.bucket
        self.is_output_sink = msg.output_sink
        self.state = self.PROBE if msg.phase == "probe" else self.BUILD
        self.activated_at = self.ctx.sim.now
        if self.state == self.PROBE:  # probe-phase recruit (output sink)
            self.probe_started_at = self.activated_at
        self.ctx.trace("activate", f"join{self.index}",
                       range=str(msg.hash_range), bucket=msg.bucket)
        # Confirm recruitment before replaying raced-ahead chunks: the
        # scheduler's recruit timeout must measure liveness, not workload.
        yield from self.ctx.send(
            self.node, self.ctx.scheduler_node, ActivateAck(self.index)
        )
        if self.auto_spill is False and self.ctx.cfg.algorithm.value == "ooc":
            # Defensive: the driver wires auto_spill for OOC runs.
            self.auto_spill = True
        # Chunks that raced ahead of the activation message.
        while self.pre_activation:
            chunk = self.pre_activation.popleft()
            if chunk.relation == "O":
                yield from self._materialize_output(chunk.tuples)
                self.processed_probe += 1
                self.node.recv_credits.release()
            else:
                yield from self._on_build_chunk(chunk, already_counted=True)

    # ------------------------------------------------------------------
    # build path
    # ------------------------------------------------------------------
    def _retire_build_chunk(self, origin: int = -1) -> None:
        """Mark one delivered build chunk fully consumed: count it and
        return its receive-window credit to the senders."""
        self.processed_build += 1
        if origin >= 0:
            self._proc_build_by_origin[origin] = (
                self._proc_build_by_origin.get(origin, 0) + 1
            )
        self.node.recv_credits.release()
        self._msg_credit = False

    def _on_build_chunk(
        self, chunk: DataChunk, already_counted: bool = False
    ) -> Generator[Any, Any, None]:
        if not already_counted:
            self.received_build += 1
            if chunk.origin >= 0:
                self._recv_build_by_origin[chunk.origin] = (
                    self._recv_build_by_origin.get(chunk.origin, 0) + 1
                )
        if self.state == self.DORMANT:
            self.pre_activation.append(chunk)
            self._msg_credit = False
            return
        if self.quarantined:
            # Purged after a chain member died: the whole range is being
            # re-streamed to a fresh target; stragglers are covered by it.
            self._retire_build_chunk(chunk.origin)
            return
        if self.state == self.CLOSED and chunk.hop != Hop.RESHUFFLE:
            # Replication: a closed node relays build traffic to the node
            # that replaced it (which may itself relay — chain forwarding).
            self._spawn_transfer(chunk.values, self.successor, Hop.FORWARD)
            self._retire_build_chunk(chunk.origin)
            return

        values = yield from self._apply_shed_chain(chunk.values)
        if values.size == 0:
            self._retire_build_chunk(chunk.origin)
            return
        fully = yield from self._insert_or_park(
            values, force=chunk.hop == Hop.RESHUFFLE, origin=chunk.origin
        )
        if fully:
            self._retire_build_chunk(chunk.origin)
        # else: remainder parked; this chunk counts as processed (and its
        # credit is released) only when the parked remainder is finally
        # consumed (_reprocess_parked) — which is what throttles senders.

    def _apply_shed_chain(self, values: np.ndarray) -> Generator[Any, Any, np.ndarray]:
        """Forward any tuples this node has shed; return what remains ours."""
        for pred, succ in self.shed_chain:
            if values.size == 0:
                break
            mask = pred(self.ctx.posmap(values))
            if mask.any():
                out = values[mask]
                values = values[~mask]
                if succ is None:
                    # Shed target was declared dead; its range is being
                    # re-streamed from the sources, so forwarding would
                    # double-deliver.  Drop.
                    continue
                yield from self.node.compute_per_tuple(
                    self.ctx.cost.cpu_repack_tuple, out.size
                )
                self._spawn_transfer(out, succ, Hop.FORWARD)
        return values

    def _insert_or_park(
        self, values: np.ndarray, force: bool = False, origin: int = -1
    ) -> Generator[Any, Any, bool]:
        """Insert into the table; park what does not fit.  Returns True when
        everything was consumed (inserted or spilled)."""
        cost = self.ctx.cost
        if self.spill is not None:
            # Overflow mode (OOC / fallback): straight to disk partitions.
            yield from self.spill.write_r(values)
            return True
        need = int(values.size) * self._tb
        if self.node.memory.try_alloc(need):
            self.store.insert(values)
            yield from self.node.compute_per_tuple(cost.cpu_insert_tuple, values.size)
            return True
        if force:
            # Reshuffle landing may slightly exceed the budget when a single
            # hot position outweighs the ideal cut; the paper's greedy
            # heuristic has the same property.  Record the overcommit.
            avail = self.node.memory.available
            self.node.memory.try_alloc(avail)
            self.overcommit_bytes += need - avail
            self.store.insert(values)
            yield from self.node.compute_per_tuple(cost.cpu_insert_tuple, values.size)
            return True
        fit = self.node.memory.available // self._tb
        if fit > 0:
            self.node.memory.alloc(fit * self._tb)
            self.store.insert(values[:fit])
            yield from self.node.compute_per_tuple(cost.cpu_insert_tuple, fit)
            values = values[fit:]
        if self.auto_spill:
            # OOC baseline — the paper's *basic* out-of-core algorithm
            # (§2): on overflow the whole partition goes to disk bucket
            # files, including what was already inserted in memory, and the
            # join is performed out of core per bucket pair.
            self.spill = SpillStore(self.ctx, self.index, hash_range=self.my_range)
            self.ctx.trace("spill_start", f"join{self.index}",
                           dumped=self.store.stored_tuples)
            dumped = self.store.extract_position_range(0, self.ctx.cfg.hash_positions)
            if dumped.size:
                self.node.memory.free(int(dumped.size) * self._tb)
                yield from self.spill.write_r(dumped)
            yield from self.spill.write_r(values)
            return True
        self.parked.append(
            DataChunk("R", values, self._tb, hop=Hop.FORWARD, origin=origin)
        )
        # The parked entry now owns the receive credit.
        self._msg_credit = False
        if not self.full_pending:
            self.full_pending = True
            self.ctx.trace("memory_full", f"join{self.index}",
                           stored=self.store.stored_tuples)
            deficit = sum(c.nbytes for c in self.parked)
            yield from self.ctx.send(
                self.node, self.ctx.scheduler_node,
                MemoryFull(self.index, deficit_bytes=deficit),
            )
        return False

    def _reprocess_parked(self) -> Generator[Any, Any, bool]:
        """Retry parked chunks after a relief action; True if still stuck."""
        while self.parked:
            chunk = self.parked.popleft()
            if self.state == self.CLOSED:
                self._spawn_transfer(chunk.values, self.successor, Hop.FORWARD)
                self._retire_build_chunk(chunk.origin)
                continue
            values = yield from self._apply_shed_chain(chunk.values)
            if values.size == 0:
                self._retire_build_chunk(chunk.origin)
                continue
            fully = yield from self._insert_or_park_retry(values, chunk.origin)
            if fully:
                self._retire_build_chunk(chunk.origin)
            else:
                return True  # parked again; stop retrying
        return False

    def _insert_or_park_retry(
        self, values: np.ndarray, origin: int = -1
    ) -> Generator[Any, Any, bool]:
        """Like _insert_or_park but never re-sends MemoryFull (the caller
        reports still_full through its ReliefAck instead)."""
        cost = self.ctx.cost
        if self.spill is not None:
            yield from self.spill.write_r(values)
            return True
        need = int(values.size) * self._tb
        if self.node.memory.try_alloc(need):
            self.store.insert(values)
            yield from self.node.compute_per_tuple(cost.cpu_insert_tuple, values.size)
            return True
        fit = self.node.memory.available // self._tb
        if fit > 0:
            self.node.memory.alloc(fit * self._tb)
            self.store.insert(values[:fit])
            yield from self.node.compute_per_tuple(cost.cpu_insert_tuple, fit)
            values = values[fit:]
        self.parked.appendleft(
            DataChunk("R", values, self._tb, hop=Hop.FORWARD, origin=origin)
        )
        return False

    def _spawn_transfer(self, values: np.ndarray, dest: int | None, hop: str) -> None:
        """Ship ``values`` to another join node asynchronously.

        Transfers must not block the main message loop: a relief ack that
        waited for a jammed downstream node would deadlock the scheduler's
        serialized relief queue (the downstream node's own relief would be
        stuck behind ours).  ``transfers_pending`` keeps the drain protocol
        honest while data sits in an unsent transfer.
        """
        if dest is None or dest in self.fenced:
            # The destination was declared dead: anything we would ship is
            # covered by the recovery replay from the sources.  Drop.
            return
        assert dest != self.index, (
            f"join{self.index}: bad forward destination {dest}"
        )
        if values.size == 0:
            return
        self.transfers_pending += 1
        # Causal provenance is captured now, while the triggering message
        # is still current — the spawned process sends concurrently with
        # this node's main loop, which keeps dequeuing.
        cause = self.ctx.causal.cause_of(f"join{self.index}")
        self.ctx.sim.spawn(
            self._run_transfer(values, dest, hop, cause),
            name=f"xfer:join{self.index}->join{dest}",
        )

    def _run_transfer(
        self, values: np.ndarray, dest: int, hop: str,
        cause: int | None = None,
    ) -> Generator[Any, Any, None]:
        t0 = self.ctx.sim.now
        serialized = hop == Hop.SPLIT
        if serialized:
            # Barrier split pointer: one split transfer on the wire at a
            # time (the paper's 'done' message gates the next split).
            yield from self.ctx.split_transfer_token.grab()
        try:
            chunk_tuples = self.ctx.cfg.workload.real_chunk_tuples
            for lo, hi in chunk_slices(int(values.size), chunk_tuples):
                part = values[lo:hi]
                self.emitted_build += 1
                self._emitted_build_by_dest[dest] = (
                    self._emitted_build_by_dest.get(dest, 0) + 1
                )
                yield from self.ctx.send(
                    self.node,
                    self.ctx.join_node(dest),
                    DataChunk("R", part, self._tb, hop=hop, origin=self.node.node_id),
                    parent=cause,
                )
        finally:
            if serialized:
                self.ctx.split_transfer_token.release()
            self.transfers_pending -= 1
            if hop == Hop.SPLIT:
                self.split_transfer_s += self.ctx.sim.now - t0
            if hop in (Hop.SPLIT, Hop.RESHUFFLE):
                self.ctx.spans.add(
                    f"join{self.index}",
                    "split" if hop == Hop.SPLIT else "reshuffle",
                    t0, self.ctx.sim.now,
                    dest=dest, tuples=int(values.size),
                )

    # ------------------------------------------------------------------
    # relief orders
    # ------------------------------------------------------------------
    def _on_replicate_order(self, msg: ReplicateOrder) -> Generator[Any, Any, None]:
        if self.state == self.CLOSED:
            # Already applied (scheduler failover re-drove the decision).
            yield from self.ctx.send(
                self.node, self.ctx.scheduler_node,
                ReliefAck(self.index, still_full=False),
            )
            return
        assert self.state in (self.BUILD,), "replicate order in wrong state"
        self.successor = msg.new_node
        self.state = self.CLOSED
        self.ctx.trace("replicate", f"join{self.index}", new_node=msg.new_node)
        still_full = yield from self._reprocess_parked()  # forwards everything
        assert not still_full and not self.parked
        self.full_pending = False
        yield from self.ctx.send(
            self.node, self.ctx.scheduler_node,
            ReliefAck(self.index, still_full=False),
        )

    def _on_bisect_order(self, msg: BisectOrder) -> Generator[Any, Any, None]:
        if self.my_range is not None and self.my_range.hi == msg.mid:
            # Already applied (failover re-drive): range was shrunk and the
            # upper half shipped; nothing more may move.
            still_full = yield from self._reprocess_parked()
            self.full_pending = still_full
            yield from self.ctx.send(
                self.node, self.ctx.scheduler_node,
                ReliefAck(self.index, still_full=still_full, moved_tuples=0),
            )
            return
        assert self.my_range is not None and self.my_range.contains(msg.mid)
        old = self.my_range
        self.my_range = HashRange(old.lo, msg.mid)
        mid, hi, new_node = msg.mid, old.hi, msg.new_node
        moved = self.store.extract_position_range(mid, hi)
        if moved.size:
            self.node.memory.free(int(moved.size) * self._tb)
            yield from self.node.compute_per_tuple(
                self.ctx.cost.cpu_repack_tuple, moved.size
            )
        self.shed_chain.append(
            (lambda pos, m=mid: pos >= m, new_node)
        )
        self.ctx.trace("bisect", f"join{self.index}", mid=mid,
                       new_node=new_node, moved=int(moved.size))
        self._spawn_transfer(moved, new_node, Hop.SPLIT)
        still_full = yield from self._reprocess_parked()
        self.full_pending = still_full
        yield from self.ctx.send(
            self.node, self.ctx.scheduler_node,
            ReliefAck(self.index, still_full=still_full,
                      moved_tuples=int(moved.size)),
        )

    def _on_linear_split_order(self, msg: LinearSplitOrder) -> Generator[Any, Any, None]:
        key = (msg.new_bucket, msg.modulus)
        if key in self._applied_splits:
            # Failover re-drive of a split that already executed.
            yield from self.ctx.send(
                self.node, self.ctx.scheduler_node,
                SplitDone(self.index, moved_tuples=0),
            )
            return
        self._applied_splits.add(key)
        moved = self.store.extract_linear_bucket(msg.new_bucket, msg.modulus)
        if moved.size:
            self.node.memory.free(int(moved.size) * self._tb)
            yield from self.node.compute_per_tuple(
                self.ctx.cost.cpu_repack_tuple, moved.size
            )
        self.shed_chain.append(
            (
                lambda pos, nb=msg.new_bucket, m=msg.modulus: pos % (2 * m) == nb,
                msg.new_node,
            )
        )
        self.ctx.trace("linear_split", f"join{self.index}",
                       new_bucket=msg.new_bucket, new_node=msg.new_node,
                       moved=int(moved.size))
        self._spawn_transfer(moved, msg.new_node, Hop.SPLIT)
        yield from self.ctx.send(
            self.node, self.ctx.scheduler_node,
            SplitDone(self.index, moved_tuples=int(moved.size)),
        )

    def _on_relief_ping(self, msg: ReliefPing) -> Generator[Any, Any, None]:
        still_full = yield from self._reprocess_parked()
        self.full_pending = still_full
        yield from self.ctx.send(
            self.node, self.ctx.scheduler_node,
            ReliefAck(self.index, still_full=still_full),
        )

    def _on_spill_order(self, msg: SpillOrder) -> Generator[Any, Any, None]:
        if self.state == self.PROBE:
            # Probe-phase fallback: the output pool is exhausted too —
            # dump pending pairs to disk and keep spilling from now on.
            pending, self.output_pending = self.output_pending, 0
            self.output_spilled += pending
            self.output_full_pending = False
            # route future overflow straight to disk
            self.output_sink_node = None
            self._output_spill_mode = True
            if pending:
                yield from self.node.disk.write(
                    pending * self.ctx.cfg.output_pair_bytes
                )
            self.ctx.trace("output_spill_fallback", f"join{self.index}",
                           pending=pending)
            yield from self.ctx.send(
                self.node, self.ctx.scheduler_node,
                ReliefAck(self.index, still_full=False),
            )
            return
        if self.spill is None:
            self.spill = SpillStore(self.ctx, self.index, hash_range=self.my_range)
            self.ctx.trace("spill_fallback", f"join{self.index}")
        still_full = yield from self._reprocess_parked()
        assert not still_full, "spill mode consumes everything"
        self.full_pending = False
        yield from self.ctx.send(
            self.node, self.ctx.scheduler_node,
            ReliefAck(self.index, still_full=False),
        )

    # ------------------------------------------------------------------
    # drain polling
    # ------------------------------------------------------------------
    def _on_status_request(self, msg: StatusRequest) -> Generator[Any, Any, None]:
        # Adjusted counters: contributions from fenced (declared-dead) peers
        # are subtracted at report time — raw counters are never mutated, so
        # late in-flight arrivals from a dead peer stay balanced out too.
        recv_b = self.received_build - sum(
            self._recv_build_by_origin.get(g, 0) for g in sorted(self._fenced_gids)
        )
        proc_b = self.processed_build - sum(
            self._proc_build_by_origin.get(g, 0) for g in sorted(self._fenced_gids)
        )
        emit_b = self.emitted_build - sum(
            self._emitted_build_by_dest.get(d, 0) for d in sorted(self.fenced)
        )
        report = StatusReport(
            node=self.index,
            token=msg.token,
            received_build=recv_b,
            processed_build=proc_b,
            emitted_build=emit_b,
            received_probe=self.received_probe,
            processed_probe=self.processed_probe,
            busy=bool(self.parked) or self.full_pending
                 or self.output_full_pending
                 or self.transfers_pending > 0,
            emitted_probe=self.emitted_probe,
        )
        yield from self.ctx.send(self.node, self.ctx.scheduler_node, report)

    # ------------------------------------------------------------------
    # reshuffle (hybrid)
    # ------------------------------------------------------------------
    def _on_count_request(self, msg: CountRequest) -> Generator[Any, Any, None]:
        counts = self.store.position_counts(msg.lo, msg.hi)
        yield from self.node.compute_per_tuple(
            self.ctx.cost.cpu_route_tuple, self.store.stored_tuples
        )
        yield from self.ctx.send(
            self.node, self.ctx.scheduler_node,
            CountVector(self.index, msg.lo, msg.hi, counts,
                        wire_scale=self.ctx.cfg.workload.scale),
        )

    def _on_reshuffle_order(self, msg: ReshuffleOrder) -> Generator[Any, Any, None]:
        # Re-open: a CLOSED replica participates in redistribution.
        self.state = self.BUILD
        self.successor = None
        moved_total = 0
        for dest, rng in msg.assignments:
            if dest == self.index:
                self.my_range = rng
                continue
            if rng is None:
                continue
            out = self.store.extract_position_range(rng.lo, rng.hi)
            if out.size:
                self.node.memory.free(int(out.size) * self._tb)
                yield from self.node.compute_per_tuple(
                    self.ctx.cost.cpu_repack_tuple, out.size
                )
                moved_total += int(out.size)
                self._spawn_transfer(out, dest, Hop.RESHUFFLE)
        self.ctx.trace("reshuffle", f"join{self.index}", moved=moved_total,
                       new_range=str(self.my_range))
        yield from self.ctx.send(
            self.node, self.ctx.scheduler_node,
            ReshuffleDone(self.index, moved_tuples=moved_total),
        )

    # ------------------------------------------------------------------
    # probe path
    # ------------------------------------------------------------------
    def _on_start_probe(self, msg: StartProbe) -> Generator[Any, Any, None]:
        if self.state == self.PROBE:
            return  # an eager S chunk already flipped us (see below)
        assert not self.parked and not self.full_pending, (
            f"join{self.index} entered probe with parked build data"
        )
        self.state = self.PROBE
        self.probe_started_at = self.ctx.sim.now
        if self.activated_at == self.activated_at:  # not NaN
            self.ctx.spans.add(
                f"join{self.index}", "build",
                self.activated_at, self.probe_started_at,
            )
        # One consolidation/sort pass over the stored table.
        yield from self.node.compute_per_tuple(
            self.ctx.cost.cpu_repack_tuple, self.store.stored_tuples
        )
        self.store.finalize()

    def _on_probe_chunk(self, chunk: DataChunk) -> Generator[Any, Any, None]:
        self.received_probe += 1
        if self.state != self.PROBE:
            # Defensive: the scheduler flips join nodes before the sources,
            # but if an S chunk ever outruns StartProbe, switch lazily.
            yield from self._on_start_probe(StartProbe())
        cost = self.ctx.cost
        yield from self.node.compute_per_tuple(cost.cpu_probe_tuple, chunk.values.size)
        found = self.store.probe(chunk.values)
        if found:
            yield from self.node.compute_per_tuple(cost.cpu_output_match, found)
        self.matches += found
        if found and self.ctx.cfg.materialize_output:
            yield from self._materialize_output(found)
        if self.spill is not None:
            yield from self.spill.write_s(chunk.values)
        self.processed_probe += 1
        self.node.recv_credits.release()

    # ------------------------------------------------------------------
    # output materialization & probe-phase expansion (footnote 1)
    # ------------------------------------------------------------------
    def _materialize_output(self, pairs: int) -> Generator[Any, Any, None]:
        """Keep ``pairs`` output tuples: in memory, at the sink, or on disk."""
        cfg = self.ctx.cfg
        if self.output_sink_node is not None:
            self._spawn_output_transfer(pairs, self.output_sink_node)
            return
        need = pairs * cfg.output_pair_bytes
        if self.node.memory.try_alloc(need):
            self.output_tuples += pairs
            return
        fit = self.node.memory.available // cfg.output_pair_bytes
        if fit > 0:
            self.node.memory.alloc(fit * cfg.output_pair_bytes)
            self.output_tuples += fit
            pairs -= fit
        if not cfg.probe_expansion or self._output_spill_mode:
            # Paper's default assumption: overflow output goes to disk.
            self.output_spilled += pairs
            yield from self.node.disk.write(pairs * cfg.output_pair_bytes)
            return
        self.output_pending += pairs
        if not self.output_full_pending:
            self.output_full_pending = True
            self.ctx.trace("output_full", f"join{self.index}",
                           materialized=self.output_tuples)
            yield from self.ctx.send(
                self.node, self.ctx.scheduler_node,
                MemoryFull(
                    self.index,
                    deficit_bytes=self.output_pending * cfg.output_pair_bytes,
                ),
            )

    def _spawn_output_transfer(self, pairs: int, dest: int) -> None:
        """Ship materialized pairs to the output sink asynchronously."""
        self.transfers_pending += 1
        cause = self.ctx.causal.cause_of(f"join{self.index}")
        self.ctx.sim.spawn(
            self._run_output_transfer(pairs, dest, cause),
            name=f"out:join{self.index}->join{dest}",
        )

    def _run_output_transfer(
        self, pairs: int, dest: int, cause: int | None = None
    ) -> Generator[Any, Any, None]:
        cfg = self.ctx.cfg
        try:
            chunk_pairs = cfg.workload.real_chunk_tuples
            while pairs > 0:
                n = min(pairs, chunk_pairs)
                pairs -= n
                self.emitted_probe += 1
                yield from self.ctx.send(
                    self.node,
                    self.ctx.join_node(dest),
                    DataChunk("O", np.zeros(n, dtype=np.uint64),
                              cfg.output_pair_bytes, hop=Hop.OUTPUT,
                              origin=self.node.node_id),
                    parent=cause,
                )
        finally:
            self.transfers_pending -= 1

    def _on_output_chunk(self, chunk: DataChunk) -> Generator[Any, Any, None]:
        """An output sink absorbing materialized pairs (it may itself
        overflow and chain-expand, exactly like the build-phase chains)."""
        self.received_probe += 1
        if self.state == self.DORMANT:
            # Raced ahead of our ActivateJoin; replay on activation.
            self.pre_activation.append(chunk)
            self._msg_credit = False  # the parked entry owns the credit
            return
        yield from self._materialize_output(chunk.tuples)
        self.processed_probe += 1
        self.node.recv_credits.release()

    def _on_output_redirect(self, msg: OutputRedirect) -> Generator[Any, Any, None]:
        self.output_sink_node = msg.new_node
        pending, self.output_pending = self.output_pending, 0
        self.output_full_pending = False
        self.ctx.trace("output_redirect", f"join{self.index}",
                       sink=msg.new_node, pending=pending)
        if pending:
            self._spawn_output_transfer(pending, msg.new_node)
        yield from self.ctx.send(
            self.node, self.ctx.scheduler_node,
            ReliefAck(self.index, still_full=False),
        )

    # ------------------------------------------------------------------
    # control-plane fault tolerance (repro.core.membership)
    # ------------------------------------------------------------------
    def _on_heartbeat_ping(self, msg: HeartbeatPing) -> Generator[Any, Any, None]:
        # Best-effort on purpose: a lost ack must look exactly like a dead
        # node to the detector — that is what makes false positives real.
        yield from self.ctx.send(
            self.node, self.ctx.scheduler_node,
            HeartbeatAck(self.index, msg.token),
            best_effort=True,
        )

    def _on_node_lost(self, msg: NodeLost) -> Generator[Any, Any, None]:
        if msg.dead not in self.fenced:
            self.fenced.add(msg.dead)
            self._fenced_gids.add(self.ctx.join_node(msg.dead).node_id)
            if self.successor == msg.dead:
                self.successor = None
            # Shed entries that pointed at the corpse become discards: the
            # replay from the sources re-covers that range.
            self.shed_chain = [
                (pred, None if succ == msg.dead else succ)
                for pred, succ in self.shed_chain
            ]
            if msg.purge and not self.quarantined:
                self._purge(msg.dead)
            self.ctx.trace("node_lost", f"join{self.index}",
                           dead=msg.dead, purge=msg.purge)
        yield from self.ctx.send(
            self.node, self.ctx.scheduler_node, NodeLostAck(self.index)
        )

    def _purge(self, dead: int) -> None:
        """Drop this node's replica-chain segment after a co-member died.

        Chain members hold *disjoint temporal segments* of one range, so
        with any member dead the range cannot be served from survivors —
        the whole entry collapses to a fresh target and the sources
        re-stream it.  Survivors drop their segment (it would double-count
        against the replay) and retire all further traffic on arrival.
        """
        self.quarantined = True
        dumped = self.store.extract_position_range(
            0, self.ctx.cfg.hash_positions
        )
        if dumped.size:
            self.node.memory.free(int(dumped.size) * self._tb)
        self.matches = 0
        self.spill = None
        while self.parked:
            chunk = self.parked.popleft()
            self._retire_build_chunk(chunk.origin)
        self.full_pending = False
        self.ctx.trace("purged", f"join{self.index}", dead=dead,
                       dropped=int(dumped.size))

    def _on_scheduler_failover(self, msg: SchedulerFailover) -> Generator[Any, Any, None]:
        # The dead primary may have taken our un-acked announcements to its
        # grave; re-announce anything still awaiting a scheduler decision
        # (re-announcing something the backup already knows is harmless —
        # the relief queue tolerates duplicate MemoryFull entries).
        self.ctx.trace("scheduler_failover", f"join{self.index}",
                       new_scheduler=msg.new_scheduler)
        if self.full_pending and self.parked:
            deficit = sum(c.nbytes for c in self.parked)
            yield from self.ctx.send(
                self.node, self.ctx.scheduler_node,
                MemoryFull(self.index, deficit_bytes=deficit),
            )
        if self.output_full_pending:
            yield from self.ctx.send(
                self.node, self.ctx.scheduler_node,
                MemoryFull(
                    self.index,
                    deficit_bytes=self.output_pending
                    * self.ctx.cfg.output_pair_bytes,
                ),
            )

    # ------------------------------------------------------------------
    # OOC final passes & shutdown
    # ------------------------------------------------------------------
    def _on_finalize_pass(self, msg: FinalizePass) -> Generator[Any, Any, None]:
        if self._finalized_pass:
            # Failover re-drive: the passes already ran; just re-ack.
            yield from self.ctx.send(
                self.node, self.ctx.scheduler_node, PassDone(self.index)
            )
            return
        self._finalized_pass = True
        if self.probe_started_at == self.probe_started_at:  # not NaN
            self.ctx.spans.add(
                f"join{self.index}", "probe",
                self.probe_started_at, self.ctx.sim.now,
            )
        if self.spill is not None:
            t0 = self.ctx.sim.now
            found = yield from self.spill.final_passes()
            self.ctx.spans.add(
                f"join{self.index}", "ooc", t0, self.ctx.sim.now,
                matches=found,
            )
            self.matches += found
            if found and self.ctx.cfg.materialize_output:
                # Pairs produced by the disk passes go straight to the
                # local output file — the pass is already disk-bound.
                self.output_spilled += found
                yield from self.node.disk.write(
                    found * self.ctx.cfg.output_pair_bytes
                )
            self.ctx.trace("ooc_pass", f"join{self.index}", matches=found)
        # The dedup window has done its job once the query's data flow is
        # over; record its high-water mark and release the memory.
        self.ctx.metrics.set_gauge(
            "node.dedup_window", len(self._seen_seqs), node=self.node.name
        )
        self._seen_seqs.clear()
        yield from self.ctx.send(
            self.node, self.ctx.scheduler_node, PassDone(self.index)
        )

    def _on_shutdown(self, msg: Shutdown) -> Generator[Any, Any, None]:
        if self.state != self.DORMANT:
            yield from self.ctx.send(
                self.node, self.ctx.scheduler_node,
                FinalReport(
                    node=self.index,
                    stored_tuples=self.store.stored_tuples,
                    matches=self.matches,
                    peak_memory=self.node.memory.peak,
                    overcommit_bytes=self.overcommit_bytes,
                    spilled_r_tuples=self.spill.spilled_r if self.spill else 0,
                    spilled_s_tuples=self.spill.spilled_s if self.spill else 0,
                    activated_at=self.activated_at,
                    split_transfer_s=self.split_transfer_s,
                    output_tuples=self.output_tuples,
                    output_spilled_tuples=self.output_spilled,
                    is_output_sink=self.is_output_sink,
                ),
            )
        self.state = self.DONE
