"""Run results: everything the paper's figures are computed from."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..config import RunConfig
from ..obs import PhaseTimeline

__all__ = ["NodeLoad", "CommStats", "PhaseTimes", "JoinRunResult"]


@dataclass(frozen=True)
class NodeUtilization:
    """Busy-time fractions of one node's hardware over the whole run."""

    node: int
    role: str
    cpu: float
    tx: float
    rx: float
    disk: float
    #: timeline/causal-log track name ("src<s>" / "join<pool index>");
    #: distinct from ``node``, which is the global node id
    track: str = ""

    def __str__(self) -> str:
        return (f"{self.role}{self.node}: cpu={self.cpu:5.1%} "
                f"tx={self.tx:5.1%} rx={self.rx:5.1%} disk={self.disk:5.1%}")


@dataclass(frozen=True)
class NodeLoad:
    """Build tuples stored on one join node at probe time."""

    node: int
    stored_tuples: int
    activated_at: float
    peak_memory: int
    spilled_r_tuples: int = 0


@dataclass
class CommStats:
    """Tuple/chunk traffic by hop kind (see messages.Hop)."""

    tuples_by_hop: dict[str, int] = field(default_factory=dict)
    chunks_by_hop: dict[str, int] = field(default_factory=dict)
    bytes_by_kind: dict[str, int] = field(default_factory=dict)

    def tuples(self, *hops: str) -> int:
        return sum(self.tuples_by_hop.get(h, 0) for h in hops)

    def chunks_equivalent(self, chunk_tuples: int, *hops: str) -> float:
        """Traffic in units of full chunks (the paper's Figure 4/11 y-axis)."""
        return self.tuples(*hops) / chunk_tuples


@dataclass(frozen=True)
class PhaseTimes:
    """Simulated wall-clock boundaries of the run's phases (seconds)."""

    build_s: float
    reshuffle_s: float
    probe_s: float
    ooc_pass_s: float

    @property
    def total_s(self) -> float:
        return self.build_s + self.reshuffle_s + self.probe_s + self.ooc_pass_s

    @property
    def table_building_s(self) -> float:
        """The paper's 'hash table building time': build plus — for the
        hybrid algorithm — the reshuffling step (Figure 3's accounting)."""
        return self.build_s + self.reshuffle_s


@dataclass
class JoinRunResult:
    """Complete outcome of one simulated join run."""

    config: RunConfig
    times: PhaseTimes
    matches: int
    #: exact equi-join cardinality from the sequential oracle (None if the
    #: driver was asked to skip validation)
    reference_matches: int | None
    comm: CommStats
    loads: list[NodeLoad]
    #: join nodes used at any point (initial + recruited)
    nodes_used: int
    #: (time, node) recruitment events, in order
    expansion_trace: list[tuple[float, int]]
    n_splits: int
    split_moved_tuples: int
    #: total simulated time during which a split transfer was in progress
    split_busy_s: float
    reshuffle_moved_tuples: int
    overcommit_bytes: int
    spilled_r_tuples: int
    spilled_s_tuples: int
    #: output materialization (footnote 1); zero unless enabled
    output_tuples: int = 0
    output_spilled_tuples: int = 0
    output_sink_nodes: int = 0
    #: busy-time fractions of every node that did work (sources + joins)
    utilization: list[NodeUtilization] = field(default_factory=list)
    #: phase/span timeline (scheduler phases + per-node activity spans);
    #: feed to :func:`repro.obs.chrome_trace` for a Perfetto-loadable file
    timeline: PhaseTimeline | None = None
    #: end-of-run metrics snapshot (list of instrument dicts, see
    #: :meth:`repro.obs.MetricsRegistry.snapshot`)
    metrics: list[dict] = field(default_factory=list)
    #: raw event tracer from the run (None when tracing is disabled)
    tracer: Any | None = None
    #: causal message DAG (:class:`repro.obs.CausalLog`); feed the result
    #: to :func:`repro.obs.explain` for the critical-path report
    causal: Any | None = None

    # ------------------------------------------------------------------
    @property
    def total_s(self) -> float:
        return self.times.total_s

    @property
    def paper_scale_total_s(self) -> float:
        """Approximate full-scale seconds: simulated time divided by the
        workload scale (valid because fixed per-op costs are co-scaled)."""
        return self.total_s / self.config.workload.scale

    @property
    def is_valid(self) -> bool:
        """Distributed match count equals the sequential reference."""
        return (
            self.reference_matches is None
            or self.matches == self.reference_matches
        )

    def extra_build_chunks(self) -> float:
        """Figure 4/11 metric: build-phase communication beyond the primary
        source->node hop, in chunk units."""
        from .messages import Hop

        return self.comm.chunks_equivalent(
            self.config.workload.real_chunk_tuples, *Hop.BUILD_EXTRA
        )

    def probe_dup_chunks(self) -> float:
        """Probe-phase replica broadcast overhead, in chunk units."""
        from .messages import Hop

        return self.comm.chunks_equivalent(
            self.config.workload.real_chunk_tuples, Hop.PROBE_DUP
        )

    def load_stats(self) -> tuple[float, int, int]:
        """(average, max, min) stored tuples across used join nodes."""
        if not self.loads:
            return (0.0, 0, 0)
        stored = [l.stored_tuples for l in self.loads]
        return (sum(stored) / len(stored), max(stored), min(stored))

    def summary(self) -> str:
        """One-paragraph human-readable digest."""
        avg, mx, mn = self.load_stats()
        return (
            f"{self.config.algorithm.value:>9s}: total={self.total_s:8.2f}s "
            f"build={self.times.build_s:7.2f}s reshuffle={self.times.reshuffle_s:6.2f}s "
            f"probe={self.times.probe_s:7.2f}s ooc={self.times.ooc_pass_s:6.2f}s | "
            f"nodes={self.nodes_used:2d} splits={self.n_splits:3d} "
            f"extra_build_chunks={self.extra_build_chunks():8.1f} "
            f"probe_dup_chunks={self.probe_dup_chunks():8.1f} | "
            f"load avg/max/min={avg:9.1f}/{mx}/{mn} | "
            f"matches={self.matches}"
            + ("" if self.is_valid else f" (REF {self.reference_matches}: MISMATCH!)")
        )
