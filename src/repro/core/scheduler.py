"""The scheduler actor (paper §4.1.1).

Coordinates the whole join: activates the initial join nodes, answers
memory-full reports by running the configured expansion strategy (one
relief cycle at a time — the generalization of the paper's barrier split
pointer), synchronizes the phase transitions (build -> [reshuffle] ->
probe -> [OOC passes] -> shutdown), and detects phase completion with a
counting drain protocol:

    a phase's data flow is drained when, over two consecutive polling
    rounds, every counter is unchanged AND
        chunks sent by sources + chunks emitted by join nodes
            == chunks received == chunks processed
    AND no node is busy, no relief is pending and no split is in flight.

Any message still on the wire leaves the sums unequal (it was counted by
its sender's report but not its receiver's), and any message sent after a
node's report changes that node's counters by the next round — so two
identical balanced rounds imply an empty network.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from collections.abc import Callable, Generator
from typing import Any

import numpy as np

from ..faults import UnrecoverableFaultError
from ..hashing import RangeRouter, Router, partition_range_by_counts
from ..sim import Mailbox
from .context import RunContext
from .messages import (
    ActivateAck,
    ActivateJoin,
    CountRequest,
    CountVector,
    FinalReport,
    FinalizePass,
    MemoryFull,
    OutputRedirect,
    PassDone,
    PollTick,
    QueryDone,
    RecruitDeny,
    RecruitGrant,
    RecruitRequest,
    ReliefAck,
    ReliefPing,
    ReshuffleDone,
    SpillOrder,
    ReshuffleOrder,
    Shutdown,
    SourceDone,
    StartProbe,
    StatusReport,
    StatusRequest,
)
from .strategy import make_strategy

__all__ = ["SchedulerProcess", "SchedulerOutcome"]


@dataclass
class SchedulerOutcome:
    """Raw facts the driver turns into a JoinRunResult."""

    t_start: float = 0.0
    t_build: float = 0.0
    t_reshuffle: float = 0.0
    t_probe: float = 0.0
    t_ooc: float = 0.0
    n_splits: int = 0
    split_moved_tuples: int = 0
    split_busy_s: float = 0.0
    reshuffle_moved_tuples: int = 0
    expansion_trace: list[tuple[float, int]] = field(default_factory=list)
    final_reports: dict[int, FinalReport] = field(default_factory=dict)
    probe_dup_tuples: int = 0
    activated: list[int] = field(default_factory=list)


class _StopFlag:
    """Shared stop signal for the drain ticker."""

    def __init__(self) -> None:
        self.stopped = False


class SchedulerProcess:
    """Drive with ``sim.spawn(proc.run())``; outcome in ``proc.outcome``."""

    def __init__(self, ctx: RunContext) -> None:
        self.ctx = ctx
        self.cfg = ctx.cfg
        self.node = ctx.scheduler_node
        self.outcome = SchedulerOutcome()
        #: the spawned simulation process (set by spawn_query_pipeline)
        self.proc: Any = None
        self.strategy = make_strategy(self, self.cfg)

        # node pools (paper: working / full / potential join nodes).
        # In workload mode (ctx.pool set) the private potential pool is
        # empty: every expansion node comes from the shared pool actor, and
        # the initial nodes are whatever the admission grant handed us.
        self.pool_client = ctx.pool
        initial = (
            list(ctx.initial_join_nodes)
            if ctx.initial_join_nodes is not None
            else list(range(self.cfg.initial_nodes))
        )
        self.working: list[int] = list(initial)
        self.full_nodes: list[int] = []
        self.potential: list[int] = (
            []
            if self.pool_client is not None
            else list(range(self.cfg.initial_nodes, ctx.n_potential))
        )
        self.activated: list[int] = list(self.working)
        #: reporter -> parked-backlog bytes from its last MemoryFull
        #: (forwarded to the shared pool's MEMORY_DEFICIT policy)
        self._full_deficit: dict[int, int] = {}
        self._active_deficit = 0

        self.router: Router = self.strategy.make_initial_router(list(self.working))
        self._version = 0

        # relief machinery
        self.full_queue: deque[int] = deque()
        #: reporter -> causal edge of its queued MemoryFull (provenance for
        #: the relief messages sent on its behalf)
        self._full_edges: dict[int, int | None] = {}
        self.relief_active = False
        #: nodes degraded to disk spilling (pool exhausted / atomic range)
        self.spilled_nodes: set[int] = set()
        #: pool nodes that never acked their ActivateJoin (presumed dead)
        self.dead_nodes: list[int] = []
        # Recruit-ack timeout (simulated seconds), applied only under fault
        # injection — on a fault-free run an ack cannot be lost, so waiting
        # without a deadline is always correct.  The derived default must
        # dominate the worst case for a *healthy* recruit: its receive port
        # can hold at most the credit window of data chunks ahead of the
        # ActivateJoin, so a generous multiple of one chunk's wire time is
        # safe at every workload scale.
        plan = ctx.cfg.faults
        wl = self.cfg.workload
        chunk_wire = ctx.cost.net_latency + ctx.cost.wire_time(
            wl.chunk_tuples * wl.tuple_bytes
        )
        self._recruit_timeout_s = (
            plan.recruit_timeout_s
            if plan is not None and plan.recruit_timeout_s is not None
            else 16.0 * chunk_wire + 20.0 * self.cfg.effective_drain_poll
        )
        self._recruit_backoff_max_s = (
            plan.recruit_backoff_max_s
            if plan is not None and plan.recruit_backoff_max_s is not None
            else 8.0 * self._recruit_timeout_s
        )

        # source bookkeeping
        self._source_done: dict[str, set[int]] = {"R": set(), "S": set()}
        self._source_chunks: dict[str, int] = {"R": 0, "S": 0}

        # drain polling
        self._poll_token = 0
        self._round_reports: dict[int, StatusReport] = {}
        self._round_nodes: tuple[int, ...] = ()
        self._prev_round: dict[int, tuple] | None = None
        self._drained = False
        self._phase = "build"
        self._ticker_flag = _StopFlag()

    # ------------------------------------------------------------------
    # helpers used by strategies
    # ------------------------------------------------------------------
    def next_version(self) -> int:
        self._version += 1
        return self._version

    def _pick_candidate(self) -> int | None:
        """Remove and return the potential node with the most available
        memory (paper's selection rule); ties broken by lowest pool index."""
        if not self.potential:
            return None
        spec = self.ctx.cfg.effective_cluster
        best = max(self.potential, key=lambda j: (spec.memory_of(j), -j))
        self.potential.remove(best)
        return best

    def _acquire_candidate(self, phase: str) -> Generator[Any, Any, int | None]:
        """One expansion candidate: from the private potential pool, or —
        in workload mode — by asking the shared pool actor.

        The pool path sends a :class:`RecruitRequest` carrying the current
        relief cycle's memory deficit and blocks for the pool's verdict.
        Exactly one response (grant or deny) exists per request, so the
        wait cannot leak pool messages into other dispatch sites.  On a
        grant the node is adopted first (the workload driver resets it and
        spawns this query's JoinProcess) so the subsequent ActivateJoin
        finds a live actor; on a deny the caller degrades to the OOC spill
        path, exactly as it would on private-pool exhaustion.
        """
        pc = self.pool_client
        if pc is None:
            return self._pick_candidate()
        yield from self.ctx.send(
            self.node, pc.node,
            RecruitRequest(
                query=pc.query_id, want=1, admission=False,
                deficit_bytes=self._active_deficit, phase=phase,
            ),
        )
        while True:
            msg = yield self.node.mailbox.get()
            if isinstance(msg, RecruitGrant) and msg.query == pc.query_id:
                cand = msg.nodes[0]
                pc.adopt(cand)
                return cand
            if isinstance(msg, RecruitDeny) and msg.query == pc.query_id:
                self.ctx.trace("recruit_denied", "scheduler",
                               reason=msg.reason, phase=phase)
                self.ctx.metrics.inc("sched.recruit_denied", 1,
                                     reason=msg.reason)
                return None
            self._dispatch_common(msg)

    def recruit_node(
        self, make_activate: Callable[[int], ActivateJoin], phase: str = "build",
        parent: int | None = None,
    ) -> Generator[Any, Any, int | None]:
        """Acknowledged recruitment with failure handling.

        Picks a candidate from the potential pool, sends it the
        ``ActivateJoin`` built by ``make_activate(candidate)``, and waits
        for its :class:`ActivateAck`.  If no ack arrives within the recruit
        timeout (a simulated-seconds deadline checked on drain-poll ticks,
        so no stray timer events enter the simulation), the candidate is
        presumed dead: it is excluded from the pool for good, the
        scheduler backs off exponentially (capped), and a *different*
        candidate is tried.  Returns the recruited pool index, or ``None``
        when the pool is exhausted — the caller then degrades to the OOC
        spill path (``ExpansionStrategy.fallback_spill``).

        A live recruit whose ack merely arrived late becomes a "zombie":
        activated but unknown to the pools.  Its stale ack is ignored by
        ``_dispatch_common`` and its FinalReport is accepted (but not
        awaited) at shutdown, so correctness is unaffected either way.
        """
        backoff = self._recruit_timeout_s / 2.0
        while True:
            cand = yield from self._acquire_candidate(phase)
            if cand is None:
                self.ctx.trace("pool_exhausted", "scheduler", phase=phase)
                return None
            yield from self.send_to_join(cand, make_activate(cand),
                                         parent=parent)
            if (yield from self._await_activate_ack(cand)):
                self.working.append(cand)
                self.activated.append(cand)
                self.outcome.expansion_trace.append((self.ctx.sim.now, cand))
                return cand
            self.dead_nodes.append(cand)
            self.ctx.metrics.inc("faults_recruit_failures", 1, phase=phase)
            self.ctx.metrics.inc("retries_total", 1, kind="recruit")
            self.ctx.trace("recruit_timeout", "scheduler",
                           node=cand, phase=phase)
            yield from self._await_backoff(backoff)
            backoff = min(backoff * 2.0, self._recruit_backoff_max_s)

    def _await_activate_ack(self, cand: int) -> Generator[Any, Any, bool]:
        """Wait for ``cand``'s ActivateAck; False once the deadline passes.

        Without an injector there is no deadline: acks cannot be lost, so
        unbounded waiting is always correct and can never misdeclare a
        busy-but-healthy recruit dead."""
        deadline = (
            None if self.ctx.faults is None
            else self.ctx.sim.now + self._recruit_timeout_s
        )
        while True:
            msg = yield self.node.mailbox.get()
            if isinstance(msg, ActivateAck) and msg.node == cand:
                return True
            if isinstance(msg, PollTick):
                if deadline is not None and self.ctx.sim.now >= deadline:
                    return False
                continue
            self._dispatch_common(msg)

    def _await_backoff(self, seconds: float) -> Generator[Any, Any, None]:
        """Idle until ``seconds`` from now (measured on drain-poll ticks),
        still absorbing other traffic."""
        deadline = self.ctx.sim.now + seconds
        while self.ctx.sim.now < deadline:
            msg = yield self.node.mailbox.get()
            if not isinstance(msg, PollTick):
                self._dispatch_common(msg)

    def mark_full(self, node: int) -> None:
        """Move a node from the working to the full list (replication)."""
        if node in self.working:
            self.working.remove(node)
        if node not in self.full_nodes:
            self.full_nodes.append(node)

    def record_split(self, moved: int, busy: float) -> None:
        self.outcome.n_splits += 1
        self.outcome.split_moved_tuples += moved
        self.outcome.split_busy_s += busy

    def send_to_join(self, j: int, msg: Any,
                     parent: int | None = None) -> Generator[Any, Any, None]:
        yield from self.ctx.send(self.node, self.ctx.join_node(j), msg,
                                 parent=parent)

    def broadcast_to_sources(self, msg: Any) -> Generator[Any, Any, None]:
        for s in range(self.ctx.n_sources):
            yield from self.ctx.send(self.node, self.ctx.source_node(s), msg)

    # ------------------------------------------------------------------
    # message waiting with background dispatch
    # ------------------------------------------------------------------
    def await_message(self, match: Callable[[Any], bool]) -> Generator[Any, Any, Any]:
        """Wait for a message satisfying ``match``; everything else goes
        through the common dispatcher (so relief cycles never starve the
        rest of the protocol)."""
        while True:
            msg = yield self.node.mailbox.get()
            if match(msg):
                return msg
            self._dispatch_common(msg)

    def await_relief_ack(self, reporter: int) -> Generator[Any, Any, ReliefAck]:
        return (
            yield from self.await_message(
                lambda m: isinstance(m, ReliefAck) and m.node == reporter
            )
        )

    def _dispatch_common(self, msg: Any) -> None:
        """Messages that may arrive at any time, handled statelessly."""
        if isinstance(msg, MemoryFull):
            self.full_queue.append(msg.node)
            # Remember the MemoryFull's causal edge: the relief cycle runs
            # later (the queue is serialized), after the scheduler has
            # dequeued other messages, so the implicit cause would be wrong.
            self._full_edges[msg.node] = self.ctx.causal.cause_of("scheduler")
            self._full_deficit[msg.node] = msg.deficit_bytes
            self._prev_round = None
        elif isinstance(msg, SourceDone):
            self._source_done[msg.relation].add(msg.source)
            self._source_chunks[msg.relation] += sum(msg.chunks_sent.values())
            if msg.relation == "S":
                self.outcome.probe_dup_tuples += msg.dup_tuples
        elif isinstance(msg, StatusReport):
            # Reports may land while a relief cycle holds the main loop —
            # still collect them, or the in-flight poll round would never
            # complete and polling would stop for good.  The stability
            # evaluation re-checks relief/queue state before declaring a
            # phase drained.
            self._collect_report(msg)
        elif isinstance(msg, ActivateAck):
            # A recruit we timed out on answered after all: it is alive and
            # activated but excluded from the pools (a zombie).  Ignore the
            # ack — its FinalReport is accepted at shutdown regardless.
            self.ctx.trace("stale_activate_ack", "scheduler", node=msg.node)
        elif isinstance(msg, PollTick):
            pass  # ticks are only meaningful to an idle phase loop
        else:
            raise RuntimeError(f"scheduler: unexpected message {msg!r}")

    # ------------------------------------------------------------------
    # main run
    # ------------------------------------------------------------------
    def run(self) -> Generator[Any, Any, SchedulerOutcome]:
        ctx = self.ctx
        self.outcome.t_start = ctx.sim.now
        # Ticker first: the initial-activation ack timeout counts its ticks.
        ctx.sim.spawn(
            _ticker(ctx, self._ticker_flag, self.cfg.effective_drain_poll,
                    self.node.mailbox),
            name="drain-ticker",
        )
        self._notify_faults("build")
        # Activate the initial working join nodes and await their acks.
        # Initial nodes are not replaceable (the initial router is fixed
        # before activation), so a missing ack here is unrecoverable —
        # unlike mid-run recruits, which retry a different pool node.
        if isinstance(self.router, RangeRouter):
            for rng, chain in self.router.entries:
                yield from self.send_to_join(
                    chain[0], ActivateJoin(chain[0], hash_range=rng)
                )
        else:  # linear hashing: one bucket per initial node
            for b, j in enumerate(self.router.bucket_nodes):  # type: ignore[attr-defined]
                yield from self.send_to_join(j, ActivateJoin(j, bucket=b))
        yield from self._await_initial_acks(set(self.activated))

        yield from self._build_phase()
        self.outcome.t_build = ctx.sim.now
        ctx.trace("phase", "scheduler", phase="build_done")

        if self.strategy.needs_reshuffle:
            self._notify_faults("reshuffle")
            yield from self._reshuffle_phase()
        self.outcome.t_reshuffle = ctx.sim.now
        ctx.trace("phase", "scheduler", phase="reshuffle_done")

        self._notify_faults("probe")
        yield from self._probe_phase()
        self.outcome.t_probe = ctx.sim.now
        ctx.trace("phase", "scheduler", phase="probe_done")

        self._notify_faults("ooc")
        yield from self._ooc_pass_phase()
        self.outcome.t_ooc = ctx.sim.now
        ctx.trace("phase", "scheduler", phase="ooc_done")

        yield from self._shutdown()
        self.outcome.activated = list(self.activated)
        return self.outcome

    def _notify_faults(self, phase: str) -> None:
        """Synchronous phase-entry hook for phase-triggered crash specs."""
        if self.ctx.faults is not None:
            self.ctx.faults.notify_phase(phase)

    def _await_initial_acks(self, pending: set[int]) -> Generator[Any, Any, None]:
        deadline = (
            None if self.ctx.faults is None
            else self.ctx.sim.now + self._recruit_timeout_s
        )
        while pending:
            msg = yield self.node.mailbox.get()
            if isinstance(msg, ActivateAck) and msg.node in pending:
                pending.discard(msg.node)
                if deadline is not None:  # progress: extend the deadline
                    deadline = self.ctx.sim.now + self._recruit_timeout_s
            elif isinstance(msg, PollTick):
                if deadline is not None and self.ctx.sim.now >= deadline:
                    raise UnrecoverableFaultError(
                        f"initial join node(s) {sorted(pending)} never "
                        "acknowledged activation — initial nodes cannot be "
                        "replaced (the routing table is fixed before "
                        "activation); fault plans may only crash "
                        "not-yet-recruited pool nodes (docs/FAULTS.md)"
                    )
            else:
                self._dispatch_common(msg)

    # ------------------------------------------------------------------
    # build phase
    # ------------------------------------------------------------------
    def _build_phase(self) -> Generator[Any, Any, None]:
        self._phase = "build"
        self._drained = False
        self._prev_round = None
        while not self._drained:
            # Relief first: expansion requests outrank polling.
            while self.full_queue:
                reporter = self.full_queue.popleft()
                yield from self._relief_cycle(reporter)
            msg = yield self.node.mailbox.get()
            yield from self._dispatch_phase(msg)

    def _relief_cycle(self, reporter: int) -> Generator[Any, Any, None]:
        assert not self.relief_active, "relief cycles are serialized"
        self.relief_active = True
        self._prev_round = None
        t0 = self.ctx.sim.now
        self.ctx.metrics.inc("sched.relief_cycles", 1, phase="build")
        self._active_deficit = self._full_deficit.pop(reporter, 0)
        try:
            # Re-check first: an earlier split in this queue may already
            # have relieved the reporter (round-robin pointer policies
            # split buckets other than the overflowing one).
            yield from self.send_to_join(
                reporter, ReliefPing(),
                parent=self._full_edges.pop(reporter, None),
            )
            ack = yield from self.await_relief_ack(reporter)
            if not ack.still_full:
                return
            ack = yield from self.strategy.expand(reporter)
            if ack.still_full:
                self.full_queue.append(reporter)
        finally:
            self.relief_active = False
            self._active_deficit = 0
            self.ctx.metrics.set_gauge(
                "sched.relief_latency_s", self.ctx.sim.now - t0, phase="build"
            )

    def _dispatch_phase(self, msg: Any) -> Generator[Any, Any, None]:
        """Main-loop dispatch for build/probe phases."""
        if isinstance(msg, PollTick):
            if self._ready_to_poll():
                yield from self._start_poll_round()
        elif isinstance(msg, StatusReport):
            self._collect_report(msg)
        else:
            self._dispatch_common(msg)

    def _ready_to_poll(self) -> bool:
        relation = "R" if self._phase == "build" else "S"
        return (
            len(self._source_done[relation]) == self.ctx.n_sources
            and not self.full_queue
            and not self.relief_active
            and not self._round_nodes  # no round already in flight
        )

    def _start_poll_round(self) -> Generator[Any, Any, None]:
        self._poll_token += 1
        self._round_reports = {}
        self._round_nodes = tuple(self.activated)
        self.ctx.metrics.inc("sched.drain_rounds", 1, phase=self._phase)
        for j in self._round_nodes:
            yield from self.send_to_join(j, StatusRequest(self._poll_token))

    def _collect_report(self, report: StatusReport) -> None:
        if report.token != self._poll_token or report.node not in self._round_nodes:
            return  # stale round
        self._round_reports[report.node] = report
        if len(self._round_reports) < len(self._round_nodes):
            return
        # Round complete: evaluate stability.
        nodes = self._round_nodes
        self._round_nodes = ()
        if self.full_queue or self.relief_active or set(nodes) != set(self.activated):
            self._prev_round = None
            return
        snapshot = {
            j: (
                r.received_build, r.processed_build, r.emitted_build,
                r.received_probe, r.processed_probe, r.busy,
            )
            for j, r in self._round_reports.items()
        }
        if any(r.busy for r in self._round_reports.values()):
            self._prev_round = snapshot
            return
        if self._phase == "build":
            sent = self._source_chunks["R"] + sum(
                r.emitted_build for r in self._round_reports.values()
            )
            received = sum(r.received_build for r in self._round_reports.values())
            processed = sum(r.processed_build for r in self._round_reports.values())
        else:
            # emitted_probe covers output-sink forwarding (footnote 1)
            sent = self._source_chunks["S"] + sum(
                r.emitted_probe for r in self._round_reports.values()
            )
            received = sum(r.received_probe for r in self._round_reports.values())
            processed = sum(r.processed_probe for r in self._round_reports.values())
        balanced = sent == received == processed
        if balanced and self._prev_round == snapshot:
            self._drained = True
        self._prev_round = snapshot

    # ------------------------------------------------------------------
    # reshuffle phase (hybrid)
    # ------------------------------------------------------------------
    def _reshuffle_phase(self) -> Generator[Any, Any, None]:
        router = self.router
        assert isinstance(router, RangeRouter)
        groups = router.replicated_groups()
        # A group whose active replica spilled to disk cannot be reshuffled:
        # the disk-resident tuples cannot move, so the range must stay
        # replicated (probe broadcast reaches memory parts and the spill).
        members = [
            (rng, chain) for rng, chain in groups
            if not (set(chain) & self.spilled_nodes)
        ]
        frozen = [
            (rng, chain) for rng, chain in groups
            if set(chain) & self.spilled_nodes
        ]
        if not members:
            return
        ctx = self.ctx

        # 1. Gather per-position counts from every replica-chain member.
        expected = sum(len(chain) for _, chain in members)
        for rng, chain in members:
            for j in chain:
                yield from self.send_to_join(j, CountRequest(rng.lo, rng.hi))
        vectors: dict[int, np.ndarray] = {}
        while len(vectors) < expected:
            msg = yield from self.await_message(lambda m: isinstance(m, CountVector))
            vectors[msg.node] = msg.counts

        # 2. Greedy contiguous cut per group; dispatch redistribution orders.
        new_entries: list[tuple] = [
            (rng, chain) for rng, chain in router.entries if len(chain) == 1
        ]
        new_entries.extend(frozen)
        n_orders = 0
        for rng, chain in members:
            total = np.zeros(rng.width, dtype=np.int64)
            for j in chain:
                total += vectors[j]
            cuts = partition_range_by_counts(rng, total, len(chain))
            assignments = tuple(zip(chain, cuts))
            order = ReshuffleOrder(assignments=assignments)
            for j in chain:
                yield from self.send_to_join(j, order)
                n_orders += 1
            for j, cut in assignments:
                if cut is not None:
                    new_entries.append((cut, (j,)))
            ctx.trace("reshuffle_cut", "scheduler", range=str(rng),
                      parts=[str(c) for c in cuts])

        # 3. Await completion acknowledgements.
        done = 0
        while done < n_orders:
            msg = yield from self.await_message(
                lambda m: isinstance(m, ReshuffleDone)
            )
            self.outcome.reshuffle_moved_tuples += msg.moved_tuples
            done += 1

        # 4. Drain the redistribution traffic, then install the new table.
        self._phase = "build"
        self._drained = False
        self._prev_round = None
        while not self._drained:
            msg = yield self.node.mailbox.get()
            yield from self._dispatch_phase(msg)

        new_entries.sort(key=lambda e: e[0].lo)
        self.router = RangeRouter(
            positions=router.positions,
            entries=tuple(new_entries),
            version=self.next_version(),
        )

    # ------------------------------------------------------------------
    # probe phase
    # ------------------------------------------------------------------
    def _probe_phase(self) -> Generator[Any, Any, None]:
        probe_router = self.strategy.probe_router()
        # Join nodes first: an S chunk must never outrun the phase switch.
        for j in self.activated:
            yield from self.send_to_join(j, StartProbe(router=None))
        yield from self.broadcast_to_sources(StartProbe(router=probe_router))
        self._phase = "probe"
        self._drained = False
        self._prev_round = None
        while not self._drained:
            # Probe-phase expansion (footnote 1): a node whose materialized
            # output overflowed asks for an output sink.
            while self.full_queue:
                reporter = self.full_queue.popleft()
                yield from self._probe_relief_cycle(reporter)
            msg = yield self.node.mailbox.get()
            yield from self._dispatch_phase(msg)

    def _probe_relief_cycle(self, reporter: int) -> Generator[Any, Any, None]:
        assert not self.relief_active, "relief cycles are serialized"
        self.relief_active = True
        self._prev_round = None
        t0 = self.ctx.sim.now
        self.ctx.metrics.inc("sched.relief_cycles", 1, phase="probe")
        self._active_deficit = self._full_deficit.pop(reporter, 0)
        try:
            new_node = yield from self.recruit_node(
                lambda j: ActivateJoin(j, phase="probe", output_sink=True),
                phase="probe",
                parent=self._full_edges.pop(reporter, None),
            )
            if new_node is None:
                self.spilled_nodes.add(reporter)
                self.ctx.trace("output_spill_order", "scheduler",
                               reporter=reporter)
                yield from self.send_to_join(reporter, SpillOrder())
            else:
                yield from self.send_to_join(
                    reporter, OutputRedirect(new_node=new_node)
                )
                self.ctx.trace("expand_output_sink", "scheduler",
                               reporter=reporter, new_node=new_node)
            yield from self.await_relief_ack(reporter)
        finally:
            self.relief_active = False
            self._active_deficit = 0
            self.ctx.metrics.set_gauge(
                "sched.relief_latency_s", self.ctx.sim.now - t0, phase="probe"
            )

    # ------------------------------------------------------------------
    # OOC passes & shutdown
    # ------------------------------------------------------------------
    def _ooc_pass_phase(self) -> Generator[Any, Any, None]:
        for j in self.activated:
            yield from self.send_to_join(j, FinalizePass())
        done = 0
        while done < len(self.activated):
            yield from self.await_message(lambda m: isinstance(m, PassDone))
            done += 1

    def _shutdown(self) -> Generator[Any, Any, None]:
        self._ticker_flag.stopped = True
        for s in range(self.ctx.n_sources):
            yield from self.ctx.send(
                self.node, self.ctx.source_node(s), Shutdown()
            )
        # Private mode shuts down the whole pool (dormant nodes just exit);
        # workload mode only owns its granted nodes — shutting down the
        # shared pool's dormant nodes would kill other queries' capacity.
        if self.pool_client is None:
            targets = list(range(self.ctx.n_potential))
        else:
            targets = sorted(set(self.activated) | set(self.dead_nodes))
        for j in targets:
            yield from self.send_to_join(j, Shutdown())
        # Wait until every *known-activated* node reported.  Set inclusion,
        # not a count: a zombie recruit (timed out but actually alive) also
        # sends a FinalReport, which must not terminate this loop early.
        while not set(self.activated) <= set(self.outcome.final_reports):
            msg = yield from self.await_message(
                lambda m: isinstance(m, FinalReport)
            )
            self.outcome.final_reports[msg.node] = msg
        if self.pool_client is not None:
            # Release only nodes known alive and owned: zombies (granted
            # but never acked) and timed-out recruits stay leaked — the
            # pool shrinks, exactly as real hardware would.
            released = tuple(sorted(self.activated))
            yield from self.ctx.send(
                self.node, self.pool_client.node,
                QueryDone(query=self.pool_client.query_id, released=released),
            )


def _ticker(
    ctx: RunContext, flag: _StopFlag, interval: float, mailbox: Mailbox
) -> Generator[Any, Any, None]:
    """Drops PollTicks into the scheduler mailbox until stopped.

    Runs on the scheduler node, so ticks never cross the network."""
    while not flag.stopped:
        yield ctx.sim.timeout(interval)
        mailbox.put(PollTick())
