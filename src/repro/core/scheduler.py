"""The scheduler actor (paper §4.1.1).

Coordinates the whole join: activates the initial join nodes, answers
memory-full reports by running the configured expansion strategy (one
relief cycle at a time — the generalization of the paper's barrier split
pointer), synchronizes the phase transitions (build -> [reshuffle] ->
probe -> [OOC passes] -> shutdown), and detects phase completion with a
counting drain protocol:

    a phase's data flow is drained when, over two consecutive polling
    rounds, every counter is unchanged AND
        chunks sent by sources + chunks emitted by join nodes
            == chunks received == chunks processed
    AND no node is busy, no relief is pending and no split is in flight.

Any message still on the wire leaves the sums unequal (it was counted by
its sender's report but not its receiver's), and any message sent after a
node's report changes that node's counters by the next round — so two
identical balanced rounds imply an empty network.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from collections.abc import Callable, Generator
from typing import Any

import numpy as np

from ..faults import UnrecoverableFaultError
from ..hashing import LinearHashRouter, RangeRouter, Router, partition_range_by_counts
from ..sim import Interrupt, Mailbox
from .context import RunContext
from .messages import (
    ActivateAck,
    ActivateJoin,
    CountRequest,
    CountVector,
    DeathVerdict,
    Depose,
    FinalReport,
    FinalizePass,
    HeartbeatAck,
    MemoryFull,
    NodeLost,
    NodeLostAck,
    OutputRedirect,
    PassDone,
    PollTick,
    QueryDone,
    RecruitDeny,
    RecruitGrant,
    RecruitRequest,
    ReliefAck,
    ReliefPing,
    ReplayDone,
    ReplayOrder,
    ReshuffleDone,
    RouteUpdate,
    SchedulerFailover,
    SpillOrder,
    SplitDone,
    ReshuffleOrder,
    Shutdown,
    SourceDone,
    StartProbe,
    StateSync,
    StatusReport,
    StatusRequest,
)
from .strategy import make_strategy

__all__ = ["SchedulerProcess", "SchedulerOutcome"]


class _NodeDied(Exception):
    """Internal control flow: a DeathVerdict surfaced in dispatch.

    Raised out of ``_dispatch_common`` so whatever protocol wait is in
    progress unwinds to the phase loop, which runs the recovery cycle —
    recovery must never run from the middle of a relief decision."""

    def __init__(self, node: int) -> None:
        super().__init__(f"join node {node} declared dead")
        self.node = node


class _Deposed(Exception):
    """Internal control flow: the standby took over while we were alive
    (a dead-man false positive).  The old primary stands down silently."""


@dataclass
class SchedulerOutcome:
    """Raw facts the driver turns into a JoinRunResult."""

    t_start: float = 0.0
    t_build: float = 0.0
    t_reshuffle: float = 0.0
    t_probe: float = 0.0
    t_ooc: float = 0.0
    n_splits: int = 0
    split_moved_tuples: int = 0
    split_busy_s: float = 0.0
    reshuffle_moved_tuples: int = 0
    expansion_trace: list[tuple[float, int]] = field(default_factory=list)
    final_reports: dict[int, FinalReport] = field(default_factory=dict)
    probe_dup_tuples: int = 0
    activated: list[int] = field(default_factory=list)


class _StopFlag:
    """Shared stop signal for the drain ticker."""

    def __init__(self) -> None:
        self.stopped = False


class SchedulerProcess:
    """Drive with ``sim.spawn(proc.run())``; outcome in ``proc.outcome``."""

    def __init__(self, ctx: RunContext) -> None:
        self.ctx = ctx
        self.cfg = ctx.cfg
        self.node = ctx.scheduler_node
        self.outcome = SchedulerOutcome()
        #: the spawned simulation process (set by spawn_query_pipeline)
        self.proc: Any = None
        self.strategy = make_strategy(self, self.cfg)

        # node pools (paper: working / full / potential join nodes).
        # In workload mode (ctx.pool set) the private potential pool is
        # empty: every expansion node comes from the shared pool actor, and
        # the initial nodes are whatever the admission grant handed us.
        self.pool_client = ctx.pool
        initial = (
            list(ctx.initial_join_nodes)
            if ctx.initial_join_nodes is not None
            else list(range(self.cfg.initial_nodes))
        )
        self.working: list[int] = list(initial)
        self.full_nodes: list[int] = []
        self.potential: list[int] = (
            []
            if self.pool_client is not None
            else list(range(self.cfg.initial_nodes, ctx.n_potential))
        )
        self.activated: list[int] = list(self.working)
        #: reporter -> parked-backlog bytes from its last MemoryFull
        #: (forwarded to the shared pool's MEMORY_DEFICIT policy)
        self._full_deficit: dict[int, int] = {}
        self._active_deficit = 0

        self.router: Router = self.strategy.make_initial_router(list(self.working))
        self._version = 0

        # relief machinery
        self.full_queue: deque[int] = deque()
        #: reporter -> causal edge of its queued MemoryFull (provenance for
        #: the relief messages sent on its behalf)
        self._full_edges: dict[int, int | None] = {}
        self.relief_active = False
        #: nodes degraded to disk spilling (pool exhausted / atomic range)
        self.spilled_nodes: set[int] = set()
        #: pool nodes that never acked their ActivateJoin (presumed dead)
        self.dead_nodes: list[int] = []
        # Recruit-ack timeout (simulated seconds), applied only under fault
        # injection — on a fault-free run an ack cannot be lost, so waiting
        # without a deadline is always correct.  The derived default must
        # dominate the worst case for a *healthy* recruit: its receive port
        # can hold at most the credit window of data chunks ahead of the
        # ActivateJoin, so a generous multiple of one chunk's wire time is
        # safe at every workload scale.
        plan = ctx.cfg.faults
        wl = self.cfg.workload
        chunk_wire = ctx.cost.net_latency + ctx.cost.wire_time(
            wl.chunk_tuples * wl.tuple_bytes
        )
        self._recruit_timeout_s = (
            plan.recruit_timeout_s
            if plan is not None and plan.recruit_timeout_s is not None
            else 16.0 * chunk_wire + 20.0 * self.cfg.effective_drain_poll
        )
        self._recruit_backoff_max_s = (
            plan.recruit_backoff_max_s
            if plan is not None and plan.recruit_backoff_max_s is not None
            else 8.0 * self._recruit_timeout_s
        )

        # source bookkeeping.  Chunk counts are kept *per destination* so
        # the drain balance can exclude chunks sent to a node later
        # declared dead (its mailbox absorbed them without retiring them).
        self._source_done: dict[str, set[int]] = {"R": set(), "S": set()}
        self._source_chunk_maps: dict[str, dict[int, int]] = {"R": {}, "S": {}}

        # control-plane fault tolerance (repro.core.membership)
        #: pool indices declared dead — excluded from routing, polling and
        #: the sent-side of the drain balance
        self.fenced: set[int] = set()
        #: in-flight relief/recovery decision, WAL-replicated to the backup
        self._pending: tuple = ()
        #: live nodes participating in the pending decision (purge set on
        #: a mid-decision death; primary-local, recomputed on re-drive)
        self._pending_parties: tuple[int, ...] = ()
        #: reporter whose relief cycle a recovery unwind abandoned
        self._abandoned_reporter: int | None = None
        self._recovering = False
        self._sync_seq = 0
        #: (recovery_id, source, relation) of absorbed ReplayDones
        self._replay_seen: set[tuple[int, int, str]] = set()
        #: ActivateAcks consumed by _dispatch_common while another await
        #: held the main loop (e.g. a recovery during initial activation)
        self._stray_activate_acks: set[int] = set()
        #: heartbeat failure detector (armed by _start_background)
        self.membership: Any = None
        self._membership_proc: Any = None

        # drain polling
        self._poll_token = 0
        self._round_reports: dict[int, StatusReport] = {}
        self._round_nodes: tuple[int, ...] = ()
        self._prev_round: dict[int, tuple] | None = None
        self._drained = False
        self._phase = "build"
        self._ticker_flag = _StopFlag()

    # ------------------------------------------------------------------
    # helpers used by strategies
    # ------------------------------------------------------------------
    def next_version(self) -> int:
        self._version += 1
        return self._version

    def _pick_candidate(self) -> int | None:
        """Remove and return the potential node with the most available
        memory (paper's selection rule); ties broken by lowest pool index."""
        if not self.potential:
            return None
        spec = self.ctx.cfg.effective_cluster
        best = max(self.potential, key=lambda j: (spec.memory_of(j), -j))
        self.potential.remove(best)
        return best

    def _acquire_candidate(self, phase: str) -> Generator[Any, Any, int | None]:
        """One expansion candidate: from the private potential pool, or —
        in workload mode — by asking the shared pool actor.

        The pool path sends a :class:`RecruitRequest` carrying the current
        relief cycle's memory deficit and blocks for the pool's verdict.
        Exactly one response (grant or deny) exists per request, so the
        wait cannot leak pool messages into other dispatch sites.  On a
        grant the node is adopted first (the workload driver resets it and
        spawns this query's JoinProcess) so the subsequent ActivateJoin
        finds a live actor; on a deny the caller degrades to the OOC spill
        path, exactly as it would on private-pool exhaustion.
        """
        pc = self.pool_client
        if pc is None:
            return self._pick_candidate()
        yield from self.ctx.send(
            self.node, pc.node,
            RecruitRequest(
                query=pc.query_id, want=1, admission=False,
                deficit_bytes=self._active_deficit, phase=phase,
            ),
        )
        while True:
            msg = yield from self.node.mailbox.recv()
            if isinstance(msg, RecruitGrant) and msg.query == pc.query_id:
                cand = msg.nodes[0]
                pc.adopt(cand)
                return cand
            if isinstance(msg, RecruitDeny) and msg.query == pc.query_id:
                self.ctx.trace("recruit_denied", "scheduler",
                               reason=msg.reason, phase=phase)
                self.ctx.metrics.inc("sched.recruit_denied", 1,
                                     reason=msg.reason)
                return None
            self._dispatch_common(msg)

    def recruit_node(
        self, make_activate: Callable[[int], ActivateJoin], phase: str = "build",
        parent: int | None = None,
    ) -> Generator[Any, Any, int | None]:
        """Acknowledged recruitment with failure handling.

        Picks a candidate from the potential pool, sends it the
        ``ActivateJoin`` built by ``make_activate(candidate)``, and waits
        for its :class:`ActivateAck`.  If no ack arrives within the recruit
        timeout (a simulated-seconds deadline checked on drain-poll ticks,
        so no stray timer events enter the simulation), the candidate is
        presumed dead: it is excluded from the pool for good, the
        scheduler backs off exponentially (capped), and a *different*
        candidate is tried.  Returns the recruited pool index, or ``None``
        when the pool is exhausted — the caller then degrades to the OOC
        spill path (``ExpansionStrategy.fallback_spill``).

        A live recruit whose ack merely arrived late becomes a "zombie":
        activated but unknown to the pools.  Its stale ack is ignored by
        ``_dispatch_common`` and its FinalReport is accepted (but not
        awaited) at shutdown, so correctness is unaffected either way.
        """
        backoff = self._recruit_timeout_s / 2.0
        while True:
            cand = yield from self._acquire_candidate(phase)
            if cand is None:
                self.ctx.trace("pool_exhausted", "scheduler", phase=phase)
                return None
            yield from self.send_to_join(cand, make_activate(cand),
                                         parent=parent)
            if (yield from self._await_activate_ack(cand)):
                self.working.append(cand)
                self.activated.append(cand)
                self.outcome.expansion_trace.append((self.ctx.sim.now, cand))
                return cand
            self.dead_nodes.append(cand)
            self.ctx.metrics.inc("faults_recruit_failures", 1, phase=phase)
            self.ctx.metrics.inc("retries_total", 1, kind="recruit")
            self.ctx.trace("recruit_timeout", "scheduler",
                           node=cand, phase=phase)
            yield from self._await_backoff(backoff)
            backoff = min(backoff * 2.0, self._recruit_backoff_max_s)

    def _await_activate_ack(self, cand: int) -> Generator[Any, Any, bool]:
        """Wait for ``cand``'s ActivateAck; False once the deadline passes.

        Without an injector there is no deadline: acks cannot be lost, so
        unbounded waiting is always correct and can never misdeclare a
        busy-but-healthy recruit dead."""
        deadline = (
            None if self.ctx.faults is None
            else self.ctx.sim.now + self._recruit_timeout_s
        )
        while True:
            msg = yield from self.node.mailbox.recv()
            if isinstance(msg, ActivateAck) and msg.node == cand:
                return True
            if isinstance(msg, PollTick):
                if deadline is not None and self.ctx.sim.now >= deadline:
                    return False
                continue
            self._dispatch_common(msg)

    def _await_backoff(self, seconds: float) -> Generator[Any, Any, None]:
        """Idle until ``seconds`` from now (measured on drain-poll ticks),
        still absorbing other traffic."""
        deadline = self.ctx.sim.now + seconds
        while self.ctx.sim.now < deadline:
            msg = yield from self.node.mailbox.recv()
            if not isinstance(msg, PollTick):
                self._dispatch_common(msg)

    def mark_full(self, node: int) -> None:
        """Move a node from the working to the full list (replication)."""
        if node in self.working:
            self.working.remove(node)
        if node not in self.full_nodes:
            self.full_nodes.append(node)

    def record_split(self, moved: int, busy: float) -> None:
        self.outcome.n_splits += 1
        self.outcome.split_moved_tuples += moved
        self.outcome.split_busy_s += busy

    def send_to_join(self, j: int, msg: Any,
                     parent: int | None = None) -> Generator[Any, Any, None]:
        yield from self.ctx.send(self.node, self.ctx.join_node(j), msg,
                                 parent=parent)

    def broadcast_to_sources(self, msg: Any) -> Generator[Any, Any, None]:
        for s in range(self.ctx.n_sources):
            yield from self.ctx.send(self.node, self.ctx.source_node(s), msg)

    # ------------------------------------------------------------------
    # message waiting with background dispatch
    # ------------------------------------------------------------------
    def await_message(self, match: Callable[[Any], bool]) -> Generator[Any, Any, Any]:
        """Wait for a message satisfying ``match``; everything else goes
        through the common dispatcher (so relief cycles never starve the
        rest of the protocol)."""
        while True:
            msg = yield from self.node.mailbox.recv()
            if match(msg):
                return msg
            self._dispatch_common(msg)

    def await_relief_ack(self, reporter: int) -> Generator[Any, Any, ReliefAck]:
        return (
            yield from self.await_message(
                lambda m: isinstance(m, ReliefAck) and m.node == reporter
            )
        )

    def _dispatch_common(self, msg: Any) -> None:
        """Messages that may arrive at any time, handled statelessly."""
        if isinstance(msg, MemoryFull):
            if msg.node in self.fenced:
                return  # a dead node's parting words
            if msg.node not in self.full_queue:
                self.full_queue.append(msg.node)
            # Remember the MemoryFull's causal edge: the relief cycle runs
            # later (the queue is serialized), after the scheduler has
            # dequeued other messages, so the implicit cause would be wrong.
            self._full_edges[msg.node] = self.ctx.causal.cause_of("scheduler")
            self._full_deficit[msg.node] = msg.deficit_bytes
            self._prev_round = None
        elif isinstance(msg, SourceDone):
            # Idempotent: a SchedulerFailover makes sources re-announce.
            if msg.source not in self._source_done[msg.relation]:
                self._source_done[msg.relation].add(msg.source)
                chunk_map = self._source_chunk_maps[msg.relation]
                for dest, n in msg.chunks_sent.items():
                    chunk_map[dest] = chunk_map.get(dest, 0) + n
                if msg.relation == "S":
                    self.outcome.probe_dup_tuples += msg.dup_tuples
        elif isinstance(msg, HeartbeatAck):
            if self.membership is not None:
                self.membership.note_ack(msg)
        elif isinstance(msg, DeathVerdict):
            if msg.node in self.fenced or msg.node not in self.activated:
                pass  # already recovered, or never part of this query
            elif self._recovering:
                raise UnrecoverableFaultError(
                    f"join node {msg.node} declared dead while recovering "
                    "from an earlier failure — concurrent working-node "
                    "failures are out of scope (docs/FAULTS.md)"
                )
            else:
                raise _NodeDied(msg.node)
        elif isinstance(msg, ReplayDone):
            self._note_replay_done(msg)
        elif isinstance(msg, NodeLostAck):
            pass  # late ack from a recovery fan-out that already completed
        elif isinstance(msg, Depose):
            raise _Deposed()
        elif isinstance(msg, ReliefAck):
            # Un-awaited ack: the relief cycle that requested it was
            # abandoned by a recovery unwind.  Re-queue if still stuck.
            if (msg.still_full and msg.node in self.activated
                    and msg.node not in self.fenced
                    and msg.node not in self.full_queue):
                self.full_queue.append(msg.node)
                self._prev_round = None
        elif isinstance(msg, (SplitDone, PassDone)):
            self.ctx.trace("stale_ack", "scheduler",
                           kind=type(msg).__name__)
        elif isinstance(msg, StatusReport):
            # Reports may land while a relief cycle holds the main loop —
            # still collect them, or the in-flight poll round would never
            # complete and polling would stop for good.  The stability
            # evaluation re-checks relief/queue state before declaring a
            # phase drained.
            self._collect_report(msg)
        elif isinstance(msg, ActivateAck):
            # Either a recruit we timed out on answering after all (alive
            # but excluded from the pools — a zombie whose FinalReport is
            # accepted at shutdown regardless), or an initial node's ack
            # landing while a recovery holds the main loop; the initial-
            # activation await drains the stray set.
            self._stray_activate_acks.add(msg.node)
            self.ctx.trace("stale_activate_ack", "scheduler", node=msg.node)
        elif isinstance(msg, PollTick):
            pass  # ticks are only meaningful to an idle phase loop
        else:
            raise RuntimeError(f"scheduler: unexpected message {msg!r}")

    def _source_sent(self, relation: str) -> int:
        """Chunks the sources count as sent, minus those addressed to
        fenced nodes (absorbed by a tombstone, never to be retired).
        Purged-but-live survivors are *not* fenced here: they stay
        activated and retire their traffic, so their receipts balance."""
        return sum(
            n for dest, n in self._source_chunk_maps[relation].items()
            if dest not in self.fenced
        )

    def _note_replay_done(self, msg: ReplayDone) -> None:
        """Fold a replay's chunk counts into the drain balance, once."""
        key = (msg.recovery_id, msg.source, msg.relation)
        if key in self._replay_seen:
            return
        self._replay_seen.add(key)
        chunk_map = self._source_chunk_maps[msg.relation]
        for dest, n in msg.chunks_sent.items():
            chunk_map[dest] = chunk_map.get(dest, 0) + n
        self._prev_round = None

    # ------------------------------------------------------------------
    # state replication to the standby (write-ahead)
    # ------------------------------------------------------------------
    def sync_backup(self) -> Generator[Any, Any, None]:
        """Ship a state snapshot to the standby scheduler.

        No-op without a standby (the fault-free path sends nothing), and
        after a takeover (the standby does not re-replicate to itself)."""
        backup = self.ctx.backup_node
        if backup is None or backup is self.node:
            return
        self._sync_seq += 1
        yield from self.ctx.send(
            self.node, backup,
            StateSync(
                sync_seq=self._sync_seq, phase=self._phase,
                router=self.router, version=self._version,
                activated=tuple(self.activated),
                fenced=tuple(sorted(self.fenced)),
                pending=self._pending,
            ),
        )

    def wal_decision(
        self, pending: tuple, parties: tuple[int, ...] = ()
    ) -> Generator[Any, Any, None]:
        """Record an in-flight decision *before* acting on it, so the
        standby can re-drive it idempotently after a takeover."""
        self._pending = tuple(pending)
        self._pending_parties = tuple(parties)
        yield from self.sync_backup()

    def clear_decision(self) -> Generator[Any, Any, None]:
        if not self._pending and not self._pending_parties:
            return
        self._pending = ()
        self._pending_parties = ()
        yield from self.sync_backup()

    # ------------------------------------------------------------------
    # main run
    # ------------------------------------------------------------------
    def run(self) -> Generator[Any, Any, SchedulerOutcome | None]:
        try:
            return (yield from self._run_fresh())
        except Interrupt:
            # Injected crash: die silently mid-protocol.  Background loops
            # are flag-stopped — the silence is what the standby detects.
            self._halt_background()
            self.ctx.trace("scheduler_crashed", "scheduler",
                           phase=self._phase)
            return None
        except _Deposed:
            self._halt_background()
            self.ctx.trace("scheduler_deposed", "scheduler")
            return None
        except _NodeDied as e:
            raise UnrecoverableFaultError(
                f"join node {e.node} declared dead during the {self._phase} "
                "phase — working-node recovery is supported only in the "
                "build and probe phases (docs/FAULTS.md)"
            ) from e

    def _run_fresh(self) -> Generator[Any, Any, SchedulerOutcome]:
        ctx = self.ctx
        self.outcome.t_start = ctx.sim.now
        # Ticker first: the initial-activation ack timeout counts its ticks.
        self._start_background()
        self._notify_faults("build")
        # Activate the initial working join nodes and await their acks.
        # Initial nodes are not replaceable (the initial router is fixed
        # before activation), so a missing ack here is unrecoverable —
        # unlike mid-run recruits, which retry a different pool node.
        if isinstance(self.router, RangeRouter):
            for rng, chain in self.router.entries:
                yield from self.send_to_join(
                    chain[0], ActivateJoin(chain[0], hash_range=rng)
                )
        else:  # linear hashing: one bucket per initial node
            for b, j in enumerate(self.router.bucket_nodes):  # type: ignore[attr-defined]
                yield from self.send_to_join(j, ActivateJoin(j, bucket=b))
        yield from self._await_initial_acks(set(self.activated))
        yield from self.sync_backup()
        return (yield from self._run_from("build"))

    def _run_from(self, phase: str) -> Generator[Any, Any, SchedulerOutcome]:
        """Drive the query from ``phase`` to completion (fresh run, or a
        standby resuming after a takeover)."""
        ctx = self.ctx
        if phase == "build":
            yield from self._build_phase()
            self.outcome.t_build = ctx.sim.now
            ctx.trace("phase", "scheduler", phase="build_done")

            if self.strategy.needs_reshuffle:
                self._phase = "reshuffle"
                yield from self.sync_backup()
                self._notify_faults("reshuffle")
                yield from self._reshuffle_phase()
            self.outcome.t_reshuffle = ctx.sim.now
            ctx.trace("phase", "scheduler", phase="reshuffle_done")
            self._notify_faults("probe")

        yield from self._probe_phase()
        self.outcome.t_probe = ctx.sim.now
        ctx.trace("phase", "scheduler", phase="probe_done")

        self._phase = "ooc"
        yield from self.sync_backup()
        self._notify_faults("ooc")
        yield from self._ooc_pass_phase()
        self.outcome.t_ooc = ctx.sim.now
        ctx.trace("phase", "scheduler", phase="ooc_done")

        yield from self._shutdown()
        self.outcome.activated = list(self.activated)
        return self.outcome

    def _start_background(self) -> None:
        """Spawn the drain ticker and (when armed) the failure detector.

        Both gate on the same stop flag: a crashed or deposed primary
        stops them, and that silence is exactly what the standby's
        dead-man timer and the joins' ping loss observe."""
        ctx = self.ctx
        self._ticker_flag = _StopFlag()
        ctx.sim.spawn(
            _ticker(ctx, self._ticker_flag, self.cfg.effective_drain_poll,
                    self.node.mailbox),
            name="drain-ticker",
        )
        if (ctx.faults is not None and ctx.faults.plan.membership_active
                and ctx.backup_node is not None):
            from .membership import Membership

            self.membership = Membership(self)
            self._membership_proc = ctx.sim.spawn(
                self.membership.loop(self._ticker_flag), name="membership"
            )

    def _halt_background(self) -> None:
        self._ticker_flag.stopped = True
        # The flag only covers the detector's idle path: a ping that is
        # mid-send when the primary dies would wait on the dead node's
        # CPU forever.  Interrupt it out of the send (it treats the
        # Interrupt as a clean stop).
        proc = self._membership_proc
        if proc is not None and proc.is_alive:
            proc.interrupt(cause=("membership_halt",))

    def _notify_faults(self, phase: str) -> None:
        """Synchronous phase-entry hook for phase-triggered crash specs."""
        if self.ctx.faults is not None:
            self.ctx.faults.notify_phase(phase)

    def _await_initial_acks(self, pending: set[int]) -> Generator[Any, Any, None]:
        timeout = self._recruit_timeout_s
        if self.ctx.faults is not None and self.membership is not None:
            # The failure detector subsumes this deadline: a dead initial
            # node is *recoverable* (confirmed death → recovery cycle), so
            # give the detector time to reach its verdict first.
            timeout = max(
                timeout,
                self.membership.timing.confirm
                + 4.0 * self.membership.timing.interval,
            )
        deadline = (
            None if self.ctx.faults is None else self.ctx.sim.now + timeout
        )
        while pending:
            pending -= self._stray_activate_acks
            if not pending:
                return
            msg = yield from self.node.mailbox.recv()
            if isinstance(msg, ActivateAck) and msg.node in pending:
                pending.discard(msg.node)
                if deadline is not None:  # progress: extend the deadline
                    deadline = self.ctx.sim.now + timeout
            elif isinstance(msg, PollTick):
                if deadline is not None and self.ctx.sim.now >= deadline:
                    raise UnrecoverableFaultError(
                        f"initial join node(s) {sorted(pending)} never "
                        "acknowledged activation — without the membership "
                        "layer initial nodes cannot be replaced (the "
                        "routing table is fixed before activation); fault "
                        "plans may only crash not-yet-recruited pool nodes "
                        "(docs/FAULTS.md)"
                    )
            else:
                try:
                    self._dispatch_common(msg)
                except _NodeDied as e:
                    # An initial node died before confirming activation:
                    # recover it like any working-node death — its range
                    # moves to a fresh recruit and the sources replay.
                    yield from self._handle_node_death(e.node)
                    pending.discard(e.node)
                    if deadline is not None:
                        deadline = self.ctx.sim.now + timeout

    # ------------------------------------------------------------------
    # build phase
    # ------------------------------------------------------------------
    def _build_phase(self) -> Generator[Any, Any, None]:
        self._phase = "build"
        self._drained = False
        self._prev_round = None
        while not self._drained:
            try:
                # Relief first: expansion requests outrank polling.
                while self.full_queue:
                    reporter = self.full_queue.popleft()
                    yield from self._relief_cycle(reporter)
                msg = yield from self.node.mailbox.recv()
                yield from self._dispatch_phase(msg)
            except _NodeDied as e:
                yield from self._handle_node_death(e.node)

    def _handle_node_death(self, dead: int) -> Generator[Any, Any, None]:
        """Recover from a confirmed death, then repair collateral damage:
        a reporter whose relief cycle the unwind abandoned is re-queued
        (it still sits on a parked backlog nobody will ping it about)."""
        victim = self._abandoned_reporter
        self._abandoned_reporter = None
        parties = self._pending_parties
        yield from self._recovery_cycle(dead, parties=parties)
        if (victim is not None and victim != dead
                and victim in self.activated
                and victim not in self.fenced
                and victim not in self.full_queue):
            self.full_queue.append(victim)

    def _relief_cycle(self, reporter: int) -> Generator[Any, Any, None]:
        assert not self.relief_active, "relief cycles are serialized"
        self.relief_active = True
        self._abandoned_reporter = reporter
        self._prev_round = None
        t0 = self.ctx.sim.now
        self.ctx.metrics.inc("sched.relief_cycles", 1, phase="build")
        self._active_deficit = self._full_deficit.pop(reporter, 0)
        try:
            # Re-check first: an earlier split in this queue may already
            # have relieved the reporter (round-robin pointer policies
            # split buckets other than the overflowing one).
            yield from self.send_to_join(
                reporter, ReliefPing(),
                parent=self._full_edges.pop(reporter, None),
            )
            ack = yield from self.await_relief_ack(reporter)
            if not ack.still_full:
                self._abandoned_reporter = None
                return
            ack = yield from self.strategy.expand(reporter)
            self._abandoned_reporter = None
            if ack.still_full:
                self.full_queue.append(reporter)
        finally:
            self.relief_active = False
            self._active_deficit = 0
            self.ctx.metrics.set_gauge(
                "sched.relief_latency_s", self.ctx.sim.now - t0, phase="build"
            )

    def _dispatch_phase(self, msg: Any) -> Generator[Any, Any, None]:
        """Main-loop dispatch for build/probe phases."""
        if isinstance(msg, PollTick):
            if self._ready_to_poll():
                yield from self._start_poll_round()
        elif isinstance(msg, StatusReport):
            self._collect_report(msg)
        else:
            self._dispatch_common(msg)

    def _ready_to_poll(self) -> bool:
        relation = "R" if self._phase == "build" else "S"
        return (
            len(self._source_done[relation]) == self.ctx.n_sources
            and not self.full_queue
            and not self.relief_active
            and not self._round_nodes  # no round already in flight
        )

    def _start_poll_round(self) -> Generator[Any, Any, None]:
        self._poll_token += 1
        self._round_reports = {}
        self._round_nodes = tuple(self.activated)
        self.ctx.metrics.inc("sched.drain_rounds", 1, phase=self._phase)
        for j in self._round_nodes:
            yield from self.send_to_join(j, StatusRequest(self._poll_token))

    def _collect_report(self, report: StatusReport) -> None:
        if report.token != self._poll_token or report.node not in self._round_nodes:
            return  # stale round
        self._round_reports[report.node] = report
        if len(self._round_reports) < len(self._round_nodes):
            return
        # Round complete: evaluate stability.
        nodes = self._round_nodes
        self._round_nodes = ()
        if self.full_queue or self.relief_active or set(nodes) != set(self.activated):
            self._prev_round = None
            return
        snapshot = {
            j: (
                r.received_build, r.processed_build, r.emitted_build,
                r.received_probe, r.processed_probe, r.busy,
            )
            for j, r in self._round_reports.items()
        }
        if any(r.busy for r in self._round_reports.values()):
            self._prev_round = snapshot
            return
        if self._phase == "build":
            sent = self._source_sent("R") + sum(
                r.emitted_build for r in self._round_reports.values()
            )
            received = sum(r.received_build for r in self._round_reports.values())
            processed = sum(r.processed_build for r in self._round_reports.values())
        else:
            # emitted_probe covers output-sink forwarding (footnote 1)
            sent = self._source_sent("S") + sum(
                r.emitted_probe for r in self._round_reports.values()
            )
            received = sum(r.received_probe for r in self._round_reports.values())
            processed = sum(r.processed_probe for r in self._round_reports.values())
        balanced = sent == received == processed
        if balanced and self._prev_round == snapshot:
            self._drained = True
        self._prev_round = snapshot

    # ------------------------------------------------------------------
    # reshuffle phase (hybrid)
    # ------------------------------------------------------------------
    def _reshuffle_phase(self) -> Generator[Any, Any, None]:
        router = self.router
        assert isinstance(router, RangeRouter)
        groups = router.replicated_groups()
        # A group whose active replica spilled to disk cannot be reshuffled:
        # the disk-resident tuples cannot move, so the range must stay
        # replicated (probe broadcast reaches memory parts and the spill).
        members = [
            (rng, chain) for rng, chain in groups
            if not (set(chain) & self.spilled_nodes)
        ]
        frozen = [
            (rng, chain) for rng, chain in groups
            if set(chain) & self.spilled_nodes
        ]
        if not members:
            return
        ctx = self.ctx

        # 1. Gather per-position counts from every replica-chain member.
        expected = sum(len(chain) for _, chain in members)
        for rng, chain in members:
            for j in chain:
                yield from self.send_to_join(j, CountRequest(rng.lo, rng.hi))
        vectors: dict[int, np.ndarray] = {}
        while len(vectors) < expected:
            msg = yield from self.await_message(lambda m: isinstance(m, CountVector))
            vectors[msg.node] = msg.counts

        # 2. Greedy contiguous cut per group; dispatch redistribution orders.
        new_entries: list[tuple] = [
            (rng, chain) for rng, chain in router.entries if len(chain) == 1
        ]
        new_entries.extend(frozen)
        n_orders = 0
        for rng, chain in members:
            total = np.zeros(rng.width, dtype=np.int64)
            for j in chain:
                total += vectors[j]
            cuts = partition_range_by_counts(rng, total, len(chain))
            assignments = tuple(zip(chain, cuts))
            order = ReshuffleOrder(assignments=assignments)
            for j in chain:
                yield from self.send_to_join(j, order)
                n_orders += 1
            for j, cut in assignments:
                if cut is not None:
                    new_entries.append((cut, (j,)))
            ctx.trace("reshuffle_cut", "scheduler", range=str(rng),
                      parts=[str(c) for c in cuts])

        # 3. Await completion acknowledgements.
        done = 0
        while done < n_orders:
            msg = yield from self.await_message(
                lambda m: isinstance(m, ReshuffleDone)
            )
            self.outcome.reshuffle_moved_tuples += msg.moved_tuples
            done += 1

        # 4. Drain the redistribution traffic, then install the new table.
        self._phase = "build"
        self._drained = False
        self._prev_round = None
        while not self._drained:
            msg = yield from self.node.mailbox.recv()
            yield from self._dispatch_phase(msg)

        new_entries.sort(key=lambda e: e[0].lo)
        self.router = RangeRouter(
            positions=router.positions,
            entries=tuple(new_entries),
            version=self.next_version(),
        )

    # ------------------------------------------------------------------
    # probe phase
    # ------------------------------------------------------------------
    def _probe_phase(self) -> Generator[Any, Any, None]:
        # Phase entry is WAL'd *before* the StartProbe fan-out; on a
        # failover inside that window the standby re-sends both
        # broadcasts, which receivers absorb idempotently.
        self._phase = "probe"
        yield from self.sync_backup()
        probe_router = self.strategy.probe_router()
        # Join nodes first: an S chunk must never outrun the phase switch.
        for j in self.activated:
            yield from self.send_to_join(j, StartProbe(router=None))
        yield from self.broadcast_to_sources(StartProbe(router=probe_router))
        self._drained = False
        self._prev_round = None
        while not self._drained:
            try:
                # Probe-phase expansion (footnote 1): a node whose
                # materialized output overflowed asks for an output sink.
                while self.full_queue:
                    reporter = self.full_queue.popleft()
                    yield from self._probe_relief_cycle(reporter)
                msg = yield from self.node.mailbox.recv()
                yield from self._dispatch_phase(msg)
            except _NodeDied as e:
                yield from self._handle_node_death(e.node)

    def _probe_relief_cycle(self, reporter: int) -> Generator[Any, Any, None]:
        assert not self.relief_active, "relief cycles are serialized"
        self.relief_active = True
        self._abandoned_reporter = reporter
        self._prev_round = None
        t0 = self.ctx.sim.now
        self.ctx.metrics.inc("sched.relief_cycles", 1, phase="probe")
        self._active_deficit = self._full_deficit.pop(reporter, 0)
        try:
            new_node = yield from self.recruit_node(
                lambda j: ActivateJoin(j, phase="probe", output_sink=True),
                phase="probe",
                parent=self._full_edges.pop(reporter, None),
            )
            if new_node is None:
                self.spilled_nodes.add(reporter)
                self.ctx.trace("output_spill_order", "scheduler",
                               reporter=reporter)
                yield from self.send_to_join(reporter, SpillOrder())
            else:
                yield from self.send_to_join(
                    reporter, OutputRedirect(new_node=new_node)
                )
                self.ctx.trace("expand_output_sink", "scheduler",
                               reporter=reporter, new_node=new_node)
            yield from self.await_relief_ack(reporter)
            self._abandoned_reporter = None
        finally:
            self.relief_active = False
            self._active_deficit = 0
            self.ctx.metrics.set_gauge(
                "sched.relief_latency_s", self.ctx.sim.now - t0, phase="probe"
            )

    # ------------------------------------------------------------------
    # working-node crash recovery (repro.core.membership)
    # ------------------------------------------------------------------
    def _recovery_cycle(
        self, dead: int, target: int | None = None,
        parties: tuple[int, ...] = (), redrive: bool = False,
    ) -> Generator[Any, Any, None]:
        """Recover from a confirmed working-node death.

        Replica chains hold disjoint temporal segments, so survivors of
        the dead node's chain cannot serve the range alone: they are
        *purged* (quarantined, segment dropped, matches zeroed) and the
        whole range collapses onto one fresh ``target``, which the data
        sources re-stream from their replay cursors.  The dead node
        itself is also told to purge — "fencing the living": if the
        verdict was false, the live node self-quarantines instead of
        double-counting matches; if it was true, the tombstone ignores it.

        The decision is WAL'd (``("recover", dead, target)``) with the
        recruited target pinned, and every step is idempotent keyed on
        ``recovery_id == dead``, so a standby can re-drive the cycle
        mid-flight after a primary failover.
        """
        ctx = self.ctx
        if dead in self.fenced and not redrive:
            return
        if self._phase not in ("build", "probe"):
            raise UnrecoverableFaultError(
                f"join node {dead} declared dead during the {self._phase} "
                "phase — working-node recovery is supported only in the "
                "build and probe phases (docs/FAULTS.md)"
            )
        self._recovering = True
        self._pending = ()
        self._pending_parties = ()
        t0 = ctx.sim.now
        ctx.metrics.inc("sched.recovery_cycles", 1, phase=self._phase)
        ctx.trace("recovery_begin", "scheduler", dead=dead,
                  phase=self._phase, redrive=redrive)
        try:
            # 1. Fence locally.  Abandon any in-flight poll round: it may
            # include the dead node, whose report will never arrive.
            self._round_nodes = ()
            self._round_reports = {}
            self._prev_round = None
            self.fenced.add(dead)
            if dead in self.activated:
                self.activated.remove(dead)
            if dead in self.working:
                self.working.remove(dead)
            if dead in self.full_nodes:
                self.full_nodes.remove(dead)
            if dead not in self.dead_nodes:
                self.dead_nodes.append(dead)
            while dead in self.full_queue:
                self.full_queue.remove(dead)
            self._full_edges.pop(dead, None)
            self._full_deficit.pop(dead, None)
            self.spilled_nodes.discard(dead)

            # Purge set: live chain co-members of the dead node's entries,
            # plus live participants of an interrupted relief decision
            # (their half of the data motion is unaccounted for).
            purge: set[int] = set()
            if isinstance(self.router, RangeRouter):
                for _rng, chain in self.router.entries:
                    if dead in chain:
                        purge.update(chain)
            purge.discard(dead)
            purge.update(p for p in parties if p != dead)
            purge &= set(self.activated)
            self.spilled_nodes -= purge
            for p in sorted(purge):
                # a purged node sheds its backlog wholesale — cancel relief
                while p in self.full_queue:
                    self.full_queue.remove(p)
                self._full_deficit.pop(p, None)
                self._full_edges.pop(p, None)

            lost = {dead} | purge
            owners = self.router.owners()
            if not (lost & owners):
                raise UnrecoverableFaultError(
                    f"join node {dead} died but owns no hash range (an "
                    "output sink, or a recruit outside the routing table) "
                    "— recovery for materialized-output state is out of "
                    "scope (docs/FAULTS.md)"
                )

            # 2. Recruit the replacement (pinned and re-used on re-drive).
            slot = self._takeover_slot(lost)
            if target is not None and target not in self.activated:
                target = None  # un-synced zombie of a dead primary
            if target is None:
                if isinstance(self.router, RangeRouter):
                    target = yield from self.recruit_node(
                        lambda j: ActivateJoin(j, hash_range=slot),
                        phase=self._phase,
                    )
                else:
                    target = yield from self.recruit_node(
                        lambda j: ActivateJoin(j, bucket=slot),
                        phase=self._phase,
                    )
                if target is None:
                    raise UnrecoverableFaultError(
                        f"pool exhausted while replacing dead join node "
                        f"{dead} — its hash range has no home"
                    )

            # 3. WAL the decision with the target pinned.
            yield from self.wal_decision(("recover", dead, target))

            # 4. Disseminate: every live node fences the dead peer's
            # global id (late in-flight chunks are retired, its counter
            # contributions subtracted at report time); chain co-members
            # purge.  The dead node itself gets an unawaited purge order
            # (fencing the living, see docstring).
            live = list(self.activated)
            for j in live:
                yield from self.send_to_join(
                    j, NodeLost(dead=dead, purge=(j in purge))
                )
            yield from self.send_to_join(dead, NodeLost(dead=dead, purge=True))
            acked: set[int] = set()
            while not set(live) <= acked:
                msg = yield from self.await_message(
                    lambda m: isinstance(m, NodeLostAck)
                )
                acked.add(msg.node)

            # 5. Collapse the routing entries onto the target.
            self.router = self.router.with_takeover(
                lost, target, self.next_version()
            )
            self.strategy.adopt_router(self.router, self.activated)

            # 6-7. Flip the sources and re-stream the lost range.  The
            # ReplayOrder carries the takeover table: the source installs
            # it and replays in one atomic step, so no live chunk can
            # slip to the target between the two (double delivery).
            if self._phase == "build":
                yield from self.broadcast_to_sources(
                    ReplayOrder(relation="R", target=target,
                                recovery_id=dead, router=self.router)
                )
            else:
                yield from self._probe_recovery(dead, target)

            # 8. Done: clear the WAL and force fresh drain rounds.
            yield from self.clear_decision()
            self._prev_round = None
            ctx.trace("recovery_done", "scheduler", dead=dead,
                      target=target, purged=sorted(purge))
            ctx.metrics.set_gauge(
                "sched.recovery_latency_s", ctx.sim.now - t0,
                phase=self._phase,
            )
        finally:
            self._recovering = False

    def _takeover_slot(self, lost: set[int]) -> Any:
        """The hash range (or bucket) the recovery target will own —
        computed *before* the router flips, mirroring what
        ``with_takeover`` will collapse the lost entries into."""
        if isinstance(self.router, RangeRouter):
            affected = [
                rng for rng, chain in self.router.entries
                if set(chain) & lost
            ]
            for prev, nxt in zip(affected, affected[1:]):
                if prev.hi != nxt.lo:
                    raise UnrecoverableFaultError(
                        f"lost nodes {sorted(lost)} own non-contiguous "
                        "ranges — a single takeover target cannot adopt "
                        "them (docs/FAULTS.md)"
                    )
            from ..hashing import HashRange

            return HashRange(affected[0].lo, affected[-1].hi)
        assert isinstance(self.router, LinearHashRouter)
        buckets = [
            b for b, n in enumerate(self.router.bucket_nodes) if n in lost
        ]
        return buckets[0]

    def _degrade_full_target(
        self, target: int
    ) -> Generator[Any, Any, None]:
        """Relieve a recovery target that outgrew its memory mid-replay.

        The re-streamed range can exceed one node's budget (the dead
        node had spilled, or it headed a replica chain whose purged
        co-members each stored a disjoint segment).  There is no pool
        headroom to split into during a recovery, so the target is
        degraded to disk spilling — same answer, out-of-core speed."""
        if target not in self.full_queue:
            return
        while target in self.full_queue:
            self.full_queue.remove(target)
        self._full_deficit.pop(target, None)
        self._full_edges.pop(target, None)
        yield from self.send_to_join(target, SpillOrder())
        yield from self.await_relief_ack(target)
        self.spilled_nodes.add(target)

    def _probe_recovery(
        self, dead: int, target: int
    ) -> Generator[Any, Any, None]:
        """Probe-phase re-streaming, sequenced so the target never probes
        before it holds the rebuilt range.

        The build stream is replayed to the target under the takeover
        router while live S traffic still flows under the *old* table
        (the dead node's copies are absorbed by its tombstone; purged
        survivors retire theirs without probing).  Only once the target
        confirms it processed every replayed chunk is it flipped to
        probing and the sources' table updated; the S replay that follows
        the RouteUpdate on each source link (per-pair FIFO) then covers
        every probe tuple of the range, exactly once."""
        ctx = self.ctx
        yield from self.broadcast_to_sources(
            ReplayOrder(relation="R", target=target, recovery_id=dead,
                        router=self.router)
        )
        done: set[int] = set()
        expected_chunks = 0
        while len(done) < ctx.n_sources:
            # Fullness must be serviced *while* awaiting the replay
            # receipts: a full target parks chunks holding its receive
            # credits, which blocks the replaying sources — waiting for
            # their ReplayDone first would deadlock the recovery.
            yield from self._degrade_full_target(target)
            msg = yield from self.node.mailbox.recv()
            if (isinstance(msg, ReplayDone) and msg.relation == "R"
                    and msg.recovery_id == dead and msg.source not in done):
                done.add(msg.source)
                expected_chunks += sum(msg.chunks_sent.values())
                self._note_replay_done(msg)
            else:
                self._dispatch_common(msg)
        while True:
            yield from self._degrade_full_target(target)
            self._poll_token += 1
            tok = self._poll_token
            yield from self.send_to_join(target, StatusRequest(tok))
            rep = yield from self.await_message(
                lambda m: (isinstance(m, StatusReport) and m.token == tok
                           and m.node == target)
            )
            if (rep.processed_build >= expected_chunks and not rep.busy
                    and target not in self.full_queue):
                break
            yield from self.await_message(lambda m: isinstance(m, PollTick))
        yield from self.send_to_join(target, StartProbe(router=None))
        yield from self.broadcast_to_sources(
            ReplayOrder(relation="S", target=target, recovery_id=dead,
                        router=self.router)
        )

    # ------------------------------------------------------------------
    # standby takeover (repro.core.membership drives this)
    # ------------------------------------------------------------------
    def adopt_snapshot(self, sync: StateSync | None) -> str:
        """Install a replicated snapshot; returns the phase to resume.

        Pools are inferred rather than synced: full nodes are the
        non-tail members of replica chains, working nodes the rest, and
        the potential pool is everything never activated nor fenced."""
        if sync is None:
            return "fresh"
        if sync.router is not None:
            self.router = sync.router
        self._version = max(self._version, sync.version)
        self.activated = list(sync.activated)
        self.fenced = set(sync.fenced)
        self.dead_nodes = sorted(self.fenced)
        full: set[int] = set()
        if isinstance(self.router, RangeRouter):
            for _rng, chain in self.router.entries:
                full.update(chain[:-1])
        self.full_nodes = [j for j in self.activated if j in full]
        self.working = [j for j in self.activated if j not in full]
        if self.pool_client is None:
            used = set(self.activated) | self.fenced
            self.potential = [
                j for j in range(self.ctx.n_potential) if j not in used
            ]
        self._pending = tuple(sync.pending)
        self._phase = sync.phase
        self.strategy.adopt_router(self.router, self.activated)
        return sync.phase

    def resume_after_takeover(
        self, sync: StateSync | None
    ) -> Generator[Any, Any, SchedulerOutcome | None]:
        """Standby entry point: adopt the snapshot and finish the query."""
        try:
            phase = self.adopt_snapshot(sync)
            self._start_background()
            if phase == "fresh":
                # The primary died before its first sync: nothing has been
                # decided yet, so a from-scratch run is idempotent (initial
                # ActivateJoins are re-acked by already-active nodes).
                return (yield from self._run_fresh())
            if phase not in ("build", "probe"):
                raise UnrecoverableFaultError(
                    f"scheduler failover during the {phase} phase is not "
                    "supported (docs/FAULTS.md)"
                )
            yield from self._announce_failover()
            yield from self._redrive_pending()
            return (yield from self._run_from(phase))
        except _Deposed:
            self._halt_background()
            return None
        except _NodeDied as e:
            raise UnrecoverableFaultError(
                f"join node {e.node} declared dead during the "
                f"{self._phase} phase — working-node recovery is supported "
                "only in the build and probe phases (docs/FAULTS.md)"
            ) from e

    def _announce_failover(self) -> Generator[Any, Any, None]:
        """Make everyone re-announce what the primary took to its grave:
        sources re-send SourceDone and completed ReplayDones, full joins
        re-send MemoryFull for their parked backlogs."""
        for s in range(self.ctx.n_sources):
            yield from self.ctx.send(
                self.node, self.ctx.source_node(s),
                SchedulerFailover(new_scheduler=self.node.node_id),
            )
        for j in self.activated:
            yield from self.send_to_join(
                j, SchedulerFailover(new_scheduler=self.node.node_id)
            )

    def _redrive_pending(self) -> Generator[Any, Any, None]:
        """Idempotently re-drive the decision the primary WAL'd but may
        not have finished."""
        pending = self._pending
        if not pending:
            return
        self.ctx.trace("redrive", "scheduler", pending=list(pending))
        if pending[0] == "recover":
            dead, target = int(pending[1]), int(pending[2])
            yield from self._recovery_cycle(dead, target=target, redrive=True)
            return
        ack = yield from self.strategy.redrive(pending)
        yield from self.clear_decision()
        if (ack is not None and ack.still_full
                and ack.node in self.activated
                and ack.node not in self.full_queue):
            self.full_queue.append(ack.node)

    # ------------------------------------------------------------------
    # OOC passes & shutdown
    # ------------------------------------------------------------------
    def _ooc_pass_phase(self) -> Generator[Any, Any, None]:
        for j in self.activated:
            yield from self.send_to_join(j, FinalizePass())
        done = 0
        while done < len(self.activated):
            yield from self.await_message(lambda m: isinstance(m, PassDone))
            done += 1

    def _shutdown(self) -> Generator[Any, Any, None]:
        self._halt_background()
        for s in range(self.ctx.n_sources):
            yield from self.ctx.send(
                self.node, self.ctx.source_node(s), Shutdown()
            )
        # Stand the standby down, or its dead-man ticker outlives the query.
        backup = self.ctx.backup_node
        if backup is not None and backup is not self.node:
            yield from self.ctx.send(self.node, backup, Shutdown())
        # Private mode shuts down the whole pool (dormant nodes just exit);
        # workload mode only owns its granted nodes — shutting down the
        # shared pool's dormant nodes would kill other queries' capacity.
        if self.pool_client is None:
            targets = list(range(self.ctx.n_potential))
        else:
            targets = sorted(set(self.activated) | set(self.dead_nodes))
        for j in targets:
            yield from self.send_to_join(j, Shutdown())
        # Wait until every *known-activated* node reported.  Set inclusion,
        # not a count: a zombie recruit (timed out but actually alive) also
        # sends a FinalReport, which must not terminate this loop early.
        while not set(self.activated) <= set(self.outcome.final_reports):
            msg = yield from self.await_message(
                lambda m: isinstance(m, FinalReport)
            )
            self.outcome.final_reports[msg.node] = msg
        if self.pool_client is not None:
            # Release only nodes known alive and owned: zombies (granted
            # but never acked) and timed-out recruits stay leaked — the
            # pool shrinks, exactly as real hardware would.
            released = tuple(sorted(self.activated))
            yield from self.ctx.send(
                self.node, self.pool_client.node,
                QueryDone(query=self.pool_client.query_id, released=released),
            )


def _ticker(
    ctx: RunContext, flag: _StopFlag, interval: float, mailbox: Mailbox
) -> Generator[Any, Any, None]:
    """Drops PollTicks into the scheduler mailbox until stopped.

    Runs on the scheduler node, so ticks never cross the network."""
    while not flag.stopped:
        yield ctx.sim.timeout(interval)
        mailbox.put(PollTick())
