"""The data-source actor (paper §4.1.2).

A source generates its share of relations R and S on the fly, keeps one
buffer per working join node, routes every generated tuple by its hash
position through the current routing table, and ships full buffers as
:class:`~repro.core.messages.DataChunk` messages.  Routing-table updates
broadcast by the scheduler are applied between generation batches; already
buffered (unsent) tuples are re-partitioned under the new table, mirroring
the paper's "data sources update their local list of working join nodes".

In the probe phase a tuple whose range is replicated is sent to *every*
replica (paper §4.2.2) — the source counts the extra copies, which is the
probe-side overhead of the replication-based algorithm.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

import numpy as np

from ..data import RelationStream
from ..hashing import Router
from .context import RunContext
from .messages import (
    DataChunk,
    Hop,
    RouteUpdate,
    Shutdown,
    SourceDone,
    StartProbe,
)

__all__ = ["DataSourceProcess"]


class _Buffers:
    """Per-destination tuple buffers with fixed-size chunk flushing."""

    def __init__(self, chunk_tuples: int) -> None:
        self.chunk_tuples = chunk_tuples
        self._parts: dict[int, list[np.ndarray]] = {}
        self._counts: dict[int, int] = {}

    def append(self, dest: int, values: np.ndarray) -> None:
        if values.size == 0:
            return
        self._parts.setdefault(dest, []).append(values)
        self._counts[dest] = self._counts.get(dest, 0) + int(values.size)

    def pop_full_chunk(self, dest: int) -> np.ndarray | None:
        """Remove exactly ``chunk_tuples`` tuples if available."""
        if self._counts.get(dest, 0) < self.chunk_tuples:
            return None
        pool = np.concatenate(self._parts[dest])
        chunk, rest = pool[: self.chunk_tuples], pool[self.chunk_tuples:]
        self._parts[dest] = [rest] if rest.size else []
        self._counts[dest] = int(rest.size)
        return chunk

    def pop_all(self, dest: int) -> np.ndarray | None:
        if self._counts.get(dest, 0) == 0:
            return None
        pool = np.concatenate(self._parts[dest])
        self._parts[dest] = []
        self._counts[dest] = 0
        return pool

    def destinations(self) -> list[int]:
        return sorted(d for d, c in self._counts.items() if c > 0)

    def drain_everything(self) -> np.ndarray:
        """Remove and return every buffered tuple (for re-partitioning)."""
        pools = [np.concatenate(p) for p in self._parts.values() if p]
        self._parts.clear()
        self._counts.clear()
        if not pools:
            return np.empty(0, dtype=np.uint64)
        return np.concatenate(pools)

    @property
    def total_buffered(self) -> int:
        return sum(self._counts.values())


class DataSourceProcess:
    """One data source; drive with ``sim.spawn(proc.run())``."""

    def __init__(self, ctx: RunContext, source_index: int, initial_router: Router) -> None:
        self.ctx = ctx
        self.index = source_index
        self.node = ctx.source_node(source_index)
        self.router = initial_router
        self.chunk_tuples = ctx.cfg.workload.real_chunk_tuples
        # per-relation per-destination send counters (drain ground truth)
        self.chunks_sent: dict[str, dict[int, int]] = {"R": {}, "S": {}}
        self.tuples_sent: dict[str, dict[int, int]] = {"R": {}, "S": {}}
        self.dup_tuples = 0

    # ------------------------------------------------------------------
    def run(self) -> Generator[Any, Any, None]:
        ctx, cfg = self.ctx, self.ctx.cfg
        wl = cfg.workload

        # ---- build phase: stream R ------------------------------------
        r_stream = RelationStream(wl, "R", ctx.n_sources, self.index)
        yield from self._stream_relation(r_stream, "R", probe=False)
        yield from self._report_done("R")

        # ---- wait for the probe signal --------------------------------
        probe_router = yield from self._await_start_probe()
        self.router = probe_router

        # ---- probe phase: stream S ------------------------------------
        s_stream = RelationStream(wl, "S", ctx.n_sources, self.index)
        yield from self._stream_relation(s_stream, "S", probe=True)
        yield from self._report_done("S")

        # ---- idle until shutdown ---------------------------------------
        while True:
            msg = yield self.node.mailbox.get()
            if isinstance(msg, Shutdown):
                return

    # ------------------------------------------------------------------
    def _stream_relation(
        self, stream: RelationStream, relation: str, probe: bool
    ) -> Generator[Any, Any, None]:
        ctx = self.ctx
        cost = ctx.cost
        buffers = _Buffers(self.chunk_tuples)

        for batch in stream.batches():
            if ctx.cfg.sources_from_disk:
                # The relation sits in local files (paper §4.1.2's other
                # mode): a batched read replaces the generation cost.
                yield from self.node.disk.read(
                    int(batch.size) * ctx.cfg.workload.tuple_bytes
                )
            else:
                yield from self.node.compute_per_tuple(
                    cost.cpu_generate_tuple, batch.size
                )
            if self._apply_route_updates() and buffers.total_buffered:
                # Routing changed: re-partition unsent buffered tuples.
                pool = buffers.drain_everything()
                yield from self._route_into(buffers, pool, relation, probe)
            yield from self._route_into(buffers, batch, relation, probe)
            yield from self._flush_full(buffers, relation)

        # Relation exhausted: flush every partial buffer.
        self._apply_route_updates()
        for dest in buffers.destinations():
            values = buffers.pop_all(dest)
            if values is not None:
                yield from self._send_chunk(dest, relation, values, probe)

    def _route_into(
        self, buffers: _Buffers, values: np.ndarray, relation: str, probe: bool
    ) -> Generator[Any, Any, None]:
        if values.size == 0:
            return
        ctx = self.ctx
        yield from self.node.compute_per_tuple(ctx.cost.cpu_route_tuple, values.size)
        positions = ctx.posmap(values)
        if probe:
            parts = self.router.partition_probe(positions)
            assigned = sum(int(idx.size) for idx in parts.values())
            self.dup_tuples += assigned - int(values.size)
        else:
            parts = self.router.partition_build(positions)
        for dest, idx in sorted(parts.items()):
            buffers.append(dest, values[idx])

    def _flush_full(self, buffers: _Buffers, relation: str) -> Generator[Any, Any, None]:
        for dest in buffers.destinations():
            while True:
                chunk = buffers.pop_full_chunk(dest)
                if chunk is None:
                    break
                yield from self._send_chunk(dest, relation, chunk, relation == "S")

    def _send_chunk(
        self, dest: int, relation: str, values: np.ndarray, probe: bool
    ) -> Generator[Any, Any, None]:
        ctx = self.ctx
        hop = Hop.PROBE if probe else Hop.PRIMARY
        msg = DataChunk(
            relation=relation,
            values=values,
            tuple_bytes=ctx.cfg.workload.tuple_bytes,
            hop=hop,
            origin=self.node.node_id,
            version=self.router.version,
        )
        self.chunks_sent[relation][dest] = self.chunks_sent[relation].get(dest, 0) + 1
        self.tuples_sent[relation][dest] = (
            self.tuples_sent[relation].get(dest, 0) + int(values.size)
        )
        yield from ctx.send(self.node, ctx.join_node(dest), msg)

    # ------------------------------------------------------------------
    def _apply_route_updates(self) -> bool:
        """Drain pending RouteUpdates; keep the newest. Returns True if the
        routing table changed."""
        changed = False
        for msg in self.node.mailbox.drain():
            if isinstance(msg, RouteUpdate):
                if msg.router.version > self.router.version:
                    self.router = msg.router
                    changed = True
            elif isinstance(msg, StartProbe):
                # Cannot happen before SourceDone; tolerate by re-queueing.
                self.node.mailbox.put(msg)
        return changed

    def _await_start_probe(self) -> Generator[Any, Any, Router]:
        while True:
            msg = yield self.node.mailbox.get()
            if isinstance(msg, StartProbe):
                assert msg.router is not None, "sources need the probe router"
                return msg.router
            # stale build-phase RouteUpdates are harmless here
            if not isinstance(msg, RouteUpdate):
                raise RuntimeError(f"source {self.index} got {msg!r} pre-probe")

    def _report_done(self, relation: str) -> Generator[Any, Any, None]:
        ctx = self.ctx
        done = SourceDone(
            source=self.index,
            relation=relation,
            chunks_sent=dict(self.chunks_sent[relation]),
            tuples_sent=dict(self.tuples_sent[relation]),
            dup_tuples=self.dup_tuples,
        )
        ctx.trace("source_done", f"src{self.index}", relation=relation,
                  chunks=sum(done.chunks_sent.values()))
        yield from ctx.send(self.node, ctx.scheduler_node, done)
