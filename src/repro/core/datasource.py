"""The data-source actor (paper §4.1.2).

A source generates its share of relations R and S on the fly, keeps one
buffer per working join node, routes every generated tuple by its hash
position through the current routing table, and ships full buffers as
:class:`~repro.core.messages.DataChunk` messages.  Routing-table updates
broadcast by the scheduler are applied between generation batches; already
buffered (unsent) tuples are re-partitioned under the new table, mirroring
the paper's "data sources update their local list of working join nodes".

In the probe phase a tuple whose range is replicated is sent to *every*
replica (paper §4.2.2) — the source counts the extra copies, which is the
probe-side overhead of the replication-based algorithm.

Crash recovery (``repro.core.membership``) adds a replay path: relation
streams are deterministic (seeded per source), so a source can re-generate
any prefix of its stream.  ``batches_done`` is the replay cursor — when a
:class:`ReplayOrder` arrives, the source re-generates batches ``[0,
cursor)``, partitions them under the routing table *carried by the order*
and re-streams only the recovery target's share.  The order doubles as the
route update for the takeover table: installing the table and starting
the replay happen in one atomic step at a batch boundary, so no live chunk
can ever be routed to the target for a tuple the replay also covers.
Replay traffic is accounted separately (:class:`ReplayDone`) because the
scheduler's drain arithmetic fences the dead node's deliveries.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

import numpy as np

from ..data import ChunkBuffer, RelationStream
from ..hashing import Router
from .context import RunContext
from .messages import (
    DataChunk,
    Hop,
    ReplayDone,
    ReplayOrder,
    RouteUpdate,
    SchedulerFailover,
    Shutdown,
    SourceDone,
    StartProbe,
)

__all__ = ["DataSourceProcess"]


class DataSourceProcess:
    """One data source; drive with ``sim.spawn(proc.run())``."""

    def __init__(self, ctx: RunContext, source_index: int, initial_router: Router) -> None:
        self.ctx = ctx
        self.index = source_index
        self.node = ctx.source_node(source_index)
        self.router = initial_router
        self.chunk_tuples = ctx.cfg.workload.real_chunk_tuples
        #: generation/replay batches pushed through the router (wall-clock
        #: visibility into the columnar data plane; see docs/DATA_PLANE.md)
        self.chunks_routed = ctx.metrics.counter(
            "dataplane.chunks_routed", node=self.node.name
        )
        # per-relation per-destination send counters (drain ground truth)
        self.chunks_sent: dict[str, dict[int, int]] = {"R": {}, "S": {}}
        self.tuples_sent: dict[str, dict[int, int]] = {"R": {}, "S": {}}
        self.dup_tuples = 0
        # -- crash-recovery state ---------------------------------------
        #: replay cursor: batches of each relation fully routed so far
        self.batches_done: dict[str, int] = {"R": 0, "S": 0}
        #: completed replays by (recovery_id, relation) — replays are
        #: idempotent: a re-driven order re-sends the stored receipt
        self._replays_done: dict[tuple[int, str], ReplayDone] = {}
        self._pending_replays: list[ReplayOrder] = []
        self._done_relations: list[str] = []
        self._reannounce = False
        self._probing = False

    # ------------------------------------------------------------------
    def run(self) -> Generator[Any, Any, None]:
        ctx, cfg = self.ctx, self.ctx.cfg
        wl = cfg.workload

        # ---- build phase: stream R ------------------------------------
        r_stream = RelationStream(wl, "R", ctx.n_sources, self.index)
        yield from self._stream_relation(r_stream, "R", probe=False)
        yield from self._report_done("R")

        # ---- wait for the probe signal --------------------------------
        probe_router = yield from self._await_start_probe()
        if probe_router.version >= self.router.version:
            self.router = probe_router
        self._probing = True

        # ---- probe phase: stream S ------------------------------------
        s_stream = RelationStream(wl, "S", ctx.n_sources, self.index)
        yield from self._stream_relation(s_stream, "S", probe=True)
        yield from self._report_done("S")

        # ---- idle until shutdown ---------------------------------------
        while True:
            msg = yield from self.node.mailbox.recv()
            if isinstance(msg, Shutdown):
                return
            if isinstance(msg, RouteUpdate):
                if msg.router.version > self.router.version:
                    self.router = msg.router
            elif isinstance(msg, ReplayOrder):
                yield from self._execute_replay(msg, buffers=None)
            elif isinstance(msg, SchedulerFailover):
                yield from self._announce_to_scheduler()
            # stray duplicates (e.g. a re-broadcast StartProbe after a
            # scheduler failover) are absorbed silently

    # ------------------------------------------------------------------
    def _stream_relation(
        self, stream: RelationStream, relation: str, probe: bool
    ) -> Generator[Any, Any, None]:
        ctx = self.ctx
        cost = ctx.cost
        buffers = ChunkBuffer(self.chunk_tuples)

        for batch in stream.batches():
            if ctx.cfg.sources_from_disk:
                # The relation sits in local files (paper §4.1.2's other
                # mode): a batched read replaces the generation cost.
                yield from self.node.disk.read(
                    int(batch.size) * ctx.cfg.workload.tuple_bytes
                )
            else:
                yield from self.node.compute_per_tuple(
                    cost.cpu_generate_tuple, batch.size
                )
            if self._absorb_control() and buffers.total_buffered:
                # Routing changed: re-partition unsent buffered tuples.
                pool = buffers.drain_everything()
                yield from self._route_into(buffers, pool, relation, probe)
            yield from self._route_into(buffers, batch, relation, probe)
            self.batches_done[relation] += 1
            yield from self._drain_control(buffers)
            yield from self._flush_full(buffers, relation)

        # Relation exhausted: flush every partial buffer.
        self._absorb_control()
        yield from self._drain_control(buffers)
        for dest in buffers.destinations():
            values = buffers.pop_all(dest)
            if values is not None:
                yield from self._send_chunk(dest, relation, values, probe)

    def _route_into(
        self, buffers: ChunkBuffer, values: np.ndarray, relation: str, probe: bool
    ) -> Generator[Any, Any, None]:
        if values.size == 0:
            return
        ctx = self.ctx
        self.chunks_routed.inc()
        yield from self.node.compute_per_tuple(ctx.cost.cpu_route_tuple, values.size)
        positions = ctx.posmap(values)
        if probe:
            # One gather per replica *group*: a range's probe tuples are
            # materialized once and the same array object is appended to
            # every replica's buffer (ChunkBuffer owns appended arrays and
            # never mutates them, so sharing is safe — the wire chunk is
            # re-materialized per destination at flush time regardless).
            gathered: dict[int, list[np.ndarray]] = {}
            assigned = 0
            for dests, idx in self.router.probe_groups(positions):
                shared = values[idx]
                assigned += int(idx.size) * len(dests)
                for dest in dests:
                    gathered.setdefault(dest, []).append(shared)
            self.dup_tuples += assigned - int(values.size)
            for dest in sorted(gathered):
                for shared in gathered[dest]:
                    buffers.append(dest, shared)
            return
        parts = self.router.partition_build(positions)
        for dest, idx in sorted(parts.items()):
            buffers.append(dest, values[idx])

    def _flush_full(self, buffers: ChunkBuffer, relation: str) -> Generator[Any, Any, None]:
        for dest in buffers.destinations():
            while True:
                chunk = buffers.pop_full_chunk(dest)
                if chunk is None:
                    break
                yield from self._send_chunk(dest, relation, chunk, relation == "S")

    def _send_chunk(
        self, dest: int, relation: str, values: np.ndarray, probe: bool
    ) -> Generator[Any, Any, None]:
        ctx = self.ctx
        hop = Hop.PROBE if probe else Hop.PRIMARY
        msg = DataChunk(
            relation=relation,
            values=values,
            tuple_bytes=ctx.cfg.workload.tuple_bytes,
            hop=hop,
            origin=self.node.node_id,
            version=self.router.version,
        )
        self.chunks_sent[relation][dest] = self.chunks_sent[relation].get(dest, 0) + 1
        self.tuples_sent[relation][dest] = (
            self.tuples_sent[relation].get(dest, 0) + int(values.size)
        )
        yield from ctx.send(self.node, ctx.join_node(dest), msg)

    # ------------------------------------------------------------------
    def _absorb_control(self) -> bool:
        """Drain pending control messages at a batch boundary.

        RouteUpdates keep the newest table; ReplayOrders queue for
        :meth:`_drain_control` (their sends must run in generator
        context); a SchedulerFailover flags a full re-announcement of
        everything the dead primary took to its grave.  Returns True if
        the routing table changed."""
        changed = False
        for msg in self.node.mailbox.drain():
            if isinstance(msg, RouteUpdate):
                if msg.router.version > self.router.version:
                    self.router = msg.router
                    changed = True
            elif isinstance(msg, ReplayOrder):
                self._pending_replays.append(msg)
            elif isinstance(msg, SchedulerFailover):
                self._reannounce = True
            elif isinstance(msg, StartProbe):
                # Cannot happen before SourceDone; tolerate by re-queueing.
                self.node.mailbox.put(msg)
        return changed

    def _drain_control(self, buffers: ChunkBuffer) -> Generator[Any, Any, None]:
        """Act on control collected by :meth:`_absorb_control`."""
        if self._reannounce:
            self._reannounce = False
            yield from self._announce_to_scheduler()
        while self._pending_replays:
            order = self._pending_replays.pop(0)
            yield from self._execute_replay(order, buffers=buffers)

    def _await_start_probe(self) -> Generator[Any, Any, Router]:
        while True:
            msg = yield from self.node.mailbox.recv()
            if isinstance(msg, StartProbe):
                assert msg.router is not None, "sources need the probe router"
                return msg.router
            # stale build-phase RouteUpdates are harmless here
            if isinstance(msg, RouteUpdate):
                if msg.router.version > self.router.version:
                    self.router = msg.router
            elif isinstance(msg, ReplayOrder):
                yield from self._execute_replay(msg, buffers=None)
            elif isinstance(msg, SchedulerFailover):
                yield from self._announce_to_scheduler()
            else:
                raise RuntimeError(f"source {self.index} got {msg!r} pre-probe")

    def _report_done(self, relation: str) -> Generator[Any, Any, None]:
        ctx = self.ctx
        if relation not in self._done_relations:
            self._done_relations.append(relation)
        done = SourceDone(
            source=self.index,
            relation=relation,
            chunks_sent=dict(self.chunks_sent[relation]),
            tuples_sent=dict(self.tuples_sent[relation]),
            dup_tuples=self.dup_tuples,
        )
        ctx.trace("source_done", f"src{self.index}", relation=relation,
                  chunks=sum(done.chunks_sent.values()))
        yield from ctx.send(self.node, ctx.scheduler_node, done)

    def _announce_to_scheduler(self) -> Generator[Any, Any, None]:
        """A standby took over: re-send everything the old primary knew.

        SourceDone and ReplayDone are idempotent at the scheduler (keyed
        on source / recovery id), so re-announcing is always safe."""
        self.ctx.trace("source_reannounce", f"src{self.index}")
        for relation in self._done_relations:
            yield from self._report_done(relation)
        for done in self._replays_done.values():
            yield from self.ctx.send(self.node, self.ctx.scheduler_node, done)

    # ------------------------------------------------------------------
    # crash-recovery replay
    # ------------------------------------------------------------------
    def _execute_replay(
        self, order: ReplayOrder, buffers: ChunkBuffer | None
    ) -> Generator[Any, Any, None]:
        """Re-stream the recovery target's share of this source's prefix.

        Idempotent: a repeated order (standby re-drive after a scheduler
        failover) re-sends the stored receipt without re-streaming."""
        ctx = self.ctx
        key = (order.recovery_id, order.relation)
        done = self._replays_done.get(key)
        if done is None:
            limit = self.batches_done[order.relation]
            # The order doubles as the takeover route update — except for
            # a build-side (R) replay while this source streams S, where
            # the scheduler flips the live probe table separately only
            # after the target finishes rebuilding.
            install = order.router is not None and not (
                order.relation == "R" and self._probing
            )
            if (install and order.router is not None
                    and order.router.version > self.router.version):
                self.router = order.router
            if install and buffers is not None and buffers.total_buffered:
                # Buffered tuples the replay re-covers must not also ship
                # live, or the target would see them twice.
                pool = buffers.drain_everything()
                yield from self._requeue_excluding(buffers, pool, order)
            done = yield from self._replay_prefix(order, limit)
            self._replays_done[key] = done
        yield from ctx.send(self.node, ctx.scheduler_node, done)

    def _requeue_excluding(
        self, buffers: ChunkBuffer, pool: np.ndarray, order: ReplayOrder
    ) -> Generator[Any, Any, None]:
        """Re-buffer ``pool`` under the live table, minus the replay's share.

        Build tuples covered by the replay (assigned to the target under
        the order's table) are dropped outright; probe tuples only lose
        their target *copy* — copies for other replicas still flow live."""
        if pool.size == 0:
            return
        ctx = self.ctx
        assert order.router is not None
        self.chunks_routed.inc()
        yield from self.node.compute_per_tuple(ctx.cost.cpu_route_tuple, pool.size)
        positions = ctx.posmap(pool)
        if order.relation == "S":
            parts = self.router.partition_probe(positions)
            for dest, idx in sorted(parts.items()):
                if dest == order.target:
                    continue
                buffers.append(dest, pool[idx])
            return
        covered = order.router.partition_build(positions).get(order.target)
        if covered is not None and covered.size:
            keep = np.ones(pool.size, dtype=bool)
            keep[covered] = False
            pool, positions = pool[keep], positions[keep]
        if pool.size == 0:
            return
        parts = self.router.partition_build(positions)
        for dest, idx in sorted(parts.items()):
            if dest == order.target:
                continue  # live share of the target's range is replayed
            buffers.append(dest, pool[idx])

    def _replay_prefix(
        self, order: ReplayOrder, limit: int
    ) -> Generator[Any, Any, ReplayDone]:
        """Re-generate batches ``[0, limit)`` and stream the target's share."""
        ctx = self.ctx
        wl = ctx.cfg.workload
        router = order.router if order.router is not None else self.router
        replay_probe = order.relation == "S"
        stream = RelationStream(wl, order.relation, ctx.n_sources, self.index)
        chunks = 0
        tuples = 0
        held: list[np.ndarray] = []
        pending = 0
        for batch in stream.batches(limit=limit):
            if ctx.cfg.sources_from_disk:
                yield from self.node.disk.read(
                    int(batch.size) * wl.tuple_bytes
                )
            else:
                yield from self.node.compute_per_tuple(
                    ctx.cost.cpu_generate_tuple, batch.size
                )
            self.chunks_routed.inc()
            yield from self.node.compute_per_tuple(
                ctx.cost.cpu_route_tuple, batch.size
            )
            positions = ctx.posmap(batch)
            parts = (router.partition_probe(positions) if replay_probe
                     else router.partition_build(positions))
            idx = parts.get(order.target)
            if idx is None or idx.size == 0:
                continue
            held.append(batch[idx])
            pending += int(idx.size)
            while pending >= self.chunk_tuples:
                merged = np.concatenate(held)
                chunk, rest = (merged[: self.chunk_tuples],
                               merged[self.chunk_tuples:])
                held = [rest] if rest.size else []
                pending = int(rest.size)
                yield from self._send_replay_chunk(order, chunk)
                chunks += 1
                tuples += int(chunk.size)
        if pending:
            merged = np.concatenate(held)
            yield from self._send_replay_chunk(order, merged)
            chunks += 1
            tuples += int(merged.size)
        done = ReplayDone(
            recovery_id=order.recovery_id,
            source=self.index,
            relation=order.relation,
            chunks_sent={order.target: chunks} if chunks else {},
            tuples=tuples,
        )
        ctx.trace("replay_done", f"src{self.index}", relation=order.relation,
                  target=order.target, chunks=chunks, tuples=tuples)
        return done

    def _send_replay_chunk(
        self, order: ReplayOrder, values: np.ndarray
    ) -> Generator[Any, Any, None]:
        """Replay traffic: counted in the ReplayDone receipt, never in the
        live ``chunks_sent`` maps (the scheduler fences those per-dest)."""
        ctx = self.ctx
        version = (order.router.version if order.router is not None
                   else self.router.version)
        msg = DataChunk(
            relation=order.relation,
            values=values,
            tuple_bytes=ctx.cfg.workload.tuple_bytes,
            hop=Hop.PROBE if order.relation == "S" else Hop.PRIMARY,
            origin=self.node.node_id,
            version=version,
        )
        yield from ctx.send(self.node, ctx.join_node(order.target), msg)
