"""Hybrid expansion (paper §4.2.3).

Build phase: identical to the replication-based algorithm (no stored tuple
moves while R streams in).  Between build and probe the scheduler runs the
**reshuffling** step: nodes sharing a replicated range exchange per-position
tuple counts, the range is cut into contiguous equal-weight sub-ranges by
the greedy heuristic, and tuples are redistributed so that every node ends
up with a disjoint sub-range.  The probe phase is then single-destination
again, like the split-based algorithm.

The reshuffle protocol itself lives in
:meth:`repro.core.scheduler.SchedulerProcess._reshuffle_phase`; this class
just flips the flag and supplies the replication build behaviour.
"""

from __future__ import annotations

from .replicate import ReplicationStrategy

__all__ = ["HybridStrategy"]


class HybridStrategy(ReplicationStrategy):
    """Replication during build + reshuffling before probe."""

    needs_reshuffle = True
