"""Shared run context: wiring between the simulated cluster and the actors.

One :class:`RunContext` exists per run.  It owns the cluster, the position
map, the tracer and the cross-actor accounting (hop-tagged communication
counters the figures are computed from), and provides addressed send
helpers so actor code reads like message-passing pseudocode.
"""

from __future__ import annotations

import functools
import os
from collections.abc import Generator
from typing import Any

from ..cluster import Cluster, Node
from ..config import RunConfig
from ..faults import FaultInjector
from ..hashing import PositionMap
from ..obs import (
    BoundedCausalLog,
    BoundedSpanLog,
    CausalLog,
    MetricsRegistry,
    ObsBudget,
    SpanLog,
)
from ..sim import Simulator, Tracer
from .messages import DataChunk
from .results import CommStats

__all__ = ["RunContext", "lockdep_enabled"]


def lockdep_enabled(cfg: RunConfig) -> bool:
    """Should this run attach the runtime deadlock detector?

    ``REPRO_LOCKDEP`` wins when set (``0``/``false``/``no``/``off`` to
    disable, anything else to enable); otherwise ``cfg.lockdep`` (the
    ``--lockdep`` CLI flag); otherwise on by default under pytest, so a
    protocol regression fails a test with a wait-for report instead of a
    bare DeadlockError.
    """
    env = os.environ.get("REPRO_LOCKDEP")
    if env is not None:
        return env.strip().lower() not in ("", "0", "false", "no", "off")
    if cfg.lockdep:
        return True
    return "PYTEST_CURRENT_TEST" in os.environ


class RunContext:
    """Everything a scheduler/source/join process needs to participate.

    Two construction modes:

    * **private** (default): builds and owns a whole cluster, the metrics
      registry, the fault injector and the causal log — one query, one
      cluster, exactly the pre-workload behaviour.
    * **shared** (``cluster=...`` given): the workload driver passes in a
      per-query *view* of the shared cluster (own scheduler/source nodes,
      the communal join-node pool) plus the shared metrics/span/tracer/
      fault plumbing.  The context then skips cluster construction and
      causal-log wiring (message causality is a single-query diagnostic;
      interleaved queries would corrupt one global log), and gains two
      workload-only attributes: ``pool`` (the query's
      :class:`~repro.core.pool.PoolClient`) and ``initial_join_nodes``
      (the admission grant, replacing ``range(cfg.initial_nodes)``).
    """

    def __init__(
        self,
        sim: Simulator,
        cfg: RunConfig,
        *,
        cluster: Cluster | None = None,
        metrics: MetricsRegistry | None = None,
        spans: SpanLog | None = None,
        tracer: Tracer | None = None,
        faults: FaultInjector | None = None,
        query: int = 0,
    ) -> None:
        self.sim = sim
        self.cfg = cfg
        shared = cluster is not None
        self.query = query
        #: workload mode: the query's handle to the shared pool actor
        self.pool: Any | None = None
        #: workload mode: pool indices granted at admission
        self.initial_join_nodes: list[int] | None = None
        self.metrics = (
            metrics if metrics is not None
            else MetricsRegistry(clock=lambda: sim.now)
        )
        #: observability byte budget (private mode only: the workload
        #: driver owns the shared collectors and passes ``spans`` in)
        self.obs_budget: ObsBudget | None = (
            ObsBudget.from_bytes(cfg.obs_budget_bytes)
            if cfg.obs_budget_bytes is not None else None
        )
        if spans is not None:
            self.spans = spans
        elif self.obs_budget is not None:
            self.spans = BoundedSpanLog(
                self.obs_budget.span_sample, self.obs_budget.span_outliers
            )
        else:
            self.spans = SpanLog()
        self.tracer = (
            tracer if tracer is not None
            else Tracer(enabled=cfg.trace, maxlen=cfg.trace_buffer)
        )
        #: fault injector (None on the fault-free path — the network then
        #: takes the exact pre-fault code path, byte for byte)
        if shared:
            self.faults = faults
        else:
            self.faults = (
                FaultInjector(cfg.faults, sim, self.metrics, trace=self.trace)
                if cfg.faults is not None and cfg.faults.active
                else None
            )
        self.cluster = (
            cluster if cluster is not None
            else Cluster.build(
                sim, cfg.effective_cluster, metrics=self.metrics,
                faults=self.faults,
            )
        )
        self.posmap = PositionMap(cfg.hash_positions, mix=cfg.mix_hash)
        self.comm = CommStats()
        self.cost = cfg.effective_cluster.cost
        if not shared and self.faults is not None:
            self.faults.resolve_timing(self.cost)
        #: monotonically increasing data-chunk sequence (duplicate keying)
        self._next_seq = 0
        # Barrier-split-pointer semantics (§4.2.1): at most one split's
        # data transfer is on the wire at a time — the scheduler's "done"
        # message gates the next split, so split traffic serializes at
        # single-link bandwidth (the §4.2.4 model's T_split = volume*t_w).
        from ..sim import Resource

        self.split_transfer_token = Resource(sim, capacity=1,
                                             name="split-barrier")
        # Causal message log.  Node names carry *global* node ids
        # (join nodes are "join<1 + n_sources + pool_index>") while spans
        # and the tracer use pool-indexed tracks ("join<pool_index>"); the
        # alias map folds both onto the track names so the critical-path
        # analysis can join spans with message edges.  Shared mode keeps a
        # per-query *empty* log (cause_of -> None) and leaves the shared
        # network's causality hook unset.
        aliases = {self.cluster.scheduler_node.name: "scheduler"}
        for s, node in enumerate(self.cluster.source_nodes):
            aliases[node.name] = f"src{s}"
        for j, node in enumerate(self.cluster.join_nodes):
            aliases[node.name] = f"join{j}"
        if getattr(self.cluster, "backup_node", None) is not None:
            aliases[self.cluster.backup_node.name] = "backup"
        if not shared and self.obs_budget is not None:
            self.causal: CausalLog = BoundedCausalLog(
                aliases, self.obs_budget.edge_sample,
                self.obs_budget.edge_outliers,
            )
        else:
            self.causal = CausalLog(aliases)
        #: control-plane failover: when the backup takes over, every actor
        #: addressing "the scheduler" must follow it (see set_scheduler_node)
        self._scheduler_override: Node | None = None
        if not shared:
            self.cluster.network.causality = self.causal
            for node in (
                [self.cluster.scheduler_node]
                + list(self.cluster.source_nodes)
                + list(self.cluster.join_nodes)
            ):
                node.mailbox.deq_probe = functools.partial(
                    self.causal.note_dequeue, node.name
                )
        # Runtime deadlock detector.  Attach-once: in workload mode every
        # query's context shares one simulator, so the first query's
        # monitor serves them all (shared mode also has no causal log to
        # hand it — see the class docstring).
        if sim.lockdep is None and lockdep_enabled(cfg):
            from ..sim.lockdep import LockdepMonitor

            LockdepMonitor(
                sim,
                metrics=self.metrics,
                causal=None if shared else self.causal,
            ).install()

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    @property
    def scheduler_node(self) -> Node:
        return self._scheduler_override or self.cluster.scheduler_node

    def set_scheduler_node(self, node: Node) -> None:
        """Repoint "the scheduler" after a backup takeover.

        Actors hold no cached copy of the scheduler address — every send
        resolves through this property — so flipping the override is the
        whole routing side of a failover.  Messages already in flight to
        the dead primary are absorbed by its mailbox (delivery completes
        regardless of receiver liveness, keeping byte conservation exact);
        the SchedulerFailover broadcast makes senders re-announce anything
        the primary may have taken to its grave.
        """
        self._scheduler_override = node

    @property
    def backup_node(self) -> Node | None:
        return getattr(self.cluster, "backup_node", None)

    def source_node(self, s: int) -> Node:
        return self.cluster.source_nodes[s]

    def join_node(self, j: int) -> Node:
        """Join node by pool index (0 .. n_potential_nodes-1)."""
        return self.cluster.join_nodes[j]

    @property
    def n_sources(self) -> int:
        return len(self.cluster.source_nodes)

    @property
    def n_potential(self) -> int:
        return len(self.cluster.join_nodes)

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def send(self, src: Node, dst: Node, msg: Any,
             parent: int | None = None,
             best_effort: bool = False) -> Generator[Any, Any, None]:
        """Send ``msg`` over the network, recording comm statistics.

        Data chunks are stamped with a run-unique ``transfer_seq`` here —
        the single chokepoint every actor sends through — so receivers can
        suppress re-deliveries idempotently (at-least-once transport).

        ``parent`` optionally overrides the causal-log provenance of the
        send: processes spawned off an actor's main loop (split/output
        transfers) capture :meth:`CausalLog.cause_of` at spawn time and
        pass it here, because by the time they run the actor has usually
        moved on to another message.
        """
        if isinstance(msg, DataChunk):
            if msg.transfer_seq < 0:
                msg.transfer_seq = self._next_seq
                self._next_seq += 1
            self.comm.tuples_by_hop[msg.hop] = (
                self.comm.tuples_by_hop.get(msg.hop, 0) + msg.tuples
            )
            self.comm.chunks_by_hop[msg.hop] = (
                self.comm.chunks_by_hop.get(msg.hop, 0) + 1
            )
        self.comm.bytes_by_kind[msg.kind] = (
            self.comm.bytes_by_kind.get(msg.kind, 0) + msg.nbytes
        )
        yield from self.cluster.network.send(
            src, dst, msg, parent=parent, best_effort=best_effort
        )

    def trace(self, category: str, actor: str, **detail: Any) -> None:
        self.tracer.emit(self.sim.now, category, actor, **detail)
