"""Typed protocol messages exchanged by scheduler, sources and join nodes.

Every message reports ``nbytes`` (what the network charges) and ``kind``
(used for traffic accounting and byte-conservation checks).  Data chunks
carry real NumPy arrays of join-attribute values; control messages are
charged the cost model's fixed control size.

``hop`` on a data chunk records *why* the chunk crossed the wire, which is
how the benchmarks reconstruct the paper's "extra communication volume"
(Figures 4 and 11): anything that is not a ``primary``/``probe`` hop is
extra work caused by the expansion strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import CostModel
from ..hashing import HashRange, Router

__all__ = [
    "CONTROL_BYTES",
    "Hop",
    "DataChunk",
    "ActivateJoin",
    "ActivateAck",
    "RouteUpdate",
    "MemoryFull",
    "ReplicateOrder",
    "BisectOrder",
    "LinearSplitOrder",
    "SplitDone",
    "ReliefPing",
    "ReliefAck",
    "OutputRedirect",
    "SpillOrder",
    "SourceDone",
    "StatusRequest",
    "StatusReport",
    "StartProbe",
    "CountRequest",
    "CountVector",
    "ReshuffleOrder",
    "ReshuffleDone",
    "FinalizePass",
    "PassDone",
    "Shutdown",
    "FinalReport",
    "PollTick",
    "RecruitRequest",
    "RecruitGrant",
    "RecruitDeny",
    "QueryDone",
    "HeartbeatPing",
    "HeartbeatAck",
    "StateSync",
    "SchedulerFailover",
    "Depose",
    "NodeLost",
    "NodeLostAck",
    "ReplayOrder",
    "ReplayDone",
    "DeathVerdict",
]

#: default control-plane size; kept in sync with CostModel.control_msg_bytes
CONTROL_BYTES = CostModel().control_msg_bytes


class Hop:
    """Why a data chunk crossed the network (comm-volume accounting)."""

    PRIMARY = "primary"      # source -> join node, first delivery (build)
    FORWARD = "forward"      # join -> join: pending-buffer forwarding
    SPLIT = "split"          # join -> join: split transfer
    RESHUFFLE = "reshuffle"  # join -> join: hybrid reshuffle move
    PROBE = "probe"          # source -> join, probe, single/first copy
    PROBE_DUP = "probe_dup"  # source -> join, probe, extra replica copies
    OUTPUT = "output"        # join -> output sink: materialized pairs

    BUILD_EXTRA = (FORWARD, SPLIT, RESHUFFLE)
    ALL = (PRIMARY, FORWARD, SPLIT, RESHUFFLE, PROBE, PROBE_DUP, OUTPUT)


class _Control:
    """Base for fixed-size control messages."""

    kind = "control"

    @property
    def nbytes(self) -> int:
        return CONTROL_BYTES


@dataclass
class DataChunk:
    """A buffered batch of tuples of one relation."""

    relation: str                   # "R" (build) or "S" (probe)
    values: np.ndarray              # uint64 join attributes
    tuple_bytes: int                # full logical tuple size
    hop: str = Hop.PRIMARY
    origin: int = -1                # sending actor id (diagnostics)
    version: int = 0                # router version used to route this chunk
    #: per-run unique sequence number (stamped by RunContext.send); the
    #: receiver suppresses re-deliveries keyed on (origin, transfer_seq) —
    #: the idempotence layer an at-least-once transport requires
    transfer_seq: int = -1

    kind = "data"

    def __post_init__(self) -> None:
        # "O" carries materialized output pairs to an output sink.
        if self.relation not in ("R", "S", "O"):
            raise ValueError(f"bad relation {self.relation!r}")
        if self.hop not in Hop.ALL:
            raise ValueError(f"bad hop {self.hop!r}")

    @property
    def tuples(self) -> int:
        return int(self.values.size)

    @property
    def nbytes(self) -> int:
        return self.tuples * self.tuple_bytes


# ----------------------------------------------------------------------
# scheduler -> join nodes
# ----------------------------------------------------------------------
@dataclass
class ActivateJoin(_Control):
    """Recruit a join node (initial assignment or expansion).

    Exactly one of ``hash_range`` / ``bucket`` is set: contiguous-range
    ownership (replicate/hybrid/bisect/OOC) or a linear-hash bucket id.
    """

    join_index: int
    hash_range: HashRange | None = None
    bucket: int | None = None
    phase: str = "build"
    #: recruited as a probe-phase output sink (footnote 1), not a bucket
    output_sink: bool = False


@dataclass
class ActivateAck(_Control):
    """A recruit confirming its ActivateJoin (join node -> scheduler).

    Recruitment is acknowledged so the scheduler can distinguish a live
    recruit from a crashed pool node: no ack within the recruit timeout
    means the scheduler excludes the node and retries a different one
    (see ``SchedulerProcess.recruit_node``)."""

    node: int


@dataclass
class ReplicateOrder(_Control):
    """To a full node: your range is replicated on ``new_node``; forward all
    pending and future build chunks there and stop storing (paper §4.2.2)."""

    new_node: int


@dataclass
class BisectOrder(_Control):
    """To a full node: keep ``[lo, mid)``, ship positions >= ``mid`` to
    ``new_node`` (split-based algorithm, TARGETED_BISECT policy)."""

    mid: int
    new_node: int


@dataclass
class LinearSplitOrder(_Control):
    """To the owner of the bucket at the split pointer: rehash your bucket
    with h_{i+1}, ship tuples addressing ``new_bucket`` to ``new_node``
    (split-based algorithm, LINEAR_POINTER policy, §4.2.1)."""

    new_bucket: int
    modulus: int
    new_node: int


@dataclass
class ReliefPing(_Control):
    """To a node that reported MemoryFull: retry your parked chunks now."""


@dataclass
class OutputRedirect(_Control):
    """Probe-phase expansion (paper footnote 1): forward your pending and
    future materialized output pairs to the freshly recruited sink."""

    new_node: int


@dataclass
class SpillOrder(_Control):
    """To a full node when the potential pool is exhausted: degrade to
    out-of-core spilling for your range (documented fallback)."""


@dataclass
class StartProbe(_Control):
    """Phase switch.  ``router`` is the final probe routing (sources);
    join nodes receive it with ``router=None`` as a finalize signal."""

    router: Router | None = None

    @property
    def nbytes(self) -> int:
        return CONTROL_BYTES + (self.router.wire_bytes() if self.router else 0)


@dataclass
class CountRequest(_Control):
    """Hybrid reshuffle: report per-position tuple counts over [lo, hi)."""

    lo: int
    hi: int


@dataclass
class ReshuffleOrder(_Control):
    """Hybrid reshuffle: the group's new contiguous assignment.

    ``assignments`` maps member node -> its new subrange (or None when the
    greedy cut gave it a zero-width slice).  The receiver keeps tuples in
    its own slice and ships every other slice to its new owner.
    """

    assignments: tuple[tuple[int, HashRange | None], ...]

    @property
    def nbytes(self) -> int:
        return CONTROL_BYTES + 20 * len(self.assignments)


@dataclass
class FinalizePass(_Control):
    """OOC: run the out-of-core bucket passes now (probe stream drained)."""


@dataclass
class StatusRequest(_Control):
    """Drain polling: report your counters (token echoes back)."""

    token: int


@dataclass
class Shutdown(_Control):
    """Terminate after replying with a FinalReport (join nodes) or
    immediately (sources, ticker)."""


# ----------------------------------------------------------------------
# scheduler -> sources
# ----------------------------------------------------------------------
@dataclass
class RouteUpdate:
    """New routing table for the data sources."""

    router: Router
    phase: str = "build"

    kind = "control"

    @property
    def nbytes(self) -> int:
        return self.router.wire_bytes()


# ----------------------------------------------------------------------
# join nodes -> scheduler
# ----------------------------------------------------------------------
@dataclass
class MemoryFull(_Control):
    """A join node's bucket memory is exhausted (paper's trigger event).

    ``deficit_bytes`` is the reporter's parked backlog (bytes it could not
    place) — the shared pool's MEMORY_DEFICIT policy grants the smallest
    deficit first (see :class:`repro.config.PoolPolicy`)."""

    node: int
    deficit_bytes: int = 0


@dataclass
class SplitDone(_Control):
    """Linear split finished; ``moved_tuples`` went to the new bucket."""

    node: int
    moved_tuples: int


@dataclass
class ReliefAck(_Control):
    """Response to a relief action (ReplicateOrder/BisectOrder/ReliefPing/
    SpillOrder): parked data reprocessed; ``still_full`` asks for more."""

    node: int
    still_full: bool
    moved_tuples: int = 0


@dataclass
class StatusReport(_Control):
    """Drain-poll response: cumulative per-phase chunk counters."""

    node: int
    token: int
    received_build: int
    processed_build: int
    emitted_build: int
    received_probe: int
    processed_probe: int
    busy: bool
    emitted_probe: int = 0


@dataclass
class CountVector:
    """Per-position tuple counts for the reshuffle step.

    The wire size is co-scaled with the workload (``wire_scale``): count
    vectors are proportional to the *fixed* hash-table resolution, so at a
    reduced workload scale their full-resolution size would be over-weighted
    relative to the data traffic (see CostModel.scaled)."""

    node: int
    lo: int
    hi: int
    counts: np.ndarray
    wire_scale: float = 1.0

    kind = "counts"

    @property
    def nbytes(self) -> int:
        return 32 + int(8 * self.counts.size * self.wire_scale)


@dataclass
class ReshuffleDone(_Control):
    node: int
    moved_tuples: int


@dataclass
class PassDone(_Control):
    """OOC final passes finished on this node."""

    node: int


@dataclass
class FinalReport(_Control):
    """End-of-run statistics from one join node."""

    node: int
    stored_tuples: int
    matches: int
    peak_memory: int
    overcommit_bytes: int
    spilled_r_tuples: int
    spilled_s_tuples: int
    activated_at: float
    split_transfer_s: float = 0.0
    output_tuples: int = 0
    output_spilled_tuples: int = 0
    is_output_sink: bool = False


# ----------------------------------------------------------------------
# scheduler <-> shared resource pool (repro.workload multi-tenancy)
# ----------------------------------------------------------------------
@dataclass
class RecruitRequest(_Control):
    """A query's scheduler asks the shared pool for join nodes.

    ``admission=True`` is the query's start-of-life request for its
    ``initial_nodes`` (``want`` of them, head-of-line FIFO, never denied —
    it parks until enough nodes free up, which is the workload's queueing
    delay).  ``admission=False`` is a mid-run expansion recruit for one
    node; it may be denied (policy cap or grant timeout), in which case
    the scheduler degrades the reporter to the OOC spill path.
    """

    query: int
    want: int = 1
    admission: bool = False
    #: reporter's parked backlog (MEMORY_DEFICIT policy ordering)
    deficit_bytes: int = 0
    phase: str = "build"


@dataclass
class RecruitGrant(_Control):
    """Pool -> scheduler: exclusive ownership of ``nodes`` (pool indices)."""

    query: int
    nodes: tuple[int, ...] = ()


@dataclass
class RecruitDeny(_Control):
    """Pool -> scheduler: no node for you (``reason``: "fair_share_cap" or
    "timeout"); the scheduler falls back to out-of-core spilling."""

    query: int
    reason: str = "timeout"


@dataclass
class QueryDone(_Control):
    """Scheduler -> pool: the query finished; ``released`` nodes return to
    the free pool.  Nodes lost to crashes or zombie recruits are *not*
    released — the pool shrinks, as it would on real hardware."""

    query: int
    released: tuple[int, ...] = ()


# ----------------------------------------------------------------------
# sources -> scheduler
# ----------------------------------------------------------------------
@dataclass
class SourceDone(_Control):
    """A source finished streaming one relation.

    ``chunks_sent``/``tuples_sent`` are per-destination totals for that
    relation (the drain protocol's ground truth).
    """

    source: int
    relation: str
    chunks_sent: dict[int, int] = field(default_factory=dict)
    tuples_sent: dict[int, int] = field(default_factory=dict)
    dup_tuples: int = 0  # probe-phase replica copies beyond the first


# ----------------------------------------------------------------------
# control-plane fault tolerance (repro.core.membership)
# ----------------------------------------------------------------------
@dataclass
class HeartbeatPing(_Control):
    """Membership detector ping (scheduler -> watched node, best effort).

    Sent single-shot over the faulty network — no retransmission, no ack
    wait — so a lossy or slow link manifests as a *missing* ack and the
    detector must tolerate false positives (there is no failure oracle)."""

    token: int


@dataclass
class HeartbeatAck(_Control):
    """Liveness reply to a HeartbeatPing (watched node -> scheduler)."""

    node: int
    token: int


@dataclass
class StateSync(_Control):
    """Primary scheduler -> backup: WAL-style state replication.

    Shipped *before* the primary acts on a decision, so the backup can
    idempotently re-drive the in-flight decision (``pending``) after a
    takeover.  ``sync_seq`` is monotone; the backup keeps the newest."""

    sync_seq: int
    phase: str = "build"
    router: Router | None = None
    version: int = 0
    activated: tuple[int, ...] = ()
    fenced: tuple[int, ...] = ()
    #: in-flight decision descriptor, e.g. ("replicate", reporter, new_node);
    #: empty tuple when no decision is mid-flight
    pending: tuple = ()

    @property
    def nbytes(self) -> int:
        return CONTROL_BYTES + (self.router.wire_bytes() if self.router else 0)


@dataclass
class SchedulerFailover(_Control):
    """Backup -> everyone: the scheduler moved to ``new_scheduler``.

    Receivers re-announce state the dead primary may have lost: sources
    re-send SourceDone for finished relations, full join nodes re-send
    MemoryFull for parked backlogs."""

    new_scheduler: int


@dataclass
class Depose(_Control):
    """Backup -> old primary: stand down (split-brain backstop).

    Normally arrives at a dead process and is absorbed by its mailbox; a
    falsely-suspected live primary exits cleanly instead of competing."""

    new_scheduler: int


@dataclass
class NodeLost(_Control):
    """Scheduler -> surviving join node: ``dead`` was declared failed.

    Receivers subtract the dead peer's per-origin/per-dest contributions
    from their drain counters and discard (never forward to) it.  With
    ``purge=True`` the receiver shared a replica chain with the dead node:
    it drops its stored segment and quarantines — the whole range will be
    re-streamed from the sources to a fresh target, so keeping survivor
    segments would double-store tuples and double-count matches."""

    dead: int
    purge: bool = False


@dataclass
class NodeLostAck(_Control):
    """Survivor -> scheduler: NodeLost applied (fencing barrier)."""

    node: int


@dataclass
class ReplayOrder(_Control):
    """Scheduler -> data source: re-stream one relation to ``target``.

    Sources regenerate their stream deterministically from the workload
    seed and re-send only the batches already streamed (their replay
    cursor), filtered to tuples that route to ``target`` under
    ``router`` (the post-takeover table; carried in the order so a
    probe-phase replay can run *before* the source's live routing table
    is flipped).  ``recovery_id`` deduplicates re-driven orders."""

    relation: str
    target: int
    recovery_id: int
    router: Router | None = None

    @property
    def nbytes(self) -> int:
        return CONTROL_BYTES + (self.router.wire_bytes() if self.router else 0)


@dataclass
class ReplayDone(_Control):
    """Source -> scheduler: replay finished; ``chunks_sent`` went to the
    recovery target (drain-accounting delta, keyed by ``recovery_id``)."""

    recovery_id: int
    source: int
    relation: str
    chunks_sent: dict[int, int] = field(default_factory=dict)
    tuples: int = 0


# ----------------------------------------------------------------------
# local (non-network) messages
# ----------------------------------------------------------------------
@dataclass
class PollTick:
    """Timer tick the drain ticker drops into the scheduler mailbox.

    Never crosses the network (the ticker runs on the scheduler node)."""

    kind = "tick"
    nbytes = 0


@dataclass
class DeathVerdict:
    """Membership detector -> scheduler main loop: ``node`` is declared
    dead (confirm timeout expired).  Local hand-off on the scheduler node
    — never crosses the network."""

    node: int

    kind = "tick"
    nbytes = 0
