"""Split-based expansion (paper §4.2.1, after Amin et al.).

Three policies (see ``SplitPolicy`` and DESIGN.md §2):

* ``LINEAR_POINTER`` (default) — order-preserving linear hashing.  The
  scheduler's **split pointer** walks the buckets round-robin; when memory
  fills anywhere, the *pointed* bucket's contiguous hash range is bisected
  and the upper half (stored tuples included) moves to the new node.  The
  **barrier split pointer** is realized by the scheduler's serialized
  relief cycles: a bucket is never asked to split while a split is in
  flight.  Because the pointer, not the overflow, picks the victim, a
  full node under skew may wait through many futile splits of cold
  buckets — the cascade the paper observes in Figures 10-13.
* ``TARGETED_BISECT`` — bisect the range of the node that reported memory
  full directly (the abstract's minimal reading).
* ``LINEAR_MOD`` — classic Litwin linear hashing with modulo addressing
  (``h_i(p) = p mod n0*2^i``), kept as an ablation: the modulo scatters
  contiguous hot positions across buckets and thereby *suppresses* the
  paper's skew pathology.

In every policy the hash space stays partitioned (never replicated), so
the probe phase needs no extra communication — the strategy's defining
trade against replication.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Generator
from typing import TYPE_CHECKING, Any

from ..config import SplitPolicy
from ..hashing import (
    LinearHashDirectory,
    LinearHashRouter,
    RangeRouter,
    Router,
    partition_positions,
)
from .messages import (
    ActivateJoin,
    BisectOrder,
    LinearSplitOrder,
    ReliefAck,
    ReliefPing,
    RouteUpdate,
    SplitDone,
)
from .strategy import ExpansionStrategy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .scheduler import SchedulerProcess

__all__ = ["SplitStrategy"]


class SplitStrategy(ExpansionStrategy):
    """Partition the overflowing range/bucket onto the new node."""

    def __init__(self, sched: SchedulerProcess, policy: SplitPolicy) -> None:
        super().__init__(sched)
        self.policy = policy
        #: classic-Litwin directory (LINEAR_MOD only)
        self.directory: LinearHashDirectory | None = None
        #: round-robin split order over bucket owners (LINEAR_POINTER only)
        self.split_order: deque[int] = deque()

    # ------------------------------------------------------------------
    def make_initial_router(self, initial: list[int]) -> Router:
        if self.policy is SplitPolicy.LINEAR_MOD:
            self.directory = LinearHashDirectory(len(initial), list(initial))
            return self.directory.router(version=0)
        if self.policy is SplitPolicy.LINEAR_POINTER:
            self.split_order = deque(initial)
        ranges = partition_positions(self.sched.cfg.hash_positions, len(initial))
        return RangeRouter.initial(ranges, initial, self.sched.cfg.hash_positions)

    def expand(self, reporter: int) -> Generator[Any, Any, ReliefAck]:
        if self.policy is SplitPolicy.LINEAR_MOD:
            return (yield from self._expand_mod(reporter))
        if self.policy is SplitPolicy.LINEAR_POINTER:
            return (yield from self._expand_pointer(reporter))
        return (yield from self._expand_bisect(reporter))

    # ------------------------------------------------------------------
    # shared bisection machinery (LINEAR_POINTER & TARGETED_BISECT)
    # ------------------------------------------------------------------
    def _bisect_owner(
        self, owner: int, reporter: int
    ) -> Generator[Any, Any, ReliefAck]:
        """Split ``owner``'s range onto a fresh node; finish the relief
        cycle by pinging ``reporter`` if the split went elsewhere."""
        sched = self.sched
        router: RangeRouter = sched.router  # type: ignore[assignment]
        idx = _single_owner_entry(router, owner)
        rng, _ = router.entries[idx]
        left, right = rng.bisect()
        # Acked recruitment: the new node confirms it is alive before any
        # order or routing update references it (a crashed recruit would
        # otherwise swallow the moved range).  recruit_node retries other
        # pool nodes on timeout; None means the pool is exhausted.
        new_node = yield from sched.recruit_node(
            lambda j: ActivateJoin(j, hash_range=right)
        )
        if new_node is None:
            return (yield from self.fallback_spill(reporter))
        # WAL before mutating the table: a standby re-drives from here.
        yield from sched.wal_decision(
            ("bisect", owner, right.lo, new_node, reporter),
            parties=(owner, new_node),
        )
        sched.router = router.with_bisection(idx, owner, new_node,
                                             sched.next_version())
        yield from sched.send_to_join(
            owner, BisectOrder(mid=right.lo, new_node=new_node)
        )
        yield from sched.broadcast_to_sources(RouteUpdate(sched.router))
        sched.ctx.trace("expand_split", "scheduler", policy=self.policy.value,
                        owner=owner, reporter=reporter, new_node=new_node,
                        left=str(left), right=str(right))
        t0 = sched.ctx.sim.now
        ack_owner = yield from sched.await_relief_ack(owner)
        sched.record_split(moved=ack_owner.moved_tuples,
                           busy=sched.ctx.sim.now - t0)
        if owner == reporter:
            yield from sched.clear_decision()
            return ack_owner
        # The pointer chose a different victim; ask the full reporter to
        # retry its parked buffers against the (possibly unchanged) table.
        yield from sched.send_to_join(reporter, ReliefPing())
        ack = yield from sched.await_relief_ack(reporter)
        yield from sched.clear_decision()
        return ack

    # ------------------------------------------------------------------
    # TARGETED_BISECT: split the reporter itself
    # ------------------------------------------------------------------
    def _expand_bisect(self, reporter: int) -> Generator[Any, Any, ReliefAck]:
        router: RangeRouter = self.sched.router  # type: ignore[assignment]
        rng, _ = router.entries[_single_owner_entry(router, reporter)]
        if rng.width < 2:
            # Atomic range: splitting cannot relieve this node.
            return (yield from self.fallback_spill(reporter))
        return (yield from self._bisect_owner(reporter, reporter))

    # ------------------------------------------------------------------
    # LINEAR_POINTER: split whatever bucket the pointer names
    # ------------------------------------------------------------------
    def _expand_pointer(self, reporter: int) -> Generator[Any, Any, ReliefAck]:
        sched = self.sched
        router: RangeRouter = sched.router  # type: ignore[assignment]
        owner = None
        for _ in range(len(self.split_order)):
            candidate = self.split_order[0]
            rng, _ = router.entries[_single_owner_entry(router, candidate)]
            if rng.width >= 2:
                owner = candidate
                break
            self.split_order.rotate(-1)  # atomic bucket: skip it this round
        if owner is None:
            return (yield from self.fallback_spill(reporter))
        ack = yield from self._bisect_owner(owner, reporter)
        if sched.router is not router:  # the split actually happened
            self.split_order.popleft()
            self.split_order.append(owner)
            new_node = sched.activated[-1]
            self.split_order.append(new_node)
        return ack

    # ------------------------------------------------------------------
    # LINEAR_MOD: classic Litwin addressing (ablation)
    # ------------------------------------------------------------------
    def _expand_mod(self, reporter: int) -> Generator[Any, Any, ReliefAck]:
        sched = self.sched
        assert self.directory is not None
        # The new bucket id is known before the recruit is (densely grown:
        # modulus + split pointer), so the ActivateJoin can be built for
        # any candidate and the directory committed only after the ack.
        new_bucket = self.directory.next_new_bucket
        new_node = yield from sched.recruit_node(
            lambda j: ActivateJoin(j, bucket=new_bucket)
        )
        if new_node is None:
            return (yield from self.fallback_spill(reporter))

        t0 = sched.ctx.sim.now
        ticket = self.directory.begin_split(new_node)
        assert ticket.new_bucket == new_bucket
        # WAL after begin_split (local bookkeeping the standby rebuilds
        # from the pre-split table) but before the order goes out.
        yield from sched.wal_decision(
            ("linear", reporter, ticket.new_bucket, new_node),
            parties=(ticket.owner_node, new_node),
        )
        yield from sched.send_to_join(
            ticket.owner_node,
            LinearSplitOrder(
                new_bucket=ticket.new_bucket,
                modulus=ticket.modulus,
                new_node=new_node,
            ),
        )
        done: SplitDone = yield from sched.await_message(
            lambda m: isinstance(m, SplitDone) and m.node == ticket.owner_node
        )
        self.directory.complete_split(ticket)
        sched.router = self.directory.router(sched.next_version())
        yield from sched.broadcast_to_sources(RouteUpdate(sched.router))
        sched.ctx.trace("expand_linear_mod", "scheduler",
                        reporter=reporter, owner=ticket.owner_node,
                        new_node=new_node, bucket=ticket.bucket,
                        new_bucket=ticket.new_bucket)
        sched.record_split(moved=done.moved_tuples, busy=sched.ctx.sim.now - t0)

        # The split may not have targeted the reporter; ping it to retry.
        yield from sched.send_to_join(reporter, ReliefPing())
        ack = yield from sched.await_relief_ack(reporter)
        yield from sched.clear_decision()
        return ack

    # ------------------------------------------------------------------
    # control-plane fault tolerance (repro.core.membership)
    # ------------------------------------------------------------------
    def adopt_router(self, router: Router, activated: list[int]) -> None:
        """Rebuild the directory / split order from a routing table.

        Exact reconstruction for LINEAR_MOD (the table carries the whole
        Litwin state); for LINEAR_POINTER the round-robin order restarts
        in entry order — a fairness detail, not a correctness one."""
        if self.policy is SplitPolicy.LINEAR_MOD:
            assert isinstance(router, LinearHashRouter)
            self.directory = LinearHashDirectory.from_router(router)
        elif self.policy is SplitPolicy.LINEAR_POINTER:
            assert isinstance(router, RangeRouter)
            order: list[int] = []
            for _rng, chain in router.entries:
                for n in chain:
                    if n not in order:
                        order.append(n)
            self.split_order = deque(order)

    def redrive(self, pending: tuple) -> Generator[Any, Any, ReliefAck]:
        """Re-drive a WAL'd split after a standby takeover.

        The snapshot table predates the decision, so the routing change is
        re-applied, the (idempotent) order re-sent and the ack re-awaited."""
        sched = self.sched
        if pending[0] == "bisect":
            owner, mid, new_node, reporter = (
                int(pending[1]), int(pending[2]), int(pending[3]),
                int(pending[4]),
            )
            router: RangeRouter = sched.router  # type: ignore[assignment]
            if not any(rng.lo == mid for rng, _ in router.entries):
                idx = router.entry_index_for(mid)
                sched.router = router.with_bisection(
                    idx, owner, new_node, sched.next_version()
                )
            if (self.policy is SplitPolicy.LINEAR_POINTER
                    and new_node not in self.split_order):
                self.split_order.append(new_node)
            yield from sched.send_to_join(
                owner, BisectOrder(mid=mid, new_node=new_node)
            )
            yield from sched.broadcast_to_sources(RouteUpdate(sched.router))
            ack = yield from sched.await_relief_ack(owner)
            sched.record_split(moved=ack.moved_tuples, busy=0.0)
            if owner != reporter:
                yield from sched.send_to_join(reporter, ReliefPing())
                ack = yield from sched.await_relief_ack(reporter)
            return ack

        assert pending[0] == "linear", pending
        reporter, new_bucket, new_node = (
            int(pending[1]), int(pending[2]), int(pending[3])
        )
        assert self.directory is not None
        if self.directory.next_new_bucket == new_bucket:
            # Buckets grow densely, so the rebuilt (pre-split) directory
            # reproduces the exact same ticket the primary WAL'd.
            ticket = self.directory.begin_split(new_node)
            assert ticket.new_bucket == new_bucket
            yield from sched.send_to_join(
                ticket.owner_node,
                LinearSplitOrder(
                    new_bucket=ticket.new_bucket,
                    modulus=ticket.modulus,
                    new_node=new_node,
                ),
            )
            done: SplitDone = yield from sched.await_message(
                lambda m: isinstance(m, SplitDone)
                and m.node == ticket.owner_node
            )
            self.directory.complete_split(ticket)
            sched.router = self.directory.router(sched.next_version())
            yield from sched.broadcast_to_sources(RouteUpdate(sched.router))
            sched.record_split(moved=done.moved_tuples, busy=0.0)
        yield from sched.send_to_join(reporter, ReliefPing())
        return (yield from sched.await_relief_ack(reporter))


def _single_owner_entry(router: RangeRouter, node: int) -> int:
    for i, (_rng, chain) in enumerate(router.entries):
        if chain == (node,):
            return i
    raise LookupError(f"node {node} owns no range")
