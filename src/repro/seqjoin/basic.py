"""Algorithm 1 from the paper: the basic (sequential, in-core) hash join.

Two implementations of the same semantics:

* :func:`hash_join_count` — a literal rendering of Algorithm 1 with a
  bucketed hash table (kept for documentation value and as an independent
  cross-check in tests; O(|R| + |S| * bucket occupancy)).
* :func:`match_count` — the vectorized reference used as ground truth by
  the whole test suite (sort + searchsorted, exact pair counting).

Both count matching (r, s) pairs; the distributed algorithms are validated
by comparing their total match counts against these.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

__all__ = ["hash_join_count", "match_count", "match_count_by_value"]


def hash_join_count(r_values: np.ndarray, s_values: np.ndarray, n_buckets: int = 1024) -> int:
    """Literal Algorithm 1: build a bucketed table on R, probe with S.

    HashTable[h] holds the R elements hashing there; each S element scans
    its bucket for join-attribute equality.  Intended for small inputs.
    """
    if n_buckets < 1:
        raise ValueError("n_buckets must be >= 1")
    table: dict[int, list[int]] = defaultdict(list)
    for r in r_values.tolist():
        table[hash(r) % n_buckets].append(r)
    matches = 0
    for s in s_values.tolist():
        for r in table.get(hash(s) % n_buckets, ()):
            if r == s:
                matches += 1
    return matches


def match_count(r_values: np.ndarray, s_values: np.ndarray) -> int:
    """Exact equi-join pair count, vectorized (the reference oracle).

    Deduplicating R first (unique + counts) makes the binary-search pass
    walk ``|unique(R)|`` elements instead of ``|R|``, and sorting the
    probe side keeps that walk cache-local — same trick as
    ``NodeHashStore.probe``; the count is order-independent.
    """
    if r_values.size == 0 or s_values.size == 0:
        return 0
    r_uniq, r_counts = np.unique(r_values, return_counts=True)
    queries = np.sort(s_values)
    idx = np.searchsorted(r_uniq, queries, side="left")
    np.minimum(idx, r_uniq.size - 1, out=idx)
    hit = r_uniq[idx] == queries
    return int(r_counts[idx[hit]].sum())


def match_count_by_value(r_values: np.ndarray, s_values: np.ndarray) -> dict[int, int]:
    """Per-join-value pair counts (diagnostics for skew analysis)."""
    r_vals, r_cnt = np.unique(r_values, return_counts=True)
    s_vals, s_cnt = np.unique(s_values, return_counts=True)
    common, r_idx, s_idx = np.intersect1d(r_vals, s_vals, return_indices=True)
    return {
        int(v): int(rc * sc)
        for v, rc, sc in zip(common, r_cnt[r_idx], s_cnt[s_idx])
    }
