"""Single-node Grace-style out-of-core hash join (paper §2, last paragraph).

The basic out-of-core algorithm: partition R into ``k`` position-range
buckets on disk, partition S the same way, then join bucket pairs in core.
This standalone version (no cluster, no scheduler) serves two roles:

* ground truth for the distributed OOC baseline's spill bookkeeping;
* a cost calculator for the disk traffic an out-of-core join implies,
  reused by the analysis module.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import CostModel
from ..hashing import PositionMap
from .basic import match_count

__all__ = ["GraceJoinResult", "grace_join"]


@dataclass
class GraceJoinResult:
    """Outcome of a sequential Grace join."""

    matches: int
    partitions: int
    #: bytes written to / read from disk (both relations)
    disk_write_bytes: int = 0
    disk_read_bytes: int = 0
    #: estimated time under the given cost model (seconds)
    estimated_time: float = 0.0
    partition_r_tuples: list[int] = field(default_factory=list)


def grace_join(
    r_values: np.ndarray,
    s_values: np.ndarray,
    memory_tuples: int,
    tuple_bytes: int,
    cost: CostModel,
    posmap: PositionMap | None = None,
) -> GraceJoinResult:
    """Run the out-of-core join, counting matches and disk traffic.

    ``memory_tuples`` is the in-core capacity; the partition count is
    chosen as ``ceil(|R| / memory_tuples)`` (perfect knowledge — the
    sequential baseline, unlike the distributed algorithms, is allowed to
    know |R| so it models the best case for OOC).
    """
    if memory_tuples < 1:
        raise ValueError("memory_tuples must be >= 1")
    posmap = posmap or PositionMap(1 << 18)

    if r_values.size <= memory_tuples:
        # Entirely in core: no disk traffic at all.
        return GraceJoinResult(
            matches=match_count(r_values, s_values),
            partitions=1,
            estimated_time=(
                cost.cpu_insert_tuple * r_values.size
                + cost.cpu_probe_tuple * s_values.size
            ),
            partition_r_tuples=[int(r_values.size)],
        )

    k = -(-int(r_values.size) // memory_tuples)  # ceil division
    positions = posmap.positions
    r_part = np.minimum(posmap(r_values) * k // positions, k - 1)
    s_part = np.minimum(posmap(s_values) * k // positions, k - 1)

    matches = 0
    part_sizes: list[int] = []
    for p in range(k):
        r_p = r_values[r_part == p]
        s_p = s_values[s_part == p]
        part_sizes.append(int(r_p.size))
        matches += match_count(r_p, s_p)

    write_bytes = (int(r_values.size) + int(s_values.size)) * tuple_bytes
    read_bytes = write_bytes
    io_time = sum(
        cost.disk_time(n * tuple_bytes)
        for n in (list(map(int, part_sizes)) + [int(s_values.size)])
    ) * 2  # write + read, batched per partition (S modeled as one stream)
    cpu_time = (
        cost.cpu_insert_tuple * r_values.size * 2  # partition pass + build
        + cost.cpu_probe_tuple * s_values.size * 2  # partition pass + probe
    )
    return GraceJoinResult(
        matches=matches,
        partitions=k,
        disk_write_bytes=write_bytes,
        disk_read_bytes=read_bytes,
        estimated_time=io_time + cpu_time,
        partition_r_tuples=part_sizes,
    )
