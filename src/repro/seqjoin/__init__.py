"""Sequential reference joins: Algorithm 1 (in-core) and Grace (out-of-core).

These are the correctness oracles: every distributed run's match count is
checked against :func:`match_count` on the materialized relations.
"""

from .basic import hash_join_count, match_count, match_count_by_value
from .grace import GraceJoinResult, grace_join

__all__ = [
    "GraceJoinResult",
    "grace_join",
    "hash_join_count",
    "match_count",
    "match_count_by_value",
]
