"""repro — reproduction of "Strategies for Using Additional Resources in
Parallel Hash-based Join Algorithms" (Zhang et al., HPDC 2004).

Quick start::

    from repro import Algorithm, RunConfig, WorkloadSpec, run_join

    cfg = RunConfig(
        algorithm=Algorithm.HYBRID,
        initial_nodes=4,
        workload=WorkloadSpec(r_tuples=10_000_000, s_tuples=10_000_000),
    )
    result = run_join(cfg)
    print(result.summary())

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.sim`      — discrete-event simulation kernel
- :mod:`repro.cluster`  — simulated PC cluster (nodes, NICs, disks, memory)
- :mod:`repro.data`     — synthetic relation streams (uniform / Gaussian / Zipf)
- :mod:`repro.hashing`  — position maps, routers, linear hashing, reshuffle
- :mod:`repro.seqjoin`  — sequential reference joins (correctness oracles)
- :mod:`repro.core`     — the expanding hash-join algorithms + run driver
- :mod:`repro.faults`   — deterministic fault injection + recovery plans
- :mod:`repro.obs`      — metrics registry, span timelines, trace export
- :mod:`repro.analysis` — §4.2.4 cost model, load-balance stats, reports
- :mod:`repro.bench`    — figure-reproduction harness used by benchmarks/
- :mod:`repro.workload` — multi-tenant workloads on one shared node pool
"""

from .config import (
    Algorithm,
    ClusterSpec,
    CostModel,
    DEFAULT_SCALE,
    Distribution,
    MTUPLES,
    PoolPolicy,
    QueryMixEntry,
    RunConfig,
    SplitPolicy,
    WorkloadConfig,
    WorkloadSpec,
)
from .core import JoinRunResult, run_join
from .workload import QueryStats, WorkloadResult, run_workload
from .faults import (
    CrashSpec,
    FaultPlan,
    FaultPlanError,
    LinkSlowdown,
    UnrecoverableFaultError,
)

__version__ = "1.0.0"

__all__ = [
    "Algorithm",
    "ClusterSpec",
    "CostModel",
    "CrashSpec",
    "DEFAULT_SCALE",
    "Distribution",
    "FaultPlan",
    "FaultPlanError",
    "JoinRunResult",
    "LinkSlowdown",
    "MTUPLES",
    "PoolPolicy",
    "QueryMixEntry",
    "QueryStats",
    "RunConfig",
    "SplitPolicy",
    "UnrecoverableFaultError",
    "WorkloadConfig",
    "WorkloadResult",
    "WorkloadSpec",
    "run_join",
    "run_workload",
    "__version__",
]
