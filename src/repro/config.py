"""Run configuration: cost model, cluster spec, workload spec.

The cost model is calibrated to the paper's testbed (OSUMed: 24 Pentium-III
933 MHz nodes, 512 MB RAM, local IDE disk, switched 100 Mb/s Ethernet).
Absolute constants only set the time *scale*; the reproduced results depend
on the ratios between network, CPU and disk costs, which these constants
keep faithful to 2004-era commodity hardware.

Scaling: the paper runs 10M-100M tuple relations.  ``WorkloadSpec.scale``
shrinks tuple counts, the chunk size and per-node memory budgets *together*,
preserving every ratio the algorithms react to (expansion factor, chunk
counts, spill fractions).  The default benchmarks use scale = 1/50.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from .faults import FaultPlan

__all__ = [
    "Algorithm",
    "SplitPolicy",
    "Distribution",
    "CostModel",
    "ClusterSpec",
    "ObsConfig",
    "WorkloadSpec",
    "RunConfig",
    "PoolPolicy",
    "QueryMixEntry",
    "WorkloadConfig",
    "FleetConfig",
    "MTUPLES",
    "DEFAULT_SCALE",
]

#: convenience: 1 "M tuples" in the paper's units
MTUPLES = 1_000_000

#: default down-scaling for benchmarks (10M paper tuples -> 200k real tuples)
DEFAULT_SCALE = 1.0 / 50.0


class Algorithm(enum.Enum):
    """Join algorithm selector (the paper's four compared algorithms)."""

    SPLIT = "split"
    REPLICATE = "replicate"
    HYBRID = "hybrid"
    OUT_OF_CORE = "ooc"

    @property
    def is_expanding(self) -> bool:
        return self is not Algorithm.OUT_OF_CORE


class SplitPolicy(enum.Enum):
    """Which split rule the split-based algorithm uses (see DESIGN.md §2).

    TARGETED_BISECT (default): bisect the hash range of the node that
    reported memory full — the abstract's description ("partitions the
    hash table range assigned to the node, on which memory is full, into
    two segments").  Under skew the full node's range is re-bisected
    repeatedly and the hot mass re-shipped each time, which is exactly the
    paper's "communicate the same tuple many times" pathology (Figs 10-13).

    LINEAR_POINTER: order-preserving linear hashing — the split pointer
    walks the buckets round-robin (§4.2.1's machinery); the pointed
    bucket's contiguous range is bisected.  Ablation: under extreme skew
    the pointer wastes splits on empty cold buckets, so it does NOT
    reproduce Figure 11's re-communication volume (a reproduction finding;
    see EXPERIMENTS.md).

    LINEAR_MOD: classic Litwin linear hashing with modulo addressing
    (h_i(p) = p mod n0*2^i).  Ablation variant: the modulo scatters
    contiguous hot positions across buckets, which — like hash mixing —
    suppresses the skew effects the paper observed.
    """

    TARGETED_BISECT = "bisect"
    LINEAR_POINTER = "linear"
    LINEAR_MOD = "linear_mod"


class Distribution(enum.Enum):
    """Join-attribute value distribution for synthetic relations."""

    UNIFORM = "uniform"
    GAUSSIAN = "gaussian"
    ZIPF = "zipf"  # extension beyond the paper


class Topology(enum.Enum):
    """Interconnect model (the paper's 'network configurations' future work).

    SWITCHED — non-blocking switch, one full-duplex port per node (the
    paper's testbed).  SHARED_HUB — a single half-duplex collision domain:
    every transfer serializes on one shared medium (late-90s hub Ethernet).
    """

    SWITCHED = "switched"
    SHARED_HUB = "hub"


@dataclass(frozen=True)
class CostModel:
    """Per-operation costs charged by the simulated cluster.

    All times in seconds, sizes in bytes.  Defaults approximate OSUMed.
    """

    #: per-NIC bandwidth (100 Mb/s switched Ethernet, full duplex)
    net_bandwidth: float = 12.5e6
    #: one-way message latency (switch + stack)
    net_latency: float = 120e-6
    #: uniform random extra latency per message, in seconds.  Zero keeps
    #: per-pair FIFO delivery; any positive value lets messages reorder,
    #: which the protocol must (and does — see the chaos tests) tolerate
    net_jitter: float = 0.0
    #: fixed CPU cost to send or receive one message (syscall + memcpy)
    net_per_message_cpu: float = 40e-6
    #: size charged for control-plane messages
    control_msg_bytes: int = 64

    #: CPU cost to generate one tuple at a data source (select/filter + rng)
    cpu_generate_tuple: float = 0.35e-6
    #: CPU cost at a source to hash + route one tuple into a buffer
    cpu_route_tuple: float = 0.10e-6
    #: CPU cost to insert one tuple into the hash table
    cpu_insert_tuple: float = 0.30e-6
    #: CPU cost to probe one tuple against the hash table
    cpu_probe_tuple: float = 0.35e-6
    #: CPU cost to emit one matching output pair
    cpu_output_match: float = 0.05e-6
    #: CPU cost to extract/repack one tuple during split/reshuffle transfers
    cpu_repack_tuple: float = 0.08e-6

    #: effective disk bandwidth for bucket-file I/O (2004 IDE disk with
    #: interleaved bucket reads/writes, filesystem overhead and competing
    #: network receive traffic — far below the drive's sequential rating)
    disk_bandwidth: float = 6e6
    #: fixed latency per disk batch operation (seek + rotational)
    disk_seek: float = 8e-3

    #: receive window per node in data chunks (TCP-like flow control): a
    #: node that stops consuming (memory full, slow disk) blocks its
    #: senders once this many chunks are buffered, which is what bounds
    #: the paper's "pending messages" at a full join process
    recv_window_chunks: int = 4

    def wire_time(self, nbytes: int) -> float:
        """Serialization time of ``nbytes`` on one NIC."""
        return nbytes / self.net_bandwidth

    def disk_time(self, nbytes: int) -> float:
        """Time for one batched sequential disk transfer of ``nbytes``."""
        return self.disk_seek + nbytes / self.disk_bandwidth

    def scaled(self, scale: float) -> CostModel:
        """Co-scale fixed per-operation costs with the workload scale.

        At scale ``s`` every byte quantity shrinks by ``s`` while operation
        *counts* (chunks, messages, disk batches) stay the same, so fixed
        per-op costs would be over-weighted by ``1/s`` relative to the
        paper's full-scale runs.  Scaling them by ``s`` keeps every
        cost ratio faithful and makes simulated time ~ ``s`` x full-scale
        time (so ``time / scale`` approximates paper-scale seconds).
        Per-byte and per-tuple costs are untouched — their totals already
        scale with the workload.
        """
        if scale == 1.0:
            return self
        return replace(
            self,
            net_latency=self.net_latency * scale,
            net_jitter=self.net_jitter * scale,
            net_per_message_cpu=self.net_per_message_cpu * scale,
            disk_seek=self.disk_seek * scale,
            control_msg_bytes=max(1, int(self.control_msg_bytes * scale)),
        )


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of the simulated cluster.

    ``hash_memory_bytes`` is the per-node memory budget for hash-table
    buckets (the paper's overflow threshold), *not* total RAM.  The default
    makes 16 nodes exactly sufficient for a 10M x 100B hash table at scale
    1.0, matching Figure 2's observation.  May be a single int (homogeneous)
    or overridden per node via ``node_memory_overrides``.
    """

    n_sources: int = 4
    n_potential_nodes: int = 24
    hash_memory_bytes: int = 64 * 1024 * 1024  # 64 MB: 10M*100B/16 rounded up
    node_memory_overrides: tuple[tuple[int, int], ...] = ()
    cost: CostModel = field(default_factory=CostModel)
    topology: Topology = Topology.SWITCHED

    def memory_of(self, node_index: int) -> int:
        """Hash-table memory budget of potential join node ``node_index``."""
        for idx, mem in self.node_memory_overrides:
            if idx == node_index:
                return mem
        return self.hash_memory_bytes

    def scaled(self, scale: float) -> ClusterSpec:
        """Scale memory budgets and fixed per-op costs (co-scaling rule)."""
        if scale == 1.0:
            return self
        return replace(
            self,
            hash_memory_bytes=max(1, int(self.hash_memory_bytes * scale)),
            node_memory_overrides=tuple(
                (i, max(1, int(m * scale))) for i, m in self.node_memory_overrides
            ),
            cost=self.cost.scaled(scale),
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """The synthetic join workload (paper §5 'Data Generation').

    Tuple layout: 64-bit index + 64-bit join attribute + payload; the paper
    reports total tuple sizes of 100/200/400 bytes, which we adopt as
    ``tuple_bytes``.  ``r_tuples``/``s_tuples`` are in *paper units*
    (pre-scale); real generated counts are ``int(x * scale)``.
    """

    r_tuples: int = 10 * MTUPLES
    s_tuples: int = 10 * MTUPLES
    tuple_bytes: int = 100
    distribution: Distribution = Distribution.UNIFORM
    #: Gaussian mean/sigma as fractions of the value range.  The paper sets
    #: mean and standard deviation *individually for each relation* (its
    #: experiments use the same values for R and S); the ``s_*`` overrides
    #: below give S its own parameters when set.
    gauss_mean: float = 0.5
    gauss_sigma: float = 0.001
    #: Zipf exponent (extension; ignored unless distribution == ZIPF)
    zipf_s: float = 1.1
    #: per-relation overrides for S (None -> same as R, the paper's setup)
    s_distribution: Distribution | None = None
    s_gauss_mean: float | None = None
    s_gauss_sigma: float | None = None
    #: tuples per communication chunk (paper: 10,000)
    chunk_tuples: int = 10_000
    scale: float = DEFAULT_SCALE
    seed: int = 20040607

    def __post_init__(self) -> None:
        if self.tuple_bytes < 16:
            raise ValueError("tuple_bytes must cover the two 64-bit fields")
        if not (0 < self.scale <= 1.0):
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")
        if self.chunk_tuples < 1:
            raise ValueError("chunk_tuples must be >= 1")

    def params_for(self, relation: str) -> tuple[Distribution, float, float]:
        """(distribution, gauss_mean, gauss_sigma) for one relation."""
        if relation == "S":
            return (
                self.s_distribution or self.distribution,
                self.s_gauss_mean if self.s_gauss_mean is not None
                else self.gauss_mean,
                self.s_gauss_sigma if self.s_gauss_sigma is not None
                else self.gauss_sigma,
            )
        return (self.distribution, self.gauss_mean, self.gauss_sigma)

    @property
    def real_r_tuples(self) -> int:
        return max(1, int(self.r_tuples * self.scale))

    @property
    def real_s_tuples(self) -> int:
        return max(1, int(self.s_tuples * self.scale))

    @property
    def real_chunk_tuples(self) -> int:
        return max(1, int(self.chunk_tuples * self.scale))

    @property
    def chunk_bytes(self) -> int:
        return self.real_chunk_tuples * self.tuple_bytes


@dataclass(frozen=True)
class ObsConfig:
    """Streaming-observability knobs (docs/OBSERVABILITY.md §Streaming).

    ``budget_bytes`` caps the run's observability state: span and causal
    logs switch to deterministic reservoir sampling, sketch/ring
    capacities shrink to fit, and whatever is shed is counted in the
    ``obs.spans_dropped`` / ``obs.edges_dropped`` metrics.  ``None``
    keeps today's full-history collectors (and an unchanged report).

    ``live_interval_s`` turns on the periodic snapshot emitter (one
    mergeable :class:`repro.obs.Snapshot` per interval of simulated
    time); ``shard`` names this run in merged snapshots.
    """

    budget_bytes: int | None = None
    live_interval_s: float | None = None
    shard: str = "shard0"
    #: simulated seconds per time-series ring bucket
    ring_resolution_s: float = 0.25

    def __post_init__(self) -> None:
        if self.budget_bytes is not None and self.budget_bytes < 4096:
            raise ValueError(
                f"obs budget must be >= 4096 bytes, got {self.budget_bytes}"
            )
        if self.live_interval_s is not None and self.live_interval_s <= 0:
            raise ValueError("live_interval_s must be > 0 (or None)")
        if self.ring_resolution_s <= 0:
            raise ValueError("ring_resolution_s must be > 0")
        if not self.shard or any(c in self.shard for c in ",|"):
            raise ValueError(
                f"shard name must be non-empty without ','/'|', "
                f"got {self.shard!r}"
            )


class PoolPolicy(enum.Enum):
    """Arbitration rule of the shared resource pool (``repro.workload``).

    FIFO — park recruit requests in arrival order and grant the oldest
    first whenever a node frees up.

    FAIR_SHARE — like FIFO, but a query already holding ``fair_share_cap``
    or more pool nodes beyond admission is denied immediately, keeping one
    skewed query from monopolizing the pool.

    MEMORY_DEFICIT — grant the parked request with the *smallest* reported
    memory deficit first (cheapest relief first): small deficits clear
    with one node while a badly skewed query would consume many.
    """

    FIFO = "fifo"
    FAIR_SHARE = "fair"
    MEMORY_DEFICIT = "deficit"


@dataclass(frozen=True)
class QueryMixEntry:
    """One query class in a workload mix (weighted random selection).

    Sizes are in *paper units* like :class:`WorkloadSpec`; the workload's
    shared ``scale`` applies to every query.
    """

    weight: float = 1.0
    algorithm: Algorithm = Algorithm.HYBRID
    r_tuples: int = 2 * MTUPLES
    s_tuples: int = 2 * MTUPLES
    tuple_bytes: int = 100
    distribution: Distribution = Distribution.UNIFORM
    gauss_mean: float = 0.5
    gauss_sigma: float = 0.001
    initial_nodes: int = 2

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"mix weight must be > 0, got {self.weight}")
        if self.r_tuples < 1 or self.s_tuples < 1:
            raise ValueError("mix entry relation sizes must be >= 1 tuple")
        if self.tuple_bytes < 16:
            raise ValueError("tuple_bytes must cover the two 64-bit fields")
        if self.initial_nodes < 1:
            raise ValueError("mix entry initial_nodes must be >= 1")


@dataclass(frozen=True)
class WorkloadConfig:
    """A multi-query workload over one shared cluster (``repro.workload``).

    Arrivals are either a seeded Poisson process (``arrival_rate_qps``
    exponential inter-arrival gaps) or an explicit trace
    (``arrival_times``, simulated seconds, one per query).  Query classes
    are drawn from ``mix`` by weight; every draw is deterministic under
    ``seed``.
    """

    n_queries: int = 4
    #: Poisson arrival rate in queries per simulated second (ignored when
    #: an explicit ``arrival_times`` trace is given)
    arrival_rate_qps: float = 0.5
    #: explicit arrival trace (simulated seconds, one entry per query);
    #: empty means Poisson arrivals from ``arrival_rate_qps``
    arrival_times: tuple[float, ...] = ()
    seed: int = 20040607
    mix: tuple[QueryMixEntry, ...] = (QueryMixEntry(),)
    policy: PoolPolicy = PoolPolicy.FIFO
    #: max pool nodes one query may hold beyond its admission grant
    #: (FAIR_SHARE policy only)
    fair_share_cap: int = 4
    #: how long a recruit request may stay parked before it is denied
    #: (simulated seconds); None derives ~200 drain-poll intervals.  Must
    #: be finite: a bounded wait is what guarantees denial degrades to the
    #: OOC spill path instead of deadlocking an admission behind it.
    grant_timeout_s: float | None = None
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    scale: float = DEFAULT_SCALE
    drain_poll_interval: float = 0.010
    trace: bool = False
    #: shared fault plan (link drops / slowdowns / dormant-node crashes);
    #: workload mode forbids ack drops and phase-triggered crashes (see
    #: docs/WORKLOADS.md "Faults")
    faults: FaultPlan | None = None
    #: attach the runtime deadlock detector to the shared simulator
    #: (threaded into every query's RunConfig; see RunConfig.lockdep)
    lockdep: bool = False
    #: streaming observability: byte budget, live snapshot emission
    obs: ObsConfig = field(default_factory=ObsConfig)

    def __post_init__(self) -> None:
        if self.n_queries < 1:
            raise ValueError("n_queries must be >= 1")
        if not self.mix:
            raise ValueError("workload mix must not be empty")
        if self.arrival_times:
            if len(self.arrival_times) != self.n_queries:
                raise ValueError(
                    f"arrival trace has {len(self.arrival_times)} entries "
                    f"for {self.n_queries} queries"
                )
            if any(t < 0 for t in self.arrival_times):
                raise ValueError("arrival times must be >= 0")
        elif self.arrival_rate_qps <= 0:
            raise ValueError(
                f"arrival_rate_qps must be > 0, got {self.arrival_rate_qps}"
            )
        if self.fair_share_cap < 1:
            raise ValueError(
                f"fair_share_cap must be >= 1 node, got {self.fair_share_cap}"
            )
        if self.grant_timeout_s is not None and not (
            0 < self.grant_timeout_s < float("inf")
        ):
            raise ValueError("grant_timeout_s must be finite and > 0")
        if not (0 < self.scale <= 1.0):
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")
        for entry in self.mix:
            if entry.initial_nodes > self.cluster.n_potential_nodes:
                raise ValueError(
                    f"mix entry needs {entry.initial_nodes} initial nodes "
                    f"but the pool only has {self.cluster.n_potential_nodes}"
                )
        if self.faults is not None:
            if self.faults.ack_drop_prob > 0:
                raise ValueError(
                    "workload mode forbids ack_drop_prob > 0: duplicate "
                    "suppression state is per-query, so a late duplicate "
                    "could leak into the next tenant of a reused node"
                )
            if any(c.at_phase is not None for c in self.faults.crashes):
                raise ValueError(
                    "workload mode forbids phase-triggered crashes: phases "
                    "are per-query and ambiguous across concurrent queries "
                    "(use at_time)"
                )

    @property
    def effective_cluster(self) -> ClusterSpec:
        """Cluster spec with memory budgets co-scaled with the workload."""
        return self.cluster.scaled(self.scale)

    @property
    def effective_grant_timeout(self) -> float:
        """Parked-recruit deadline in simulated seconds."""
        if self.grant_timeout_s is not None:
            return self.grant_timeout_s
        return 200.0 * self.drain_poll_interval * self.scale


@dataclass(frozen=True)
class FleetConfig:
    """An OS-process sharded fleet run (``repro.workload.fleet``).

    The trace in ``workload`` is cut into ``n_cohorts`` independent
    sub-workloads by a stable hash of the query id; ``n_shards`` worker
    processes execute the cohorts round-robin.  Results are a pure
    function of ``(workload, n_cohorts)`` — ``n_shards`` only chooses how
    much real parallelism executes them, so any shard count reproduces
    byte-identical merged results (the determinism contract of
    docs/FLEET.md).  Contention is *within* a cohort: each cohort gets
    its own simulated cluster and pool, which is the sharded-service
    model, not one global pool.
    """

    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    #: deterministic partition count — part of the model, not a
    #: parallelism knob; changing it redistributes contention
    n_cohorts: int = 8
    #: OS worker processes (parallelism only; never affects results)
    n_shards: int = 2
    #: wall-clock seconds a worker may stay silent before the parent
    #: declares it hung and surfaces a ShardFailure
    worker_timeout_s: float = 600.0

    def __post_init__(self) -> None:
        if self.n_cohorts < 1:
            raise ValueError(f"n_cohorts must be >= 1, got {self.n_cohorts}")
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.worker_timeout_s <= 0:
            raise ValueError(
                f"worker_timeout_s must be > 0, got {self.worker_timeout_s}"
            )


@dataclass(frozen=True)
class RunConfig:
    """Everything needed to execute one simulated join run."""

    algorithm: Algorithm = Algorithm.HYBRID
    initial_nodes: int = 4
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    split_policy: SplitPolicy = SplitPolicy.TARGETED_BISECT
    #: number of hash-table positions (order-preserving map resolution)
    hash_positions: int = 1 << 18
    #: mix join attributes before positioning (destroys value locality;
    #: ablation knob — the paper's behaviour corresponds to False)
    mix_hash: bool = False
    #: materialize join output pairs in join-node memory instead of
    #: streaming them onward (paper: "joining elements are either written
    #: to disk or forwarded to the client"; materialization is the
    #: multi-way-join scenario of §6's future work)
    materialize_output: bool = False
    #: logical bytes per materialized output pair (r + s tuple)
    output_pair_bytes: int = 200
    #: probe-phase expansion (paper footnote 1): when materialized output
    #: overflows a node's memory, recruit a fresh node as an output sink
    #: and forward further pairs there; without it, overflow spills to the
    #: local disk
    probe_expansion: bool = False
    #: data sources read the relations from their local disks instead of
    #: generating them on the fly (both modes appear in paper §4.1.2)
    sources_from_disk: bool = False
    #: scheduler poll interval for drain/termination detection (seconds)
    drain_poll_interval: float = 0.010
    trace: bool = True
    #: cap on retained trace records (None = unbounded); with a bound the
    #: tracer keeps the most recent records and counts the dropped ones
    trace_buffer: int | None = None
    #: seeded fault plan (crashes, message drops, link slowdowns); None
    #: runs the exact fault-free code path (see docs/FAULTS.md)
    faults: FaultPlan | None = None
    #: attach the runtime deadlock detector (repro.sim.lockdep) to the
    #: run's simulator.  Pure observer: it never schedules events, so the
    #: simulated timeline is bit-identical with it on or off.  The test
    #: suite turns it on by default (REPRO_LOCKDEP=0 opts out).
    lockdep: bool = False
    #: observability byte budget for this run's span/causal logs (None =
    #: unbounded full-history logs; see ObsConfig.budget_bytes)
    obs_budget_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.initial_nodes < 1:
            raise ValueError("initial_nodes must be >= 1")
        if self.obs_budget_bytes is not None and self.obs_budget_bytes < 4096:
            raise ValueError(
                f"obs budget must be >= 4096 bytes, got {self.obs_budget_bytes}"
            )
        if self.trace_buffer is not None and self.trace_buffer < 1:
            raise ValueError("trace_buffer must be >= 1 (or None)")
        if self.initial_nodes > self.cluster.n_potential_nodes:
            raise ValueError(
                f"initial_nodes={self.initial_nodes} exceeds pool size "
                f"{self.cluster.n_potential_nodes}"
            )
        if self.hash_positions < self.cluster.n_potential_nodes:
            raise ValueError("hash_positions must cover at least one per node")

    @property
    def effective_cluster(self) -> ClusterSpec:
        """Cluster spec with memory budgets co-scaled with the workload."""
        return self.cluster.scaled(self.workload.scale)

    @property
    def effective_drain_poll(self) -> float:
        """Drain poll interval, co-scaled like the other fixed time costs."""
        return self.drain_poll_interval * self.workload.scale
