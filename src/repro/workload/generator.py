"""Seeded workload generation: arrival schedule + per-query configs.

Arrivals are a Poisson process (seeded exponential inter-arrival gaps) or
an explicit trace from :class:`~repro.config.WorkloadConfig.arrival_times`.
Query classes are drawn from the weighted mix.  Every draw comes from its
own ``numpy`` ``SeedSequence`` spawn key, so the three random decisions —
arrival gaps, mix choice, per-query data seeds — are independent streams
that are each fully determined by ``WorkloadConfig.seed``: the same seed
always produces the identical workload, which is what makes concurrent
chaos runs bisectable.

Arrival times are *simulated seconds* and are deliberately not multiplied
by the workload ``scale``: the operator dials the contention level
directly against scaled query durations (see docs/WORKLOADS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import QueryMixEntry, RunConfig, WorkloadConfig, WorkloadSpec

__all__ = ["QuerySpec", "arrival_schedule", "generate_workload",
           "query_run_config"]

#: SeedSequence spawn keys — one independent stream per random decision
_ARRIVAL_KEY = 101
_MIX_KEY = 102
_QUERY_SEED_KEY = 103


@dataclass(frozen=True)
class QuerySpec:
    """One generated query: who it is, when it arrives, what data it joins."""

    query_id: int
    arrival_s: float
    entry: QueryMixEntry
    #: per-query data seed (drives relation generation and the oracle)
    seed: int


def arrival_schedule(cfg: WorkloadConfig) -> tuple[float, ...]:
    """Arrival times in simulated seconds, one per query.

    With an explicit trace, the trace verbatim; otherwise cumulative sums
    of seeded exponential gaps at ``arrival_rate_qps`` (Poisson process).
    """
    if cfg.arrival_times:
        return tuple(float(t) for t in cfg.arrival_times)
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=cfg.seed, spawn_key=(_ARRIVAL_KEY,))
    )
    gaps = rng.exponential(1.0 / cfg.arrival_rate_qps, size=cfg.n_queries)
    return tuple(float(t) for t in np.cumsum(gaps))


def generate_workload(cfg: WorkloadConfig) -> list[QuerySpec]:
    """The full deterministic workload: arrivals + mix draws + data seeds."""
    arrivals = arrival_schedule(cfg)
    mix_rng = np.random.default_rng(
        np.random.SeedSequence(entropy=cfg.seed, spawn_key=(_MIX_KEY,))
    )
    weights = np.array([entry.weight for entry in cfg.mix], dtype=np.float64)
    choices = mix_rng.choice(
        len(cfg.mix), size=cfg.n_queries, p=weights / weights.sum()
    )
    specs = []
    for q in range(cfg.n_queries):
        seed = int(
            np.random.SeedSequence(
                entropy=cfg.seed, spawn_key=(_QUERY_SEED_KEY, q)
            ).generate_state(1)[0]
        )
        specs.append(
            QuerySpec(
                query_id=q,
                arrival_s=arrivals[q],
                entry=cfg.mix[int(choices[q])],
                seed=seed,
            )
        )
    return specs


def query_run_config(cfg: WorkloadConfig, spec: QuerySpec) -> RunConfig:
    """The single-query :class:`RunConfig` equivalent of one workload query.

    Shares the workload's cluster spec, scale, poll interval and fault
    plan; data shape and algorithm come from the drawn mix entry, the data
    seed from the generator — so each query joins *different* relations
    and is validated against its own oracle.
    """
    entry = spec.entry
    return RunConfig(
        algorithm=entry.algorithm,
        initial_nodes=entry.initial_nodes,
        workload=WorkloadSpec(
            r_tuples=entry.r_tuples,
            s_tuples=entry.s_tuples,
            tuple_bytes=entry.tuple_bytes,
            distribution=entry.distribution,
            gauss_mean=entry.gauss_mean,
            gauss_sigma=entry.gauss_sigma,
            scale=cfg.scale,
            seed=spec.seed,
        ),
        cluster=cfg.cluster,
        drain_poll_interval=cfg.drain_poll_interval,
        trace=cfg.trace,
        faults=cfg.faults,
        lockdep=cfg.lockdep,
    )
