"""Seeded workload generation: arrival schedule + per-query configs.

Arrivals are a Poisson process (seeded exponential inter-arrival gaps) or
an explicit trace from :class:`~repro.config.WorkloadConfig.arrival_times`.
Query classes are drawn from the weighted mix.  Every draw comes from its
own ``numpy`` ``SeedSequence`` spawn key, so the three random decisions —
arrival gaps, mix choice, per-query data seeds — are independent streams
that are each fully determined by ``WorkloadConfig.seed``: the same seed
always produces the identical workload, which is what makes concurrent
chaos runs bisectable.

Arrival times are *simulated seconds* and are deliberately not multiplied
by the workload ``scale``: the operator dials the contention level
directly against scaled query durations (see docs/WORKLOADS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import QueryMixEntry, RunConfig, WorkloadConfig, WorkloadSpec

__all__ = ["QuerySpec", "arrival_schedule", "generate_workload",
           "query_run_config", "diurnal_arrivals", "bursty_arrivals",
           "profile_arrivals", "ARRIVAL_PROFILES"]

#: SeedSequence spawn keys — one independent stream per random decision
_ARRIVAL_KEY = 101
_MIX_KEY = 102
_QUERY_SEED_KEY = 103
_DIURNAL_KEY = 104
_BURSTY_KEY = 105


@dataclass(frozen=True)
class QuerySpec:
    """One generated query: who it is, when it arrives, what data it joins."""

    query_id: int
    arrival_s: float
    entry: QueryMixEntry
    #: per-query data seed (drives relation generation and the oracle)
    seed: int


def arrival_schedule(cfg: WorkloadConfig) -> tuple[float, ...]:
    """Arrival times in simulated seconds, one per query.

    With an explicit trace, the trace verbatim; otherwise cumulative sums
    of seeded exponential gaps at ``arrival_rate_qps`` (Poisson process).
    """
    if cfg.arrival_times:
        return tuple(float(t) for t in cfg.arrival_times)
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=cfg.seed, spawn_key=(_ARRIVAL_KEY,))
    )
    gaps = rng.exponential(1.0 / cfg.arrival_rate_qps, size=cfg.n_queries)
    return tuple(float(t) for t in np.cumsum(gaps))


def diurnal_arrivals(
    n_queries: int,
    seed: int,
    *,
    period_s: float = 10.0,
    base_qps: float = 0.5,
    peak_qps: float = 4.0,
) -> tuple[float, ...]:
    """Sinusoidal day/night arrival trace (inhomogeneous Poisson process).

    The instantaneous rate swings between ``base_qps`` (trough) and
    ``peak_qps`` (peak) once per ``period_s`` simulated seconds, starting
    at the trough.  Sampled by Lewis-Shedler thinning of a homogeneous
    ``peak_qps`` process, so the trace is exactly Poisson at every
    instant and fully determined by ``seed`` — the autoscaling study's
    "traffic follows the sun" input (docs/WORKLOADS.md).
    """
    if n_queries < 1 or period_s <= 0 or not 0 < base_qps <= peak_qps:
        raise ValueError(
            f"need n_queries >= 1, period_s > 0, 0 < base_qps <= peak_qps; "
            f"got {n_queries}, {period_s}, {base_qps}, {peak_qps}"
        )
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(_DIURNAL_KEY,))
    )
    arrivals: list[float] = []
    t = 0.0
    while len(arrivals) < n_queries:
        t += float(rng.exponential(1.0 / peak_qps))
        phase = (1.0 - np.cos(2.0 * np.pi * t / period_s)) / 2.0
        rate = base_qps + (peak_qps - base_qps) * phase
        if rng.random() < rate / peak_qps:
            arrivals.append(t)
    return tuple(arrivals)


def bursty_arrivals(
    n_queries: int,
    seed: int,
    *,
    burst_size: int = 8,
    burst_rate_qps: float = 20.0,
    idle_gap_s: float = 2.0,
) -> tuple[float, ...]:
    """Burst/idle arrival trace (on-off source).

    Queries arrive in bursts of ``burst_size`` at ``burst_rate_qps``
    (seeded exponential gaps), separated by exponential idle periods with
    mean ``idle_gap_s`` — the thundering-herd input of the autoscaling
    study: admission queues drain between bursts and saturate inside
    them.  Fully determined by ``seed``.
    """
    if n_queries < 1 or burst_size < 1 or burst_rate_qps <= 0 or idle_gap_s <= 0:
        raise ValueError(
            f"need n_queries/burst_size >= 1 and positive rates; got "
            f"{n_queries}, {burst_size}, {burst_rate_qps}, {idle_gap_s}"
        )
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(_BURSTY_KEY,))
    )
    arrivals: list[float] = []
    t = 0.0
    while len(arrivals) < n_queries:
        t += float(rng.exponential(idle_gap_s))
        for _ in range(min(burst_size, n_queries - len(arrivals))):
            t += float(rng.exponential(1.0 / burst_rate_qps))
            arrivals.append(t)
    return tuple(arrivals)


#: named arrival profiles the CLI/benchmarks select by string
ARRIVAL_PROFILES = ("poisson", "diurnal", "bursty")


def profile_arrivals(
    profile: str, cfg: WorkloadConfig
) -> tuple[float, ...]:
    """The arrival trace of one named profile for ``cfg``'s query count.

    ``poisson`` defers to :func:`arrival_schedule` (the config's own
    trace or rate); ``diurnal``/``bursty`` scale their default rates off
    ``cfg.arrival_rate_qps`` so one ``--arrival-rate`` knob moves every
    profile coherently.
    """
    if profile == "poisson":
        return arrival_schedule(cfg)
    if profile == "diurnal":
        return diurnal_arrivals(
            cfg.n_queries, cfg.seed,
            base_qps=cfg.arrival_rate_qps,
            peak_qps=8.0 * cfg.arrival_rate_qps,
        )
    if profile == "bursty":
        return bursty_arrivals(
            cfg.n_queries, cfg.seed,
            burst_rate_qps=40.0 * cfg.arrival_rate_qps,
            idle_gap_s=2.0 / cfg.arrival_rate_qps,
        )
    raise ValueError(
        f"unknown arrival profile {profile!r} (one of {ARRIVAL_PROFILES})"
    )


def generate_workload(cfg: WorkloadConfig) -> list[QuerySpec]:
    """The full deterministic workload: arrivals + mix draws + data seeds."""
    arrivals = arrival_schedule(cfg)
    mix_rng = np.random.default_rng(
        np.random.SeedSequence(entropy=cfg.seed, spawn_key=(_MIX_KEY,))
    )
    weights = np.array([entry.weight for entry in cfg.mix], dtype=np.float64)
    choices = mix_rng.choice(
        len(cfg.mix), size=cfg.n_queries, p=weights / weights.sum()
    )
    specs = []
    for q in range(cfg.n_queries):
        seed = int(
            np.random.SeedSequence(
                entropy=cfg.seed, spawn_key=(_QUERY_SEED_KEY, q)
            ).generate_state(1)[0]
        )
        specs.append(
            QuerySpec(
                query_id=q,
                arrival_s=arrivals[q],
                entry=cfg.mix[int(choices[q])],
                seed=seed,
            )
        )
    return specs


def query_run_config(cfg: WorkloadConfig, spec: QuerySpec) -> RunConfig:
    """The single-query :class:`RunConfig` equivalent of one workload query.

    Shares the workload's cluster spec, scale, poll interval and fault
    plan; data shape and algorithm come from the drawn mix entry, the data
    seed from the generator — so each query joins *different* relations
    and is validated against its own oracle.
    """
    entry = spec.entry
    return RunConfig(
        algorithm=entry.algorithm,
        initial_nodes=entry.initial_nodes,
        workload=WorkloadSpec(
            r_tuples=entry.r_tuples,
            s_tuples=entry.s_tuples,
            tuple_bytes=entry.tuple_bytes,
            distribution=entry.distribution,
            gauss_mean=entry.gauss_mean,
            gauss_sigma=entry.gauss_sigma,
            scale=cfg.scale,
            seed=spec.seed,
        ),
        cluster=cfg.cluster,
        drain_poll_interval=cfg.drain_poll_interval,
        trace=cfg.trace,
        faults=cfg.faults,
        lockdep=cfg.lockdep,
    )
