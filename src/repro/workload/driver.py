"""Multi-tenant workload driver: N concurrent joins, one shared cluster.

``run_workload`` is the subsystem's entry point.  It builds one simulator
holding one :class:`~repro.cluster.WorkloadCluster` (shared interconnect
and join-node pool, per-query scheduler/source nodes), spawns the
:class:`~repro.core.pool.ResourcePoolProcess` that owns every join node,
and one *query runner* process per generated query.  A runner sleeps
until its arrival time, asks the pool for the query's initial nodes
(admission), then runs the completely unmodified single-query pipeline —
scheduler, sources, lazily-adopted join processes — against its private
view of the shared cluster.  Every query is still oracle-validated.

Fault handling mirrors the single-query driver where it can and narrows
where it must: link faults (drops, slowdowns) ride the shared injector
unchanged, while crash specs are executed against the *pool* (a dormant
shared node disappears from the free list) because in workload mode a
dormant node has no process to interrupt — join processes exist only
while a query holds the node.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from dataclasses import dataclass, field
from typing import Any

from ..cluster import WorkloadCluster
from ..config import Algorithm, WorkloadConfig
from ..core.context import RunContext
from ..core.driver import assemble_result, spawn_query_pipeline
from ..core.joinnode import JoinProcess
from ..core.messages import RecruitGrant, RecruitRequest, Shutdown
from ..core.pool import PoolClient, PoolStats, ResourcePoolProcess
from ..core.scheduler import SchedulerOutcome
from ..faults import CrashSpec, FaultInjector
from ..obs import (
    SCHEDULER_TRACK,
    MetricsRegistry,
    ObsBudget,
    PhaseTimeline,
    Snapshot,
    SpanLog,
    StreamingCollector,
    harvest_network,
    harvest_nodes,
    harvest_simulator,
)
from ..sim import AllOf, Interrupt, Process, Simulator, Tracer
from .generator import QuerySpec, generate_workload, query_run_config
from .results import QueryStats, WorkloadResult

__all__ = ["run_workload"]


@dataclass
class _QueryRecord:
    """Mutable per-query facts the runner deposits for post-run assembly."""

    arrival_s: float = 0.0
    admitted_s: float = 0.0
    finished_s: float = 0.0
    ctx: RunContext | None = None
    outcome: SchedulerOutcome | None = None
    granted_initial: list[int] = field(default_factory=list)


def _query_runner(
    sim: Simulator,
    wc: WorkloadCluster,
    pool: ResourcePoolProcess,
    spec: QuerySpec,
    cfg: WorkloadConfig,
    metrics: MetricsRegistry,
    collector: StreamingCollector,
    tracer: Tracer,
    injector: FaultInjector | None,
    record: _QueryRecord,
) -> Generator[Any, Any, None]:
    """One query's lifecycle: arrive -> admit -> pipeline -> record."""
    qid = spec.query_id
    if spec.arrival_s > 0:
        yield sim.timeout(spec.arrival_s)
    record.arrival_s = sim.now
    view = wc.views[qid]
    rcfg = query_run_config(cfg, spec)
    ctx = RunContext(
        sim, rcfg, cluster=view, metrics=metrics, spans=collector.spans,
        tracer=tracer, faults=injector, query=qid,
    )

    def adopt(j: int) -> None:
        # A granted node may have served an earlier query: clear its
        # hardware state, then bind this query's join process to it.
        wc.reset_join_node(j)
        jp = JoinProcess(
            ctx, j, auto_spill=rcfg.algorithm is Algorithm.OUT_OF_CORE
        )
        sim.spawn(jp.run(), name=f"join{j}-q{qid}")

    ctx.pool = PoolClient(node=pool.node, query_id=qid, adopt=adopt)
    ctx.trace("query_arrival", f"query{qid}",
              algorithm=rcfg.algorithm.value, want=rcfg.initial_nodes)

    # Admission: park at the pool until the initial nodes are free.  The
    # grant is the only message that can reach this scheduler node before
    # the pipeline exists.
    yield from ctx.send(
        view.scheduler_node, pool.node,
        RecruitRequest(query=qid, want=rcfg.initial_nodes, admission=True),
    )
    msg = yield from view.scheduler_node.mailbox.recv()
    if not (isinstance(msg, RecruitGrant) and msg.query == qid):
        raise RuntimeError(
            f"query {qid}: expected its admission RecruitGrant, got {msg!r}"
        )
    record.admitted_s = sim.now
    record.granted_initial = list(msg.nodes)
    ctx.initial_join_nodes = list(msg.nodes)
    for j in msg.nodes:
        adopt(j)
    ctx.trace("query_admitted", f"query{qid}",
              nodes=list(msg.nodes), waited=sim.now - record.arrival_s)

    scheduler = spawn_query_pipeline(ctx, spawn_joins=False)
    outcome = yield scheduler.proc
    record.finished_s = sim.now
    record.ctx = ctx
    record.outcome = outcome
    # Feed the streaming collector at finish time (not post-run) so a
    # --live snapshot taken mid-workload already carries the latency
    # sketch and per-query progress of everything finished so far.
    collector.observe("workload.query_latency_s",
                      sim.now - record.arrival_s, t=sim.now)
    collector.observe("workload.queue_delay_s",
                      record.admitted_s - record.arrival_s, t=sim.now)
    ctx.trace("query_finished", f"query{qid}",
              latency=sim.now - record.arrival_s)


def _crash_timer(
    sim: Simulator, pool: ResourcePoolProcess, spec: CrashSpec
) -> Generator[Any, Any, None]:
    """Fail-stop a dormant pool node at its scheduled time (workload crash
    model: the node vanishes from the free list; a held node is a traced
    no-op — see ResourcePoolProcess.crash_node)."""
    if spec.at_time is not None and spec.at_time > 0:
        yield sim.timeout(spec.at_time)
    pool.crash_node(spec.node)


def _live_emitter(
    sim: Simulator,
    collector: StreamingCollector,
    metrics: MetricsRegistry,
    interval: float,
    sink: Callable[[Snapshot], None] | None,
) -> Generator[Any, Any, None]:
    """Emit a mergeable snapshot every ``interval`` simulated seconds.

    Runs until the supervisor interrupts it (after the last query
    finishes) — a perpetual timeout loop would otherwise keep the
    simulation alive forever.
    """
    try:
        while True:
            yield sim.timeout(interval)
            snap = collector.snapshot(registry=metrics)
            if sink is not None:
                sink(snap)
    except Interrupt:
        return


def _supervisor(
    sim: Simulator, wc: WorkloadCluster, runners: list[Any],
    emitter: Process | None = None,
) -> Generator[Any, Any, None]:
    """Shut the pool down once every query runner has finished."""
    yield AllOf(sim, runners)
    if emitter is not None and emitter.is_alive:
        # The emitter's pending timeout is abandoned; it still drains from
        # the queue, so a --live run's final clock reading may trail the
        # last query by up to one interval (latencies are unaffected).
        emitter.interrupt("workload-complete")
    yield from wc.network.send(wc.pool_node, wc.pool_node, Shutdown())


def run_workload(
    cfg: WorkloadConfig,
    validate: bool = True,
    on_snapshot: Callable[[Snapshot], None] | None = None,
    specs: list[QuerySpec] | None = None,
) -> WorkloadResult:
    """Execute a multi-query workload; every query oracle-validated.

    ``validate`` is per query and works exactly like ``run_join``'s: the
    distributed match count must equal the sequential oracle on that
    query's relations.  Shared-system invariants (byte conservation on the
    one network) are always asserted.

    ``on_snapshot`` receives each periodic :class:`~repro.obs.Snapshot`
    when ``cfg.obs.live_interval_s`` is set (the ``--live`` path); the
    final snapshot is returned on ``WorkloadResult.snapshot`` either way.

    ``specs`` overrides the generated workload with explicit queries (the
    fleet layer passes a cohort's renumbered specs so per-query seeds and
    arrivals stay pinned to their *global* trace positions — see
    docs/FLEET.md).  Ids must be exactly ``0..cfg.n_queries-1`` because
    they index the cluster's per-query views.
    """
    if specs is None:
        specs = generate_workload(cfg)
    else:
        specs = list(specs)
        if [s.query_id for s in specs] != list(range(cfg.n_queries)):
            raise ValueError(
                f"explicit specs must carry ids 0..{cfg.n_queries - 1} in "
                f"order, got {[s.query_id for s in specs]}"
            )
    sim = Simulator()
    metrics = MetricsRegistry(clock=lambda: sim.now)
    obs_budget = (
        ObsBudget.from_bytes(cfg.obs.budget_bytes)
        if cfg.obs.budget_bytes is not None else None
    )
    collector = StreamingCollector(
        clock=lambda: sim.now,
        budget=obs_budget,
        shard=cfg.obs.shard,
        ring_resolution_s=cfg.obs.ring_resolution_s,
    )
    spans: SpanLog = collector.spans
    tracer = Tracer(enabled=cfg.trace, maxlen=None)

    def trace(category: str, actor: str, **detail: Any) -> None:
        tracer.emit(sim.now, category, actor, **detail)

    cluster_spec = cfg.effective_cluster
    injector: FaultInjector | None = None
    if cfg.faults is not None and cfg.faults.active:
        injector = FaultInjector(cfg.faults, sim, metrics, trace=trace)
        injector.resolve_timing(cluster_spec.cost)

    wc = WorkloadCluster.build(
        sim, cluster_spec, cfg.n_queries, metrics=metrics, faults=injector
    )
    pool = ResourcePoolProcess(
        sim,
        wc.network,
        wc.pool_node,
        free_nodes=list(range(cluster_spec.n_potential_nodes)),
        sched_nodes={
            q: wc.views[q].scheduler_node for q in range(cfg.n_queries)
        },
        policy=cfg.policy,
        fair_share_cap=cfg.fair_share_cap,
        grant_timeout_s=cfg.effective_grant_timeout,
        poll_interval=cfg.drain_poll_interval * cfg.scale,
        memory_of=cluster_spec.memory_of,
        metrics=metrics,
        trace=trace,
    )
    pool_proc = sim.spawn(pool.run(), name="pool")
    if injector is not None:
        for crash in injector.plan.crashes:
            sim.spawn(
                _crash_timer(sim, pool, crash),
                name=f"fault:pool-crash@{crash.at_time}",
            )

    records = [_QueryRecord() for _ in specs]
    runners = [
        sim.spawn(
            _query_runner(sim, wc, pool, spec, cfg, metrics, collector,
                          tracer, injector, record),
            name=f"query{spec.query_id}",
        )
        for spec, record in zip(specs, records)
    ]
    emitter: Process | None = None
    if cfg.obs.live_interval_s is not None:
        emitter = sim.spawn(
            _live_emitter(sim, collector, metrics,
                          cfg.obs.live_interval_s, on_snapshot),
            name="obs-live-emitter",
        )
    sim.spawn(_supervisor(sim, wc, runners, emitter),
              name="workload-supervisor")

    sim.run()

    wc.network.assert_conserved()
    pool_stats: PoolStats = pool_proc.value

    harvest_simulator(metrics, sim)
    harvest_network(metrics, wc.network)
    harvest_nodes(metrics, wc.all_nodes)

    results: list[Any] = []
    query_stats: list[QueryStats] = []
    for spec, record in zip(specs, records):
        assert record.ctx is not None and record.outcome is not None, (
            f"query {spec.query_id} never completed"
        )
        res = assemble_result(
            record.ctx, record.outcome, validate,
            span_track=f"{SCHEDULER_TRACK}:q{spec.query_id}",
        )
        results.append(res)
        stats = QueryStats(
            query=spec.query_id,
            algorithm=spec.entry.algorithm.value,
            arrival_s=record.arrival_s,
            admitted_s=record.admitted_s,
            finished_s=record.finished_s,
            initial_nodes=spec.entry.initial_nodes,
            nodes_used=res.nodes_used,
            recruit_denials=pool_stats.denials_by_query.get(
                spec.query_id, 0
            ),
            spilled_r_tuples=res.spilled_r_tuples,
            spilled_s_tuples=res.spilled_s_tuples,
            matches=res.matches,
            reference_matches=res.reference_matches,
        )
        query_stats.append(stats)
        metrics.set_gauge("workload.query_latency_s", stats.latency_s,
                          query=spec.query_id)
        metrics.set_gauge("workload.queue_delay_s", stats.queue_delay_s,
                          query=spec.query_id)
        metrics.inc("workload.queries", 1,
                    algorithm=spec.entry.algorithm.value)
    makespan = max((q.finished_s for q in query_stats), default=0.0)
    metrics.set_gauge("workload.makespan_s", makespan)
    metrics.close()

    in_use_hist = metrics.find("pool.nodes_in_use")
    pool_utilization = (
        in_use_hist.time_weighted_mean() / pool.total_nodes
        if in_use_hist is not None and pool.total_nodes
        else 0.0
    )

    # Budgeted runs publish their shed counts into the registry (so the
    # report shows them); unbudgeted runs publish nothing — the registry
    # snapshot is byte-for-byte what it was before streaming existed.
    if obs_budget is not None:
        metrics.inc("obs.spans_dropped", collector.spans_dropped)
        metrics.inc("obs.edges_dropped", collector.edges_dropped)
    if cfg.obs.live_interval_s is not None:
        metrics.inc("obs.snapshots_emitted", collector.snapshots_emitted)
    final_snapshot = collector.snapshot(registry=metrics)

    return WorkloadResult(
        config=cfg,
        queries=query_stats,
        results=results,
        pool=pool_stats.to_dict(),
        makespan_s=makespan,
        pool_utilization=pool_utilization,
        metrics=metrics.snapshot(),
        timeline=PhaseTimeline(spans.spans),
        tracer=tracer,
        snapshot=final_snapshot,
        spans_dropped=collector.spans_dropped,
        edges_dropped=collector.edges_dropped,
    )
