"""Multi-tenant workload engine (``repro.workload``).

Runs many concurrent join queries inside one simulator against one shared
node pool — the paper's "additional resources become available" premise
made literal: resources are available to a query exactly when no other
query holds them.  See docs/WORKLOADS.md for the model, the arbitration
policies and annotated CLI output.

Layout:

* :mod:`.generator` — seeded arrivals (Poisson or trace) and query-mix
  draws; deterministic under a fixed seed.
* :mod:`.driver` — ``run_workload()``: admission via the shared
  :class:`~repro.core.pool.ResourcePoolProcess`, one unmodified
  single-query pipeline per query, per-query oracle validation.
* :mod:`.results` — :class:`WorkloadResult` with latency/queueing-delay
  percentiles, pool utilization and denial counts.
"""

from .driver import run_workload
from .generator import (
    QuerySpec,
    arrival_schedule,
    generate_workload,
    query_run_config,
)
from .results import QueryStats, WorkloadResult

__all__ = [
    "QuerySpec",
    "QueryStats",
    "WorkloadResult",
    "arrival_schedule",
    "generate_workload",
    "query_run_config",
    "run_workload",
]
