"""Multi-tenant workload engine (``repro.workload``).

Runs many concurrent join queries inside one simulator against one shared
node pool — the paper's "additional resources become available" premise
made literal: resources are available to a query exactly when no other
query holds them.  See docs/WORKLOADS.md for the model, the arbitration
policies and annotated CLI output.

Layout:

* :mod:`.generator` — seeded arrivals (Poisson or trace) and query-mix
  draws; deterministic under a fixed seed.
* :mod:`.driver` — ``run_workload()``: admission via the shared
  :class:`~repro.core.pool.ResourcePoolProcess`, one unmodified
  single-query pipeline per query, per-query oracle validation.
* :mod:`.results` — :class:`WorkloadResult` with latency/queueing-delay
  percentiles, pool utilization and denial counts.
* :mod:`.fleet` — OS-process sharded fleet execution: deterministic
  cohort partitioning, spawn-context workers streaming mergeable
  snapshots over pipes, :class:`FleetResult` merge layer with
  structured :class:`ShardFailure` crash handling (docs/FLEET.md).
"""

from .driver import run_workload
from .fleet import (
    CohortResult,
    FleetResult,
    FleetRunner,
    ShardFailure,
    cohort_of,
    partition_cohorts,
    run_fleet,
)
from .generator import (
    ARRIVAL_PROFILES,
    QuerySpec,
    arrival_schedule,
    bursty_arrivals,
    diurnal_arrivals,
    generate_workload,
    profile_arrivals,
    query_run_config,
)
from .results import QueryStats, WorkloadResult

__all__ = [
    "ARRIVAL_PROFILES",
    "CohortResult",
    "FleetResult",
    "FleetRunner",
    "QuerySpec",
    "QueryStats",
    "ShardFailure",
    "WorkloadResult",
    "arrival_schedule",
    "bursty_arrivals",
    "cohort_of",
    "diurnal_arrivals",
    "generate_workload",
    "partition_cohorts",
    "profile_arrivals",
    "query_run_config",
    "run_fleet",
    "run_workload",
]
