"""Workload-level results: per-query stats, percentiles, pool accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..config import WorkloadConfig
from ..core.results import JoinRunResult
from ..obs.streaming import QuantileSketch, Snapshot

__all__ = ["QueryStats", "WorkloadResult"]


@dataclass(frozen=True)
class QueryStats:
    """Lifecycle timing and resource outcome of one workload query.

    All times are absolute simulated seconds; the latency decomposition is
    ``latency = queue_delay + run``: arrival -> admission grant (queueing
    for initial nodes) -> finished (last FinalReport collected).
    """

    query: int
    algorithm: str
    arrival_s: float
    admitted_s: float
    finished_s: float
    initial_nodes: int
    nodes_used: int
    #: pool denials this query's expansion recruits received
    recruit_denials: int
    spilled_r_tuples: int
    spilled_s_tuples: int
    matches: int
    reference_matches: int | None

    @property
    def latency_s(self) -> float:
        return self.finished_s - self.arrival_s

    @property
    def queue_delay_s(self) -> float:
        return self.admitted_s - self.arrival_s

    @property
    def run_s(self) -> float:
        return self.finished_s - self.admitted_s

    @property
    def degraded_to_spill(self) -> bool:
        """The query hit the OOC spill path (denied or exhausted recruits)."""
        return self.spilled_r_tuples > 0 or self.spilled_s_tuples > 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "query": self.query,
            "algorithm": self.algorithm,
            "arrival_s": self.arrival_s,
            "admitted_s": self.admitted_s,
            "finished_s": self.finished_s,
            "latency_s": self.latency_s,
            "queue_delay_s": self.queue_delay_s,
            "run_s": self.run_s,
            "initial_nodes": self.initial_nodes,
            "nodes_used": self.nodes_used,
            "recruit_denials": self.recruit_denials,
            "spilled_r_tuples": self.spilled_r_tuples,
            "spilled_s_tuples": self.spilled_s_tuples,
            "degraded_to_spill": self.degraded_to_spill,
            "matches": self.matches,
            "reference_matches": self.reference_matches,
        }


def _percentiles(values: list[float], qs: tuple[int, ...]) -> dict[str, float]:
    """Sketch-backed percentiles: ``{"p50": ...}`` within the sketch's
    documented 1% relative-error bound of the exact order statistics.

    An empty input yields an empty dict — never ``NaN`` placeholders
    (``np.percentile`` on a zero-length array raises; zero-filled keys
    masquerade as real measurements).
    """
    if not values:
        return {}
    sketch = QuantileSketch()
    for v in values:
        sketch.add(v)
    return sketch.percentiles(qs)


@dataclass
class WorkloadResult:
    """Complete outcome of one multi-query workload run."""

    config: WorkloadConfig
    queries: list[QueryStats]
    #: per-query JoinRunResult (same index order as ``queries``)
    results: list[JoinRunResult]
    #: shared-pool accounting (:meth:`repro.core.pool.PoolStats.to_dict`)
    pool: dict[str, Any]
    #: simulated time from t=0 to the last query finishing
    makespan_s: float
    #: time-weighted mean fraction of pool nodes held by some query
    pool_utilization: float
    metrics: list[dict] = field(default_factory=list)
    timeline: Any | None = None
    tracer: Any | None = None
    #: final mergeable observability snapshot (sketches, rings, sampled
    #: spans); the unit the future fleet layer ships between shards
    snapshot: Snapshot | None = None
    #: records shed by the bounded collectors (zero unless a --obs-budget
    #: was armed; nothing is ever silently truncated)
    spans_dropped: int = 0
    edges_dropped: int = 0

    # ------------------------------------------------------------------
    @property
    def n_queries(self) -> int:
        return len(self.queries)

    @property
    def all_valid(self) -> bool:
        return all(r.is_valid for r in self.results)

    @property
    def total_denials(self) -> int:
        return int(self.pool.get("denials", 0))

    @property
    def degraded_queries(self) -> list[int]:
        return [q.query for q in self.queries if q.degraded_to_spill]

    def latency_percentiles(
        self, qs: tuple[int, ...] = (50, 90, 99)
    ) -> dict[str, float]:
        return _percentiles([q.latency_s for q in self.queries], qs)

    def queue_delay_percentiles(
        self, qs: tuple[int, ...] = (50, 90, 99)
    ) -> dict[str, float]:
        return _percentiles([q.queue_delay_s for q in self.queries], qs)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-safe digest (per-query stats, percentiles, pool counters).

        The ``obs`` section appears only when a byte budget was armed, so
        unbudgeted reports are structurally unchanged.
        """
        out = {
            "n_queries": self.n_queries,
            "policy": self.config.policy.value,
            "makespan_s": self.makespan_s,
            "pool_utilization": self.pool_utilization,
            "latency": self.latency_percentiles(),
            "queue_delay": self.queue_delay_percentiles(),
            "all_valid": self.all_valid,
            "degraded_queries": self.degraded_queries,
            "pool": dict(self.pool),
            "queries": [q.to_dict() for q in self.queries],
        }
        if self.config.obs.budget_bytes is not None:
            out["obs"] = {
                "budget_bytes": self.config.obs.budget_bytes,
                "spans_dropped": self.spans_dropped,
                "edges_dropped": self.edges_dropped,
            }
        return out

    def summary(self) -> str:
        """Multi-line human-readable digest."""
        lat = self.latency_percentiles()
        qd = self.queue_delay_percentiles()
        lat = {k: lat.get(k, 0.0) for k in ("p50", "p90", "p99")}
        qd = {k: qd.get(k, 0.0) for k in ("p50", "p90", "p99")}
        lines = [
            f"workload: {self.n_queries} queries, "
            f"policy={self.config.policy.value}, "
            f"pool={self.config.cluster.n_potential_nodes} nodes, "
            f"makespan={self.makespan_s:.2f}s, "
            f"pool_util={self.pool_utilization:5.1%}",
            f"latency    p50={lat['p50']:7.2f}s p90={lat['p90']:7.2f}s "
            f"p99={lat['p99']:7.2f}s",
            f"queue_delay p50={qd['p50']:6.2f}s p90={qd['p90']:6.2f}s "
            f"p99={qd['p99']:6.2f}s",
            f"pool: {self.pool.get('grants', 0)} grants, "
            f"{self.pool.get('denials', 0)} denials "
            f"({self.pool.get('denials_by_reason', {})}), "
            f"crashed={self.pool.get('crashed_nodes', [])}, "
            f"leaked={self.pool.get('leaked_nodes', [])}",
        ]
        if self.spans_dropped or self.edges_dropped:
            lines.append(
                f"obs: budget shed {self.spans_dropped} spans, "
                f"{self.edges_dropped} causal edges (sampled summaries "
                f"remain exact for counters, ~1% for quantiles)"
            )
        for q in self.queries:
            ok = "ok" if q.matches == (
                q.reference_matches if q.reference_matches is not None
                else q.matches
            ) else "MISMATCH"
            spill = " spill" if q.degraded_to_spill else ""
            lines.append(
                f"  q{q.query}: {q.algorithm:>9s} arrive={q.arrival_s:6.2f}s "
                f"wait={q.queue_delay_s:5.2f}s run={q.run_s:6.2f}s "
                f"nodes={q.nodes_used} denials={q.recruit_denials}"
                f"{spill} matches={q.matches} [{ok}]"
            )
        return "\n".join(lines)
