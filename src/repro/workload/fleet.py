"""OS-process sharded fleet simulation (ROADMAP item 2, second half).

One simulator runs one cohort of queries; a *fleet* runs many cohorts on
real cores.  The trace is cut by :func:`cohort_of` — a stable blake2b
hash of the query id — into ``n_cohorts`` independent sub-workloads,
each with its own simulated cluster and pool (the sharded-service model:
contention is within a cohort, never across).  ``n_shards`` spawn-context
worker processes execute the cohorts round-robin and stream results back
over pipes; the parent folds them into one :class:`FleetResult`.

The determinism contract (docs/FLEET.md):

* Per-query seeds and arrivals are drawn at **global** trace positions
  (:func:`~repro.workload.generator.generate_workload` runs over the full
  config on both sides), so a query's data and arrival time never depend
  on how the trace is cut or executed.
* Cohort membership depends only on ``(query_id, n_cohorts)``.
* A cohort's simulation is the ordinary deterministic
  :func:`~repro.workload.driver.run_workload` over its renumbered specs.
* The merge laws of :meth:`repro.obs.Snapshot.merge` are associative and
  commutative, and the parent folds cohort snapshots in cohort-id order.

Therefore the merged result is a pure function of ``(workload,
n_cohorts)`` — ``--shards`` moves wall-clock only, and 1-shard and
8-shard runs produce byte-identical merged snapshot JSON.

Worker protocol (one pickled tuple per pipe message)::

    ("snapshot", cohort, snapshot_json)   # periodic, live runs only
    ("cohort_done", cohort, payload)      # final per-cohort results
    ("worker_done", shard, wall_s)        # clean exit follows
    ("error", shard, traceback_text)      # exit code 1 follows

Crash semantics: a worker that exits nonzero, dies silently, or stays
silent past ``worker_timeout_s`` becomes a structured
:class:`ShardFailure` carrying the cohorts it never reported; every
surviving cohort still merges, and :attr:`FleetResult.exit_code`
distinguishes clean (0) from oracle-invalid (1) from partial (3).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import Connection, wait as conn_wait
from typing import Any, Callable

from ..config import FleetConfig, WorkloadConfig
from ..obs import MetricsRegistry, Snapshot, merge_snapshots
from .driver import run_workload
from .generator import QuerySpec, generate_workload

__all__ = [
    "EXIT_CLEAN",
    "EXIT_INVALID",
    "EXIT_PARTIAL",
    "CohortResult",
    "FleetResult",
    "FleetRunner",
    "ShardFailure",
    "cohort_of",
    "partition_cohorts",
    "run_fleet",
]

EXIT_CLEAN = 0
EXIT_INVALID = 1
EXIT_PARTIAL = 3

#: test hook: a worker whose shard index matches this env var exits hard
#: before doing any work (the crash-handling test kills a real process
#: this way — monkeypatching cannot reach a spawn child)
_CRASH_ENV = "REPRO_FLEET_CRASH_SHARD"


# ----------------------------------------------------------------------
# cohort partitioner
# ----------------------------------------------------------------------
def cohort_of(query_id: int, n_cohorts: int) -> int:
    """Stable cohort of one query id.

    blake2b over the 8-byte big-endian id — independent of Python hash
    randomization, process boundaries and platform, so every worker and
    every future session agrees on the partition.
    """
    if n_cohorts < 1:
        raise ValueError(f"n_cohorts must be >= 1, got {n_cohorts}")
    digest = hashlib.blake2b(
        query_id.to_bytes(8, "big"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % n_cohorts


def partition_cohorts(
    specs: list[QuerySpec], n_cohorts: int
) -> list[list[QuerySpec]]:
    """Global specs -> per-cohort lists (global ids, trace order kept)."""
    cohorts: list[list[QuerySpec]] = [[] for _ in range(n_cohorts)]
    for spec in specs:
        cohorts[cohort_of(spec.query_id, n_cohorts)].append(spec)
    return cohorts


def _cohort_workload(
    cfg: WorkloadConfig, cohort: int, specs: list[QuerySpec]
) -> tuple[WorkloadConfig, list[QuerySpec], list[int]]:
    """One cohort's renumbered sub-workload plus its global-id map.

    Ids must become ``0..k-1`` because they index the cohort cluster's
    per-query views; seeds and arrivals ride along verbatim — they were
    drawn at global trace positions and renumbering must not move them.
    """
    global_ids = [s.query_id for s in specs]
    local = [dataclasses.replace(s, query_id=i) for i, s in enumerate(specs)]
    sub = dataclasses.replace(
        cfg,
        n_queries=len(local),
        arrival_times=tuple(s.arrival_s for s in local),
        obs=dataclasses.replace(cfg.obs, shard=f"cohort{cohort}"),
    )
    return sub, local, global_ids


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _worker_main(
    conn: Connection,
    shard: int,
    fleet: FleetConfig,
    cohort_ids: list[int],
    validate: bool,
) -> None:
    """Spawn-context entry point: run this shard's cohorts sequentially.

    Regenerates the global trace rather than unpickling specs — the
    generator is deterministic under the workload seed, so parent and
    worker provably agree on the partition with no data shipped.
    """
    if os.environ.get(_CRASH_ENV) == str(shard):
        os._exit(17)
    t0 = time.monotonic()
    try:
        specs = generate_workload(fleet.workload)
        cohorts = partition_cohorts(specs, fleet.n_cohorts)
        for ci in cohort_ids:
            sub, local, global_ids = _cohort_workload(
                fleet.workload, ci, cohorts[ci]
            )
            on_snap: Callable[[Snapshot], None] | None = None
            if sub.obs.live_interval_s is not None:
                def on_snap(snap: Snapshot, _ci: int = ci) -> None:
                    conn.send(("snapshot", _ci, snap.to_json()))
            res = run_workload(sub, validate=validate, specs=local,
                               on_snapshot=on_snap)
            queries = []
            for q in res.queries:
                d = q.to_dict()
                d["query"] = global_ids[q.query]
                queries.append(d)
            assert res.snapshot is not None
            conn.send(("cohort_done", ci, {
                "cohort": ci,
                "query_ids": global_ids,
                "queries": queries,
                "makespan_s": res.makespan_s,
                "pool": dict(res.pool),
                "pool_utilization": res.pool_utilization,
                "all_valid": res.all_valid,
                "snapshot": res.snapshot.to_json(),
                "spans_dropped": res.spans_dropped,
                "edges_dropped": res.edges_dropped,
            }))
        conn.send(("worker_done", shard, time.monotonic() - t0))
        conn.close()
    except BaseException:
        # The parent turns this into a structured ShardFailure; the
        # traceback would otherwise die with the process.
        conn.send(("error", shard, traceback.format_exc()))
        conn.close()
        raise


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardFailure:
    """One worker process that did not deliver all its cohorts."""

    shard: int
    #: cohorts assigned to the worker but never reported
    cohorts: tuple[int, ...]
    #: "crash" (nonzero/silent exit), "timeout" (silent past the
    #: deadline, terminated by the parent) or "error" (worker sent its
    #: own traceback before exiting)
    kind: str
    detail: str
    exitcode: int | None

    def to_dict(self) -> dict[str, Any]:
        return {
            "shard": self.shard,
            "cohorts": list(self.cohorts),
            "kind": self.kind,
            "detail": self.detail,
            "exitcode": self.exitcode,
        }


@dataclass(frozen=True)
class CohortResult:
    """One cohort's results as reported over the worker pipe."""

    cohort: int
    shard: int
    query_ids: tuple[int, ...]
    #: per-query stat dicts (global ids), trace order within the cohort
    queries: tuple[dict[str, Any], ...]
    makespan_s: float
    pool: dict[str, Any]
    pool_utilization: float
    all_valid: bool
    snapshot: Snapshot
    spans_dropped: int
    edges_dropped: int


@dataclass
class FleetResult:
    """Merged outcome of one fleet run.

    Everything except the ``wall_*`` fields and ``metrics`` is a pure
    function of ``(config.workload, config.n_cohorts)`` — byte-identical
    at any shard count (the contract the shard-invariance tests pin).
    """

    config: FleetConfig
    #: completed cohorts, ascending cohort id
    cohorts: list[CohortResult]
    failures: list[ShardFailure]
    #: fold of every completed cohort's final snapshot (cohort-id order);
    #: None only when every shard failed
    snapshot: Snapshot | None
    #: parent-side wall-clock for the whole fleet (nondeterministic)
    wall_s: float
    #: per-shard worker wall-clock as self-reported at worker_done
    wall_s_by_shard: dict[int, float]
    metrics: list[dict[str, Any]] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def n_queries(self) -> int:
        return sum(len(c.queries) for c in self.cohorts)

    @property
    def all_valid(self) -> bool:
        return all(c.all_valid for c in self.cohorts)

    @property
    def partial(self) -> bool:
        return bool(self.failures)

    @property
    def exit_code(self) -> int:
        if self.partial:
            return EXIT_PARTIAL
        return EXIT_CLEAN if self.all_valid else EXIT_INVALID

    @property
    def makespan_s(self) -> float:
        """Global simulated makespan: the slowest cohort's makespan
        (cohorts are independent simulations sharing t=0)."""
        return max((c.makespan_s for c in self.cohorts), default=0.0)

    @property
    def total_denials(self) -> int:
        return sum(int(c.pool.get("denials", 0)) for c in self.cohorts)

    @property
    def queries(self) -> list[dict[str, Any]]:
        """Every completed query's stat dict, ascending global id."""
        out = [q for c in self.cohorts for q in c.queries]
        return sorted(out, key=lambda d: d["query"])

    def counter_total(self, name: str) -> float:
        return self.snapshot.counter_total(name) if self.snapshot else 0.0

    def latency_percentiles(
        self, qs: tuple[int, ...] = (50, 90, 99)
    ) -> dict[str, float]:
        """Sketch-backed global percentiles (1% relative-error bound)."""
        return self._quantiles("workload.query_latency_s", qs)

    def queue_delay_percentiles(
        self, qs: tuple[int, ...] = (50, 90, 99)
    ) -> dict[str, float]:
        return self._quantiles("workload.queue_delay_s", qs)

    def _quantiles(
        self, metric: str, qs: tuple[int, ...]
    ) -> dict[str, float]:
        if self.snapshot is None or metric not in self.snapshot.sketches:
            return {}
        return {f"p{q:g}": self.snapshot.quantile(metric, q / 100.0)
                for q in qs}

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-safe digest; the ``wall`` section is the only part that
        may differ between runs or shard counts."""
        return {
            "n_queries": self.n_queries,
            "n_cohorts": self.config.n_cohorts,
            "policy": self.config.workload.policy.value,
            "makespan_s": self.makespan_s,
            "latency": self.latency_percentiles(),
            "queue_delay": self.queue_delay_percentiles(),
            "all_valid": self.all_valid,
            "partial": self.partial,
            "total_denials": self.total_denials,
            "cohorts": [
                {
                    "cohort": c.cohort,
                    "query_ids": list(c.query_ids),
                    "makespan_s": c.makespan_s,
                    "pool": dict(c.pool),
                    "all_valid": c.all_valid,
                }
                for c in self.cohorts
            ],
            "failures": [f.to_dict() for f in self.failures],
            "queries": self.queries,
            "wall": {
                "n_shards": self.config.n_shards,
                "wall_s": self.wall_s,
                "wall_s_by_shard": dict(sorted(
                    self.wall_s_by_shard.items()
                )),
            },
        }

    def summary(self) -> str:
        """Multi-line human-readable digest."""
        lat = self.latency_percentiles()
        lat = {k: lat.get(k, 0.0) for k in ("p50", "p90", "p99")}
        lines = [
            f"fleet: {self.n_queries} queries in "
            f"{len(self.cohorts)}/{self.config.n_cohorts} cohorts on "
            f"{self.config.n_shards} shard processes, "
            f"policy={self.config.workload.policy.value}, "
            f"makespan={self.makespan_s:.2f}s, wall={self.wall_s:.2f}s",
            f"latency p50={lat['p50']:7.2f}s p90={lat['p90']:7.2f}s "
            f"p99={lat['p99']:7.2f}s  denials={self.total_denials} "
            f"all_valid={self.all_valid}",
        ]
        for c in self.cohorts:
            lines.append(
                f"  cohort{c.cohort}: {len(c.queries):3d} queries "
                f"(shard {c.shard}) makespan={c.makespan_s:7.2f}s "
                f"denials={c.pool.get('denials', 0)}"
            )
        for f in self.failures:
            lines.append(
                f"  FAILED shard {f.shard} ({f.kind}, exit={f.exitcode}): "
                f"lost cohorts {list(f.cohorts)}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class FleetRunner:
    """Launch the shard workers, stream their snapshots, merge results.

    ``on_snapshot`` (when the workload has ``obs.live_interval_s`` set)
    receives a *merged* fleet snapshot every time any cohort reports —
    the latest periodic snapshot per cohort folded in cohort-id order —
    so ``--live``/``repro tail`` see fleet-wide progress mid-run.
    """

    def __init__(
        self,
        cfg: FleetConfig,
        validate: bool = True,
        on_snapshot: Callable[[Snapshot], None] | None = None,
    ) -> None:
        self.cfg = cfg
        self.validate = validate
        self.on_snapshot = on_snapshot
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------
    def run(self) -> FleetResult:
        cfg = self.cfg
        t0 = time.monotonic()
        specs = generate_workload(cfg.workload)
        cohorts = partition_cohorts(specs, cfg.n_cohorts)
        nonempty = [ci for ci, group in enumerate(cohorts) if group]
        # Shards beyond the nonempty cohort count would idle; don't spawn
        # them (results are unaffected — parallelism only).
        n_shards = max(1, min(cfg.n_shards, len(nonempty)))
        assignment = {s: nonempty[s::n_shards] for s in range(n_shards)}

        ctx = get_context("spawn")
        procs: dict[int, Any] = {}
        conns: dict[int, Connection] = {}
        for s, cids in assignment.items():
            parent_end, child_end = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_worker_main,
                args=(child_end, s, cfg, cids, self.validate),
                name=f"repro-fleet-shard{s}",
            )
            proc.start()
            child_end.close()
            procs[s], conns[s] = proc, parent_end
            self.metrics.inc("fleet.shards_launched")

        done: dict[int, dict[str, Any]] = {}
        cohort_shard: dict[int, int] = {}
        live: dict[int, Snapshot] = {}
        wall_by_shard: dict[int, float] = {}
        errors: dict[int, str] = {}
        failures: list[ShardFailure] = []
        deadline = {
            s: time.monotonic() + cfg.worker_timeout_s for s in procs
        }
        alive = set(procs)

        while alive:
            ready = conn_wait([conns[s] for s in alive], timeout=0.2)
            now = time.monotonic()
            finished: list[int] = []
            for s in sorted(alive):
                if conns[s] not in ready:
                    if now > deadline[s]:
                        failures.append(self._kill_shard(
                            procs[s], s, assignment[s], done,
                            "timeout",
                            f"no message for {cfg.worker_timeout_s:.0f}s",
                        ))
                        finished.append(s)
                    continue
                deadline[s] = now + cfg.worker_timeout_s
                eof = self._drain_conn(
                    conns[s], s, done, cohort_shard, live,
                    wall_by_shard, errors,
                )
                if eof:
                    failure = self._reap_shard(
                        procs[s], s, assignment[s], done, errors
                    )
                    if failure is not None:
                        failures.append(failure)
                    finished.append(s)
            for s in finished:
                alive.discard(s)
                conns[s].close()

        completed = [
            self._cohort_result(done[ci], cohort_shard[ci])
            for ci in sorted(done)
        ]
        merged: Snapshot | None = None
        if completed:
            merged = merge_snapshots([c.snapshot for c in completed])
            self.metrics.inc("fleet.snapshots_merged", len(completed))
        for s, wall in sorted(wall_by_shard.items()):
            self.metrics.set_gauge("fleet.worker_wall_s", wall, shard=s)
        return FleetResult(
            config=cfg,
            cohorts=completed,
            failures=failures,
            snapshot=merged,
            wall_s=time.monotonic() - t0,
            wall_s_by_shard=wall_by_shard,
            metrics=self.metrics.snapshot(),
        )

    # ------------------------------------------------------------------
    def _drain_conn(
        self,
        conn: Connection,
        shard: int,
        done: dict[int, dict[str, Any]],
        cohort_shard: dict[int, int],
        live: dict[int, Snapshot],
        wall_by_shard: dict[int, float],
        errors: dict[int, str],
    ) -> bool:
        """Receive every pending message; True when the pipe hit EOF."""
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                return True
            kind = msg[0]
            if kind == "snapshot":
                _, ci, snap_json = msg
                live[ci] = Snapshot.from_json(snap_json)
                self._emit_live(live)
            elif kind == "cohort_done":
                _, ci, payload = msg
                done[ci] = payload
                cohort_shard[ci] = shard
                live[ci] = Snapshot.from_json(payload["snapshot"])
                self._emit_live(live)
            elif kind == "worker_done":
                _, s, wall = msg
                wall_by_shard[s] = wall
            elif kind == "error":
                _, s, detail = msg
                errors[s] = detail
            else:
                raise RuntimeError(
                    f"unknown fleet worker message {msg!r}"
                )
            if not conn.poll():
                return False

    def _emit_live(self, live: dict[int, Snapshot]) -> None:
        if self.on_snapshot is None or not live:
            return
        merged = merge_snapshots([live[ci] for ci in sorted(live)])
        self.metrics.inc("fleet.snapshots_merged", len(live))
        self.on_snapshot(merged)

    def _kill_shard(
        self,
        proc: Any,
        shard: int,
        assigned: list[int],
        done: dict[int, dict[str, Any]],
        kind: str,
        detail: str,
    ) -> ShardFailure:
        proc.terminate()
        proc.join(5.0)
        if proc.is_alive():
            proc.kill()
            proc.join(5.0)
        self.metrics.inc("fleet.shards_failed")
        return ShardFailure(
            shard=shard,
            cohorts=tuple(ci for ci in assigned if ci not in done),
            kind=kind,
            detail=detail,
            exitcode=proc.exitcode,
        )

    def _reap_shard(
        self,
        proc: Any,
        shard: int,
        assigned: list[int],
        done: dict[int, dict[str, Any]],
        errors: dict[int, str],
    ) -> ShardFailure | None:
        """Join a worker whose pipe closed; a failure when anything is
        missing or the exit was unclean."""
        proc.join(self.cfg.worker_timeout_s)
        if proc.is_alive():
            return self._kill_shard(
                proc, shard, assigned, done, "timeout",
                "pipe closed but process did not exit",
            )
        lost = tuple(ci for ci in assigned if ci not in done)
        exitcode = proc.exitcode
        if exitcode == 0 and not lost and shard not in errors:
            return None
        self.metrics.inc("fleet.shards_failed")
        if shard in errors:
            return ShardFailure(shard=shard, cohorts=lost, kind="error",
                                detail=errors[shard], exitcode=exitcode)
        return ShardFailure(
            shard=shard, cohorts=lost, kind="crash",
            detail=f"worker exited with code {exitcode} "
                   f"before reporting cohorts {list(lost)}",
            exitcode=exitcode,
        )

    @staticmethod
    def _cohort_result(payload: dict[str, Any], shard: int) -> CohortResult:
        return CohortResult(
            cohort=payload["cohort"],
            shard=shard,
            query_ids=tuple(payload["query_ids"]),
            queries=tuple(payload["queries"]),
            makespan_s=payload["makespan_s"],
            pool=payload["pool"],
            pool_utilization=payload["pool_utilization"],
            all_valid=payload["all_valid"],
            snapshot=Snapshot.from_json(payload["snapshot"]),
            spans_dropped=payload["spans_dropped"],
            edges_dropped=payload["edges_dropped"],
        )


def run_fleet(
    cfg: FleetConfig,
    validate: bool = True,
    on_snapshot: Callable[[Snapshot], None] | None = None,
) -> FleetResult:
    """Convenience wrapper: build a :class:`FleetRunner` and run it."""
    return FleetRunner(cfg, validate=validate, on_snapshot=on_snapshot).run()
