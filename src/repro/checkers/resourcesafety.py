"""Resource-safety pass: interrupt-safe waits and paired releases.

The PR-6 livelock class: a process parked on a bare ``Resource.acquire()``
or ``Mailbox.get()`` is killed by the fault plan, its queued request is
never withdrawn, and the next release/put is handed to the corpse —
leaking a slot (or a message) forever.  The fix is mechanical
(``grab()``/``use()``/``recv()``/``try-finally``), so this pass makes the
whole class unshippable instead of rediscovering it per-bug:

* ``rs-bare-acquire`` — any ``.acquire()`` call outside the primitive's
  own module.  ``acquire()`` returns a raw event with no interrupt
  protection; every caller should go through ``grab()`` (indefinite
  hold) or ``use(duration)`` (timed hold).
* ``rs-unpaired-grab`` — a ``X.grab()`` whose function has no
  ``X.release()`` inside a ``finally`` block.  A grab abandoned between
  the grant and the release (crash, early return, raised error) leaks
  the slot.  Cross-actor hand-offs (the receive-window credit protocol,
  where the *consumer* releases) are real and intentional — they carry a
  ``# repro: allow[rs-unpaired-grab]`` with the reasoning.
* ``rs-mailbox-get`` — a ``yield X.get()`` on a mailbox (no chance to
  withdraw the getter on Interrupt), or a bound ``ev = X.get()`` in a
  function that never calls ``X.cancel_get``.  Use
  ``yield from X.recv()``.
* ``rs-killable-wait`` — a ``yield X.wait()`` on a ``Barrier`` or
  ``Latch`` inside ``repro.core``/``repro.cluster``, where every process
  is crash-injectable: neither primitive supports withdrawing an
  arrival, so a killed waiter strands the remaining parties.  (The
  barrier's party count can never be met again — prefer mailbox-based
  rendezvous, which the failure detectors can reason about.)

Receiver matching is name-based (dotted paths), like the protocol pass:
``self.node.mailbox.get()`` is a mailbox get because the receiver path
ends in ``mailbox``; ``cfg.get(...)`` on a dict is not.  Local names
bound from a ``Mailbox(...)``/``Barrier(...)``/``Latch(...)`` constructor
are tracked file-wide.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .base import FileChecker, SourceFile, Violation, register
from ._astutil import dotted_name

__all__ = ["ResourceSafetyChecker"]

#: the module that defines the primitives (their own internals are exempt)
_SYNC_REL = "src/repro/sim/sync.py"

#: receiver path segments that identify a mailbox object
_MAILBOXY = frozenset({"mailbox", "inbox"})


def _receiver(call: ast.Call) -> str | None:
    """Dotted path of ``X`` in ``X.attr()``, else None."""
    if isinstance(call.func, ast.Attribute):
        return dotted_name(call.func.value)
    return None


def _primitive_bindings(tree: ast.AST, classes: frozenset[str]) -> set[str]:
    """Names (plain or self-dotted) assigned from ``Cls(...)`` constructor
    calls for any of the given class names, file-wide."""
    bound: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            func = node.value.func
            cls = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if cls not in classes:
                continue
            for t in node.targets:
                name = dotted_name(t)
                if name is not None:
                    bound.add(name)
    return bound


def _functions(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk ``fn`` without descending into nested function definitions."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


def _method_calls(fn: ast.AST, attr: str) -> list[ast.Call]:
    return [
        node for node in _own_nodes(fn)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == attr
    ]


def _released_in_finally(fn: ast.AST, receiver: str) -> bool:
    """Does ``fn`` contain ``<receiver>.release()`` inside a finally?"""
    for node in _own_nodes(fn):
        if not isinstance(node, ast.Try) or not node.finalbody:
            continue
        for stmt in node.finalbody:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call) \
                        and isinstance(sub.func, ast.Attribute) \
                        and sub.func.attr == "release" \
                        and dotted_name(sub.func.value) == receiver:
                    return True
    return False


@register
class ResourceSafetyChecker(FileChecker):
    """Interrupt-safe acquisition and guaranteed release (PR-6 bug class)."""

    name = "resourcesafety"
    rules = ("rs-bare-acquire", "rs-unpaired-grab", "rs-mailbox-get",
             "rs-killable-wait")
    scope = ("src/repro/sim", "src/repro/core", "src/repro/cluster",
             "src/repro/hashing", "src/repro/workload")
    explanations = {
        "rs-bare-acquire": (
            "Resource.acquire() returns a raw event.  A process killed "
            "while parked on it leaves the request queued; the next "
            "release() hands the slot to the corpse and it leaks forever "
            "(the PR-6 livelock).  Use `yield from res.grab()` for an "
            "indefinite hold or `yield from res.use(duration)` for a "
            "timed one — both withdraw the request when an exception is "
            "thrown into the waiting process."
        ),
        "rs-unpaired-grab": (
            "grab() hands the caller a held slot; if no release() is "
            "reachable on *every* exit path the slot leaks on the first "
            "crash or early return.  Put the release in a finally block "
            "of the same function.  Intentional cross-actor hand-offs "
            "(acquire here, release in the consumer — e.g. receive-window "
            "credits) are the documented exception: suppress with "
            "`# repro: allow[rs-unpaired-grab]` and a comment naming the "
            "releasing actor."
        ),
        "rs-mailbox-get": (
            "A pending Mailbox.get() abandoned on Interrupt stays in the "
            "getter queue, so the next put() is consumed by the dead "
            "waiter and the message is silently lost.  Use `msg = yield "
            "from box.recv()` (withdraws the getter on any exception), or "
            "bind the event and call cancel_get() on the interrupt path."
        ),
        "rs-killable-wait": (
            "Barrier and Latch cannot withdraw an arrival: a crash-killed "
            "waiter strands the surviving parties (the barrier's count is "
            "never met again).  Inside repro.core/repro.cluster every "
            "process is FaultPlan-killable, so phase rendezvous there "
            "must go through mailboxes (which the failure detector and "
            "drain protocol already cover)."
        ),
    }

    def check_file(self, source: SourceFile) -> Iterator[Violation]:
        if source.rel == _SYNC_REL:
            return
        mailboxy = _primitive_bindings(source.tree, frozenset({"Mailbox"}))
        parkable = _primitive_bindings(source.tree,
                                       frozenset({"Barrier", "Latch"}))
        killable_scope = source.rel.startswith(
            ("src/repro/core/", "src/repro/cluster/")
        )

        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "acquire":
                yield source.violation(
                    node, "rs-bare-acquire",
                    "bare acquire() is not interrupt-safe — use grab() "
                    "or use() (see `repro lint --explain rs-bare-acquire`)",
                )

        for fn in _functions(source.tree):
            yield from self._check_grabs(source, fn)
            yield from self._check_mailbox_gets(source, fn, mailboxy)
            if killable_scope:
                yield from self._check_parkable_waits(source, fn, parkable)

    # ------------------------------------------------------------------
    def _check_grabs(
        self, source: SourceFile, fn: ast.AST
    ) -> Iterator[Violation]:
        for call in _method_calls(fn, "grab"):
            receiver = _receiver(call)
            if receiver is None:
                continue
            if not _released_in_finally(fn, receiver):
                yield source.violation(
                    call, "rs-unpaired-grab",
                    f"{receiver}.grab() has no {receiver}.release() in a "
                    "finally block of this function — the slot leaks on "
                    "any non-straight-line exit",
                )

    def _check_mailbox_gets(
        self, source: SourceFile, fn: ast.AST, mailboxy: set[str]
    ) -> Iterator[Violation]:
        def is_mailbox(receiver: str | None) -> bool:
            if receiver is None:
                return False
            return receiver.rsplit(".", 1)[-1] in _MAILBOXY \
                or receiver in mailboxy

        cancels = {
            _receiver(c) for c in _method_calls(fn, "cancel_get")
        }
        for node in _own_nodes(fn):
            # yield X.get(): the waiting process cannot cancel on Interrupt
            if isinstance(node, ast.Yield) and isinstance(node.value, ast.Call):
                call = node.value
                if isinstance(call.func, ast.Attribute) \
                        and call.func.attr == "get" \
                        and is_mailbox(_receiver(call)):
                    yield source.violation(
                        call, "rs-mailbox-get",
                        "yield mailbox.get() cannot withdraw the getter on "
                        "Interrupt — use `yield from mailbox.recv()`",
                    )
            # ev = X.get() with no X.cancel_get anywhere in the function
            elif isinstance(node, ast.Assign) \
                    and isinstance(node.value, ast.Call) \
                    and isinstance(node.value.func, ast.Attribute) \
                    and node.value.func.attr == "get":
                receiver = _receiver(node.value)
                if is_mailbox(receiver) and receiver not in cancels:
                    yield source.violation(
                        node, "rs-mailbox-get",
                        f"pending getter on {receiver} is never withdrawn "
                        f"({receiver}.cancel_get missing) — an Interrupt "
                        "while waiting loses the next message",
                    )

    def _check_parkable_waits(
        self, source: SourceFile, fn: ast.AST, parkable: set[str]
    ) -> Iterator[Violation]:
        for node in _own_nodes(fn):
            if not (isinstance(node, ast.Yield)
                    and isinstance(node.value, ast.Call)):
                continue
            call = node.value
            if not (isinstance(call.func, ast.Attribute)
                    and call.func.attr == "wait"):
                continue
            receiver = _receiver(call)
            if receiver is not None and receiver in parkable:
                yield source.violation(
                    call, "rs-killable-wait",
                    f"{receiver} is a Barrier/Latch: a crash-killable "
                    "process parked on wait() cannot withdraw its arrival "
                    "and strands the other parties — use mailbox-based "
                    "rendezvous in repro.core/repro.cluster",
                )
